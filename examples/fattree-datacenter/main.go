// FatTree data center: the head-to-head the paper runs in Table 5.
// On a k=4 fat-tree fabric (20 switches), compare the three real-time
// in-band detectors — Unroller, PathDump, and a packet-carried Bloom
// filter — on the same injected loops: per-packet header cost versus
// detection speed.
package main

import (
	"fmt"
	"log"

	unroller "github.com/unroller/unroller"
	"github.com/unroller/unroller/internal/baseline"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

func main() {
	g, err := unroller.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %s, %d switches, %d links, diameter %d\n\n", g.Name, g.N(), g.M(), g.Diameter())

	rng := xrand.New(99)

	// The three contenders. PathDump needs the fabric's layer map; the
	// Bloom filter is sized at the paper's Table 5 value for FatTree4.
	unr := unroller.MustNew(unroller.DefaultConfig())
	bloom, err := baseline.NewBloom(414, baseline.OptimalK(414, 8), 1)
	if err != nil {
		log.Fatal(err)
	}

	const runs = 2000
	type row struct {
		name    string
		bits    int
		avgTime float64
		missed  int
	}
	var rows []row

	// Sample loop scenarios once and drive every detector over the
	// identical walks, so the comparison is paired.
	scenarios := make([]*sim.Scenario, 0, runs)
	for len(scenarios) < runs {
		sc, err := sim.SampleScenario(g, rng)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = append(scenarios, sc)
	}

	measure := func(name string, mk func(sc *sim.Scenario) detect.Detector, bits int) {
		var total float64
		missed := 0
		for _, sc := range scenarios {
			w := sc.Walk()
			det := mk(sc)
			out := sim.Run(det, w, 40*w.X()+64)
			if !out.Detected {
				missed++
				continue
			}
			total += float64(out.Hops) / float64(w.X())
		}
		rows = append(rows, row{name: name, bits: bits, avgTime: total / float64(runs-missed), missed: missed})
	}

	measure("unroller b=4", func(*sim.Scenario) detect.Detector { return unr }, unr.BitOverhead(0))
	measure("bloom 414b", func(*sim.Scenario) detect.Detector { return bloom }, bloom.BitOverhead(0))
	measure("pathdump", func(sc *sim.Scenario) detect.Detector {
		// PathDump's layer map is keyed by the scenario's identifier
		// assignment.
		return baseline.NewPathDump(topology.FatTreeLayers(4, sc.Assign))
	}, baseline.PathDumpOverheadBits)

	fmt.Printf("%-14s  %12s  %16s  %s\n", "detector", "header bits", "avg time (×X)", "missed loops")
	for _, r := range rows {
		fmt.Printf("%-14s  %12d  %16.2f  %d\n", r.name, r.bits, r.avgTime, r.missed)
	}
	fmt.Println("\nreading: Unroller matches the fixed-cost schemes with 6-16x fewer header")
	fmt.Println("bits, paying one to two extra loop traversals of detection delay;")
	fmt.Println("PathDump is cheap here but only works on layered fabrics like this one.")
}
