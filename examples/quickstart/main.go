// Quickstart: build an Unroller detector, run one packet over a path
// that falls into a routing loop, and watch the loop get reported — in
// four steps, using only the public API.
package main

import (
	"fmt"
	"log"

	unroller "github.com/unroller/unroller"
)

func main() {
	// 1. A detector with the paper's default configuration: phase base
	//    b = 4, one uncompressed 32-bit identifier, threshold 1 —
	//    40 header bits per packet, no switch state.
	det, err := unroller.New(unroller.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %s (%d header bits)\n", det.Name(), det.BitOverhead(0))

	// 2. A packet trajectory: 5 hops of normal forwarding, then a
	//    12-switch forwarding loop (B = 5, L = 12).
	walk := unroller.RandomWalk(5, 12, 42)
	fmt.Printf("walk: B=%d pre-loop hops, L=%d loop switches, X=%d\n",
		walk.B(), walk.L(), walk.X())

	// 3. Simulate the packet hop by hop until some switch reports.
	out := unroller.Simulate(det, walk, 1000)
	if !out.Detected {
		log.Fatal("no loop detected (impossible for this configuration)")
	}

	// 4. The report: which switch fired, after how many hops, and how
	//    that compares to the X = B+L floor and the Theorem 1 ceiling.
	fmt.Printf("loop reported by %v at hop %d\n", out.Reporter, out.Hops)
	fmt.Printf("detection time: %.2f×X (theorem 1 guarantees ≤ %d hops)\n",
		float64(out.Hops)/float64(walk.X()), unroller.WorstCaseBound(4, walk.B(), walk.L()))
}
