// Reroute on detect: the reaction the paper's conclusion sketches —
// because Unroller identifies loops in real time, in the data plane, a
// switch can deflect the packet to a pre-installed backup port (à la
// PURR) instead of dropping it, turning a guaranteed loss into a
// delivery.
//
// The example injects a loop into a torus fabric and compares three
// policies on the same traffic: no telemetry (TTL death), detect-and-
// drop (the paper's base design), and detect-and-reroute.
package main

import (
	"fmt"
	"log"

	unroller "github.com/unroller/unroller"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/topology"
)

func main() {
	g, err := topology.Torus(5, 5)
	if err != nil {
		log.Fatal(err)
	}
	assign := unroller.NewAssignment(g, 11)
	dst := 24
	loop := unroller.Cycle{6, 7, 12, 11} // a unit square in the fabric

	type policy struct {
		name      string
		telemetry bool
		backups   bool
	}
	policies := []policy{
		{"no telemetry (status quo)", false, false},
		{"detect and drop (paper §4)", true, false},
		{"detect and reroute (paper §6)", true, true},
	}

	for _, pol := range policies {
		net, err := unroller.NewNetwork(g, assign, unroller.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := net.InstallShortestPaths(dst); err != nil {
			log.Fatal(err)
		}
		if !pol.backups {
			for node := 0; node < g.N(); node++ {
				net.Switch(node).ClearBackups()
			}
		}
		if err := net.InjectLoop(dst, loop); err != nil {
			log.Fatal(err)
		}

		delivered, dropped, totalHops := 0, 0, 0
		for _, src := range []int{6, 7, 12, 11, 1, 5} { // traffic crossing the loop
			tr, err := net.Send(src, dst, uint32(src), 255, pol.telemetry)
			if err != nil {
				log.Fatal(err)
			}
			totalHops += len(tr.Hops)
			if tr.Final == dataplane.Deliver {
				delivered++
			} else {
				dropped++
			}
		}
		fmt.Printf("%-30s  delivered %d/6, dropped %d, avg %5.1f hops/pkt, %d reports\n",
			pol.name, delivered, dropped, float64(totalHops)/6, net.Controller.Count())
	}

	fmt.Println("\nreading: detection alone converts 255-hop TTL deaths into ~10-hop")
	fmt.Println("drops (saving the bandwidth the loop would burn); backup ports then")
	fmt.Println("convert those drops into deliveries.")
}
