// Transient loops: the most realistic loop source — routing protocol
// convergence. A distance-vector network (RIP-style) suffers a link
// failure; while the bad news propagates, nodes near the failure forward
// destination-bound traffic at each other (count-to-infinity). This
// example snapshots the FIBs after every protocol round, installs them
// into the data-plane emulator, sends probe packets, and shows Unroller
// catching each transient loop the instant it exists — and going quiet
// the moment the network reconverges.
package main

import (
	"fmt"
	"log"

	unroller "github.com/unroller/unroller"
	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/routing"
	"github.com/unroller/unroller/internal/topology"
)

func main() {
	// An 8-router ring: the textbook count-to-infinity victim.
	g, err := topology.Ring(8)
	if err != nil {
		log.Fatal(err)
	}
	proto, err := routing.New(g, routing.DefaultInfinity, false /* no split horizon */)
	if err != nil {
		log.Fatal(err)
	}
	rounds, _ := proto.Converge(100)
	fmt.Printf("ring of %d routers converged in %d rounds\n", g.N(), rounds)

	dst := 7
	if err := proto.FailLink(0, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n*** link 0—7 fails; watching destination %d during reconvergence ***\n\n", dst)

	assign := unroller.NewAssignment(g, 3)
	for round := 0; ; round++ {
		loops := proto.ForwardingLoops(dst)

		// Fresh network per snapshot: FIBs exactly as the protocol
		// believes them this round.
		net, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		net.SetLoopPolicy(dataplane.ActionDrop)
		if err := proto.InstallInto(net, dst); err != nil {
			log.Fatal(err)
		}
		// Probe from node 1 (adjacent to the failure).
		tr, err := net.Send(1, dst, uint32(round), 255, true)
		if err != nil {
			log.Fatal(err)
		}

		status := fmt.Sprintf("probe %-12s", tr.Final)
		if tr.Report != nil {
			status = fmt.Sprintf("LOOP caught by %v at hop %d", tr.Report.Reporter, tr.Report.Hops)
		}
		fmt.Printf("round %2d: metric(1→%d)=%2d, control-plane loops=%d, %s\n",
			round, dst, proto.Metric(1, dst), len(loops), status)

		if !proto.Step() {
			fmt.Printf("\nreconverged after %d rounds; final probe: %s in %d hops\n",
				round, tr.Final, len(tr.Hops))
			break
		}
		if round > 5*routing.DefaultInfinity {
			log.Fatal("no reconvergence (bug)")
		}
	}

	fmt.Println("\nreading: every round where the control plane had a loop, the data")
	fmt.Println("plane caught it on a live packet in a handful of hops — no mirror")
	fmt.Println("infrastructure, no per-flow switch state, 40 bits of header.")
}
