// Loop collateral damage: the paper's introduction, measured. A victim
// flow gets trapped in a forwarding loop that shares one link with an
// innocent background flow. Without detection, every trapped packet
// circulates until TTL death, saturating the shared link — the
// background flow's latency and jitter explode and packets drop
// (exactly the effect Hengartner et al. measured in real traces, the
// paper's motivation [14]). With Unroller, trapped packets die within a
// few hops and the background flow never notices.
package main

import (
	"fmt"
	"log"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/netsim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// Topology:
//
//	0 — 1 — 2 — 3 — 5       background flow: 0 → 3
//	     \ /                victim flow:     0 → 5
//	      4                 loop: {1, 2, 4} misconfigured for dst 5
func build(telemetry bool) (*netsim.Sim, error) {
	g := topology.NewGraph("collateral", 6)
	for i := 0; i < 6; i++ {
		g.AddNode("")
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 4}, {2, 4}, {3, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	net, err := dataplane.NewNetwork(g, topology.NewAssignment(g, xrand.New(7)), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for _, dst := range []int{3, 5} {
		if err := net.InstallShortestPaths(dst); err != nil {
			return nil, err
		}
	}
	net.SetLoopPolicy(dataplane.ActionDrop)
	if err := net.InjectLoop(5, topology.Cycle{1, 2, 4}); err != nil {
		return nil, err
	}

	params := netsim.DefaultLinkParams()
	params.BandwidthBps = 100e6 // 100 Mb/s links
	params.QueuePackets = 32
	sim, err := netsim.New(net, params)
	if err != nil {
		return nil, err
	}
	const horizon = 0.5
	// Background: 1 kB every 1 ms = 8 Mb/s across the spine.
	if err := sim.AddFlow(netsim.Flow{
		ID: 1, Src: 0, Dst: 3, PacketBytes: 984, Interval: 1e-3, Telemetry: telemetry,
	}, horizon); err != nil {
		return nil, err
	}
	// Victim: 1 kB every 2 ms towards dst 5 — hijacked into the loop.
	if err := sim.AddFlow(netsim.Flow{
		ID: 2, Src: 0, Dst: 5, PacketBytes: 984, Interval: 2e-3, Telemetry: telemetry,
	}, horizon); err != nil {
		return nil, err
	}
	return sim, nil
}

func main() {
	fmt.Printf("%-22s  %12s  %12s  %8s  %s\n",
		"scenario", "bg latency", "bg jitter", "bg loss", "victim packet fate")
	for _, mode := range []struct {
		name      string
		telemetry bool
	}{
		{"loop, no detection", false},
		{"loop + Unroller", true},
	} {
		sim, err := build(mode.telemetry)
		if err != nil {
			log.Fatal(err)
		}
		sim.Run(0.5)
		bg, _ := sim.FlowStats(1)
		victim, _ := sim.FlowStats(2)
		fate := fmt.Sprintf("%d ttl-deaths, %d queue-drops", victim.TTLDrops, victim.QueueDrops)
		if victim.LoopDrops > 0 {
			fate = fmt.Sprintf("%d killed in-band after ≤3 laps", victim.LoopDrops)
		}
		fmt.Printf("%-22s  %9.3f ms  %9.3f ms  %7.1f%%  %s\n",
			mode.name,
			bg.Latency.Mean()*1e3, bg.Jitter*1e3, bg.Loss()*100, fate)
	}
	fmt.Println("\nreading: the undetected loop saturates the shared 1—2 link; the")
	fmt.Println("innocent flow pays in latency, jitter, and loss. In-band detection")
	fmt.Println("kills trapped packets within a few hops and the damage vanishes —")
	fmt.Println("the paper's motivating scenario, reproduced end to end.")
}
