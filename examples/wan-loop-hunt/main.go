// WAN loop hunt: the scenario from the paper's introduction. A
// GEANT-sized WAN suffers a forwarding loop after a misconfigured FIB
// update; Unroller-equipped switches detect it in-band within a few
// hops, while the same packets without telemetry burn their entire TTL
// (the loss that inflates tail latency and triggers spurious congestion
// control).
//
// This example uses the data-plane emulator: real packet bytes, per-hop
// parse/deparse, FIB lookups, and controller reports.
package main

import (
	"fmt"
	"log"

	unroller "github.com/unroller/unroller"
	"github.com/unroller/unroller/internal/topology"
)

func main() {
	// A 40-node WAN with the same size and diameter as GEANT (the
	// paper's Table 5 entry). Swap in unroller.LoadGraphML("Geant.graphml")
	// to run on the real Topology Zoo file.
	g, err := topology.Synthetic("GEANT", 40, 8)
	if err != nil {
		log.Fatal(err)
	}
	assign := unroller.NewAssignment(g, 7)
	net, err := unroller.NewNetwork(g, assign, unroller.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Normal operation: shortest-path routes towards a peering point.
	dst := 0
	if err := net.InstallShortestPaths(dst); err != nil {
		log.Fatal(err)
	}
	for node := 0; node < g.N(); node++ {
		net.Switch(node).ClearBackups() // base design: drop and report
	}
	tr, err := net.Send(g.N()-1, dst, 1, 64, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy network: packet delivered in %d hops, %d loop reports\n",
		len(tr.Hops), net.Controller.Count())

	// An operator fat-fingers a maintenance change: three core routers
	// now point at each other for dst-bound traffic.
	// Node 11 is an access router dual-homed to backbone nodes 2 and 3,
	// so {2, 11, 3} is a physical triangle.
	loop := unroller.Cycle{2, 11, 3}
	if err := loop.Validate(g); err != nil {
		// The synthetic backbone guarantees extras adjacent to
		// consecutive backbone nodes; fall back to a sampled cycle
		// if this particular triangle is absent.
		log.Fatalf("cycle invalid: %v", err)
	}
	if err := net.InjectLoop(dst, loop); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFIB misconfiguration: nodes %v now loop dst-bound traffic\n", loop)

	// Traffic from several ingress points.
	detected, ttlDeaths := 0, 0
	var detectionHops []int
	for src := 20; src < 30; src++ {
		trLoop, err := net.Send(src, dst, uint32(src), 255, true)
		if err != nil {
			log.Fatal(err)
		}
		if trLoop.Report != nil {
			detected++
			detectionHops = append(detectionHops, trLoop.Report.Hops)
		}
		trBlind, err := net.Send(src, dst, uint32(src), 255, false)
		if err != nil {
			log.Fatal(err)
		}
		if trBlind.Final.String() == "drop-ttl" {
			ttlDeaths++
		}
	}
	fmt.Printf("with Unroller:    %d/10 packets reported the loop in-band (hops: %v)\n", detected, detectionHops)
	fmt.Printf("without Unroller: %d/10 packets died by TTL after 255 hops each\n", ttlDeaths)
	fmt.Printf("controller heard %d reports; loop lives at:", net.Controller.Count())
	for _, id := range net.Controller.TopReporters() {
		fmt.Printf(" %v", id)
	}
	fmt.Println()
}
