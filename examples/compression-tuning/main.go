// Compression tuning: pick z (hash width) and Th (reporting threshold)
// for a header budget — the §3.3 engineering exercise. For each
// candidate the example measures the empirical false-positive rate on
// loop-free paths and the detection delay on loopy ones, then prints the
// frontier including the paper's worked example (z=7, Th=4: under 10⁻⁵
// false positives at 9 ID/counter bits, a 72% saving over a full
// identifier).
package main

import (
	"fmt"
	"log"

	unroller "github.com/unroller/unroller"
	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/sim"
)

func main() {
	const (
		pathLen = 20 // loop-free path length for FP trials (paper's setup)
		fpRuns  = 300000
		dtRuns  = 30000
	)

	fmt.Printf("%-22s  %11s  %14s  %13s\n", "configuration", "header bits", "FP rate", "avg time (×X)")

	for _, cand := range []struct {
		z  uint
		th int
	}{
		{32, 1}, // uncompressed reference
		{16, 1},
		{12, 1},
		{9, 1},
		{7, 1},
		{7, 2},
		{7, 4}, // the paper's §3.3 example
		{5, 4},
	} {
		cfg := unroller.DefaultConfig()
		cfg.ZBits = cand.z
		cfg.Threshold = cand.th
		cfg.HashIDs = cand.z < 32
		det, err := unroller.New(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// False positives: loop-free 20-hop paths.
		fp := sim.FalsePositiveTrial(sim.Fixed(det), pathLen, sim.MCConfig{Runs: fpRuns, Seed: 1})

		// Detection delay: the Figure 7 workload (B=5, L=20).
		res := unroller.MonteCarlo(det, 5, 20, unroller.MCConfig{Runs: dtRuns, Seed: 2})
		if res.Timeouts > 0 {
			log.Fatalf("%v: missed %d loops", cfg, res.Timeouts)
		}

		fpCell := fmt.Sprintf("%.2e", fp.Rate())
		if fp.Events() == 0 {
			fpCell = fmt.Sprintf("<%.1e", fp.UpperBound95())
		}
		fmt.Printf("z=%-3d Th=%-3d %8s  %11d  %14s  %13.2f\n",
			cand.z, cand.th, "", cfg.HeaderBits(), fpCell, res.Time.Mean())
	}

	// The analytic bound for the paper's example, for comparison with
	// the measured rate.
	fmt.Printf("\nanalytic FP bound for z=7, Th=4 on a %d-hop path: %.1e (paper: <1e-5)\n",
		pathLen, core.FalsePositiveBound(pathLen, 7, 1, 4))
	fmt.Println("reading: each halving of z saves bits but multiplies the FP rate;")
	fmt.Println("raising Th buys those bits back exponentially, at ~(Th-1) extra loop")
	fmt.Println("traversals of detection delay.")
}
