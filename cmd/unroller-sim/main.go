// Command unroller-sim regenerates the paper's sensitivity figures
// (Figures 2–7): average detection time and false-positive rate as
// functions of the loop length L, the pre-loop length B, the phase base
// b, the chunk and hash counts c and H, the hash width z, and the
// reporting threshold Th.
//
// Usage:
//
//	unroller-sim -figure 2 [-runs 200000] [-seed 1] [-lstep 1] [-format text|csv|md]
//	unroller-sim -figure all
//
// With -runs 3000000 the full paper budget is reproduced; the default
// 200k runs per data point gives the same curve shapes in a fraction of
// the time.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/unroller/unroller/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "all", "figure to regenerate: 2, 3, 4, 5a, 5b, 6a, 6b, 7, aesop (baseline comparison), or all")
		runs   = flag.Int("runs", 200000, "Monte Carlo runs per data point (paper: 3000000)")
		seed   = flag.Uint64("seed", 1, "experiment seed")
		lstep  = flag.Int("lstep", 1, "step of the L axis")
		format = flag.String("format", "text", "output format: text, csv, or md")
	)
	flag.Parse()

	opts := experiments.Options{Runs: *runs, Seed: *seed, LStep: *lstep}
	registry := experiments.Figures()

	var ids []string
	if *figure == "all" {
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		if registry[*figure] == nil {
			fmt.Fprintf(os.Stderr, "unroller-sim: unknown figure %q (have 2, 3, 4, 5a, 5b, 6a, 6b, 7, aesop)\n", *figure)
			os.Exit(2)
		}
		ids = []string{*figure}
	}

	for _, id := range ids {
		start := time.Now()
		tab := registry[id](opts)
		switch *format {
		case "csv":
			fmt.Print(tab.CSV())
		case "md":
			fmt.Print(tab.Markdown())
		default:
			fmt.Print(tab.Text())
		}
		fmt.Fprintf(os.Stderr, "figure %s: %d runs/point in %v\n", id, *runs, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
}
