// Command unroller-p4gen emits the P4₁₆ program implementing Unroller
// for a given configuration (the paper's §4 artifact), so the exact
// variant you simulated is the one you deploy.
//
// Usage:
//
//	unroller-p4gen [-b 4] [-c 1] [-H 1] [-z 32] [-th 1] [-schedule analysis|hardware] [-ttl-hopcount] [-o unroller.p4]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/p4gen"
)

func main() {
	var (
		b        = flag.Int("b", 4, "phase growth base")
		c        = flag.Int("c", 1, "chunks per phase")
		h        = flag.Int("H", 1, "hash functions")
		z        = flag.Uint("z", 32, "identifier width in bits")
		th       = flag.Int("th", 1, "reporting threshold")
		schedule = flag.String("schedule", "analysis", "phase schedule: analysis or hardware")
		ttl      = flag.Bool("ttl-hopcount", false, "derive the hop counter from the TTL (footnote 3)")
		out      = flag.String("o", "", "write to this file instead of stdout")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Base, cfg.Chunks, cfg.Hashes, cfg.ZBits, cfg.Threshold = *b, *c, *h, *z, *th
	cfg.HashIDs = cfg.Chunks > 1 || cfg.Hashes > 1 || cfg.ZBits < 32
	cfg.TTLHopCount = *ttl
	switch *schedule {
	case "analysis":
		cfg.Schedule = core.ScheduleAnalysis
	case "hardware":
		cfg.Schedule = core.ScheduleHardware
	default:
		fmt.Fprintf(os.Stderr, "unroller-p4gen: unknown schedule %q\n", *schedule)
		os.Exit(2)
	}

	prog, err := p4gen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unroller-p4gen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(prog.Source)
		return
	}
	if err := os.WriteFile(*out, []byte(prog.Source), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "unroller-p4gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d header bits, %d slots)\n", *out, cfg.HeaderBits(), prog.SlotCount)
}
