// Command unroller-collectord is the networked loop-report collector:
// the long-running service end of the switch→collector channel the
// paper's prototype assumes (§5). Emulators (and tests) stream loop
// reports to it over the versioned frame protocol in
// internal/collectorsvc; the daemon shards ingest by flow hash across
// independent controller instances, absorbs bursts in bounded queues
// with counted drop-oldest backpressure, and serves its counters on a
// plaintext admin endpoint.
//
// Usage:
//
//	unroller-collectord [-listen :7777] [-admin :7778] [-shards 4]
//	                    [-queue 1024] [-dedup 8] [-max-events 4096]
//	                    [-quarantine-after 0] [-quarantine-ticks 0]
//	                    [-max-age 0] [-ack-every 64] [-batch 256]
//	                    [-journal DIR] [-fsync interval] [-segment-bytes N]
//	                    [-retain 8] [-read-timeout 30s] [-write-timeout 10s]
//	                    [-max-conns 256]
//	                    [-node-id ID -cluster-listen :7779 -peers HOST:PORT,...]
//	                    [-partitions 32] [-vnodes 16] [-seed N]
//
// With -node-id the daemon runs as one member of a collectord cluster
// (internal/cluster): it joins the membership layer through -peers,
// owns the flow partitions the seeded hash ring assigns it, and — when
// journaled — reconciles a restart against the live peers that covered
// its partitions while it was down, discarding already-ingested frames
// (counted as cross_dupes) instead of double-ingesting them.
// -partitions, -vnodes, and -seed fix the ring geometry and must match
// on every node and client. The admin endpoint gains a cluster stanza
// on /statsz, and /healthz answers "degraded" while the node is
// isolated from every peer.
//
// With -journal, every accepted frame is committed to a write-ahead
// journal before it is acknowledged, and a restart on the same
// directory replays it: sequence high-water marks, dedup state, and the
// accounting counters all survive a SIGKILL, so clients that reconnect
// and retransmit are deduplicated instead of double-ingested. -fsync
// picks the durability point (always | interval | never — see
// DESIGN.md §9 for the trade-offs). The admin listener additionally
// serves /healthz (503 once the journal has failed).
//
// SIGINT or SIGTERM drains gracefully: stop accepting, close
// connections, flush every shard queue into its controller, then print
// the final accounting (after which Ingested = delivered + queue-dropped
// holds exactly).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/unroller/unroller/internal/cluster"
	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/dataplane"
)

func main() {
	var (
		listen   = flag.String("listen", ":7777", "ingest listener address")
		admin    = flag.String("admin", "", "admin /statsz listener address (empty = disabled)")
		shards   = flag.Int("shards", collectorsvc.DefaultShards, "independent ingest shards")
		queue    = flag.Int("queue", collectorsvc.DefaultQueueDepth, "per-shard queue depth (drop-oldest beyond it)")
		dedup    = flag.Int("dedup", 8, "per-flow dedup window in hops (0 = off)")
		maxEv    = flag.Int("max-events", dataplane.DefaultMaxEvents, "per-shard event buffer size")
		qAfter   = flag.Int("quarantine-after", 0, "quarantine a reporter after this many accepts per tick (0 = off; per-shard under flow sharding)")
		qTicks   = flag.Int("quarantine-ticks", 0, "ticks a quarantined reporter stays muted")
		maxAge   = flag.Int("max-age", 0, "age out buffered events after this many ticks (0 = never)")
		ackEvery = flag.Int("ack-every", collectorsvc.DefaultAckEvery, "acknowledge at least every N frames")
		batch    = flag.Int("batch", collectorsvc.DefaultBatch, "frames ingested per batch: one coalesced read, one journal-lock hold, one commit per ack batch")
		journal  = flag.String("journal", "", "write-ahead journal directory (empty = no journal, no crash recovery)")
		fsync    = flag.String("fsync", "interval", "journal fsync policy: always | interval | never")
		segBytes = flag.Int64("segment-bytes", collectorsvc.DefaultSegmentBytes, "journal bytes per segment before rotation")
		retain   = flag.Int("retain", collectorsvc.DefaultMaxSegments, "journal segments retained after rotation")
		readTO   = flag.Duration("read-timeout", collectorsvc.DefaultReadTimeout, "per-frame ingest read deadline (idle/dead peers are reaped)")
		writeTO  = flag.Duration("write-timeout", collectorsvc.DefaultWriteTimeout, "ack write deadline")
		maxConns = flag.Int("max-conns", collectorsvc.DefaultMaxConns, "concurrent ingest connections before rejecting at accept")

		nodeID   = flag.String("node-id", "", "stable cluster node identity (enables cluster mode)")
		clusterL = flag.String("cluster-listen", ":7779", "cluster membership/handoff listener (cluster mode)")
		peers    = flag.String("peers", "", "comma-separated cluster addresses of peers to join through")
		parts    = flag.Int("partitions", cluster.DefaultPartitions, "flow partitions on the ring (must match cluster-wide)")
		vnodes   = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the ring (must match cluster-wide)")
		seed     = flag.Uint64("seed", 0, "ring layout and probe-schedule seed (must match cluster-wide)")
	)
	flag.Parse()
	cfg := collectorsvc.ServerConfig{
		Shards:       *shards,
		QueueDepth:   *queue,
		AckEvery:     *ackEvery,
		Batch:        *batch,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		MaxConns:     *maxConns,
		Controller: dataplane.ControllerConfig{
			MaxEvents:       *maxEv,
			DedupWindow:     *dedup,
			QuarantineAfter: *qAfter,
			QuarantineTicks: *qTicks,
			MaxAgeTicks:     *maxAge,
		},
	}
	var jcfg *collectorsvc.JournalConfig
	if *journal != "" {
		policy, err := collectorsvc.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unroller-collectord: %v\n", err)
			os.Exit(2)
		}
		jcfg = &collectorsvc.JournalConfig{
			Dir:          *journal,
			SegmentBytes: *segBytes,
			MaxSegments:  *retain,
			Fsync:        policy,
		}
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "unroller-collectord: %v, draining\n", s)
		close(stop)
	}()

	if *nodeID != "" {
		ncfg := cluster.NodeConfig{
			ID:            *nodeID,
			ClusterListen: *clusterL,
			IngestListen:  *listen,
			Peers:         splitPeers(*peers),
			Partitions:    *parts,
			VNodes:        *vnodes,
			Seed:          *seed,
			Server:        cfg,
		}
		if err := runCluster(os.Stdout, ncfg, jcfg, *admin, stop, nil); err != nil {
			fmt.Fprintf(os.Stderr, "unroller-collectord: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *peers != "" {
		fmt.Fprintln(os.Stderr, "unroller-collectord: -peers requires -node-id (cluster mode)")
		os.Exit(2)
	}

	if err := run(os.Stdout, cfg, jcfg, *listen, *admin, stop, nil); err != nil {
		fmt.Fprintf(os.Stderr, "unroller-collectord: %v\n", err)
		os.Exit(1)
	}
}

// splitPeers parses the comma-separated -peers list, dropping empty
// entries so a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// run starts the service and blocks until stop closes, then drains and
// prints the final accounting. It is main minus the process concerns:
// tests drive it with their own stop channel and read the bound
// addresses from ready (ingest address first, then admin when enabled).
// A non-nil jcfg journals ingest and replays the directory before the
// listener opens.
func run(w io.Writer, cfg collectorsvc.ServerConfig, jcfg *collectorsvc.JournalConfig, listen, admin string, stop <-chan struct{}, ready chan<- net.Addr) error {
	var srv *collectorsvc.Server
	if jcfg != nil {
		j, err := collectorsvc.OpenJournal(*jcfg)
		if err != nil {
			return err
		}
		cfg.Journal = j
		var rec collectorsvc.RecoveryStats
		srv, rec, err = collectorsvc.NewRecoveredServer(cfg)
		if err != nil {
			j.Close()
			return err
		}
		defer j.Close()
		fmt.Fprintf(w, "journal: %s (fsync=%s) recovered records=%d snapshots=%d truncated=%d clients=%d flows=%d ingested=%d ticks=%d\n",
			jcfg.Dir, jcfg.Fsync, rec.Records, rec.Snapshots, rec.TruncatedBytes, rec.Clients, rec.Flows, rec.Ingested, rec.Ticks)
	} else {
		srv = collectorsvc.NewServer(cfg)
	}
	addr, err := srv.Start(listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "listening on %s (shards=%d queue=%d dedup=%d)\n",
		addr, cfg.Shards, cfg.QueueDepth, cfg.Controller.DedupWindow)
	if ready != nil {
		ready <- addr
	}

	var adminLn net.Listener
	if admin != "" {
		adminLn, err = net.Listen("tcp", admin)
		if err != nil {
			srv.Shutdown()
			return fmt.Errorf("admin listen %s: %w", admin, err)
		}
		fmt.Fprintf(w, "admin on http://%s/statsz\n", adminLn.Addr())
		if ready != nil {
			ready <- adminLn.Addr()
		}
		go srv.ServeAdmin(adminLn)
	}

	<-stop
	if adminLn != nil {
		adminLn.Close()
	}
	srv.Shutdown()

	st := srv.Stats()
	fmt.Fprintf(w, "final: conns=%d frames=%d bad=%d dupes=%d ingested=%d ticks=%d queue_dropped=%d shedded_ticks=%d conns_rejected=%d\n",
		st.Conns, st.Frames, st.BadFrames, st.Dupes, st.Ingested, st.Ticks, st.QueueDropped, st.SheddedTicks, st.ConnsRejected)
	if j := srv.Journal(); j != nil {
		jst := j.Stats()
		fmt.Fprintf(w, "journal: segments=%d bytes=%d appends=%d append_errors=%d rotations=%d\n",
			jst.Segments, jst.Bytes, jst.Appends, jst.AppendErrors, jst.Rotations)
	}
	fmt.Fprintf(w, "aggregate: %s\n", srv.ControllerStats())
	for i, cs := range srv.ShardStats() {
		fmt.Fprintf(w, "shard %d: %s\n", i, cs)
	}
	return nil
}

// runCluster is run's cluster-mode twin: it boots one cluster node
// (membership agent + ingest server + recovery handoff) and blocks
// until stop closes. ready, when non-nil, receives the bound ingest
// address, then the cluster address, then the admin address (when
// enabled). A non-nil jcfg journals ingest; the restart path then
// reconciles against live peers before serving.
func runCluster(w io.Writer, ncfg cluster.NodeConfig, jcfg *collectorsvc.JournalConfig, admin string, stop <-chan struct{}, ready chan<- string) error {
	if jcfg != nil {
		j, err := collectorsvc.OpenJournal(*jcfg)
		if err != nil {
			return err
		}
		defer j.Close()
		ncfg.Server.Journal = j
	}
	node, err := cluster.StartNode(ncfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "node %s: ingest on %s, cluster on %s (partitions=%d vnodes=%d seed=%d peers=%d)\n",
		node.ID(), node.IngestAddr(), node.ClusterAddr(), ncfg.Partitions, ncfg.VNodes, ncfg.Seed, len(ncfg.Peers))
	if jcfg != nil {
		rec := node.Server().Recovery()
		fmt.Fprintf(w, "journal: %s (fsync=%s) recovered records=%d ingested=%d cross_dupes=%d\n",
			jcfg.Dir, jcfg.Fsync, rec.Records, rec.Ingested, rec.CrossDupes)
	}
	if ready != nil {
		ready <- node.IngestAddr()
		ready <- node.ClusterAddr()
	}

	var adminLn net.Listener
	if admin != "" {
		adminLn, err = net.Listen("tcp", admin)
		if err != nil {
			node.Stop()
			return fmt.Errorf("admin listen %s: %w", admin, err)
		}
		fmt.Fprintf(w, "admin on http://%s/statsz\n", adminLn.Addr())
		if ready != nil {
			ready <- adminLn.Addr().String()
		}
		go http.Serve(adminLn, node.AdminHandler())
	}

	<-stop
	if adminLn != nil {
		adminLn.Close()
	}
	node.Stop()

	srv := node.Server()
	st := srv.Stats()
	fmt.Fprintf(w, "final: conns=%d frames=%d bad=%d dupes=%d ingested=%d ticks=%d cross_dupes=%d queue_dropped=%d\n",
		st.Conns, st.Frames, st.BadFrames, st.Dupes, st.Ingested, st.Ticks, st.CrossDupes, st.QueueDropped)
	ci := node.Info()
	fmt.Fprintf(w, "cluster: id=%s version=%d isolated=%v partitions=%d owned=%d members=%d\n",
		ci.ID, ci.Version, ci.Isolated, ci.Partitions, ci.Owned, len(ci.Members))
	fmt.Fprintf(w, "aggregate: %s\n", srv.ControllerStats())
	return nil
}
