package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// The kill-recover test needs a real process to SIGKILL, so the test
// binary doubles as the daemon: when the child env gate is set, TestMain
// runs main() on the provided flags instead of the test suite.
const childEnv = "UNROLLER_COLLECTORD_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// freeAddr reserves an ephemeral port and releases it, so two successive
// collectord processes can bind the same address (the client keeps one
// address across the kill).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// collectordProc is a collectord child process plus its captured stdout.
type collectordProc struct {
	cmd  *exec.Cmd
	mu   sync.Mutex
	out  bytes.Buffer
	done chan error
}

func (p *collectordProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// spawnCollectord starts the test binary as a collectord child and
// returns once it prints its "listening on" line.
func spawnCollectord(t *testing.T, args ...string) *collectordProc {
	t.Helper()
	p := &collectordProc{done: make(chan error, 1)}
	p.cmd = exec.Command(os.Args[0], args...)
	p.cmd.Env = append(os.Environ(), childEnv+"=1")
	p.cmd.Stderr = os.Stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	listening := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		seen := false
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line)
			p.out.WriteByte('\n')
			p.mu.Unlock()
			if !seen && strings.HasPrefix(line, "listening on ") {
				seen = true
				close(listening)
			}
		}
		p.done <- p.cmd.Wait()
	}()
	t.Cleanup(func() { p.cmd.Process.Kill() })
	select {
	case <-listening:
	case <-time.After(15 * time.Second):
		t.Fatalf("collectord child never started listening; output so far:\n%s", p.output())
	}
	return p
}

// TestCollectordKillRecoverExactlyOnce is the process-level crash test:
// a journaled collectord is SIGKILLed mid-ingest, restarted on the same
// journal directory and the same address, and the surviving client
// finishes its stream against the recovered process. The final drained
// accounting must show every unique event ingested exactly once — the
// retransmitted overlap is deduplicated via the recovered sequence
// high-water marks, and nothing acked before the kill is lost.
func TestCollectordKillRecoverExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	addr := freeAddr(t)
	args := []string{
		"-listen", addr,
		"-journal", dir,
		"-fsync", "never", // commit-before-ack still survives SIGKILL
		"-segment-bytes", "8192", // force rotations + snapshots mid-run
		"-shards", "2",
		"-queue", "32768",
		"-ack-every", "8",
		"-read-timeout", "5s",
	}
	proc := spawnCollectord(t, args...)

	client, err := collectorsvc.NewClient(collectorsvc.ClientConfig{
		Addr:         addr,
		ID:           7,
		Seed:         1,
		Buffer:       1 << 16,
		Batch:        32,
		MinBackoff:   2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		FlushTimeout: 120 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 4000
	send := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			client.Send(dataplane.LoopEvent{
				Report: detect.Report{Reporter: detect.SwitchID(i%5 + 1), Hops: 3},
				Flow:   uint32(i), // unique flows: every event is admissible
			}, i%17)
		}
	}
	send(0, total/2)
	deadline := time.Now().Add(30 * time.Second)
	for client.Stats().Acked < total/8 {
		if time.Now().After(deadline) {
			t.Fatalf("first wave never got acks: %+v", client.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// SIGKILL mid-ingest: acks are flowing, frames are in flight, and the
	// ack lag (-ack-every 8) guarantees committed-but-unacked overlap the
	// restarted process must dedup when the client retransmits.
	if err := proc.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-proc.done

	proc2 := spawnCollectord(t, args...)
	if !strings.Contains(proc2.output(), "journal: "+dir) {
		t.Fatalf("restarted collectord did not report recovery:\n%s", proc2.output())
	}
	send(total/2, total)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Dropped != 0 || st.Acked != total {
		t.Fatalf("client lost events across the kill: %+v", st)
	}

	if err := proc2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-proc2.done:
		if err != nil {
			t.Fatalf("drain exit: %v\noutput:\n%s", err, proc2.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("restarted collectord never drained; output:\n%s", proc2.output())
	}

	out := proc2.output()
	m := regexp.MustCompile(`final: conns=\d+ frames=\d+ bad=(\d+) dupes=(\d+) ingested=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no final accounting line in:\n%s", out)
	}
	bad, _ := strconv.Atoi(m[1])
	dupes, _ := strconv.Atoi(m[2])
	ingested, _ := strconv.Atoi(m[3])
	rec := regexp.MustCompile(`recovered records=(\d+) snapshots=(\d+) .* ingested=(\d+)`).FindStringSubmatch(out)
	if rec == nil {
		t.Fatalf("no recovery line in:\n%s", out)
	}
	recIngested, _ := strconv.Atoi(rec[3])
	t.Logf("recovered ingested=%d, final ingested=%d dupes=%d bad=%d", recIngested, ingested, dupes, bad)
	if recIngested == 0 {
		t.Error("recovery replayed nothing — the kill landed before any commit, test is vacuous")
	}
	// Exactly-once across the crash: sent = ingested + dropped, with
	// dropped = 0 and zero duplicate acceptance.
	if ingested != total {
		t.Errorf("final ingested=%d, want exactly %d (client acked %d, dropped 0)", ingested, total, st.Acked)
	}
	if bad != 0 {
		t.Errorf("%d bad frames; clean reconnects should produce none", bad)
	}
	if !strings.Contains(out, fmt.Sprintf("queue_dropped=%d", 0)) {
		t.Errorf("expected a drop-free drain:\n%s", out)
	}
}
