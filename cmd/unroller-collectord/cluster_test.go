package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/unroller/unroller/internal/cluster"
	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/scenario"
)

// TestRunClusterServesAndDrains boots three cluster-mode daemons on
// ephemeral ports, streams a scenario through the cluster-routing
// client, and checks that every report is acknowledged exactly once
// across the fleet.
func TestRunClusterServesAndDrains(t *testing.T) {
	cfg := collectorsvc.ServerConfig{
		Shards:     2,
		QueueDepth: 1 << 14,
		Controller: dataplane.ControllerConfig{MaxEvents: 1024, DedupWindow: 8},
	}
	const seed = 42
	type inst struct {
		out  bytes.Buffer
		stop chan struct{}
		done chan error
	}
	nodes := make([]*inst, 3)
	var clusterAddrs []string
	var peers []string
	for i := range nodes {
		n := &inst{stop: make(chan struct{}), done: make(chan error, 1)}
		nodes[i] = n
		ncfg := cluster.NodeConfig{
			ID:            []string{"n1", "n2", "n3"}[i],
			ClusterListen: "127.0.0.1:0",
			IngestListen:  "127.0.0.1:0",
			Peers:         append([]string(nil), peers...),
			Seed:          seed,
			Server:        cfg,
		}
		ready := make(chan string, 3)
		go func() { n.done <- runCluster(&n.out, ncfg, nil, "127.0.0.1:0", n.stop, ready) }()
		<-ready // ingest
		clusterAddrs = append(clusterAddrs, <-ready)
		<-ready // admin
		peers = clusterAddrs[:1]
	}

	c, err := cluster.NewClient(cluster.ClientConfig{Seeds: clusterAddrs, ID: 9, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.RunStreamed("microloop", 7, 4, func(ev dataplane.LoopEvent, hop int) {
		c.Send(ev, hop)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Acked == 0 || st.Enqueued != st.Acked+st.Dropped || st.Dropped != 0 {
		t.Fatalf("client stats %+v", st)
	}

	var wg sync.WaitGroup
	for _, n := range nodes {
		close(n.stop)
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := <-n.done; err != nil {
				t.Errorf("node exited with %v", err)
			}
		}()
	}
	wg.Wait()
	for i, n := range nodes {
		text := n.out.String()
		for _, want := range []string{"node n", "cluster on", "admin on", "final:", "cluster: id="} {
			if !strings.Contains(text, want) {
				t.Errorf("node %d output missing %q:\n%s", i, want, text)
			}
		}
	}
}
