package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/scenario"
)

// TestRunServesAndDrains drives the daemon's run loop end to end: boot
// on ephemeral ports, stream a scenario into it, stop, and check the
// final accounting report.
func TestRunServesAndDrains(t *testing.T) {
	var out bytes.Buffer
	cfg := collectorsvc.ServerConfig{
		Shards:     2,
		QueueDepth: 1 << 14,
		Controller: dataplane.ControllerConfig{MaxEvents: 1024, DedupWindow: 8},
	}
	stop := make(chan struct{})
	ready := make(chan net.Addr, 2)
	done := make(chan error, 1)
	go func() { done <- run(&out, cfg, nil, "127.0.0.1:0", "127.0.0.1:0", stop, ready) }()
	addr := <-ready
	<-ready // admin

	c, err := collectorsvc.NewClient(collectorsvc.ClientConfig{Addr: addr.String(), ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.RunStreamed("microloop", 7, 4, func(ev dataplane.LoopEvent, hop int) {
		c.Send(ev, hop)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Acked == 0 || st.Dropped != 0 {
		t.Fatalf("client stats %+v", st)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"listening on", "admin on", "final:", "aggregate:", "shard 1:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "queue_dropped=0") {
		t.Errorf("expected a drop-free drain:\n%s", text)
	}
}

// TestRunRejectsBadListenAddrs: both listeners fail fast with a
// non-nil error instead of serving nothing.
func TestRunRejectsBadListenAddrs(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	close(stop)
	if err := run(&out, collectorsvc.ServerConfig{}, nil, "not-an-address", "", stop, nil); err == nil {
		t.Error("bad ingest address accepted")
	}
	if err := run(&out, collectorsvc.ServerConfig{}, nil, "127.0.0.1:0", "not-an-address", stop, nil); err == nil {
		t.Error("bad admin address accepted")
	}
}
