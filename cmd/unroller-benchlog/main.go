// Command unroller-benchlog turns raw `go test -bench` output into an
// append-only JSON performance log. CI's bench smoke pipes its output
// through this tool, so BENCH_collector.json accumulates one record per
// run: headline throughput in Mpps (derived from the benchmarks' own
// pkts/s and reports/s metrics) and allocation counts for the traffic
// engine and collector ingest paths. The log is checked in; a perf
// regression shows up as a diff, not a vanished number.
//
// Usage:
//
//	go test -run '^$' -bench 'TrafficEngine|CollectorIngest' . | unroller-benchlog -o BENCH_collector.json
//
// -gate NAME=PCT[,NAME=PCT...] turns the log into a regression gate:
// for each entry, the new run's Mpps for every benchmark prefixed NAME
// is compared against the most recent prior run that recorded it, and
// the exit status is 1 if the new number is more than PCT percent below
// the old one — or if the gated benchmark is missing from the new run
// entirely. The run is appended to the log either way, so the
// regression itself is recorded.
//
// Exit status: 0 on success, 1 if no selected benchmark appears in the
// input (a smoke run that silently benched nothing is a CI bug) or a
// -gate check fails, 2 on usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	Mpps        float64            `json:"mpps,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchRun is one invocation's record in the log.
type benchRun struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchLog is the whole checked-in file.
type benchLog struct {
	Runs []benchRun `json:"runs"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	fs := flag.NewFlagSet("unroller-benchlog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_collector.json", "log file to append the run to")
	match := fs.String("match", "BenchmarkTrafficEngine,BenchmarkCollectorIngest,BenchmarkClusterIngest",
		"comma-separated benchmark name prefixes to record")
	date := fs.String("date", "", "run date override (default: today, UTC)")
	gate := fs.String("gate", "",
		"comma-separated NAME=PCT entries: exit 1 if benchmark NAME's Mpps fell more than PCT% below its last logged run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	gates, err := parseGate(*gate)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-benchlog:", err)
		return 2
	}
	input := stdin
	if rest := fs.Args(); len(rest) == 1 {
		f, err := os.Open(rest[0])
		if err != nil {
			fmt.Fprintln(stderr, "unroller-benchlog:", err)
			return 2
		}
		defer f.Close()
		input = f
	} else if len(rest) > 1 {
		fmt.Fprintln(stderr, "unroller-benchlog: at most one input file")
		return 2
	}

	prefixes := strings.Split(*match, ",")
	results, err := parseBenchOutput(input, prefixes)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-benchlog:", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintf(stderr, "unroller-benchlog: no benchmark matching %q in input\n", *match)
		return 1
	}

	day := *date
	if day == "" {
		day = time.Now().UTC().Format("2006-01-02")
	}
	logDoc := benchLog{Runs: []benchRun{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &logDoc); err != nil {
			fmt.Fprintf(stderr, "unroller-benchlog: %s is not a benchlog file: %v\n", *out, err)
			return 2
		}
	}
	// Gate against the history as it stood BEFORE this run is appended,
	// but append regardless of the verdict: a regression should fail CI
	// and still leave its number in the log for the post-mortem diff.
	gateErrs := checkGate(logDoc.Runs, results, gates)
	logDoc.Runs = append(logDoc.Runs, benchRun{
		Date:       day,
		GoVersion:  runtime.Version(),
		Benchmarks: results,
	})
	enc, err := json.MarshalIndent(logDoc, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "unroller-benchlog:", err)
		return 2
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "unroller-benchlog:", err)
		return 2
	}
	if len(gateErrs) > 0 {
		for _, e := range gateErrs {
			fmt.Fprintln(stderr, "unroller-benchlog: gate:", e)
		}
		return 1
	}
	return 0
}

// gateSpec is one parsed NAME=PCT gate entry.
type gateSpec struct {
	name string
	pct  float64
}

// parseGate splits a -gate argument: a comma-separated list of NAME=PCT
// entries. An empty argument disables gating (nil).
func parseGate(s string) ([]gateSpec, error) {
	if s == "" {
		return nil, nil
	}
	var gates []gateSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, pctStr, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -gate entry %q: want NAME=PCT", entry)
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil || pct < 0 || pct >= 100 {
			return nil, fmt.Errorf("bad -gate entry %q: PCT must be a percentage in [0,100)", entry)
		}
		gates = append(gates, gateSpec{name: name, pct: pct})
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("bad -gate %q: no NAME=PCT entries", s)
	}
	return gates, nil
}

// checkGate compares the new run's Mpps against the most recent prior
// run for every benchmark prefixed by a gate's name. It returns one
// message per violation: a throughput drop beyond that gate's percent,
// or a previously logged gated benchmark missing from the new run.
func checkGate(prior []benchRun, results []benchResult, gates []gateSpec) []string {
	var errs []string
	for _, g := range gates {
		// Latest prior Mpps per gated benchmark name, scanning newest-first.
		last := map[string]float64{}
		for i := len(prior) - 1; i >= 0; i-- {
			for _, b := range prior[i].Benchmarks {
				if strings.HasPrefix(b.Name, g.name) && b.Mpps > 0 {
					if _, seen := last[b.Name]; !seen {
						last[b.Name] = b.Mpps
					}
				}
			}
		}
		now := map[string]float64{}
		for _, b := range results {
			if strings.HasPrefix(b.Name, g.name) {
				now[b.Name] = b.Mpps
			}
		}
		if len(now) == 0 {
			errs = append(errs, fmt.Sprintf("no benchmark matching %q in this run", g.name))
		}
		for name, old := range last {
			cur, ok := now[name]
			if !ok {
				errs = append(errs, fmt.Sprintf("%s: logged previously but missing from this run", name))
				continue
			}
			floor := old * (1 - g.pct/100)
			if cur < floor {
				errs = append(errs, fmt.Sprintf("%s: %.6f Mpps is %.1f%% below last logged %.6f (floor %.6f)",
					name, cur, 100*(1-cur/old), old, floor))
			}
		}
	}
	return errs
}

// parseBenchOutput extracts the selected benchmark lines from go test
// output. A benchmark line is
//
//	BenchmarkName[/sub][-procs]  N  <value unit>...
//
// where the value/unit pairs carry ns/op, B/op, allocs/op, and any
// custom ReportMetric units (pkts/s, reports/s, …).
func parseBenchOutput(r io.Reader, prefixes []string) ([]benchResult, error) {
	var results []benchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if !matchesAny(fields[0], prefixes) {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a PASS/ok line or column header, not a result
		}
		res := benchResult{
			Name:       trimProcSuffix(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("unroller-benchlog: bad value %q on line %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			case "pkts/s", "reports/s":
				// The headline rate, normalized to millions per second so
				// the log lines up with the paper's Mpps axis.
				res.Mpps = val / 1e6
				res.Metrics[unit] = val
			default:
				res.Metrics[unit] = val
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func matchesAny(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if p = strings.TrimSpace(p); p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker ("-8") so log
// entries compare across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
