package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/unroller/unroller
cpu: whatever
BenchmarkTrafficEngine/workers=1-8         	       3	 400000000 ns/op	  1280000 pkts/s	    2048 B/op	      12 allocs/op
BenchmarkTrafficEngine/workers=8-8         	      12	 100000000 ns/op	  5120000 pkts/s	    2048 B/op	      12 allocs/op
BenchmarkCollectorIngest-8                 	  250000	      4000 ns/op	  250000 reports/s	      96 B/op	       2 allocs/op
BenchmarkCollectorIngestJournaled-8        	  120000	      8000 ns/op	  125000 reports/s	     128 B/op	       3 allocs/op
BenchmarkHeaderCodec-8                     	 9000000	       130 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/unroller/unroller	12.3s
`

// TestParseBenchOutput covers selection, unit parsing, Mpps
// normalization, and the -procs suffix strip.
func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(strings.NewReader(sampleOutput),
		[]string{"BenchmarkTrafficEngine", "BenchmarkCollectorIngest"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 selected results (HeaderCodec excluded), got %d: %+v", len(results), results)
	}
	byName := map[string]benchResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	eng, ok := byName["BenchmarkTrafficEngine/workers=8"]
	if !ok {
		t.Fatalf("missing workers=8 entry (procs suffix not stripped?): %+v", results)
	}
	if eng.Mpps != 5.12 {
		t.Errorf("TrafficEngine Mpps = %v, want 5.12", eng.Mpps)
	}
	if eng.AllocsPerOp != 12 || eng.BytesPerOp != 2048 {
		t.Errorf("TrafficEngine allocs = %v B = %v", eng.AllocsPerOp, eng.BytesPerOp)
	}
	ing := byName["BenchmarkCollectorIngest"]
	if ing.Mpps != 0.25 || ing.NsPerOp != 4000 || ing.AllocsPerOp != 2 {
		t.Errorf("CollectorIngest parsed wrong: %+v", ing)
	}
	if _, leaked := byName["BenchmarkHeaderCodec"]; leaked {
		t.Error("unselected benchmark leaked into results")
	}
}

// TestAppendLog covers the end-to-end append path: a fresh file gets a
// runs array; a second invocation appends without losing the first.
func TestAppendLog(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "BENCH_collector.json")
	var errb bytes.Buffer
	args := []string{"-o", logFile, "-date", "2026-08-08"}
	if code := run(args, strings.NewReader(sampleOutput), &errb); code != 0 {
		t.Fatalf("first run exit %d: %s", code, errb.String())
	}
	if code := run(args, strings.NewReader(sampleOutput), &errb); code != 0 {
		t.Fatalf("second run exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchLog
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("log is not valid JSON: %v\n%s", err, data)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("want 2 runs after 2 appends, got %d", len(doc.Runs))
	}
	if doc.Runs[0].Date != "2026-08-08" || len(doc.Runs[0].Benchmarks) != 4 {
		t.Errorf("first run malformed: %+v", doc.Runs[0])
	}
}

// TestNoMatchExitsOne pins the smoke-run guard: bench output with none
// of the selected benchmarks is a failure, not an empty append.
func TestNoMatchExitsOne(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "log.json")
	var errb bytes.Buffer
	code := run([]string{"-o", logFile, "-match", "BenchmarkNoSuch"},
		strings.NewReader(sampleOutput), &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(logFile); !os.IsNotExist(err) {
		t.Error("log file written despite no matches")
	}
}

// TestGate covers the regression gate: a run within the tolerance
// passes, a run below it exits 1 but is still appended, and a gated
// benchmark that vanishes from the run is itself a failure.
func TestGate(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "log.json")
	var errb bytes.Buffer
	base := []string{"-o", logFile, "-date", "2026-08-08", "-gate", "BenchmarkCollectorIngest=20"}
	if code := run(base, strings.NewReader(sampleOutput), &errb); code != 0 {
		t.Fatalf("seed run exit %d: %s", code, errb.String())
	}
	// 250000 → 210000 reports/s is a 16% drop: inside the 20% tolerance.
	okOutput := strings.ReplaceAll(sampleOutput, "250000 reports/s", "210000 reports/s")
	if code := run(base, strings.NewReader(okOutput), &errb); code != 0 {
		t.Fatalf("within-tolerance run exit %d: %s", code, errb.String())
	}
	// 210000 → 100000 is a 52% drop: the gate must trip, and the run
	// must still land in the log.
	badOutput := strings.ReplaceAll(sampleOutput, "250000 reports/s", "100000 reports/s")
	errb.Reset()
	if code := run(base, strings.NewReader(badOutput), &errb); code != 1 {
		t.Fatalf("regressed run exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "gate:") {
		t.Errorf("no gate diagnostic on stderr: %s", errb.String())
	}
	data, err := os.ReadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchLog
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 3 {
		t.Fatalf("regressed run not appended: %d runs, want 3", len(doc.Runs))
	}
	// A run that drops the gated benchmark entirely must also fail, even
	// though other matched benchmarks keep the no-match guard quiet.
	noIngest := strings.NewReader(`BenchmarkTrafficEngine/workers=8-8  12  100000000 ns/op  5120000 pkts/s  2048 B/op  12 allocs/op`)
	errb.Reset()
	if code := run(base, noIngest, &errb); code != 1 {
		t.Fatalf("missing-benchmark run exit %d, want 1; stderr: %s", code, errb.String())
	}
}

// TestParseGate pins the NAME=PCT[,NAME=PCT...] syntax checks.
func TestParseGate(t *testing.T) {
	gates, err := parseGate("BenchmarkX=20")
	if err != nil || len(gates) != 1 || gates[0] != (gateSpec{name: "BenchmarkX", pct: 20}) {
		t.Errorf("parseGate(BenchmarkX=20) = %+v, %v", gates, err)
	}
	gates, err = parseGate("BenchmarkX=20, BenchmarkY=5,")
	if err != nil || len(gates) != 2 ||
		gates[0] != (gateSpec{name: "BenchmarkX", pct: 20}) ||
		gates[1] != (gateSpec{name: "BenchmarkY", pct: 5}) {
		t.Errorf("parseGate multi = %+v, %v", gates, err)
	}
	if gates, err := parseGate(""); err != nil || gates != nil {
		t.Errorf("empty -gate should disable gating, got %+v, %v", gates, err)
	}
	for _, bad := range []string{"NoEquals", "=20", "X=abc", "X=-5", "X=100", ",", "X=20,Bad"} {
		if _, err := parseGate(bad); err == nil {
			t.Errorf("parseGate(%q) accepted", bad)
		}
	}
}

// TestGateMultiple covers independent tolerances per gate entry: one
// benchmark regressing beyond its own tolerance trips the gate even
// when the other stays healthy.
func TestGateMultiple(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "log.json")
	var errb bytes.Buffer
	base := []string{"-o", logFile, "-date", "2026-08-08",
		"-gate", "BenchmarkCollectorIngest=20,BenchmarkTrafficEngine=20"}
	if code := run(base, strings.NewReader(sampleOutput), &errb); code != 0 {
		t.Fatalf("seed run exit %d: %s", code, errb.String())
	}
	// Ingest holds steady; traffic drops 52% — the second gate trips.
	badTraffic := strings.ReplaceAll(sampleOutput, "5120000 pkts/s", "2400000 pkts/s")
	errb.Reset()
	if code := run(base, strings.NewReader(badTraffic), &errb); code != 1 {
		t.Fatalf("regressed-traffic run exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "BenchmarkTrafficEngine") {
		t.Errorf("gate diagnostic does not name the regressed benchmark: %s", errb.String())
	}
}

// TestRejectsCorruptLog covers the refuse-to-clobber path: an existing
// file that is not a benchlog must not be overwritten.
func TestRejectsCorruptLog(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "log.json")
	if err := os.WriteFile(logFile, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var errb bytes.Buffer
	code := run([]string{"-o", logFile}, strings.NewReader(sampleOutput), &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	data, _ := os.ReadFile(logFile)
	if string(data) != "not json" {
		t.Error("corrupt log was clobbered")
	}
}
