// Command unroller-vet runs the repo's custom static-analysis suite
// (internal/analysis) over module packages. It is the machine-checked
// half of the repo's invariants: determinism of everything feeding
// reproducible output, allocation-freedom of per-hop code, explicit
// width masks in wire-format code, package-prefixed errors, the
// stdlib-only dependency posture, and the collector stack's concurrency
// and durability contracts (lockscope, deadline, commitorder,
// atomicfield).
//
// Usage:
//
//	unroller-vet [-list] [-json] [-module dir] [packages]
//
// Packages default to ./... (the whole module). Exit status: 0 clean,
// 1 findings, 2 usage or load failure. Findings print one per line as
//
//	path:line:col: analyzer: message
//
// with paths relative to the module root, stably sorted, so the output
// diffs cleanly in CI and is covered by a golden-file test. With -json,
// the same findings are emitted as a stable JSON document instead.
//
// The binary also speaks the go vet unitchecker protocol: when invoked
// by the go tool as
//
//	go vet -vettool=$(which unroller-vet) ./...
//
// it receives a single *.cfg argument per package unit (plus -V=full
// and -flags probes) and runs the suite with cross-package facts
// carried through .vetx files. See unitchecker.go.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/unroller/unroller/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic: flat, stable field
// order, module-relative slash paths — the contract `make vet-json`
// and the CI golden file pin.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unroller-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	moduleDir := fs.String("module", "", "module root (default: nearest go.mod above the working directory)")
	version := fs.String("V", "", "print version information (go vet tool protocol; -V=full)")
	flagsProbe := fs.Bool("flags", false, "describe flags as JSON (go vet tool protocol)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The go tool probes -V=full (for the build cache key) and -flags
	// (to learn which flags the tool accepts) before sending any units.
	if *version != "" {
		return printVersion(stdout)
	}
	if *flagsProbe {
		return printFlagDefs(stdout)
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// A single *.cfg argument means the go tool is driving us as a
	// vettool: one package unit per invocation, facts via .vetx files.
	if cfgArgs := fs.Args(); len(cfgArgs) == 1 && strings.HasSuffix(cfgArgs[0], ".cfg") {
		return runUnitchecker(cfgArgs[0], stderr)
	}
	root := *moduleDir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	suite := analysis.All()
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(stderr, "unroller-vet: %s does not type-check:\n", pkg.Path)
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "\t%v\n", terr)
			}
			return 2
		}
	}
	// Fact phase first, over every package the loader touched — the
	// requested set plus its dependencies — so cross-package contracts
	// (a field marked atomic in one package, touched plainly in
	// another) are visible when the requested packages run.
	facts := analysis.NewFacts()
	for _, pkg := range loader.Cached() {
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		if err := analysis.GenerateFacts(pkg, suite, facts); err != nil {
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
	}
	findings := []finding{}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzersWithFacts(pkg, suite, facts)
		if err != nil {
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
		for _, d := range diags {
			rel, rerr := filepath.Rel(root, d.Pos.Filename)
			if rerr != nil {
				rel = d.Pos.Filename
			}
			findings = append(findings, finding{
				File:     filepath.ToSlash(rel),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	if *jsonOut {
		enc, err := json.MarshalIndent(struct {
			Findings []finding `json:"findings"`
		}{findings}, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", enc)
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printVersion answers the go tool's -V=full probe. The output feeds
// the build cache key, so it must change whenever the binary does: we
// hash our own executable, the same scheme the standard vet tool uses.
func printVersion(stdout io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stdout, "unroller-vet version devel\n")
		return 0
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(stdout, "unroller-vet version devel\n")
		return 0
	}
	sum := sha256.Sum256(data)
	fmt.Fprintf(stdout, "unroller-vet version devel comments-go-here buildID=%02x\n", sum)
	return 0
}

// printFlagDefs answers the go tool's -flags probe: a JSON array of
// the flags the tool accepts on a unit invocation, so `go vet` can
// split its own command line into tool flags and package patterns.
// Unit runs take no tuning flags, so the list is empty.
func printFlagDefs(stdout io.Writer) int {
	fmt.Fprintln(stdout, "[]")
	return 0
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod, the way the go tool locates the main module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
