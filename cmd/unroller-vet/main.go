// Command unroller-vet runs the repo's custom static-analysis suite
// (internal/analysis) over module packages. It is the machine-checked
// half of the repo's invariants: determinism of everything feeding
// reproducible output, allocation-freedom of per-hop code, explicit
// width masks in wire-format code, package-prefixed errors, and the
// stdlib-only dependency posture.
//
// Usage:
//
//	unroller-vet [-list] [-module dir] [packages]
//
// Packages default to ./... (the whole module). Exit status: 0 clean,
// 1 findings, 2 usage or load failure. Findings print one per line as
//
//	path:line:col: analyzer: message
//
// with paths relative to the module root, stably sorted, so the output
// diffs cleanly in CI and is covered by a golden-file test.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/unroller/unroller/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unroller-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	moduleDir := fs.String("module", "", "module root (default: nearest go.mod above the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := *moduleDir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	suite := analysis.All()
	found := false
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(stderr, "unroller-vet: %s does not type-check:\n", pkg.Path)
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "\t%v\n", terr)
			}
			return 2
		}
		diags, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
		for _, d := range diags {
			rel, rerr := filepath.Rel(root, d.Pos.Filename)
			if rerr != nil {
				rel = d.Pos.Filename
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			found = true
		}
	}
	if found {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod, the way the go tool locates the main module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
