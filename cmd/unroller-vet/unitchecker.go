// Unitchecker mode: the go vet driver protocol, stdlib-only.
//
// `go vet -vettool=unroller-vet ./...` does not hand the tool package
// patterns. Instead the go tool plans the build, then invokes the tool
// once per package unit with a single JSON config file argument:
//
//	unroller-vet $WORK/b042/vet.cfg
//
// The config names the unit's source files, maps import paths to
// compiler export data (so the unit type-checks without loading any
// dependency source), and maps dependency import paths to .vetx fact
// files written by earlier invocations. The tool must always write its
// own .vetx output — the go tool caches and feeds it to dependents —
// and print diagnostics to stderr with a nonzero exit when it finds
// problems. Dependency-only units set VetxOnly and want facts, not
// diagnostics.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/unroller/unroller/internal/analysis"
)

// vetConfig mirrors the JSON the go tool writes for each unit. Fields
// the suite does not need (NonGoFiles, module version, …) are listed
// anyway so the decode is self-documenting; unknown fields are ignored.
type vetConfig struct {
	ID                        string            // package ID, e.g. "fmt" or "fmt [fmt.test]"
	Compiler                  string            // "gc" or "gccgo"
	Dir                       string            // package directory
	ImportPath                string            // import path of the unit
	GoVersion                 string            // minimum Go version, e.g. "go1.24"
	GoFiles                   []string          // absolute paths of Go sources
	NonGoFiles                []string          // .s, .c, … (unused)
	IgnoredFiles              []string          // build-tag-excluded files (unused)
	ModulePath                string            // module containing the package
	ModuleVersion             string            // (unused)
	ImportMap                 map[string]string // import path → canonical package ID
	PackageFile               map[string]string // package ID → export data file
	Standard                  map[string]bool   // package ID → is stdlib (unused)
	PackageVetx               map[string]string // package ID → dependency .vetx file
	VetxOnly                  bool              // facts only, no diagnostics
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool              // exit 0 on type errors (compiler reports them)
}

// runUnitchecker analyzes one package unit described by cfgPath.
// Diagnostics go to stderr (the go tool relays them); the exit code is
// 0 clean, 1 findings, 2 protocol or type-check failure.
func runUnitchecker(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "unroller-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	suite := analysis.All()

	// Import the facts every direct dependency exported. Transitive
	// facts arrive too: each unit re-exports everything it decoded, so
	// the closure accumulates along the import DAG.
	facts := analysis.NewFacts()
	depVetx := make([]string, 0, len(cfg.PackageVetx))
	for _, f := range cfg.PackageVetx {
		depVetx = append(depVetx, f)
	}
	sort.Strings(depVetx)
	for _, f := range depVetx {
		enc, err := os.ReadFile(f)
		if err != nil {
			// A dependency analyzed by an older binary may have no
			// vetx; its facts are simply unavailable.
			continue
		}
		if err := analysis.DecodeFactsInto(facts, enc); err != nil {
			fmt.Fprintf(stderr, "unroller-vet: decoding facts %s: %v\n", f, err)
			return 2
		}
	}

	// The suite analyzes production code only. Test units ("p [p.test]"
	// and "p_test [p.test]") share export data with their dependencies,
	// so they still type-check after the _test.go sources are dropped;
	// an external test unit drops to zero files and exports bare facts.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return writeVetx(cfg, facts, stderr)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, facts, stderr)
			}
			fmt.Fprintln(stderr, "unroller-vet:", err)
			return 2
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export-data importer: resolve the import path through ImportMap
	// to its canonical unit, then read that unit's export data file.
	// ("unsafe" is special-cased inside the importer itself.)
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	tconf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	tpkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, facts, stderr)
		}
		for _, terr := range typeErrs {
			fmt.Fprintln(stderr, "unroller-vet:", terr)
		}
		return 2
	}

	pkg := &analysis.Package{
		Path:       cfg.ImportPath,
		Dir:        cfg.Dir,
		ModulePath: cfg.ModulePath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	if err := analysis.GenerateFacts(pkg, suite, facts); err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	// Facts must be on disk before any diagnostic exit: dependents read
	// the .vetx even when this unit fails the check.
	if code := writeVetx(cfg, facts, stderr); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := analysis.RunAnalyzersWithFacts(pkg, suite, facts)
	if err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeVetx persists the accumulated fact table (dependency facts plus
// this unit's own) to the path the go tool expects. An empty table
// still writes a file: a missing .vetx would poison the cache entry.
func writeVetx(cfg vetConfig, facts *analysis.Facts, stderr io.Writer) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666); err != nil {
		fmt.Fprintln(stderr, "unroller-vet:", err)
		return 2
	}
	return 0
}
