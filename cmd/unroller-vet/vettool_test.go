package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestJSONGolden pins the -json output shape over the same fixture as
// the text golden: stable field order, sorted findings, trailing
// newline — so the CI step can diff it byte-for-byte.
func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./cmd/unroller-vet/testdata/src/stats"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	var doc struct {
		Findings []finding `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.Findings) == 0 {
		t.Fatal("-json reported no findings on the dirty fixture")
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("-json output differs from golden file\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestJSONCleanIsEmptyArray pins the clean-run shape: an empty findings
// array (never null), exit 0.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/xrand"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Errorf("clean -json run should emit an empty array:\n%s", out.String())
	}
}

// TestDriverCrossPackageFacts exercises the driver's whole-module fact
// phase: atomicuse's plain accesses are only visible through facts
// generated from its dependency atomicdef, which the loader pulls in
// implicitly.
func TestDriverCrossPackageFacts(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./internal/analysis/testdata/src/atomicuse"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), "atomicdef.Gauge.Raw"); got != 2 {
		t.Errorf("want 2 cross-package atomicfield findings, got %d:\n%s", got, out.String())
	}
}

// buildVettool compiles the command once per test binary and returns
// the executable path.
func buildVettool(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "unroller-vet")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return exe
}

// TestVettoolProtocol drives the built binary through the real go tool:
// `go vet -vettool=` must succeed on a clean package, fail with our
// diagnostics on a dirty one, and carry facts across package boundaries
// via .vetx files.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	exe := buildVettool(t)
	root := moduleRoot(t)

	vet := func(pattern string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+exe, pattern)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	if out, err := vet("./internal/xrand"); err != nil {
		t.Fatalf("go vet on clean package failed: %v\n%s", err, out)
	}

	out, err := vet("./cmd/unroller-vet/testdata/src/stats")
	if err == nil {
		t.Fatalf("go vet on dirty fixture succeeded; want failure\n%s", out)
	}
	for _, wantSub := range []string{"determinism", "errctx", "lacks the package prefix"} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("go vet output missing %q:\n%s", wantSub, out)
		}
	}

	// Cross-package facts through the unitchecker transport: atomicdef
	// is analyzed as a VetxOnly dependency unit, its facts land in a
	// .vetx file, and the atomicuse unit reads them back.
	out, err = vet("./internal/analysis/testdata/src/atomicuse")
	if err == nil {
		t.Fatalf("go vet on atomicuse succeeded; want cross-package findings\n%s", out)
	}
	if got := strings.Count(out, "atomicdef.Gauge.Raw"); got != 2 {
		t.Errorf("want 2 cross-package findings through vetx, got %d:\n%s", got, out)
	}
}

// TestVersionProbe pins the -V=full handshake the go tool uses for its
// build cache key.
func TestVersionProbe(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.HasPrefix(out.String(), "unroller-vet version ") {
		t.Errorf("-V=full output malformed: %q", out.String())
	}
}

// TestFlagsProbe pins the -flags handshake.
func TestFlagsProbe(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var defs []struct{ Name string }
	if err := json.Unmarshal(out.Bytes(), &defs); err != nil {
		t.Errorf("-flags output is not a JSON array: %v\n%s", err, out.String())
	}
}
