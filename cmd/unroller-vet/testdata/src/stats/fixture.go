// Package stats is the unroller-vet golden-file fixture: it type-checks
// cleanly but trips several analyzers at once, pinning the driver's
// output format (sorted, module-relative paths, one finding per line).
// The directory is named stats to land in the determinism scope.
package stats

import (
	"errors"
	"fmt"
	_ "math/rand"
	"time"
)

// ErrOops lacks its package prefix.
var ErrOops = errors.New("oops")

// Summarize mixes wall-clock reads and map iteration into its output.
func Summarize(counts map[string]int) (string, error) {
	total := 0
	for _, v := range counts {
		total += v
	}
	if total == 0 {
		return "", fmt.Errorf("no observations at %v", time.Now())
	}
	return fmt.Sprintf("%d observations", total), nil
}

// Noop carries an allow for a check that does not exist.
//
//unroller:allow frobnication -- unknown check name
func Noop() {}
