package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// TestGoldenOutput pins the driver's output format over a fixture that
// trips several analyzers at once: sorted module-relative paths, one
// `path:line:col: analyzer: message` finding per line, exit status 1.
func TestGoldenOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./cmd/unroller-vet/testdata/src/stats"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("output differs from golden file\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestCleanPackageExitsZero runs the suite over a package that must stay
// clean and checks the quiet path.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./internal/xrand"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestListFlag checks -list names every analyzer.
func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "hotpath", "wirewidth", "errctx", "nodeps", "directive"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestBadPatternExitsTwo checks load failures are usage errors, not
// findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unroller-vet:") {
		t.Errorf("stderr lacks the unroller-vet prefix:\n%s", errb.String())
	}
}

// TestBadFlagExitsTwo covers flag parse failures.
func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
