// Command unroller-topo regenerates Table 5 of the paper: Unroller
// versus PathDump and a packet-carried Bloom filter on real WAN and data
// center topologies, reporting the minimum per-packet bits each scheme
// needs to report no false positives across the run budget, and
// Unroller's average detection time.
//
// Usage:
//
//	unroller-topo [-time-runs 20000] [-minbits-runs 2000] [-seed 1] [-format text|csv|md]
//	unroller-topo -graphml path/to/Geant2012.graphml   # use a real Zoo file
//
// The built-in topologies are synthetic stand-ins matching the node
// count and diameter the paper reports for each network (the original
// Topology Zoo GraphML files are not redistributed); pass -graphml to
// run the same experiment on a real file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/experiments"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
)

func main() {
	var (
		timeRuns    = flag.Int("time-runs", 20000, "runs for the avg detection time column")
		minbitsRuns = flag.Int("minbits-runs", 2000, "runs per candidate in the zero-FP searches (paper: 3000000)")
		seed        = flag.Uint64("seed", 1, "experiment seed")
		format      = flag.String("format", "text", "output format: text, csv, or md")
		graphml     = flag.String("graphml", "", "run on a Topology Zoo GraphML file instead of the built-ins")
	)
	flag.Parse()

	if *graphml != "" {
		if err := runGraphML(*graphml, *timeRuns, *minbitsRuns, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "unroller-topo: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	tab, err := experiments.Table5(experiments.Table5Options{
		TimeRuns:    *timeRuns,
		MinBitsRuns: *minbitsRuns,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "unroller-topo: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "csv":
		fmt.Print(tab.CSV())
	case "md":
		fmt.Print(tab.Markdown())
	default:
		fmt.Print(tab.Text())
	}
	fmt.Fprintf(os.Stderr, "table 5 in %v\n", time.Since(start).Round(time.Millisecond))
}

// runGraphML runs the Table 5 measurements for one externally supplied
// topology.
func runGraphML(path string, timeRuns, minbitsRuns int, seed uint64) error {
	g, err := topology.LoadGraphML(path)
	if err != nil {
		return err
	}
	if !g.Connected() {
		return fmt.Errorf("%s is disconnected; Table 5 assumes a connected network", g.Name)
	}
	fmt.Printf("%s: %d nodes, %d links, diameter %d\n", g.Name, g.N(), g.M(), g.Diameter())

	det := core.MustNew(core.DefaultConfig())
	res, err := sim.TopoMonteCarlo(g, sim.Fixed(det), sim.MCConfig{Runs: timeRuns, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("unroller avg detection time: %.2f hops/X (B̄=%.1f, L̄=%.1f, %d runs)\n",
		res.Time.Mean(), res.AvgB, res.AvgL, timeRuns)

	unr, err := sim.MinUnrollerBits(g, core.DefaultConfig(), minbitsRuns, seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("unroller min header: %d bits (z=%d) with zero FPs over %d runs\n", unr.Bits, unr.Param, minbitsRuns)

	entries, err := sim.ExpectedEntries(g, 200, seed+2)
	if err != nil {
		return err
	}
	bloom, err := sim.MinBloomBits(g, entries, minbitsRuns, seed+3)
	if err != nil {
		return err
	}
	fmt.Printf("bloom min filter: %d bits with zero FPs over %d runs (%.1fx unroller)\n",
		bloom.Bits, minbitsRuns, float64(bloom.Bits)/float64(unr.Bits))
	return nil
}
