package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleZoo = `<?xml version="1.0" encoding="utf-8"?>
<graphml><graph edgedefault="undirected">
  <node id="a"/><node id="b"/><node id="c"/><node id="d"/><node id="e"/>
  <edge source="a" target="b"/><edge source="b" target="c"/>
  <edge source="c" target="d"/><edge source="d" target="a"/>
  <edge source="b" target="e"/><edge source="e" target="c"/>
</graph></graphml>`

// TestRunGraphML smoke-tests the external-topology path of the CLI on a
// small loop-rich graph: detection-time measurement and both zero-FP
// searches must complete.
func TestRunGraphML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MiniZoo.graphml")
	if err := os.WriteFile(path, []byte(sampleZoo), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runGraphML(path, 200, 150, 1); err != nil {
		t.Fatal(err)
	}
	if err := runGraphML(filepath.Join(dir, "missing.graphml"), 10, 10, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
