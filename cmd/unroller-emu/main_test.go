package main

import "testing"

// TestRunAllTopologiesAndPolicies smoke-tests the emulator CLI's core
// path across its whole flag matrix.
func TestRunAllTopologiesAndPolicies(t *testing.T) {
	for _, topo := range []string{"fattree4", "torus", "geant"} {
		for _, policy := range []string{"drop", "reroute", "collect"} {
			if err := run(topo, 3, policy, 2); err != nil {
				t.Errorf("run(%s, %s): %v", topo, policy, err)
			}
		}
	}
}

// TestRunRejectsBadInputs.
func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nonexistent", 1, "drop", 1); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("torus", 1, "explode", 1); err == nil {
		t.Error("unknown policy accepted")
	}
}
