package main

import "testing"

// TestRunAllTopologiesAndPolicies smoke-tests the emulator CLI's core
// path across its whole flag matrix.
func TestRunAllTopologiesAndPolicies(t *testing.T) {
	for _, topo := range []string{"fattree4", "torus", "geant"} {
		for _, policy := range []string{"drop", "reroute", "collect"} {
			if err := run(topo, 3, policy, 2, nil); err != nil {
				t.Errorf("run(%s, %s): %v", topo, policy, err)
			}
		}
	}
}

// TestRunRejectsBadInputs.
func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nonexistent", 1, "drop", 1, nil); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("torus", 1, "explode", 1, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestRunBulk smoke-tests the traffic-engine mode across topologies,
// policies, and worker counts.
func TestRunBulk(t *testing.T) {
	for _, topo := range []string{"fattree4", "torus", "geant"} {
		for _, policy := range []string{"drop", "reroute", "collect"} {
			if err := runBulk(topo, 3, policy, 40, 4, nil); err != nil {
				t.Errorf("runBulk(%s, %s): %v", topo, policy, err)
			}
		}
	}
	// Default worker count and a single-flow batch.
	if err := runBulk("torus", 9, "drop", 1, 0, nil); err != nil {
		t.Errorf("runBulk single flow: %v", err)
	}
}

// TestRunBulkRejectsBadInputs.
func TestRunBulkRejectsBadInputs(t *testing.T) {
	if err := runBulk("nonexistent", 1, "drop", 10, 2, nil); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := runBulk("torus", 1, "explode", 10, 2, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}
