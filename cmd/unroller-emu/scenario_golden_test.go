package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite scenario golden files from current output")

// TestScenarioGolden pins the full `-scenario` report — event log,
// per-epoch lines, disposition table, controller stats — byte-for-byte
// against testdata/<name>.golden at seed 7. Any drift in the fault
// schedule, traffic generation, detection math, admission policy, or
// rendering shows up as a golden diff. Regenerate deliberately with
// `go test ./cmd/unroller-emu -run TestScenarioGolden -update`.
func TestScenarioGolden(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := runScenario(&out, name, 7, 4, nil, true, "aesop"); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatalf("updating golden: %v", err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", golden, out.String(), want)
			}
		})
	}
}

// TestScenarioGoldenWorkerInvariant re-renders one golden scenario at a
// different worker count and requires the identical bytes — the CLI
// contract that -workers tunes speed, never results.
func TestScenarioGoldenWorkerInvariant(t *testing.T) {
	var w1, w16 bytes.Buffer
	if err := runScenario(&w1, "linkflap", 7, 1, nil, true, "aesop"); err != nil {
		t.Fatal(err)
	}
	if err := runScenario(&w16, "linkflap", 7, 16, nil, true, "aesop"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w16.Bytes()) {
		t.Errorf("workers 1 vs 16 diverged:\n--- 1 ---\n%s--- 16 ---\n%s", w1.String(), w16.String())
	}
}

// TestScenarioGoldenUpdateRoundTrip pins the determinism of the oracle
// report itself: two fresh runs of every scenario must render identical
// bytes, so a `-update` refresh followed by a second run round-trips the
// golden files byte-identically instead of churning them.
func TestScenarioGoldenUpdateRoundTrip(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var first, second bytes.Buffer
			if err := runScenario(&first, name, 7, 4, nil, true, "aesop"); err != nil {
				t.Fatal(err)
			}
			if err := runScenario(&second, name, 7, 4, nil, true, "aesop"); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("two runs of %s rendered different bytes:\n--- first ---\n%s--- second ---\n%s",
					name, first.String(), second.String())
			}
		})
	}
}

// TestScenarioList checks the help path names every scenario.
func TestScenarioList(t *testing.T) {
	var out bytes.Buffer
	if err := runScenario(&out, "list", 7, 1, nil, true, "aesop"); err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestScenarioUnknown checks the error path surfaces the options.
func TestScenarioUnknown(t *testing.T) {
	var out bytes.Buffer
	err := runScenario(&out, "bogus", 7, 1, nil, true, "aesop")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error should quote the bad name: %v", err)
	}
}
