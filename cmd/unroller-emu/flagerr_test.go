package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/scenario"
)

// TestMain lets this test binary impersonate the real unroller-emu:
// when re-executed with UNROLLER_EMU_RUN_MAIN=1 it runs main() instead
// of the test suite, which is how the flag-error tests observe real
// exit codes and stderr without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("UNROLLER_EMU_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// emuExec re-runs this binary as unroller-emu with args, returning
// stderr and the exit code.
func emuExec(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UNROLLER_EMU_RUN_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return stderr.String(), 0
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return stderr.String(), exit.ExitCode()
}

// TestUnknownScenarioExitsNonZero: a typo'd -scenario must fail with a
// non-zero exit and a stderr message listing every available scenario,
// so the operator can self-correct without reading source.
func TestUnknownScenarioExitsNonZero(t *testing.T) {
	stderr, code := emuExec(t, "-scenario", "no-such-scenario")
	if code == 0 {
		t.Fatalf("unknown scenario exited 0 (stderr %q)", stderr)
	}
	if !strings.Contains(stderr, "no-such-scenario") {
		t.Errorf("stderr does not echo the bad name: %q", stderr)
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr does not list available scenario %q: %q", name, stderr)
		}
	}
}

// TestBadCollectorAddressExitsNonZero: an unparsable -collector address
// must fail fast at startup, before any traffic runs.
func TestBadCollectorAddressExitsNonZero(t *testing.T) {
	stderr, code := emuExec(t, "-scenario", "microloop", "-collector", "not an address")
	if code == 0 {
		t.Fatalf("bad collector address exited 0 (stderr %q)", stderr)
	}
	if !strings.Contains(stderr, "not an address") {
		t.Errorf("stderr does not echo the bad address: %q", stderr)
	}
}

// TestScenarioHelpExitsZero: the catalogue path stays a success so
// scripts can probe it.
func TestScenarioHelpExitsZero(t *testing.T) {
	if stderr, code := emuExec(t, "-scenario", "help"); code != 0 {
		t.Fatalf("-scenario help exited %d (stderr %q)", code, stderr)
	}
}
