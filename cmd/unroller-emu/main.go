// Command unroller-emu runs the software data plane: it builds a
// topology, installs shortest-path forwarding, misconfigures a set of
// FIBs to create a routing loop, and injects packets — showing Unroller
// detecting the loop in-band, the controller report, and (optionally)
// the reroute-on-detect reaction versus the TTL-death counterfactual.
//
// Usage:
//
//	unroller-emu [-topo fattree4|torus|geant] [-seed 1] [-reroute] [-packets 5]
//
// Bulk mode drives the concurrent traffic engine instead of tracing
// individual packets: -flows N injects N random flows through a worker
// pool (-workers W) and prints aggregate dispositions, link load, and
// throughput:
//
//	unroller-emu -topo torus -flows 10000 -workers 8
//
// Scenario mode replays a named churn scenario — deterministic fault
// injection (link failures, staggered FIB updates, switch restarts, wire
// corruption) interleaved with traffic epochs — and prints its event log,
// disposition table, and controller stats. The output is a pure function
// of (scenario, seed): any worker count produces identical bytes.
//
//	unroller-emu -scenario microloop -seed 7
//	unroller-emu -scenario linkflap -seed 3 -workers 16
//
// Scenario runs carry the cross-plane verification oracle by default
// (-oracle=false disables it): at every quiesced epoch boundary a
// static Boufkhad-style verifier over the mirrored FIBs computes the
// exact looping (destination, start) pairs and reconciles them against
// the in-band detections — the report ends with per-epoch confusion
// matrices for Unroller and for the baseline detector selected with
// -baseline (default aesop, the Brent-style hop-limit-free scheme):
//
//	unroller-emu -scenario microloop -seed 7 -baseline aesop
//	unroller-emu -scenario restart -oracle=false
//
// Any mode can additionally stream its loop reports to a running
// unroller-collectord over the collectorsvc frame protocol; the sender
// reconnects with backoff and never blocks the data plane:
//
//	unroller-emu -scenario restart -collector 127.0.0.1:7777
//
// Giving -collector a comma-separated list of cluster addresses
// switches to cluster routing (internal/cluster): membership is
// resolved from the listed seeds, each report hashes to a flow
// partition owned by one node, and reports follow partitions when
// nodes join, die, or rejoin. -collector-seed must match the cluster's
// -seed for ring agreement:
//
//	unroller-emu -scenario restart -collector 10.0.0.1:7779,10.0.0.2:7779
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/unroller/unroller/internal/baseline"
	"github.com/unroller/unroller/internal/cluster"
	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/scenario"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

func main() {
	var (
		topo      = flag.String("topo", "torus", "topology: fattree4, torus, or geant")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		policy    = flag.String("policy", "drop", "loop reaction: drop, reroute, or collect (§3.5 membership recording)")
		packets   = flag.Int("packets", 5, "packets to inject (traced mode)")
		flows     = flag.Int("flows", 0, "bulk mode: inject this many random flows through the traffic engine")
		workers   = flag.Int("workers", 0, "bulk/scenario mode: worker goroutines (0 = GOMAXPROCS)")
		scen      = flag.String("scenario", "", "scenario mode: replay this named churn scenario (see -scenario help)")
		oracle    = flag.Bool("oracle", true, "scenario mode: reconcile detections against the static cross-plane verifier (confusion matrix per epoch)")
		baseName  = flag.String("baseline", "aesop", "scenario mode: baseline detector the oracle scores alongside unroller (aesop, int, or none)")
		collector = flag.String("collector", "", "stream loop reports to a collectord: one ingest host:port, or a comma-separated cluster seed list")
		ringSeed  = flag.Uint64("collector-seed", 0, "cluster mode: ring seed, must match the collectord nodes' -seed")
		heartbeat = flag.Duration("collector-heartbeat", collectorsvc.DefaultHeartbeatEvery, "keep-alive heartbeat interval on an idle collector session")
		stale     = flag.Duration("collector-stale", collectorsvc.DefaultStaleTimeout, "reconnect when the collector acks nothing for this long")
		flush     = flag.Duration("collector-flush", collectorsvc.DefaultFlushTimeout, "at exit, wait at most this long to drain pending reports")
	)
	flag.Parse()
	var hook dataplane.ReportHook
	var client *collectorsvc.Client
	var cclient *cluster.Client
	if targets := splitList(*collector); len(targets) == 1 {
		var err error
		client, err = collectorsvc.NewClient(collectorsvc.ClientConfig{
			Addr:           targets[0],
			Seed:           *seed,
			HeartbeatEvery: *heartbeat,
			StaleTimeout:   *stale,
			FlushTimeout:   *flush,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "unroller-emu: %v\n", err)
			os.Exit(1)
		}
		hook = client.Send
	} else if len(targets) > 1 {
		var err error
		cclient, err = cluster.NewClient(cluster.ClientConfig{
			Seeds:          targets,
			Seed:           *ringSeed,
			HeartbeatEvery: *heartbeat,
			StaleTimeout:   *stale,
			FlushTimeout:   *flush,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "unroller-emu: %v\n", err)
			os.Exit(1)
		}
		hook = cclient.Send
	}
	var err error
	switch {
	case *scen != "":
		err = runScenario(os.Stdout, *scen, *seed, *workers, hook, *oracle, *baseName)
	case *flows > 0:
		err = runBulk(*topo, *seed, *policy, *flows, *workers, hook)
	default:
		err = run(*topo, *seed, *policy, *packets, hook)
	}
	if client != nil {
		client.Close()
		st := client.Stats()
		fmt.Printf("collector %s: enqueued=%d acked=%d dropped=%d retransmits=%d connects=%d dial_failures=%d\n",
			*collector, st.Enqueued, st.Acked, st.Dropped, st.Retransmits, st.Connects, st.DialFailures)
	}
	if cclient != nil {
		cclient.Close()
		st := cclient.Stats()
		fmt.Printf("collector cluster %s: enqueued=%d acked=%d dropped=%d retransmits=%d resolves=%d rebinds=%d\n",
			*collector, st.Enqueued, st.Acked, st.Dropped, st.Retransmits, st.Resolves, st.Rebinds)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "unroller-emu: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated address list, dropping empty
// entries so a trailing comma is harmless.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runScenario replays a named churn scenario and renders its replayable
// summary; "help" (or "list") prints the catalogue. With oracle set the
// run carries the static cross-plane verifier, and baseName picks the
// baseline detector it scores alongside unroller ("" or "none" for
// none).
func runScenario(w io.Writer, name string, seed uint64, workers int, hook dataplane.ReportHook, oracle bool, baseName string) error {
	if name == "help" || name == "list" {
		fmt.Fprintf(w, "available scenarios: %s\n", strings.Join(scenario.Names(), ", "))
		return nil
	}
	opts := scenario.RunOpts{Workers: workers, Hook: hook, Oracle: oracle}
	if oracle && baseName != "" && baseName != "none" {
		det, ok := baseline.ByName(baseName)
		if !ok {
			return fmt.Errorf("unknown baseline %q (have %s, or none)", baseName, strings.Join(baseline.Names(), ", "))
		}
		opts.Baseline = det
	}
	res, err := scenario.RunWithOpts(name, seed, opts)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// buildTopo maps the -topo flag to a graph.
func buildTopo(topoName string) (*topology.Graph, error) {
	switch topoName {
	case "fattree4":
		return topology.FatTree(4)
	case "torus":
		return topology.Torus(5, 5)
	case "geant":
		return topology.Synthetic("GEANT", 40, 8)
	default:
		return nil, fmt.Errorf("unknown topology %q", topoName)
	}
}

// setPolicy maps the -policy flag onto the network.
func setPolicy(net *dataplane.Network, policy string) error {
	switch policy {
	case "drop":
		net.SetLoopPolicy(dataplane.ActionDrop)
	case "reroute":
		net.SetLoopPolicy(dataplane.ActionReroute)
	case "collect":
		net.SetLoopPolicy(dataplane.ActionCollect)
	default:
		return fmt.Errorf("unknown policy %q (drop, reroute, collect)", policy)
	}
	return nil
}

// sampleLoop draws a loop scenario the way the Table 5 experiment does,
// rejecting cycles through the destination itself (those deliver before
// they can loop, which makes for a dull demo).
func sampleLoop(g *topology.Graph, rng *xrand.Rand) (*sim.Scenario, error) {
	for {
		sc, err := sim.SampleScenario(g, rng)
		if err != nil {
			return nil, err
		}
		if !sc.Cycle.Contains(sc.Dst) {
			return sc, nil
		}
	}
}

func run(topoName string, seed uint64, policy string, packets int, hook dataplane.ReportHook) error {
	g, err := buildTopo(topoName)
	if err != nil {
		return err
	}
	rng := xrand.New(seed)
	assign := topology.NewAssignment(g, rng)
	fmt.Printf("topology %s: %d switches, %d links, diameter %d\n", g.Name, g.N(), g.M(), g.Diameter())

	net, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	if err != nil {
		return err
	}
	net.OnReport = hook

	sc, err := sampleLoop(g, rng)
	if err != nil {
		return err
	}
	if err := net.InstallShortestPaths(sc.Dst); err != nil {
		return err
	}
	if err := setPolicy(net, policy); err != nil {
		return err
	}
	if err := net.InjectLoop(sc.Dst, sc.Cycle); err != nil {
		return err
	}
	fmt.Printf("injected loop of %d switches at nodes %v (FIB misconfiguration for dst %v)\n",
		sc.Cycle.Len(), sc.Cycle, assign.ID(sc.Dst))

	// Send from the loop head so every packet is affected.
	src := sc.Cycle[0]
	for i := 0; i < packets; i++ {
		tr, err := net.Send(src, sc.Dst, uint32(i), 255, true)
		if err != nil {
			return err
		}
		describe(i, tr, assign)
	}

	fmt.Printf("\ncontroller received %d loop reports; top reporters:", net.Controller.Count())
	for _, id := range net.Controller.TopReporters() {
		fmt.Printf(" %v", id)
	}
	fmt.Println()
	for _, members := range net.Controller.Memberships() {
		fmt.Printf("collected loop membership (%d switches):", len(members))
		for _, id := range members {
			fmt.Printf(" %v", id)
		}
		fmt.Println()
	}

	// Counterfactual: the same loop without in-band telemetry.
	tr, err := net.Send(src, sc.Dst, 999, 255, false)
	if err != nil {
		return err
	}
	fmt.Printf("without telemetry: packet %s after %d hops (TTL exhausted in the loop)\n",
		tr.Final, len(tr.Hops))
	return nil
}

// runBulk drives the concurrent traffic engine: shortest paths for every
// destination, one injected loop, and a batch of random flows — a fifth
// of which are steered into the loop, and a fifth of which carry no
// telemetry so the aggregate output contrasts DropLoop with DropTTL.
func runBulk(topoName string, seed uint64, policy string, flows, workers int, hook dataplane.ReportHook) error {
	g, err := buildTopo(topoName)
	if err != nil {
		return err
	}
	rng := xrand.New(seed)
	assign := topology.NewAssignment(g, rng)
	net, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	if err != nil {
		return err
	}
	net.OnReport = hook
	for dst := 0; dst < g.N(); dst++ {
		if err := net.InstallShortestPaths(dst); err != nil {
			return err
		}
	}
	sc, err := sampleLoop(g, rng)
	if err != nil {
		return err
	}
	if err := setPolicy(net, policy); err != nil {
		return err
	}
	if err := net.InjectLoop(sc.Dst, sc.Cycle); err != nil {
		return err
	}

	fs := make([]dataplane.Flow, flows)
	for i := range fs {
		src, dst := g.RandomPair(rng)
		fs[i] = dataplane.Flow{Src: src, Dst: dst, ID: uint32(i), TTL: dataplane.InitialTTL, Telemetry: true}
		switch i % 5 {
		case 0:
			// Steer into the loop from its head.
			fs[i].Src, fs[i].Dst = sc.Cycle[0], sc.Dst
		case 4:
			// Blind traffic: looping packets die by TTL instead.
			fs[i].Telemetry = false
		}
	}

	eng := dataplane.NewTrafficEngine(net, workers)
	fmt.Printf("topology %s: %d switches, %d links; loop of %d switches for dst %v\n",
		g.Name, g.N(), g.M(), sc.Cycle.Len(), assign.ID(sc.Dst))
	fmt.Printf("injecting %d flows across %d workers\n", flows, eng.Workers())

	start := time.Now()
	sums, err := eng.SendMany(fs)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}

	var hops, reports uint64
	var finals [dataplane.NumDispositions]int
	for _, s := range sums {
		finals[s.Final]++
		hops += uint64(s.Hops)
		reports += uint64(s.Reports)
	}
	fmt.Printf("done in %v (%.0f flows/s, %d packet-hops, %.1f hops/flow)\n",
		elapsed.Round(time.Microsecond), float64(flows)/elapsed.Seconds(),
		net.TotalPacketHops(), float64(hops)/float64(flows))
	for d := dataplane.Disposition(0); int(d) < dataplane.NumDispositions; d++ {
		if finals[d] > 0 {
			fmt.Printf("  %-13s %d\n", d.String()+":", finals[d])
		}
	}
	fmt.Printf("controller received %d loop reports (%d carried in summaries)\n",
		net.Controller.Count(), reports)
	u, v, load := net.MaxLinkLoad()
	if load > 0 {
		fmt.Printf("hottest link (%d,%d) carried %d traversals\n", u, v, load)
	}
	return nil
}

func describe(i int, tr *dataplane.Trace, assign *topology.Assignment) {
	switch {
	case tr.Report != nil && tr.Rerouted && tr.Final == dataplane.Deliver:
		fmt.Printf("packet %d: loop reported by %v at hop %d, rerouted, delivered after %d hops\n",
			i, tr.Report.Reporter, tr.Report.Hops, len(tr.Hops))
	case tr.Report != nil:
		fmt.Printf("packet %d: loop reported by %v at hop %d → %s\n",
			i, tr.Report.Reporter, tr.Report.Hops, tr.Final)
	default:
		fmt.Printf("packet %d: %s after %d hops\n", i, tr.Final, len(tr.Hops))
	}
	_ = assign
}
