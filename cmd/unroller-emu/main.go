// Command unroller-emu runs the software data plane: it builds a
// topology, installs shortest-path forwarding, misconfigures a set of
// FIBs to create a routing loop, and injects packets — showing Unroller
// detecting the loop in-band, the controller report, and (optionally)
// the reroute-on-detect reaction versus the TTL-death counterfactual.
//
// Usage:
//
//	unroller-emu [-topo fattree4|torus|geant] [-seed 1] [-reroute] [-packets 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

func main() {
	var (
		topo    = flag.String("topo", "torus", "topology: fattree4, torus, or geant")
		seed    = flag.Uint64("seed", 1, "scenario seed")
		policy  = flag.String("policy", "drop", "loop reaction: drop, reroute, or collect (§3.5 membership recording)")
		packets = flag.Int("packets", 5, "packets to inject")
	)
	flag.Parse()
	if err := run(*topo, *seed, *policy, *packets); err != nil {
		fmt.Fprintf(os.Stderr, "unroller-emu: %v\n", err)
		os.Exit(1)
	}
}

func run(topoName string, seed uint64, policy string, packets int) error {
	var (
		g   *topology.Graph
		err error
	)
	switch topoName {
	case "fattree4":
		g, err = topology.FatTree(4)
	case "torus":
		g, err = topology.Torus(5, 5)
	case "geant":
		g, err = topology.Synthetic("GEANT", 40, 8)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	if err != nil {
		return err
	}
	rng := xrand.New(seed)
	assign := topology.NewAssignment(g, rng)
	fmt.Printf("topology %s: %d switches, %d links, diameter %d\n", g.Name, g.N(), g.M(), g.Diameter())

	net, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	if err != nil {
		return err
	}

	// Sample a loop scenario the way the Table 5 experiment does,
	// rejecting cycles through the destination itself (those deliver
	// before they can loop, which makes for a dull demo).
	var sc *sim.Scenario
	for {
		sc, err = sim.SampleScenario(g, rng)
		if err != nil {
			return err
		}
		if !sc.Cycle.Contains(sc.Dst) {
			break
		}
	}
	if err := net.InstallShortestPaths(sc.Dst); err != nil {
		return err
	}
	switch policy {
	case "drop":
		net.SetLoopPolicy(dataplane.ActionDrop)
	case "reroute":
		net.SetLoopPolicy(dataplane.ActionReroute)
	case "collect":
		net.SetLoopPolicy(dataplane.ActionCollect)
	default:
		return fmt.Errorf("unknown policy %q (drop, reroute, collect)", policy)
	}
	if err := net.InjectLoop(sc.Dst, sc.Cycle); err != nil {
		return err
	}
	fmt.Printf("injected loop of %d switches at nodes %v (FIB misconfiguration for dst %v)\n",
		sc.Cycle.Len(), sc.Cycle, assign.ID(sc.Dst))

	// Send from the loop head so every packet is affected.
	src := sc.Cycle[0]
	for i := 0; i < packets; i++ {
		tr, err := net.Send(src, sc.Dst, uint32(i), 255, true)
		if err != nil {
			return err
		}
		describe(i, tr, assign)
	}

	fmt.Printf("\ncontroller received %d loop reports; top reporters:", net.Controller.Count())
	for _, id := range net.Controller.TopReporters() {
		fmt.Printf(" %v", id)
	}
	fmt.Println()
	for _, members := range net.Controller.Memberships() {
		fmt.Printf("collected loop membership (%d switches):", len(members))
		for _, id := range members {
			fmt.Printf(" %v", id)
		}
		fmt.Println()
	}

	// Counterfactual: the same loop without in-band telemetry.
	tr, err := net.Send(src, sc.Dst, 999, 255, false)
	if err != nil {
		return err
	}
	fmt.Printf("without telemetry: packet %s after %d hops (TTL exhausted in the loop)\n",
		tr.Final, len(tr.Hops))
	return nil
}

func describe(i int, tr *dataplane.Trace, assign *topology.Assignment) {
	switch {
	case tr.Report != nil && tr.Rerouted && tr.Final == dataplane.Deliver:
		fmt.Printf("packet %d: loop reported by %v at hop %d, rerouted, delivered after %d hops\n",
			i, tr.Report.Reporter, tr.Report.Hops, len(tr.Hops))
	case tr.Report != nil:
		fmt.Printf("packet %d: loop reported by %v at hop %d → %s\n",
			i, tr.Report.Reporter, tr.Report.Hops, tr.Final)
	default:
		fmt.Printf("packet %d: %s after %d hops\n", i, tr.Final, len(tr.Hops))
	}
	_ = assign
}
