package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesTrace smoke-tests the offline pipeline end to end,
// including the trace file output.
func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.utrc")
	if err := run("torus", 4, 5, path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 5 {
		t.Fatalf("trace file only %d bytes", info.Size())
	}
}

// TestRunFatTreeNoFile covers the in-memory path and second topology.
func TestRunFatTreeNoFile(t *testing.T) {
	if err := run("fattree4", 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("bogus", 1, 1, ""); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
