// Command unroller-offline contrasts offline trace analysis — the
// pre-Unroller way of finding loops — with in-band detection, on the
// same emulated run. It injects loop traffic into a topology, records
// every switch observation to a trace file through the data plane's
// mirror tap, analyses the trace offline, and reports both answers along
// with what each one cost (records shipped to a collector vs header
// bits).
//
// Usage:
//
//	unroller-offline [-topo torus|fattree4] [-seed 1] [-packets 20] [-trace /tmp/run.utrc]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/trace"
	"github.com/unroller/unroller/internal/xrand"
)

func main() {
	var (
		topoName = flag.String("topo", "torus", "topology: torus or fattree4")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		packets  = flag.Int("packets", 20, "packets to inject")
		path     = flag.String("trace", "", "write the binary trace here (empty = in-memory only)")
	)
	flag.Parse()
	if err := run(*topoName, *seed, *packets, *path); err != nil {
		fmt.Fprintf(os.Stderr, "unroller-offline: %v\n", err)
		os.Exit(1)
	}
}

func run(topoName string, seed uint64, packets int, path string) error {
	var (
		g   *topology.Graph
		err error
	)
	switch topoName {
	case "torus":
		g, err = topology.Torus(5, 5)
	case "fattree4":
		g, err = topology.FatTree(4)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	if err != nil {
		return err
	}
	rng := xrand.New(seed)
	assign := topology.NewAssignment(g, rng)
	net, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	if err != nil {
		return err
	}
	net.SetLoopPolicy(dataplane.ActionDrop)

	var sc *sim.Scenario
	for {
		sc, err = sim.SampleScenario(g, rng)
		if err != nil {
			return err
		}
		if !sc.Cycle.Contains(sc.Dst) {
			break
		}
	}
	// Rebind the network to the scenario's identifier assignment.
	net, err = dataplane.NewNetwork(g, sc.Assign, core.DefaultConfig())
	if err != nil {
		return err
	}
	net.SetLoopPolicy(dataplane.ActionDrop)
	if err := net.InstallShortestPaths(sc.Dst); err != nil {
		return err
	}
	if err := net.InjectLoop(sc.Dst, sc.Cycle); err != nil {
		return err
	}
	fmt.Printf("%s: loop of %d switches injected at %v\n", g.Name, sc.Cycle.Len(), sc.Cycle)

	// Mirror every observation into the trace.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	var pktID uint64
	net.OnHop = func(node int, sw detect.SwitchID, p *dataplane.Packet) {
		if _, err := w.Append(node, sw, p.Flow, pktID); err != nil {
			panic(err)
		}
	}

	inBand := 0
	inBandHops := 0
	for i := 0; i < packets; i++ {
		pktID = uint64(i)
		tr, err := net.Send(sc.Cycle[0], sc.Dst, uint32(i%4), 255, true)
		if err != nil {
			return err
		}
		if tr.Report != nil {
			inBand++
			inBandHops += tr.Report.Hops
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if path != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}

	records, err := trace.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		return err
	}
	findings := trace.Analyze(records)
	sum := trace.Summarize(records, findings)
	fmt.Printf("\noffline : %s\n", sum)
	fmt.Printf("offline : collector ingested %d records (%d bytes) before answering\n",
		len(records), buf.Len())
	avgHops := 0
	if inBand > 0 {
		avgHops = inBandHops / inBand
	}
	fmt.Printf("in-band : %d/%d packets reported the loop themselves, avg %d hops,\n",
		inBand, packets, avgHops)
	fmt.Printf("          at %d header bits per packet and zero mirrored records\n",
		core.DefaultConfig().HeaderBits())
	if path != "" {
		fmt.Printf("\ntrace written to %s\n", path)
	}
	return nil
}
