#!/bin/sh
# ci.sh — the repository's full verification gate. Run from the module
# root. Every step must pass; the script stops at the first failure.
#
#   build         go build ./...
#   vet           go vet ./...
#   unroller-vet  the project's own analyzers (see internal/analysis):
#                 determinism, hotpath, wirewidth, errctx, nodeps,
#                 lockscope, deadline, commitorder, atomicfield,
#                 directive — exit 1 on findings, 2 on load errors.
#                 Run three ways: the module driver (text), the driver's
#                 -json mode checked against the stable empty shape, and
#                 as a `go vet -vettool=` unitchecker so the fact
#                 transport through .vetx files stays honest
#   race tests    go test -race ./...  (includes the concurrency
#                 regression tests in internal/core and
#                 internal/dataplane, and the churn/scenario suite —
#                 worker-invariance under fault injection runs under
#                 the race detector every time)
#   collector e2e a second, explicit race-enabled run of the collectord
#                 end-to-end suite (16 concurrent clients streaming a
#                 scenario through the framed TCP protocol, connection
#                 kills, exact aggregate accounting), including the
#                 seeded chaosnet gate (latency, fragmented writes,
#                 mid-frame resets — accounting must stay exact) and the
#                 in-package journal kill-recover property — the
#                 service gate
#   kill-recover  race-enabled run of the process-level crash test: a
#                 journaled collectord SIGKILLed mid-ingest, restarted
#                 on the same journal directory, final accounting shows
#                 every event ingested exactly once
#   cluster e2e   race-enabled run of the collectord cluster suite
#                 (internal/cluster): 3 journaled nodes under seeded
#                 SWIM membership, a node killed mid-churn plus an
#                 asymmetric partition, the killed node restarted on
#                 its journal and reconciled against the peers that
#                 took over its partitions — the cluster-wide
#                 exactly-once identity (sent = ingested + dropped,
#                 no double-counting) must hold exactly
#   oracle gate   the cross-plane verification oracle under -race:
#                 every named scenario at 1/4/16 workers, reconciling every
#                 Unroller detection against static FIB ground truth —
#                 zero unexplained false positives, zero missed loops
#                 in telemetry-carrying corruption-free epochs,
#                 confusion matrices identical at every worker count —
#                 plus the multi-seed property sweep (Theorem 1 bound
#                 on every confirmed detection, incremental FIB mirror
#                 ≡ from-scratch snapshot at every epoch)
#   fuzz smoke    5s of each bitpack fuzz target and 10s each of the
#                 packet wire-format, collector report-frame, journal
#                 segment, and static FIB verifier targets (`-fuzz
#                 Fuzz` would refuse to run because several targets
#                 match, so each is invoked by exact name)
#   bench smoke   one iteration of the traffic-engine and journal
#                 append benchmarks (proof those paths stay runnable)
#                 plus 2000-iteration collector-ingest (plain and
#                 journaled) and cluster-ingest runs that ARE
#                 measurements. The traffic-engine, collector-ingest,
#                 and cluster-ingest lines are appended to the
#                 checked-in BENCH_collector.json via
#                 cmd/unroller-benchlog, which fails the gate if a
#                 gated entry is missing or its Mpps regressed >20%
#                 against the last checked-in entry
set -eu

cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> unroller-vet ./... (module driver)"
go run ./cmd/unroller-vet ./...

echo "==> unroller-vet -json ./... (stable empty shape)"
vet_json="$(go run ./cmd/unroller-vet -json ./...)"
if [ "$vet_json" != "$(printf '{\n  "findings": []\n}')" ]; then
	echo "unroller-vet -json: findings or unstable shape:" >&2
	echo "$vet_json" >&2
	exit 1
fi

echo "==> go vet -vettool (unitchecker mode, facts via .vetx)"
vettool_dir="$(mktemp -d)"
trap 'rm -rf "$vettool_dir"' EXIT
go build -o "$vettool_dir/unroller-vet" ./cmd/unroller-vet
go vet -vettool="$vettool_dir/unroller-vet" ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> collector e2e under race (16 clients, kills, chaosnet, journal recovery, exact accounting)"
go test -race -run 'TestCollector|TestRecovery' -count 1 ./internal/collectorsvc

echo "==> collectord kill-recover under race (SIGKILL mid-ingest, exactly-once across restart)"
go test -race -run 'TestCollectordKillRecover' -count 1 ./cmd/unroller-collectord

echo "==> cluster e2e under race (3 nodes, node kill + asymmetric partition, reshard, exactly-once cluster-wide)"
go test -race -run 'TestCluster|TestAgents|TestAsymmetric|TestFullPartition' -count 1 ./internal/cluster

echo "==> oracle gate under race (every scenario x 1/4/16 workers + multi-seed property sweep)"
go test -race -run 'TestOracle' -count 1 ./internal/scenario

echo "==> fuzz smoke (internal/bitpack, 5s per target)"
go test -run '^$' -fuzz '^FuzzReader$' -fuzztime 5s ./internal/bitpack
go test -run '^$' -fuzz '^FuzzWriterRoundTrip$' -fuzztime 5s ./internal/bitpack

echo "==> fuzz smoke (internal/dataplane packet wire format, 10s)"
go test -run '^$' -fuzz '^FuzzPacket$' -fuzztime 10s ./internal/dataplane

echo "==> fuzz smoke (internal/collectorsvc report frames, 10s)"
go test -run '^$' -fuzz '^FuzzReportFrame$' -fuzztime 10s ./internal/collectorsvc

echo "==> fuzz smoke (internal/collectorsvc journal segments, 10s)"
go test -run '^$' -fuzz '^FuzzJournalSegment$' -fuzztime 10s ./internal/collectorsvc

echo "==> fuzz smoke (internal/verify static FIB classifier vs naive reference, 10s)"
go test -run '^$' -fuzz '^FuzzVerifyFIB$' -fuzztime 10s ./internal/verify

echo "==> bench smoke (traffic engine 1x + collector ingest 2000x, logged + gated)"
bench_out="$vettool_dir/bench.out"
go test -run '^$' -bench 'TrafficEngine|NetworkSend' -benchtime 1x . | tee "$bench_out"
# Collector ingest runs long enough to measure steady-state batching:
# at 1x the number is dial + warmup noise, and the regression gate
# below would compare garbage against garbage.
go test -run '^$' -bench 'CollectorIngest|ClusterIngest' -benchtime 2000x . | tee -a "$bench_out"
go test -run '^$' -bench 'JournalAppend' -benchtime 1x ./internal/collectorsvc
# benchlog exits 1 if the run lacks a gated entry or its Mpps fell
# >20% below the last checked-in BENCH_collector.json entry.
go run ./cmd/unroller-benchlog -gate 'BenchmarkCollectorIngest=20,BenchmarkClusterIngest=20' -o BENCH_collector.json "$bench_out"

echo "==> ci.sh: all gates passed"
