// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark drives the same code path as the
// corresponding cmd/ tool but scales the run count with b.N, and reports
// the experiment's headline quantity as a custom metric:
//
//   - detection-time figures report "hops/X" (the paper's y-axis);
//   - false-positive figures report "fp/run";
//   - Table 4 reports ns/op for the full per-packet pipeline plus "Mpps";
//   - Table 5 reports "hops/X" per topology and "bits" for the
//     zero-false-positive header search.
//
// Run them all with: go test -bench=. -benchmem
package unroller_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/baseline"
	"github.com/unroller/unroller/internal/cluster"
	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/netsim"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// benchDetection drives b.N simulated packets with the given shape and
// reports mean hops/X.
func benchDetection(b *testing.B, cfg core.Config, B, L int) {
	b.Helper()
	det := core.MustNew(cfg)
	rng := xrand.New(0xBE7C4)
	var totalRatio float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := sim.RandomWalk(B, L, rng)
		out := sim.Run(det, w, 40*w.X()+64)
		if !out.Detected {
			b.Fatalf("undetected loop at B=%d L=%d", B, L)
		}
		totalRatio += float64(out.Hops) / float64(w.X())
	}
	b.ReportMetric(totalRatio/float64(b.N), "hops/X")
}

// BenchmarkFigure2DetectionVsB — Figure 2: detection time for phase
// bases b ∈ {2, 4, 6} at B = 5 and representative loop lengths.
func BenchmarkFigure2DetectionVsB(b *testing.B) {
	for _, base := range []int{2, 4, 6} {
		for _, L := range []int{5, 20, 30} {
			b.Run(fmt.Sprintf("b=%d/L=%d", base, L), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Base = base
				benchDetection(b, cfg, 5, L)
			})
		}
	}
}

// BenchmarkFigure3DetectionVsPrefix — Figure 3: detection time for
// pre-loop lengths B ∈ {0, 3, 7} at b = 4.
func BenchmarkFigure3DetectionVsPrefix(b *testing.B) {
	for _, B := range []int{0, 3, 7} {
		for _, L := range []int{5, 20, 30} {
			b.Run(fmt.Sprintf("B=%d/L=%d", B, L), func(b *testing.B) {
				benchDetection(b, core.DefaultConfig(), B, L)
			})
		}
	}
}

// BenchmarkFigure4ChunksHashes — Figure 4: (c, H) ∈ {(1,1), (2,2),
// (4,4)} at b = 4, B = 5.
func BenchmarkFigure4ChunksHashes(b *testing.B) {
	for _, ch := range []int{1, 2, 4} {
		for _, L := range []int{10, 25} {
			b.Run(fmt.Sprintf("c=H=%d/L=%d", ch, L), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Chunks, cfg.Hashes = ch, ch
				cfg.HashIDs = ch > 1
				benchDetection(b, cfg, 5, L)
			})
		}
	}
}

// BenchmarkFigure5aVaryingChunks — Figure 5a: c sweep at H ∈ {1, 4}.
func BenchmarkFigure5aVaryingChunks(b *testing.B) {
	for _, c := range []int{1, 2, 4, 8} {
		for _, h := range []int{1, 4} {
			b.Run(fmt.Sprintf("c=%d/H=%d", c, h), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Chunks, cfg.Hashes, cfg.HashIDs = c, h, true
				benchDetection(b, cfg, 5, 20)
			})
		}
	}
}

// BenchmarkFigure5bVaryingHashes — Figure 5b: H sweep at c ∈ {1, 4}.
func BenchmarkFigure5bVaryingHashes(b *testing.B) {
	for _, h := range []int{1, 2, 4, 10} {
		for _, c := range []int{1, 4} {
			b.Run(fmt.Sprintf("H=%d/c=%d", h, c), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Chunks, cfg.Hashes, cfg.HashIDs = c, h, true
				benchDetection(b, cfg, 5, 20)
			})
		}
	}
}

// benchFalsePositive drives b.N loop-free 20-hop paths and reports the
// empirical false-positive rate.
func benchFalsePositive(b *testing.B, cfg core.Config) {
	b.Helper()
	det := core.MustNew(cfg)
	rng := xrand.New(0xFA15E)
	fps := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := sim.RandomWalk(20, 0, rng)
		if sim.Run(det, w, 20).Detected {
			fps++
		}
	}
	b.ReportMetric(float64(fps)/float64(b.N), "fp/run")
}

// BenchmarkFigure6aFalsePositives — Figure 6a: FP rate vs z for slot
// counts (c, H) ∈ {(1,1), (4,4)}.
func BenchmarkFigure6aFalsePositives(b *testing.B) {
	for _, z := range []uint{6, 10, 14} {
		for _, ch := range []int{1, 4} {
			b.Run(fmt.Sprintf("z=%d/c=H=%d", z, ch), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.ZBits, cfg.Chunks, cfg.Hashes, cfg.HashIDs = z, ch, ch, true
				benchFalsePositive(b, cfg)
			})
		}
	}
}

// BenchmarkFigure6bThreshold — Figure 6b: FP rate vs z for Th ∈ {1, 2, 4}.
func BenchmarkFigure6bThreshold(b *testing.B) {
	for _, z := range []uint{6, 10} {
		for _, th := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("z=%d/Th=%d", z, th), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.ZBits, cfg.Threshold, cfg.HashIDs = z, th, true
				benchFalsePositive(b, cfg)
			})
		}
	}
}

// BenchmarkFigure7ThresholdCost — Figure 7: detection-time cost of the
// counting technique, Th ∈ {1, 2, 4} at z = 32.
func BenchmarkFigure7ThresholdCost(b *testing.B) {
	for _, th := range []int{1, 2, 4} {
		for _, L := range []int{10, 25} {
			b.Run(fmt.Sprintf("Th=%d/L=%d", th, L), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Threshold = th
				benchDetection(b, cfg, 5, L)
			})
		}
	}
}

// BenchmarkTable4Pipeline — Table 4 substitute: the full per-packet
// switch pipeline (parse → Unroller control block → deparse → FIB) for
// the representative configurations; ns/op is the per-packet cost, and
// the Mpps metric is the single-core software counterpart of the paper's
// ≈190–225 Mpps hardware rates.
func BenchmarkTable4Pipeline(b *testing.B) {
	configs := map[string]core.Config{
		"z32-single": core.DefaultConfig(),
		"z16-hashed": func() core.Config {
			c := core.DefaultConfig()
			c.ZBits, c.HashIDs = 16, true
			return c
		}(),
		"c2H2-z16": func() core.Config {
			c := core.DefaultConfig()
			c.Chunks, c.Hashes, c.ZBits, c.HashIDs = 2, 2, 16, true
			return c
		}(),
		"z7-Th4": func() core.Config {
			c := core.DefaultConfig()
			c.ZBits, c.Threshold, c.HashIDs = 7, 4, true
			return c
		}(),
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			g, err := topology.Ring(16)
			if err != nil {
				b.Fatal(err)
			}
			assign := topology.NewAssignment(g, xrand.New(1))
			n, err := dataplane.NewNetwork(g, assign, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := n.InstallShortestPaths(8); err != nil {
				b.Fatal(err)
			}
			tel, err := n.Unroller().NewPacketState().AppendHeader(nil)
			if err != nil {
				b.Fatal(err)
			}
			pkt := dataplane.Packet{
				TTL: 255, Flow: 1,
				Src: assign.ID(0), Dst: assign.ID(8),
				Telemetry: tel, Payload: make([]byte, 46),
			}
			wire, err := pkt.Marshal()
			if err != nil {
				b.Fatal(err)
			}
			sw := n.Switch(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var p dataplane.Packet
				if err := p.Unmarshal(wire); err != nil {
					b.Fatal(err)
				}
				if _, err := sw.Process(&p); err != nil {
					b.Fatal(err)
				}
			}
			nsPerPkt := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(1e3/nsPerPkt, "Mpps")
		})
	}
}

// BenchmarkTable5Topologies — Table 5: per-topology detection time
// (hops/X metric) on sampled loop scenarios, plus a one-off header-bits
// search reported via the "bits" metric on the first iteration batch.
func BenchmarkTable5Topologies(b *testing.B) {
	for _, spec := range topology.TableFiveSpecs() {
		b.Run(spec.Name, func(b *testing.B) {
			g, err := topology.ZooGraph(spec)
			if err != nil {
				b.Fatal(err)
			}
			det := core.MustNew(core.DefaultConfig())
			rng := xrand.New(0x7AB1E5)
			var totalRatio float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc, err := sim.SampleScenario(g, rng)
				if err != nil {
					b.Fatal(err)
				}
				w := sc.Walk()
				out := sim.Run(det, w, 40*w.X()+64)
				if !out.Detected {
					b.Fatalf("%s: loop missed", spec.Name)
				}
				totalRatio += float64(out.Hops) / float64(w.X())
			}
			b.ReportMetric(totalRatio/float64(b.N), "hops/X")
		})
	}
}

// BenchmarkTable5MinBits — the zero-false-positive header search behind
// Table 5's bit columns (Unroller z-search vs Bloom m-search), on the
// smallest topology so the benchmark stays affordable.
func BenchmarkTable5MinBits(b *testing.B) {
	spec := topology.TableFiveSpecs()[0] // Stanford
	g, err := topology.ZooGraph(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unroller-z-search", func(b *testing.B) {
		var bits int
		for i := 0; i < b.N; i++ {
			res, err := sim.MinUnrollerBits(g, core.DefaultConfig(), 200, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			bits = res.Bits
		}
		b.ReportMetric(float64(bits), "bits")
	})
	b.Run("bloom-m-search", func(b *testing.B) {
		entries, err := sim.ExpectedEntries(g, 100, 1)
		if err != nil {
			b.Fatal(err)
		}
		var bits int
		for i := 0; i < b.N; i++ {
			res, err := sim.MinBloomBits(g, entries, 200, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			bits = res.Bits
		}
		b.ReportMetric(float64(bits), "bits")
	})
}

// BenchmarkAblationSchedule — DESIGN.md ablation: analysis vs hardware
// phase schedule at b = 4 (the hardware schedule trades detection speed
// for a bitwise boundary check).
func BenchmarkAblationSchedule(b *testing.B) {
	for _, k := range []core.ScheduleKind{core.ScheduleAnalysis, core.ScheduleHardware} {
		b.Run(k.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Schedule = k
			benchDetection(b, cfg, 5, 20)
		})
	}
}

// BenchmarkAblationFractionalBase — DESIGN.md ablation: integer bases
// versus the lookup-table fractional optimum b = (5+√17)/2 ≈ 4.56 (the
// §3 "optimize the ratio further" remark). The fractional base trades a
// slightly slower average case for the best worst-case guarantee.
func BenchmarkAblationFractionalBase(b *testing.B) {
	configs := map[string]core.Config{
		"b=3-int": func() core.Config {
			c := core.DefaultConfig()
			c.Base = 3
			return c
		}(),
		"b=4-int": core.DefaultConfig(),
		"b=4.56-lookup": func() core.Config {
			c := core.DefaultConfig()
			c.Schedule = core.ScheduleLookup
			c.PhaseTable = core.FractionalPhaseTable(core.OptimalWorstCaseBase(), 32)
			return c
		}(),
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			benchDetection(b, cfg, 5, 20)
		})
	}
}

// BenchmarkAblationTTLHopCount — DESIGN.md ablation: footnote 3's
// TTL-derived hop counter removes 8 header bits; this measures its cost
// in pipeline time (an extra subtraction, so ~none).
func BenchmarkAblationTTLHopCount(b *testing.B) {
	for name, ttl := range map[string]bool{"explicit-xcnt": false, "ttl-derived": true} {
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.TTLHopCount = ttl
			g, err := topology.Ring(16)
			if err != nil {
				b.Fatal(err)
			}
			assign := topology.NewAssignment(g, xrand.New(1))
			n, err := dataplane.NewNetwork(g, assign, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := n.InstallShortestPaths(8); err != nil {
				b.Fatal(err)
			}
			tel, err := n.Unroller().NewPacketState().AppendHeader(nil)
			if err != nil {
				b.Fatal(err)
			}
			pkt := dataplane.Packet{
				TTL: dataplane.InitialTTL - 1, Flow: 1,
				Src: assign.ID(0), Dst: assign.ID(8),
				Telemetry: tel, Payload: make([]byte, 46),
			}
			wire, err := pkt.Marshal()
			if err != nil {
				b.Fatal(err)
			}
			sw := n.Switch(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var p dataplane.Packet
				if err := p.Unmarshal(wire); err != nil {
					b.Fatal(err)
				}
				if _, err := sw.Process(&p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.HeaderBits()), "hdr-bits")
		})
	}
}

// BenchmarkAblationBaselines — the same workload across every real-time
// detector, to compare detection speed at equal footing (Table 1's
// real-time rows).
func BenchmarkAblationBaselines(b *testing.B) {
	bloom, err := baseline.NewBloom(608, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	for name, det := range map[string]detect.Detector{
		"unroller-b4": core.MustNew(core.DefaultConfig()),
		"bloom-608b":  bloom,
		"int-full":    baseline.INT{},
	} {
		b.Run(name, func(b *testing.B) {
			rng := xrand.New(0xAB1A7E)
			var totalRatio float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := sim.RandomWalk(5, 20, rng)
				out := sim.Run(det, w, 40*w.X()+64)
				if !out.Detected {
					b.Fatal("missed loop")
				}
				totalRatio += float64(out.Hops) / float64(w.X())
			}
			b.ReportMetric(totalRatio/float64(b.N), "hops/X")
		})
	}
}

// BenchmarkLoopCollateral — the event-driven simulation behind
// examples/loop-collateral: a background flow shares one link with a
// loop; the metric is the background flow's mean latency (ms) with and
// without in-band detection. The intro's bandwidth-amplification claim
// as a benchmark.
func BenchmarkLoopCollateral(b *testing.B) {
	for name, telemetry := range map[string]bool{"blind": false, "unroller": true} {
		b.Run(name, func(b *testing.B) {
			var lastLatency float64
			for i := 0; i < b.N; i++ {
				g := topology.NewGraph("collateral", 6)
				for j := 0; j < 6; j++ {
					g.AddNode("")
				}
				for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 4}, {2, 4}, {3, 5}} {
					if err := g.AddEdge(e[0], e[1]); err != nil {
						b.Fatal(err)
					}
				}
				net, err := dataplane.NewNetwork(g, topology.NewAssignment(g, xrand.New(7)), core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				for _, dst := range []int{3, 5} {
					if err := net.InstallShortestPaths(dst); err != nil {
						b.Fatal(err)
					}
				}
				net.SetLoopPolicy(dataplane.ActionDrop)
				if err := net.InjectLoop(5, topology.Cycle{1, 2, 4}); err != nil {
					b.Fatal(err)
				}
				params := netsim.DefaultLinkParams()
				params.BandwidthBps = 100e6
				params.QueuePackets = 32
				s, err := netsim.New(net, params)
				if err != nil {
					b.Fatal(err)
				}
				const horizon = 0.1
				if err := s.AddFlow(netsim.Flow{ID: 1, Src: 0, Dst: 3, PacketBytes: 984, Interval: 1e-3, Telemetry: telemetry}, horizon); err != nil {
					b.Fatal(err)
				}
				if err := s.AddFlow(netsim.Flow{ID: 2, Src: 0, Dst: 5, PacketBytes: 984, Interval: 2e-3, Telemetry: telemetry}, horizon); err != nil {
					b.Fatal(err)
				}
				s.Run(horizon)
				fs, _ := s.FlowStats(1)
				lastLatency = fs.Latency.Mean() * 1e3
			}
			b.ReportMetric(lastLatency, "bg-ms")
		})
	}
}

// BenchmarkNetworkSend — the emulator's full per-packet journey (edge
// injection → per-hop marshal/parse/pipeline → delivery) on a 16-ring,
// reporting ns/hop and allocs/hop. The hop loop ping-pongs two scratch
// buffers instead of allocating a frame and a Packet per hop, so
// allocs/hop must stay well below the seed's ~3.
func BenchmarkNetworkSend(b *testing.B) {
	g, err := topology.Ring(16)
	if err != nil {
		b.Fatal(err)
	}
	assign := topology.NewAssignment(g, xrand.New(1))
	n, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := n.InstallShortestPaths(8); err != nil {
		b.Fatal(err)
	}
	tr, err := n.Send(0, 8, 0, 255, true)
	if err != nil {
		b.Fatal(err)
	}
	if tr.Final != dataplane.Deliver {
		b.Fatalf("warm-up packet %v", tr.Final)
	}
	hops := len(tr.Hops)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.SendFlow(dataplane.Flow{Src: 0, Dst: 8, ID: uint32(i), TTL: 255, Telemetry: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hops), "ns/hop")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(uint64(b.N)*uint64(hops)), "allocs/hop")
}

// BenchmarkTrafficEngine — the concurrent traffic engine pushing a
// batch of flows across many destinations on a 5×5 torus, swept over
// worker counts; pkts/s is the headline and should scale with workers
// until the memory bus saturates.
func BenchmarkTrafficEngine(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g, err := topology.Torus(5, 5)
			if err != nil {
				b.Fatal(err)
			}
			assign := topology.NewAssignment(g, xrand.New(1))
			n, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			for dst := 0; dst < g.N(); dst++ {
				if err := n.InstallShortestPaths(dst); err != nil {
					b.Fatal(err)
				}
			}
			rng := xrand.New(0xF10)
			flows := make([]dataplane.Flow, 512)
			for i := range flows {
				src, dst := g.RandomPair(rng)
				flows[i] = dataplane.Flow{Src: src, Dst: dst, ID: uint32(i), TTL: 255, Telemetry: true}
			}
			eng := dataplane.NewTrafficEngine(n, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SendMany(flows); err != nil {
					b.Fatal(err)
				}
			}
			pktsPerOp := float64(len(flows))
			b.ReportMetric(pktsPerOp*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkHeaderCodec — the wire codec alone (encode+decode), the
// marginal cost Unroller adds to a software switch's parser.
func BenchmarkHeaderCodec(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Chunks, cfg.Hashes, cfg.ZBits, cfg.HashIDs = 2, 2, 16, true
	u := core.MustNew(cfg)
	st := u.NewPacketState()
	st.Visit(1)
	st.Visit(2)
	buf, err := st.AppendHeader(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := u.DecodeHeader(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.AppendHeader(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorIngest — the collector service end to end over
// loopback: a client streaming loop reports through the framed TCP
// protocol into a sharded collectord, timed from first enqueue to the
// last acknowledgement. reports/s is the headline (the rate one switch
// connection can sustain); ns/op and allocs/op are per report.
func BenchmarkCollectorIngest(b *testing.B)          { benchCollectorIngest(b, false) }
func BenchmarkCollectorIngestJournaled(b *testing.B) { benchCollectorIngest(b, true) }

func benchCollectorIngest(b *testing.B, journaled bool) {
	cfg := collectorsvc.ServerConfig{
		Shards:     4,
		QueueDepth: 1 << 14,
		Controller: dataplane.ControllerConfig{MaxEvents: 1024, DedupWindow: 8},
	}
	var srv *collectorsvc.Server
	if journaled {
		// The journaled variant pays the write-ahead commit before every
		// ack (default fsync-interval policy): the delta against the
		// plain benchmark is the full durability overhead.
		j, err := collectorsvc.OpenJournal(collectorsvc.JournalConfig{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		cfg.Journal = j
		srv, _, err = collectorsvc.NewRecoveredServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		srv = collectorsvc.NewServer(cfg)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown()
	const buffer = 1 << 14
	c, err := collectorsvc.NewClient(collectorsvc.ClientConfig{
		Addr:   addr.String(),
		ID:     1,
		Buffer: buffer,
		Window: 1 << 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ev := dataplane.LoopEvent{
		Report:  detect.Report{Reporter: 0xBEEF, Hops: 12},
		Node:    3,
		Members: []detect.SwitchID{1, 2, 3, 4},
	}
	drained := func(st collectorsvc.ClientStats) bool { return st.Acked+st.Dropped == st.Enqueued }
	// The wait loops sleep instead of spinning on runtime.Gosched():
	// on GOMAXPROCS=1 a Gosched spin starves the netpoller (goroutines
	// unblocked by socket readiness are only injected by sysmon every
	// ~10ms), which would measure the scheduler's starvation floor
	// instead of the ingest pipeline.
	wait := func() { time.Sleep(20 * time.Microsecond) }
	// Warm up the connection so the timed region measures streaming, not
	// the dial.
	c.Send(ev, 12)
	for !drained(c.Stats()) {
		wait()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pace the producer to the pipe: the sender never blocks, so an
		// unpaced loop would just overflow the buffer and measure drops.
		for c.Pending() >= buffer-1 {
			wait()
		}
		ev.Flow = uint32(i)
		c.Send(ev, 12)
	}
	for !drained(c.Stats()) {
		wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
	if st := c.Stats(); st.Dropped != 0 {
		b.Fatalf("paced run still dropped %d reports (stats %+v)", st.Dropped, st)
	}
}

// BenchmarkClusterIngest — the collectord cluster end to end over
// loopback: three nodes joined by the membership layer, a
// cluster-routing client hashing each report to its partition's owner.
// reports/s is the headline; the delta against BenchmarkCollectorIngest
// is the cost of partition routing spread over three ingest servers.
func BenchmarkClusterIngest(b *testing.B) {
	const seed = 42
	var peers []string
	nodes := make([]*cluster.Node, 3)
	for i := range nodes {
		n, err := cluster.StartNode(cluster.NodeConfig{
			ID:    fmt.Sprintf("n%d", i+1),
			Peers: append([]string(nil), peers...),
			Seed:  seed,
			Server: collectorsvc.ServerConfig{
				Shards:     2,
				QueueDepth: 1 << 14,
				Controller: dataplane.ControllerConfig{MaxEvents: 1024, DedupWindow: 8},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Stop()
		nodes[i] = n
		peers = []string{nodes[0].ClusterAddr()}
	}
	seeds := []string{nodes[0].ClusterAddr(), nodes[1].ClusterAddr(), nodes[2].ClusterAddr()}
	const buffer = 1 << 14
	c, err := cluster.NewClient(cluster.ClientConfig{
		Seeds:  seeds,
		ID:     1,
		Seed:   seed,
		Buffer: buffer,
		Window: 1 << 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ev := dataplane.LoopEvent{
		Report:  detect.Report{Reporter: 0xBEEF, Hops: 12},
		Node:    3,
		Members: []detect.SwitchID{1, 2, 3, 4},
	}
	drained := func(st cluster.ClientStats) bool { return st.Acked+st.Dropped == st.Enqueued }
	// Sleep, not Gosched, for the same netpoller-starvation reason as
	// benchCollectorIngest.
	wait := func() { time.Sleep(20 * time.Microsecond) }
	c.Send(ev, 12)
	for !drained(c.Stats()) {
		wait()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The buffer bound is per partition sender; pacing on the summed
		// backlog keeps every sender inside its own buffer.
		for c.Pending() >= buffer-1 {
			wait()
		}
		ev.Flow = uint32(i)
		c.Send(ev, 12)
	}
	for !drained(c.Stats()) {
		wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
	if st := c.Stats(); st.Dropped != 0 {
		b.Fatalf("paced run still dropped %d reports (stats %+v)", st.Dropped, st)
	}
}

// BenchmarkMonteCarloEngine — raw simulator throughput (walks/s), the
// number that determines how long a 3M-run paper-budget experiment takes.
func BenchmarkMonteCarloEngine(b *testing.B) {
	det := core.MustNew(core.DefaultConfig())
	rng := xrand.New(0x5EED)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := sim.RandomWalk(5, 20, rng)
		if !sim.Run(det, w, 2048).Detected {
			b.Fatal("missed")
		}
	}
}
