package unroller_test

import (
	"testing"

	unroller "github.com/unroller/unroller"
)

// TestFacadeQuickstart exercises the documented quick-start flow through
// the public API only.
func TestFacadeQuickstart(t *testing.T) {
	det, err := unroller.New(unroller.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := unroller.RandomWalk(5, 12, 1)
	out := unroller.Simulate(det, w, unroller.WorstCaseBound(4, 5, 12)+1)
	if !out.Detected {
		t.Fatal("quickstart walk not detected")
	}
	if out.Hops < w.X() {
		t.Fatalf("detected at %d before X=%d", out.Hops, w.X())
	}
}

// TestFacadeMonteCarlo: the aggregate entry point.
func TestFacadeMonteCarlo(t *testing.T) {
	det := unroller.MustNew(unroller.DefaultConfig())
	res := unroller.MonteCarlo(det, 5, 20, unroller.MCConfig{Runs: 2000, Seed: 7})
	if m := res.Time.Mean(); m < 1 || m > 3 {
		t.Fatalf("mean %v implausible", m)
	}
}

// TestFacadeNetwork: build and route an emulated fat tree via the facade.
func TestFacadeNetwork(t *testing.T) {
	g, err := unroller.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	assign := unroller.NewAssignment(g, 3)
	n, err := unroller.NewNetwork(g, assign, unroller.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(0); err != nil {
		t.Fatal(err)
	}
	tr, err := n.Send(19, 0, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Report != nil {
		t.Fatal("clean fabric reported a loop")
	}
}

// TestFacadeBaselines: baselines drive through the same generic entry
// point.
func TestFacadeBaselines(t *testing.T) {
	bloom, err := unroller.NewBloom(256, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var det unroller.AnyDetector = bloom
	out := unroller.Simulate(det, unroller.RandomWalk(3, 8, 2), 100)
	if !out.Detected {
		t.Fatal("bloom missed")
	}
}
