package unroller_test

import (
	"fmt"

	unroller "github.com/unroller/unroller"
)

// Example demonstrates the whole quick-start flow: configure, simulate
// a packet into a loop, and read the report.
func Example() {
	det := unroller.MustNew(unroller.DefaultConfig())
	walk := unroller.RandomWalk(5, 12, 42) // B=5 pre-loop hops, L=12 loop switches
	out := unroller.Simulate(det, walk, 1000)
	fmt.Printf("detected=%v within bound=%v header=%d bits\n",
		out.Detected,
		out.Hops <= unroller.WorstCaseBound(4, 5, 12),
		det.BitOverhead(0))
	// Output:
	// detected=true within bound=true header=40 bits
}

// ExampleConfig_HeaderBits shows the §3.3 compression arithmetic: the
// paper's z=7, Th=4 example needs just 17 bits of header.
func ExampleConfig_HeaderBits() {
	cfg := unroller.DefaultConfig()
	fmt.Println("default:", cfg.HeaderBits())
	cfg.ZBits, cfg.Threshold, cfg.HashIDs = 7, 4, true
	fmt.Println("z=7,Th=4:", cfg.HeaderBits())
	cfg.TTLHopCount = true
	fmt.Println("with TTL-derived counter:", cfg.HeaderBits())
	// Output:
	// default: 40
	// z=7,Th=4: 17
	// with TTL-derived counter: 9
}

// ExampleMonteCarlo reproduces one data point of the paper's Figure 2:
// the average detection time at b=4, B=5, L=20 sits near 2×X.
func ExampleMonteCarlo() {
	det := unroller.MustNew(unroller.DefaultConfig())
	res := unroller.MonteCarlo(det, 5, 20, unroller.MCConfig{Runs: 50000, Seed: 1})
	fmt.Printf("mean in (1.8, 2.3): %v; misses: %d\n",
		res.Time.Mean() > 1.8 && res.Time.Mean() < 2.3, res.Timeouts)
	// Output:
	// mean in (1.8, 2.3): true; misses: 0
}

// ExampleNewNetwork walks the emulator path: build a fat tree, break
// its forwarding, and watch a switch report the loop on a live packet.
func ExampleNewNetwork() {
	g, _ := unroller.FatTree(4)
	assign := unroller.NewAssignment(g, 7)
	net, _ := unroller.NewNetwork(g, assign, unroller.DefaultConfig())
	net.SetLoopPolicy(unroller.ActionDrop)

	dst := 19
	_ = net.InstallShortestPaths(dst)
	// Two aggregation switches point at each other through an edge
	// switch: a 2-loop via FIB misconfiguration.
	_ = net.InjectLoop(dst, unroller.Cycle{0, 8})

	tr, _ := net.Send(0, dst, 1, 255, true)
	fmt.Printf("outcome=%v reported=%v rerouted=%v\n",
		tr.Final, tr.Report != nil, tr.Rerouted)
	// Output:
	// outcome=drop-loop reported=true rerouted=false
}
