package core

import "github.com/unroller/unroller/internal/detect"

// This file makes the Appendix A lower-bound argument executable. The
// adversary of Lemmas 6–7 picks the walk shape (B, L) and the placement
// of the minimal identifier as a function of the algorithm's reset
// schedule; replaying those constructions against the real detector
// yields an empirical worst-case curve that must sit between the
// Theorem 5 floor (3.73·X) and the Theorem 1 ceiling (4.67·X for b=4).

// AdversarialCase is one worst-case construction.
type AdversarialCase struct {
	// B and L are the walk shape.
	B, L int
	// MinAt places the globally minimal identifier: a 0-based hop
	// index into the combined prefix+loop node sequence.
	MinAt int
	// Name describes which lemma's construction this is.
	Name string
}

// AdversarialCases generates the Appendix A constructions for an
// algorithm whose reset hops follow cfg's schedule, scaled by y (the
// lemmas' free parameter; larger y probes longer horizons).
func AdversarialCases(cfg Config, y int) []AdversarialCase {
	if y < 2 {
		y = 2
	}
	var cases []AdversarialCase
	// Lemma 6: B = y+1, L = 2, minimal identifier on the last hop
	// before the loop. The algorithm stores the pre-loop minimum and
	// must burn a whole reset interval before it can see a loop ID.
	cases = append(cases, AdversarialCase{
		B: y + 1, L: 2, MinAt: y, Name: "lemma6-min-before-loop",
	})
	// Lemma 7, case β<1: B = 0, L = ⌊2y/3⌋+1, minimum at the end of
	// the loop.
	l := 2*y/3 + 1
	cases = append(cases, AdversarialCase{
		B: 0, L: l, MinAt: l - 1, Name: "lemma7-beta-small",
	})
	// Lemma 7, case 1≤β<2: B = 0, L = y+1, minimum at the loop end.
	cases = append(cases, AdversarialCase{
		B: 0, L: y + 1, MinAt: y, Name: "lemma7-beta-mid",
	})
	// Lemma 7, case β≥2: L = ⌈βy/2⌉+1 with the minimum at the y'th
	// loop hop; for the geometric schedules β = b.
	bl := (cfg.Base*y+1)/2 + 1
	if y < bl {
		cases = append(cases, AdversarialCase{
			B: 0, L: bl, MinAt: y, Name: "lemma7-beta-large",
		})
	}
	return cases
}

// PlayAdversarialCase builds the case's walk with the minimal identifier
// at the designated hop and all other identifiers decreasing with
// distance from it (so no accidental smaller minimum appears earlier),
// runs the detector, and returns the detection hop and the ratio to
// X = B+L. Detection is guaranteed (the inputs use raw identifiers), so
// the budget is Theorem 1 plus slack.
func PlayAdversarialCase(u *Unroller, c AdversarialCase) (hops int, ratio float64) {
	n := c.B + c.L
	ids := make([]detect.SwitchID, n)
	// The hop at MinAt gets the global minimum (1); everyone else gets
	// distinct larger values, increasing with index so that prefix
	// minima never shadow the planted one.
	next := detect.SwitchID(2)
	for i := range ids {
		if i == c.MinAt {
			ids[i] = 1
			continue
		}
		ids[i] = next
		next += 3
	}
	st := u.NewPacketState()
	budget := WorstCaseBound(u.cfg.Base, c.B, c.L) + 8
	for h := 1; h <= budget; h++ {
		var id detect.SwitchID
		if h-1 < c.B {
			id = ids[h-1]
		} else {
			id = ids[c.B+(h-1-c.B)%c.L]
		}
		if st.Visit(id) == detect.Loop {
			return h, float64(h) / float64(n)
		}
	}
	return 0, 0
}

// EmpiricalWorstCase replays every adversarial construction across a
// range of scales and returns the worst detection ratio observed — the
// executable form of "our approach is not far from optimal": the result
// must exceed the Theorem 5 floor and respect the Theorem 1 ceiling.
func EmpiricalWorstCase(cfg Config, maxScale int) (worst float64, at AdversarialCase) {
	u := MustNew(cfg)
	for y := 2; y <= maxScale; y++ {
		for _, c := range AdversarialCases(cfg, y) {
			if _, ratio := PlayAdversarialCase(u, c); ratio > worst {
				worst = ratio
				at = c
			}
		}
	}
	return worst, at
}
