package core

import (
	"math"
	"testing"
)

// TestWorstCaseFactorHeadline checks the paper's headline constants:
// 4.67·X for b = 4 and the general 2 + 2b/(b−1) form.
func TestWorstCaseFactorHeadline(t *testing.T) {
	if f := WorstCaseFactor(4); math.Abs(f-14.0/3.0) > 1e-12 {
		t.Errorf("b=4 factor %.4f, want 4.6667", f)
	}
	if f := WorstCaseFactor(2); f != 6 {
		t.Errorf("b=2 factor %.4f, want 6", f)
	}
	if f := WorstCaseFactor(6); f != 6 {
		t.Errorf("b=6 factor %.4f, want 6 (prefix-dominated)", f)
	}
	// b = 4 minimises the factor over integer bases — the reason the
	// paper picks it for the worst case.
	for b := 2; b <= 10; b++ {
		if WorstCaseFactor(b) < WorstCaseFactor(4)-1e-9 {
			t.Errorf("b=%d factor %.4f beats b=4", b, WorstCaseFactor(b))
		}
	}
	// The closed-form bound must stay under factor·X + O(1) across a
	// wide sweep.
	for _, b := range []int{2, 3, 4, 6, 8} {
		f := WorstCaseFactor(b)
		for B := 0; B <= 50; B += 5 {
			for L := 1; L <= 80; L += 7 {
				bound := WorstCaseBound(b, B, L)
				if float64(bound) > f*float64(B+L)+float64(b)+3 {
					t.Fatalf("b=%d B=%d L=%d: bound %d exceeds %.2f·X+O(1)", b, B, L, bound, f)
				}
			}
		}
	}
}

// TestBoundMonotonicity: the bound grows in both B and L.
func TestBoundMonotonicity(t *testing.T) {
	for b := 2; b <= 6; b++ {
		for B := 0; B < 20; B++ {
			for L := 1; L < 20; L++ {
				if WorstCaseBound(b, B+1, L) < WorstCaseBound(b, B, L) {
					t.Fatalf("bound not monotone in B at b=%d B=%d L=%d", b, B, L)
				}
				if WorstCaseBound(b, B, L+1) < WorstCaseBound(b, B, L) {
					t.Fatalf("bound not monotone in L at b=%d B=%d L=%d", b, B, L)
				}
			}
		}
	}
}

// TestChunksBeatSingle: the Appendix B bound with c chunks is never worse
// than the single-slot bound in its B-dominated regime, and the paper's
// c=2, b=7 example lands at ≈4.33·X.
func TestChunksBeatSingle(t *testing.T) {
	for B := 0; B <= 40; B += 4 {
		for L := 1; L <= 40; L += 4 {
			single := WorstCaseBound(7, B, L)
			chunked := WorstCaseBoundChunks(7, 2, B, L)
			if chunked > single+2 { // +2 absorbs the 2L vs 2L−1 constant
				t.Fatalf("B=%d L=%d: chunked bound %d worse than single %d", B, L, chunked, single)
			}
		}
	}
	// Worst-case factor for c=2, b=7: grows towards max of the two terms
	// over X; check at large L, B=0 and large B, L small.
	L := 10000
	f1 := float64(WorstCaseBoundChunks(7, 2, 0, L)) / float64(L)
	if math.Abs(f1-(2+14.0/6.0)) > 0.01 { // 2L + 2bL/(b−1) over X=L
		t.Errorf("c=2,b=7 L-dominated factor %.3f", f1)
	}
	B := 10000
	f2 := float64(WorstCaseBoundChunks(7, 2, B, 1)) / float64(B+1)
	if math.Abs(f2-4.0) > 0.01 { // B + 6B/2 = 4B over X≈B
		t.Errorf("c=2,b=7 B-dominated factor %.3f, want 4", f2)
	}
	// The paper's stated 4.33·X worst case is the max of both regimes.
	if f := math.Max(f1, f2); math.Abs(f-4.34) > 0.02 {
		t.Errorf("c=2,b=7 overall factor %.3f, paper says ≈4.33", f)
	}
}

// TestLowerBoundFactor pins 2+√3 ≈ 3.73 and its relation to the upper
// bound: the algorithm is within 4.67/3.73 ≈ 1.25 of optimal.
func TestLowerBoundFactor(t *testing.T) {
	if f := LowerBoundFactor(); math.Abs(f-3.7320508) > 1e-6 {
		t.Errorf("lower bound factor %.6f", f)
	}
	if WorstCaseFactor(4) < LowerBoundFactor() {
		t.Error("upper bound cannot beat the lower bound")
	}
}

// TestAverageCaseFactorFormula: b=3 yields 3, and 3 is optimal among
// small bases — the reason the paper recommends b=3 for the average case.
func TestAverageCaseFactorFormula(t *testing.T) {
	if f := AverageCaseFactor(3); math.Abs(f-3.0) > 0.01 {
		t.Errorf("b=3 average factor %.4f, want 3", f)
	}
	best := AverageCaseFactor(3)
	for _, b := range []int{2, 4, 5, 6, 8} {
		if AverageCaseFactor(b) < best-1e-9 {
			t.Errorf("b=%d average factor %.4f beats b=3's %.4f", b, AverageCaseFactor(b), best)
		}
	}
}

// TestFalsePositiveBoundExample reproduces the §3.3 numeric example: a
// 20-hop path with Th=4, z=7 has FP probability below 10⁻⁵.
func TestFalsePositiveBoundExample(t *testing.T) {
	// The union bound C(20,4)·(1/2⁷)⁴ ≈ 1.8·10⁻⁵ is slightly looser
	// than the paper's stated 10⁻⁵ (which the empirical Figure 6b
	// experiment confirms); require the same order of magnitude here
	// and leave the sharp check to the simulation tests.
	p := FalsePositiveBound(20, 7, 1, 4)
	if p >= 2e-5 {
		t.Errorf("paper example: FP bound %.2e, want ≈ 1e-5", p)
	}
	if p == 0 {
		t.Error("bound should be positive")
	}
	// Sanity directions.
	if FalsePositiveBound(20, 8, 1, 4) >= p {
		t.Error("FP bound should shrink with z")
	}
	if FalsePositiveBound(20, 7, 1, 5) >= p {
		t.Error("FP bound should shrink with Th")
	}
	if FalsePositiveBound(20, 7, 2, 4) <= p {
		t.Error("FP bound should grow with slot count")
	}
	if FalsePositiveBound(3, 7, 1, 4) != 0 {
		t.Error("paths shorter than Th cannot false-positive")
	}
}

// TestDetectionLowerBound covers the trivial floor.
func TestDetectionLowerBound(t *testing.T) {
	if DetectionLowerBound(5, 20) != 25 {
		t.Error("X = B+L")
	}
	if DetectionLowerBound(5, 0) != 0 {
		t.Error("no loop, no detection")
	}
}

// TestBinom spot-checks the helper.
func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {20, 4, 4845}, {10, 0, 1}, {10, 10, 1}, {4, 5, 0}, {4, -1, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
