package core

import (
	"sync"
	"testing"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// TestConcurrentDetectorSharedAcrossGoroutines pins the concurrency
// contract documented on Unroller: one immutable detector shared by many
// goroutines, each packet carrying its own State. Run under -race (the
// CI gate does) this catches any write sneaking into the shared detector
// — e.g. a cache added to Config or the hash family — and any shared
// state between packets.
func TestConcurrentDetectorSharedAcrossGoroutines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chunks = 2
	cfg.Hashes = 2
	cfg.ZBits = 16
	cfg.Threshold = 2
	cfg.Seed = 42
	u := MustNew(cfg)

	const (
		goroutines = 8
		packets    = 50
		maxHops    = 4096
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := xrand.New(uint64(worker) + 1)
			for p := 0; p < packets; p++ {
				// A fresh walk per packet: B pre-loop switches then an
				// L-switch loop of distinct identifiers.
				B := rng.Intn(10)
				L := 2 + rng.Intn(8)
				ids := rng.DistinctUint32(B + L)

				st := u.NewPacketState()
				detected := false
				hops := 0
				for _, id := range ids[:B] {
					hops++
					if st.Visit(detect.SwitchID(id)) == detect.Loop {
						detected = true
						break
					}
				}
				for !detected && hops < maxHops {
					for _, id := range ids[B:] {
						hops++
						if st.Visit(detect.SwitchID(id)) == detect.Loop {
							detected = true
							break
						}
					}
				}
				if !detected {
					t.Errorf("worker %d packet %d: no detection within %d hops (B=%d L=%d)", worker, p, maxHops, B, L)
					return
				}

				// Wire round-trip through the shared detector: encode on
				// this goroutine, decode on the same shared Unroller, and
				// keep visiting — the detector itself must stay read-only
				// throughout.
				st2 := u.NewPacketState()
				for _, id := range ids[:B] {
					st2.Visit(detect.SwitchID(id))
				}
				buf, err := st2.AppendHeader(nil)
				if err != nil {
					t.Errorf("worker %d: encode: %v", worker, err)
					return
				}
				st3, err := u.DecodeHeader(buf)
				if err != nil {
					t.Errorf("worker %d: decode: %v", worker, err)
					return
				}
				if st3.Hops() != st2.Hops() {
					t.Errorf("worker %d: round-trip hops = %d, want %d", worker, st3.Hops(), st2.Hops())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
