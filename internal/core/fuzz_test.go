package core

import (
	"testing"

	"github.com/unroller/unroller/internal/detect"
)

// FuzzDecodeHeader throws arbitrary bytes at the header decoder across
// several configurations: it must either error or return a state whose
// fields are in range — never panic, never produce a slot wider than z.
func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte{0x05, 0xDE, 0xAD, 0xBE, 0xEF}, uint8(0))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		cfgs := configsUnderTest()
		cfg := cfgs[int(which)%len(cfgs)]
		u := MustNew(cfg)
		st, err := u.DecodeHeader(data)
		if err != nil {
			return
		}
		if st.Hops() > 255 {
			t.Fatalf("decoded hop counter %d exceeds the wire width", st.Hops())
		}
		sent := slotSentinel(cfg.ZBits)
		for i, sv := range st.Slots() {
			if sv > sent {
				t.Fatalf("slot %d holds %d, beyond the %d-bit sentinel", i, sv, cfg.ZBits)
			}
		}
		// A decoded state must keep functioning.
		for h := 0; h < 10; h++ {
			st.Visit(5)
		}
	})
}

// FuzzVisitSequence drives arbitrary visit sequences through a
// compressed multi-slot detector: whatever the sequence, internal
// invariants hold (slots within range, hop counter monotone).
func FuzzVisitSequence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, seq []byte) {
		cfg := DefaultConfig()
		cfg.Chunks, cfg.Hashes, cfg.ZBits, cfg.HashIDs, cfg.Threshold = 2, 2, 9, true, 2
		u := MustNew(cfg)
		st := u.NewPacketState()
		sent := slotSentinel(cfg.ZBits)
		for i, b := range seq {
			if i > 200 {
				break
			}
			st.Visit(detect.SwitchID(b) + 1)
			if st.Hops() != uint64(i+1) {
				t.Fatalf("hop counter %d after %d visits", st.Hops(), i+1)
			}
			for _, sv := range st.Slots() {
				if sv > sent {
					t.Fatalf("slot %d out of range", sv)
				}
			}
			if st.Matches() >= cfg.Threshold {
				return // reported; state is dead from here on
			}
		}
	})
}
