package core

import "testing"

// TestEmpiricalWorstCaseBrackets replays the Appendix A adversaries: the
// worst observed detection ratio must land between the Theorem 5 lower
// bound (any single-ID algorithm suffers ≥ 3.73·X somewhere) and the
// Theorem 1 upper bound for the configured base.
func TestEmpiricalWorstCaseBrackets(t *testing.T) {
	for _, b := range []int{3, 4, 5} {
		cfg := DefaultConfig()
		cfg.Base = b
		worst, at := EmpiricalWorstCase(cfg, 120)
		ceiling := WorstCaseFactor(b) + 0.1
		if worst > ceiling {
			t.Fatalf("b=%d: adversary achieved %.3f·X (case %s B=%d L=%d), above the Theorem 1 factor %.3f",
				b, worst, at.Name, at.B, at.L, WorstCaseFactor(b))
		}
		// The lower-bound floor is asymptotic (−O(1)); at finite
		// scales the adversary should still get within ~15% of it.
		if worst < LowerBoundFactor()*0.85 {
			t.Fatalf("b=%d: adversary only reached %.3f·X; the Appendix A constructions should approach %.2f·X",
				b, worst, LowerBoundFactor())
		}
	}
}

// TestAdversaryBeatsAverage: the adversarial placements must be
// substantially worse than random placements — otherwise the
// constructions are not doing their job.
func TestAdversaryBeatsAverage(t *testing.T) {
	cfg := DefaultConfig()
	worst, _ := EmpiricalWorstCase(cfg, 100)
	if worst < 3.5 {
		t.Fatalf("b=4 adversary reached only %.3f·X; expected ≳ 4 (average case is ≈2)", worst)
	}
}

// TestPlayAdversarialCaseDetects: every construction still detects (no
// false negatives even under adversarial identifiers).
func TestPlayAdversarialCaseDetects(t *testing.T) {
	cfg := DefaultConfig()
	u := MustNew(cfg)
	for y := 2; y <= 60; y++ {
		for _, c := range AdversarialCases(cfg, y) {
			hops, ratio := PlayAdversarialCase(u, c)
			if hops == 0 {
				t.Fatalf("case %s (y=%d, B=%d, L=%d) not detected", c.Name, y, c.B, c.L)
			}
			if hops < c.B+c.L {
				t.Fatalf("case %s: detection at %d before X=%d", c.Name, hops, c.B+c.L)
			}
			if ratio <= 0 {
				t.Fatalf("case %s: ratio %v", c.Name, ratio)
			}
		}
	}
	// Degenerate scale is clamped.
	if cases := AdversarialCases(cfg, 0); len(cases) == 0 {
		t.Fatal("no cases at clamped scale")
	}
}
