// Package core implements Unroller, the phase-based routing-loop detection
// algorithm of "Detecting Routing Loops in the Data Plane" (CoNEXT 2020).
//
// A packet carries a hop counter, a small matrix of (hashed) switch
// identifiers, and an optional threshold counter. The packet's journey is
// divided into phases whose lengths grow geometrically with base b; at
// phase boundaries the stored identifiers reset. Within a phase each slot
// tracks the minimum identifier seen in its window. A switch that observes
// its own identifier already stored reports a routing loop. Because some
// phase eventually both starts inside the loop and is long enough to wrap
// it twice, detection is guaranteed within O(X) hops, X = B+L being the
// trivial lower bound (B hops to reach the loop, L to close it).
package core

import (
	"fmt"
	"math/bits"
)

// ScheduleKind selects how phase boundaries are derived from the hop
// counter.
type ScheduleKind uint8

const (
	// ScheduleAnalysis is the schedule used by the paper's analysis
	// (§3): phase i lasts exactly b^i hops, so boundaries fall at
	// cumulative sums 1, 1+b, 1+b+b², …
	ScheduleAnalysis ScheduleKind = iota
	// ScheduleHardware is the schedule of the P4/FPGA implementation
	// (§4): the identifier resets whenever the hop counter equals a
	// power of b, so phase i spans hops [b^i, b^(i+1)) and lasts
	// b^i·(b−1) hops. For b ∈ {2, 4} the boundary test is a bitwise
	// check, which is why hardware prefers it. For b = 2 the two
	// schedules coincide.
	ScheduleHardware
	// ScheduleLookup takes phase lengths from Config.PhaseTable — the
	// lookup-table mechanism of §4 for bases that are not natively
	// computable in hardware, including the fractional bases that
	// optimise the worst-case ratio below 4.67 (see
	// FractionalPhaseTable and OptimalWorstCaseBase). Past the table's
	// end, lengths keep growing by the ratio of its last two entries.
	ScheduleLookup
)

// String names the schedule for logs and CLI flags.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleAnalysis:
		return "analysis"
	case ScheduleHardware:
		return "hardware"
	case ScheduleLookup:
		return "lookup"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", uint8(k))
	}
}

// maxHop is a saturation point for phase arithmetic. Phase lengths grow
// geometrically, so internal counters are capped to avoid uint64 overflow
// on adversarial inputs; the cap is far beyond any path a packet survives.
const maxHop = uint64(1) << 62

// phase describes one phase of a schedule: its first hop (1-based), its
// length in hops, and its ordinal index.
type phase struct {
	index int
	start uint64 // hop number of the phase's first hop
	len   uint64 // number of hops in the phase
}

// next returns the phase following p under configuration cfg.
func (p phase) next(cfg *Config) phase {
	n := phase{index: p.index + 1, start: p.start + p.len}
	switch cfg.Schedule {
	case ScheduleAnalysis, ScheduleHardware:
		n.len = satMul(p.len, uint64(cfg.Base))
	case ScheduleLookup:
		t := cfg.PhaseTable
		if n.index < len(t) {
			n.len = t[n.index]
		} else {
			// Continue the table's tail growth ratio, at least
			// doubling so phases keep expanding.
			last, prev := t[len(t)-1], t[len(t)-2]
			ratio := (last + prev - 1) / prev
			if ratio < 2 {
				ratio = 2
			}
			n.len = satMul(p.len, ratio)
		}
	default:
		panic("core: unknown schedule kind")
	}
	return n
}

// firstPhase returns phase 0 under configuration cfg.
func firstPhase(cfg *Config) phase {
	switch cfg.Schedule {
	case ScheduleAnalysis:
		// Phase 0 lasts b^0 = 1 hop starting at hop 1.
		return phase{index: 0, start: 1, len: 1}
	case ScheduleHardware:
		// Resets at hops 1, b, b², …: phase 0 spans [1, b).
		return phase{index: 0, start: 1, len: uint64(cfg.Base) - 1}
	case ScheduleLookup:
		return phase{index: 0, start: 1, len: cfg.PhaseTable[0]}
	default:
		panic("core: unknown schedule kind")
	}
}

// phaseAt returns the phase containing hop x (1-based) under cfg. It is
// used when reconstructing state from a decoded header, where only the
// hop counter is carried on the wire (Table 3 of the paper): the P4
// implementation derives phase membership from Xcnt with a lookup table,
// and this is the software equivalent.
func phaseAt(x uint64, cfg *Config) phase {
	if x == 0 {
		panic("core: phaseAt called before the first hop")
	}
	p := firstPhase(cfg)
	for x >= p.start+p.len {
		p = p.next(cfg)
	}
	return p
}

// satMul multiplies with saturation at maxHop.
func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > maxHop/b {
		return maxHop
	}
	return a * b
}

// chunkIndex returns which of c chunks the offset-th hop of a phase of
// length plen belongs to, together with whether this hop is the first hop
// of that chunk's window. Chunk j covers offsets
// [floor(plen·j/c), floor(plen·(j+1)/c)); when plen < c some windows are
// empty and their slots simply keep the previous phase's value.
func chunkIndex(offset, plen uint64, c int) (idx int, first bool) {
	if c == 1 {
		return 0, offset == 0
	}
	cur := int(mulDiv(offset, uint64(c), plen))
	if offset == 0 {
		return cur, true
	}
	prev := int(mulDiv(offset-1, uint64(c), plen))
	return cur, cur != prev
}

// mulDiv computes a·b/d without intermediate overflow. The quotient always
// fits: callers guarantee a < d, so a·b/d < b.
func mulDiv(a, b, d uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	q, _ := bits.Div64(hi, lo, d)
	return q
}

// PhaseStartTable returns a lookup table t where t[x] reports whether hop
// counter value x begins a new phase under cfg. The P4 implementation
// (§4) uses exactly this 256-entry table to avoid per-packet power
// computations on targets where b is not a power of two. Index 0 is
// unused (hops are 1-based).
func PhaseStartTable(cfg Config, size int) []bool {
	if size <= 0 {
		size = 256
	}
	t := make([]bool, size)
	p := firstPhase(&cfg)
	for int(p.start) < size {
		t[p.start] = true
		p = p.next(&cfg)
	}
	return t
}

// FractionalPhaseTable builds a PhaseTable for a real-valued growth base:
// entry i is round(base^i), clamped to at least 1 and monotone
// non-decreasing. Pair it with ScheduleLookup to run bases hardware
// cannot compute natively — e.g. OptimalWorstCaseBase.
func FractionalPhaseTable(base float64, phases int) []uint64 {
	if base <= 1 || phases < 2 {
		panic(fmt.Sprintf("core: fractional table needs base > 1 and ≥ 2 phases, got %v/%d", base, phases))
	}
	t := make([]uint64, phases)
	pow := 1.0
	for i := range t {
		l := uint64(pow + 0.5)
		if l < 1 {
			l = 1
		}
		if i > 0 && l < t[i-1] {
			l = t[i-1]
		}
		if pow >= float64(maxHop) {
			l = maxHop
		}
		t[i] = l
		pow *= base
	}
	return t
}

// IsPowerOf reports whether x is a power of base (base ≥ 2, x ≥ 1). For
// base 2 and 4 this is the bitwise check the hardware uses; the general
// case iterates, which is fine off the fast path.
func IsPowerOf(x uint64, base int) bool {
	if x == 0 {
		return false
	}
	switch base {
	case 2:
		return x&(x-1) == 0
	case 4:
		// Powers of 4 are powers of 2 whose single set bit is at an
		// even position.
		return x&(x-1) == 0 && x&0x5555555555555555 != 0
	default:
		v := uint64(1)
		for v < x {
			v = satMul(v, uint64(base))
		}
		return v == x
	}
}
