package core

import (
	"errors"
	"fmt"

	"github.com/unroller/unroller/internal/bitpack"
)

// This file is the wire format of the Unroller packet header (Table 3 of
// the paper): an 8-bit hop counter Xcnt, c·H identifier slots of z bits
// each, and a ⌈log2 Th⌉-bit threshold counter Thcnt. Nothing else travels
// on the wire — phase and chunk membership are pure functions of Xcnt, the
// way the P4 implementation derives them with a lookup table.

// ErrHeaderTooShort is returned when decoding runs out of bytes.
var ErrHeaderTooShort = errors.New("core: unroller header too short")

// errHopOverflow is returned by EncodeHeader when the hop counter no
// longer fits its 8-bit wire field. In a real network the packet's TTL
// would have expired long before; the simulator keeps wider counters.
var errHopOverflow = errors.New("core: hop counter exceeds 8-bit wire field")

// HeaderBytes returns the encoded header size in bytes for the
// configuration (bit size rounded up to whole bytes, as a parser would
// align it).
func (c Config) HeaderBytes() int { return (c.HeaderBits() + 7) / 8 }

// EncodeHeader serialises the packet state into w. Layout, MSB-first:
//
//	Xcnt   : 8 bits
//	SWids  : H·c slots × z bits, row-major by hash function
//	Thcnt  : ⌈log2 Th⌉ bits (absent for Th = 1)
//
// The per-chunk reset flags are not encoded: they are recomputed from
// Xcnt on decode.
func (s *State) EncodeHeader(w *bitpack.Writer) error {
	cfg := &s.det.cfg
	if !cfg.TTLHopCount {
		if s.x > 255 {
			return errHopOverflow
		}
		w.WriteBits(s.x, hopCounterBits)
	}
	for _, sv := range s.slots {
		w.WriteBits(sv, cfg.ZBits)
	}
	if tb := thresholdBits(cfg.Threshold); tb > 0 {
		w.WriteBits(uint64(s.thcnt), uint(tb))
	}
	return nil
}

// AppendHeader appends the encoded header to dst and returns the extended
// slice, padding to a whole number of bytes. The writer encodes directly
// into dst's backing array, so a caller that reuses a buffer with enough
// capacity pays no allocation per encode.
func (s *State) AppendHeader(dst []byte) ([]byte, error) {
	var w bitpack.Writer
	w.ResetBuf(dst)
	if err := s.EncodeHeader(&w); err != nil {
		return dst, err
	}
	return w.Bytes(), nil
}

// DecodeHeader reconstructs per-packet state from the wire bytes produced
// by EncodeHeader under the same configuration. The phase cache and chunk
// reset flags are rebuilt from the hop counter.
func (u *Unroller) DecodeHeader(buf []byte) (*State, error) {
	if u.cfg.TTLHopCount {
		return nil, fmt.Errorf("core: %s elides the hop counter; use DecodeHeaderAt with the TTL-derived hop count", u.cfg)
	}
	return u.decode(buf, 0, false)
}

// DecodeHeaderAt decodes a header whose hop counter is not carried on
// the wire (Config.TTLHopCount): hops supplies the externally derived
// count of hops the packet has already taken — e.g. initial TTL minus
// current TTL (footnote 3 of the paper).
func (u *Unroller) DecodeHeaderAt(buf []byte, hops uint64) (*State, error) {
	if !u.cfg.TTLHopCount {
		return nil, fmt.Errorf("core: %s carries its own hop counter; use DecodeHeader", u.cfg)
	}
	return u.decode(buf, hops, true)
}

// DecodeHeaderInto is DecodeHeader decoding into st instead of
// allocating a fresh state. st must have been created by the same
// Unroller (NewPacketState or an earlier decode); every field is
// overwritten, so pooled or otherwise reused states carry nothing
// across packets. The emulator's hop loop uses this to keep per-hop
// allocation flat.
func (u *Unroller) DecodeHeaderInto(st *State, buf []byte) error {
	if u.cfg.TTLHopCount {
		return fmt.Errorf("core: %s elides the hop counter; use DecodeHeaderAtInto with the TTL-derived hop count", u.cfg)
	}
	return u.decodeInto(st, buf, 0, false)
}

// DecodeHeaderAtInto is DecodeHeaderAt decoding into st, under the same
// reuse contract as DecodeHeaderInto.
func (u *Unroller) DecodeHeaderAtInto(st *State, buf []byte, hops uint64) error {
	if !u.cfg.TTLHopCount {
		return fmt.Errorf("core: %s carries its own hop counter; use DecodeHeaderInto", u.cfg)
	}
	return u.decodeInto(st, buf, hops, true)
}

func (u *Unroller) decode(buf []byte, hops uint64, external bool) (*State, error) {
	s := u.NewPacketState()
	if err := u.decodeInto(s, buf, hops, external); err != nil {
		return nil, err
	}
	return s, nil
}

func (u *Unroller) decodeInto(s *State, buf []byte, hops uint64, external bool) error {
	cfg := &u.cfg
	if s.det != u {
		return fmt.Errorf("core: decode target state belongs to a different detector")
	}
	if len(buf) < cfg.HeaderBytes() {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrHeaderTooShort, cfg.HeaderBytes(), len(buf))
	}
	r := bitpack.NewReader(buf)
	// Scrub state the wire may not carry (thcnt when Th = 1) and state
	// rebuildPhase leaves untouched for pristine packets (ph, reset), so
	// a reused target is indistinguishable from a fresh one.
	s.thcnt = 0
	s.ph = phase{}
	for j := range s.reset {
		s.reset[j] = false
	}
	if external {
		s.x = hops
	} else {
		x, err := r.ReadBits(hopCounterBits)
		if err != nil {
			return err
		}
		s.x = x
	}
	for i := range s.slots {
		v, err := r.ReadBits(cfg.ZBits)
		if err != nil {
			return err
		}
		s.slots[i] = v
	}
	if tb := thresholdBits(cfg.Threshold); tb > 0 {
		th, err := r.ReadBits(uint(tb))
		if err != nil {
			return err
		}
		s.thcnt = int(th)
	}
	s.rebuildPhase()
	return nil
}

// rebuildPhase recomputes the cached phase and chunk-reset flags from the
// hop counter, making decoded state bit-equivalent to the state that was
// encoded.
func (s *State) rebuildPhase() {
	cfg := &s.det.cfg
	if s.x == 0 {
		return // pristine packet: first Visit initialises the phase
	}
	s.ph = phaseAt(s.x, cfg)
	// A chunk has reset this phase iff its window's first hop is ≤ x.
	for j := range s.reset {
		s.reset[j] = false
	}
	for off := uint64(0); off <= s.x-s.ph.start; off++ {
		if j, first := chunkIndex(off, s.ph.len, cfg.Chunks); first {
			s.reset[j] = true
		}
	}
}
