package core

import (
	"fmt"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xhash"
)

// Unroller is the detector described by the paper. It implements
// detect.Detector.
//
// # Concurrency contract
//
// An Unroller is immutable after New returns: its configuration and hash
// family are never written again, so one Unroller may be shared freely by
// any number of goroutines — this mirrors the hardware, where the
// algorithm parameters live in read-only registers replicated per
// pipeline. All mutable detection state lives in State, which is
// single-packet and NOT safe for concurrent use: each goroutine (each
// in-flight packet) must obtain its own via NewState/NewPacketState or
// DecodeHeader. The race-enabled regression test
// TestConcurrentDetectorSharedAcrossGoroutines pins this contract.
type Unroller struct {
	cfg    Config
	family xhash.Family
}

// New returns an Unroller for the given configuration.
func New(cfg Config) (*Unroller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid config: %w", err)
	}
	return &Unroller{cfg: cfg, family: cfg.family()}, nil
}

// MustNew is New for statically known-good configurations; it panics on
// validation errors.
func MustNew(cfg Config) *Unroller {
	u, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the detector's configuration.
func (u *Unroller) Config() Config { return u.cfg }

// Name implements detect.Detector.
func (u *Unroller) Name() string { return u.cfg.String() }

// BitOverhead implements detect.Detector. Unroller's header cost is
// independent of the path length, which is the point of the paper.
func (u *Unroller) BitOverhead(int) int { return u.cfg.HeaderBits() }

// NewState implements detect.Detector.
func (u *Unroller) NewState() detect.State { return u.NewPacketState() }

// NewPacketState returns the concrete per-packet state; callers that need
// header serialisation use this instead of NewState.
func (u *Unroller) NewPacketState() *State {
	s := &State{
		det:   u,
		slots: make([]uint64, u.cfg.Hashes*u.cfg.Chunks),
		reset: make([]bool, u.cfg.Chunks),
	}
	sent := slotSentinel(u.cfg.ZBits)
	for i := range s.slots {
		s.slots[i] = sent
	}
	return s
}

// State is the per-packet Unroller header content plus cached phase
// bookkeeping. Only the fields of Table 3 — the hop counter, the
// identifier slots, and the threshold counter — travel on the wire; the
// phase cache is recomputed from the hop counter on decode (the hardware
// derives it from Xcnt with a lookup table).
type State struct {
	det *Unroller

	x     uint64   // Xcnt: hops traversed so far
	slots []uint64 // SWids[]: H×c identifier slots, row-major by hash
	thcnt int      // Thcnt: matches seen so far

	// Cached phase bookkeeping, derivable from x.
	ph    phase
	reset []bool // per-chunk: has this chunk's slot reset this phase?
}

// Hops returns the number of hops the packet has traversed (Xcnt).
func (s *State) Hops() uint64 { return s.x }

// Matches returns the current threshold counter value (Thcnt).
func (s *State) Matches() int { return s.thcnt }

// Slots returns a copy of the identifier slots, row-major by hash
// function: slot (i, j) for hash i and chunk j is at index i·c+j. Empty
// slots hold the all-ones sentinel for the configured width.
func (s *State) Slots() []uint64 { return append([]uint64(nil), s.slots...) }

// slotValue maps a switch identifier to the value stored and compared for
// hash function i: the raw identifier when running uncompressed with a
// single hash, or the z-bit hash mapped into [0, sentinel) otherwise.
//
//unroller:hotpath
func (s *State) slotValue(i int, id detect.SwitchID) uint64 {
	cfg := &s.det.cfg
	if !cfg.hashed() {
		return uint64(id)
	}
	sent := slotSentinel(cfg.ZBits)
	// Reduce the 64-bit hash into [0, 2^z − 1): the all-ones pattern is
	// reserved as the empty-slot marker. Using modulo keeps the value
	// uniform over the remaining patterns.
	return s.det.family[i].Hash64(uint32(id)) % sent
}

// Visit implements detect.State. It performs, in order, exactly what the
// P4 control block does per packet (§4): increment Xcnt, derive the phase,
// compare the switch's (hashed) identifier against every stored slot, and
// then reset or min-update the slot owned by the current chunk window.
// The comparison runs before the update, so a phase-boundary hop still
// detects against the identifier stored in the previous phase.
//
//unroller:hotpath
func (s *State) Visit(id detect.SwitchID) detect.Verdict {
	cfg := &s.det.cfg

	// (1) Advance the hop counter and the phase cache.
	s.x++
	if s.x == 1 {
		s.ph = firstPhase(cfg)
	} else if s.x == s.ph.start+s.ph.len {
		s.ph = s.ph.next(cfg)
		for j := range s.reset {
			s.reset[j] = false
		}
	}

	// (2) Hash the identifier once per hash function.
	var vbuf [8]uint64 // avoids allocation for H ≤ 8
	vals := vbuf[:0]
	if cfg.Hashes <= len(vbuf) {
		vals = vbuf[:cfg.Hashes]
	} else {
		//unroller:allow hotpath -- H > 8 is outside the paper's parameter space; rare slow path
		vals = make([]uint64, cfg.Hashes)
	}
	for i := range vals {
		vals[i] = s.slotValue(i, id)
	}

	// (3) Check: does any slot of hash i already hold h_i(switch)?
	sent := slotSentinel(cfg.ZBits)
	matched := false
	for i := 0; i < cfg.Hashes && !matched; i++ {
		row := s.slots[i*cfg.Chunks : (i+1)*cfg.Chunks]
		for _, sv := range row {
			if sv != sent && sv == vals[i] {
				matched = true
				break
			}
		}
	}
	if matched {
		s.thcnt++
		if s.thcnt >= cfg.Threshold {
			return detect.Loop
		}
	}

	// (4) Update the slot owned by the chunk window containing this hop.
	offset := s.x - s.ph.start
	j, first := chunkIndex(offset, s.ph.len, cfg.Chunks)
	if first && !s.reset[j] {
		s.reset[j] = true
		for i := 0; i < cfg.Hashes; i++ {
			s.slots[i*cfg.Chunks+j] = vals[i]
		}
	} else {
		for i := 0; i < cfg.Hashes; i++ {
			if vals[i] < s.slots[i*cfg.Chunks+j] {
				s.slots[i*cfg.Chunks+j] = vals[i]
			}
		}
	}
	return detect.Continue
}

var _ detect.Detector = (*Unroller)(nil)
var _ detect.State = (*State)(nil)
