package core

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// TestQuickDetectionInvariants bundles the fundamental guarantees and
// lets testing/quick drive the parameter space: for any seed, shape, and
// base, the raw-ID single-slot detector (a) detects, (b) not before
// X = B+L, (c) within Theorem 1, and (d) the reporter is a loop switch.
func TestQuickDetectionInvariants(t *testing.T) {
	prop := func(seed uint64, bRaw, lRaw uint16, baseRaw uint8) bool {
		rng := xrand.New(seed)
		B := int(bRaw % 30)
		L := 1 + int(lRaw%30)
		base := 2 + int(baseRaw%5) // 2..6
		cfg := DefaultConfig()
		cfg.Base = base
		u := MustNew(cfg)
		prefix, loop := randomWalkIDs(rng, B, L)
		bound := WorstCaseBound(base, B, L)

		st := u.NewPacketState()
		at := func(h int) detect.SwitchID {
			if h-1 < B {
				return prefix[h-1]
			}
			return loop[(h-1-B)%L]
		}
		for h := 1; h <= bound; h++ {
			id := at(h)
			if st.Visit(id) == detect.Loop {
				if h < B+L {
					return false // impossible early report
				}
				for _, v := range loop {
					if v == id {
						return true // reporter on the loop
					}
				}
				return false
			}
		}
		return false // not detected within the bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestRelabelingInvariance: the raw-ID detector only ever compares
// identifiers by order (min and equality), so any strictly increasing
// relabeling of the identifiers must not change the detection hop. This
// is why the average-case analysis can assume a random permutation
// (§3.2).
func TestRelabelingInvariance(t *testing.T) {
	rng := xrand.New(0xABCDE)
	u := MustNew(DefaultConfig())
	for trial := 0; trial < 200; trial++ {
		B, L := rng.Intn(12), 1+rng.Intn(15)
		prefix, loop := randomWalkIDs(rng, B, L)

		// Build a strictly increasing relabeling of all identifiers:
		// sort them and map the i'th smallest to a fresh increasing
		// value with random gaps.
		all := append(append([]detect.SwitchID(nil), prefix...), loop...)
		sorted := append([]detect.SwitchID(nil), all...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		remap := make(map[detect.SwitchID]detect.SwitchID, len(sorted))
		next := detect.SwitchID(1)
		for _, id := range sorted {
			next += detect.SwitchID(1 + rng.Intn(1000))
			remap[id] = next
		}
		prefix2 := make([]detect.SwitchID, B)
		loop2 := make([]detect.SwitchID, L)
		for i, id := range prefix {
			prefix2[i] = remap[id]
		}
		for i, id := range loop {
			loop2[i] = remap[id]
		}

		bound := WorstCaseBound(4, B, L)
		h1 := drive(t, u, prefix, loop, bound+1)
		h2 := drive(t, u, prefix2, loop2, bound+1)
		if h1 != h2 {
			t.Fatalf("trial %d (B=%d L=%d): relabeling changed detection %d → %d", trial, B, L, h1, h2)
		}
	}
}

// TestLoopRotationAlwaysDetected: wherever the packet enters the loop,
// detection holds within the bound (the bound is entry-point agnostic).
func TestLoopRotationAlwaysDetected(t *testing.T) {
	rng := xrand.New(0xEE)
	u := MustNew(DefaultConfig())
	B, L := 4, 11
	prefix, loop := randomWalkIDs(rng, B, L)
	bound := WorstCaseBound(4, B, L)
	for rot := 0; rot < L; rot++ {
		rotated := append(append([]detect.SwitchID(nil), loop[rot:]...), loop[:rot]...)
		if got := drive(t, u, prefix, rotated, bound+1); got == 0 {
			t.Fatalf("rotation %d: undetected within %d", rot, bound)
		}
	}
}

// TestVisitOrderDeterminism: two states fed the same sequence agree at
// every step — no hidden global state.
func TestVisitOrderDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		cfg := DefaultConfig()
		cfg.Chunks, cfg.Hashes, cfg.ZBits, cfg.HashIDs = 2, 2, 12, true
		u := MustNew(cfg)
		a, b := u.NewPacketState(), u.NewPacketState()
		for h := 0; h < 100; h++ {
			id := detect.SwitchID(rng.Uint32() % 64) // force repeats
			if a.Visit(id) != b.Visit(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStatelessSwitchProperty: the detector object carries no per-packet
// state — interleaving two packets through one Unroller must equal
// running them separately. This is the paper's "no per-flow state on
// switches" claim at the API level.
func TestStatelessSwitchProperty(t *testing.T) {
	rng := xrand.New(0x51)
	u := MustNew(DefaultConfig())
	p1, l1 := randomWalkIDs(rng, 3, 9)
	p2, l2 := randomWalkIDs(rng, 6, 5)

	solo1 := drive(t, u, p1, l1, 1000)
	solo2 := drive(t, u, p2, l2, 1000)

	at := func(prefix, loop []detect.SwitchID, h int) detect.SwitchID {
		if h-1 < len(prefix) {
			return prefix[h-1]
		}
		return loop[(h-1-len(prefix))%len(loop)]
	}
	s1, s2 := u.NewPacketState(), u.NewPacketState()
	got1, got2 := 0, 0
	for h := 1; got1 == 0 || got2 == 0; h++ {
		if got1 == 0 && s1.Visit(at(p1, l1, h)) == detect.Loop {
			got1 = h
		}
		if got2 == 0 && s2.Visit(at(p2, l2, h)) == detect.Loop {
			got2 = h
		}
		if h > 2000 {
			t.Fatal("runaway")
		}
	}
	if got1 != solo1 || got2 != solo2 {
		t.Fatalf("interleaving changed outcomes: (%d,%d) vs (%d,%d)", got1, got2, solo1, solo2)
	}
}
