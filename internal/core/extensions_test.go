package core

import (
	"testing"

	"github.com/unroller/unroller/internal/bitpack"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// fractionalConfig builds the §3 "optimize the ratio further" detector:
// the optimal real base run through a lookup table.
func fractionalConfig() Config {
	cfg := DefaultConfig()
	cfg.Schedule = ScheduleLookup
	cfg.PhaseTable = FractionalPhaseTable(OptimalWorstCaseBase(), 32)
	return cfg
}

// TestFractionalBaseDetects: the lookup-table schedule with the optimal
// fractional base detects every loop within its analytic bound — which
// is strictly tighter than the integer b=4 guarantee.
func TestFractionalBaseDetects(t *testing.T) {
	u := MustNew(fractionalConfig())
	b := OptimalWorstCaseBase()
	rng := xrand.New(0xF12AC)
	for B := 0; B <= 20; B += 4 {
		for L := 1; L <= 25; L += 3 {
			bound := WorstCaseBoundFloat(b, B, L)
			// The fractional base optimises the worst-case factor:
			// its bound stays within b*·X + O(1) at every shape,
			// whereas b=4 exceeds 4.6·X in the loop-dominated
			// regime.
			if float64(bound) > b*float64(B+L)+b+3 {
				t.Fatalf("B=%d L=%d: fractional bound %d exceeds %.3f·X+O(1)", B, L, bound, b)
			}
			for rep := 0; rep < 6; rep++ {
				prefix, loop := randomWalkIDs(rng, B, L)
				got := drive(t, u, prefix, loop, bound+1)
				if got == 0 {
					t.Fatalf("B=%d L=%d: not detected within fractional bound %d", B, L, bound)
				}
				if got < B+L {
					t.Fatalf("B=%d L=%d: detected at %d < X", B, L, got)
				}
			}
		}
	}
}

// TestOptimalWorstCaseBase: the closed form beats every integer base and
// sits at the intersection of the two regimes.
func TestOptimalWorstCaseBase(t *testing.T) {
	b := OptimalWorstCaseBase()
	if b < 4.56 || b > 4.562 {
		t.Fatalf("optimal base %v, want ≈4.5616", b)
	}
	// At the optimum the loop-dominated factor equals b itself.
	grow := 2 + 2*b/(b-1)
	if diff := grow - b; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("regimes do not intersect at the claimed base: %v vs %v", grow, b)
	}
	// Strictly better than the integer optimum.
	if b >= WorstCaseFactor(4) {
		t.Fatalf("fractional factor %v should beat 4.67", b)
	}
}

// TestLookupScheduleValidation: the config matrix for ScheduleLookup.
func TestLookupScheduleValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Schedule = ScheduleLookup
	if cfg.Validate() == nil {
		t.Error("lookup schedule without a table accepted")
	}
	cfg.PhaseTable = []uint64{1}
	if cfg.Validate() == nil {
		t.Error("single-entry table accepted")
	}
	cfg.PhaseTable = []uint64{1, 0}
	if cfg.Validate() == nil {
		t.Error("zero-length phase accepted")
	}
	cfg.PhaseTable = []uint64{1, 4}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid lookup config rejected: %v", err)
	}
	// PhaseTable on a closed-form schedule is a misconfiguration.
	bad := DefaultConfig()
	bad.PhaseTable = []uint64{1, 4}
	if bad.Validate() == nil {
		t.Error("PhaseTable with analysis schedule accepted")
	}
}

// TestTTLHopCountHeader: the footnote-3 variant drops the 8-bit counter
// from the wire, and round-trips through DecodeHeaderAt with an
// externally supplied hop count.
func TestTTLHopCountHeader(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTLHopCount = true
	u := MustNew(cfg)

	plain := DefaultConfig()
	if got, want := cfg.HeaderBits(), plain.HeaderBits()-8; got != want {
		t.Fatalf("TTL-derived header is %d bits, want %d", got, want)
	}

	st := u.NewPacketState()
	ids := []detect.SwitchID{9, 5, 7, 3, 8, 5}
	var hops uint64
	for _, id := range ids[:4] {
		if st.Visit(id) != detect.Continue {
			t.Fatal("premature verdict")
		}
		hops++
	}
	var w bitpack.Writer
	if err := st.EncodeHeader(&w); err != nil {
		t.Fatal(err)
	}
	if got := w.Len(); got != uint(cfg.HeaderBits()) {
		t.Fatalf("encoded %d bits, want %d", got, cfg.HeaderBits())
	}
	dec, err := u.DecodeHeaderAt(w.Bytes(), hops)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hops() != st.Hops() {
		t.Fatalf("decoded hops %d, want %d", dec.Hops(), st.Hops())
	}
	// Both must agree on the rest of the walk (hop 6 revisits switch 5,
	// stored as the minimum since hop 2's phase... drive and compare).
	for _, id := range ids[4:] {
		v1, v2 := st.Visit(id), dec.Visit(id)
		if v1 != v2 {
			t.Fatalf("decoded state diverged on %v: %v vs %v", id, v1, v2)
		}
	}

	// Mode confusion is rejected loudly.
	if _, err := u.DecodeHeader(w.Bytes()); err == nil {
		t.Fatal("DecodeHeader must reject TTL-mode configs")
	}
	plainDet := MustNew(plain)
	buf, err := plainDet.NewPacketState().AppendHeader(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plainDet.DecodeHeaderAt(buf, 0); err == nil {
		t.Fatal("DecodeHeaderAt must reject self-counting configs")
	}
}

// TestTTLHopCountNoOverflowGuard: with an external counter the state can
// exceed 255 hops without wire errors (the TTL itself bounds lifetime).
func TestTTLHopCountNoOverflowGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTLHopCount = true
	u := MustNew(cfg)
	st := u.NewPacketState()
	rng := xrand.New(1)
	for i := 0; i < 300; i++ {
		st.Visit(detect.SwitchID(rng.Uint32()))
	}
	var w bitpack.Writer
	if err := st.EncodeHeader(&w); err != nil {
		t.Fatalf("TTL-mode encode must not overflow: %v", err)
	}
}
