package core

import "math"

// This file implements the paper's analytic results as executable
// formulas so that tests and benchmarks can check measured detection
// times against theory.

// WorstCaseBound returns the Theorem 1 upper bound on detection time for
// the single-identifier algorithm with base b on a walk with B pre-loop
// hops and an L-switch loop:
//
//	(2L − 1) + max((2bL − 1)/(b − 1), bB + 1)
//
// The bound holds for any identifier assignment and for both phase
// schedules with b = 2; for the hardware schedule with larger b use
// WorstCaseBoundHardware. For b = 4 the bound is at most 4.67·X, X = B+L.
func WorstCaseBound(b, B, L int) int {
	if L < 1 {
		return 0 // no loop, nothing to detect
	}
	grow := ceilDiv(2*b*L-1, b-1)
	reach := b*B + 1
	return (2*L - 1) + maxInt(grow, reach)
}

// WorstCaseBoundChunks returns the Appendix B upper bound when each phase
// is partitioned into c chunks:
//
//	2L + max((2bL − 1)/(b − 1), B + (b − 1)B/c + 1)
//
// With c identifiers the reset penalty for pre-loop hops shrinks by a
// factor of c; e.g. c = 2, b = 7 gives at most 4.33·X.
func WorstCaseBoundChunks(b, c, B, L int) int {
	if L < 1 {
		return 0
	}
	grow := ceilDiv(2*b*L-1, b-1)
	reach := B + ceilDiv((b-1)*B, c) + 1
	return 2*L + maxInt(grow, reach)
}

// WorstCaseBoundHardware bounds detection under the hardware schedule,
// where resets fall on powers of b and phase i spans [b^i, b^(i+1)).
// Derivation mirrors Theorem 1: the first phase of length ≥ 2L−1 starts at
// the smallest power of b that is ≥ (2L−1)/(b−1), hence within
// b·(2L−1)/(b−1) hops; an on-loop identifier is stored within bB+1 hops
// (the first reset after hop B is at a power of b ≤ bB); detection then
// takes at most 2L−1 further hops. A subsequent early reset can void one
// phase, adding one more geometric step, hence the extra factor b on the
// growth term.
func WorstCaseBoundHardware(b, B, L int) int {
	if L < 1 {
		return 0
	}
	grow := ceilDiv(b*b*(2*L-1), b-1)
	reach := b*B + 1
	return (2*L - 1) + maxInt(grow, reach)
}

// WorstCaseFactor returns the supremum of WorstCaseBound(b,B,L)/(B+L)
// over B ≥ 0, L ≥ 1. The loop-dominated regime (B = 0, L → ∞) approaches
// 2 + 2b/(b − 1); the prefix-dominated regime (L = 1, B → ∞) approaches
// b. The worst case is their maximum, which b = 4 minimises at ≈ 4.67 —
// the headline constant of the paper ("the inequality holds for b = 4").
func WorstCaseFactor(b int) float64 {
	grow := 2 + 2*float64(b)/float64(b-1)
	reach := float64(b)
	return math.Max(grow, reach)
}

// LowerBoundFactor is the Theorem 5 lower bound: any deterministic
// algorithm storing a single identifier needs at least (2+√3)·X ≈ 3.73·X
// hops in the worst case.
func LowerBoundFactor() float64 { return 2 + math.Sqrt(3) }

// OptimalWorstCaseBase returns the real-valued phase base minimising the
// worst-case factor max(2 + 2b/(b−1), b): the two regimes intersect at
// b = (5+√17)/2 ≈ 4.56, giving ≈ 4.56·X — strictly better than the
// integer optimum b = 4's 4.67·X. This is the paper's §3 remark that
// computing ⌊b^i⌋ for non-integer b "using a lookup table" can
// "optimize the ratio further"; run it via FractionalPhaseTable and
// ScheduleLookup.
func OptimalWorstCaseBase() float64 { return (5 + math.Sqrt(17)) / 2 }

// WorstCaseBoundFloat is WorstCaseBound for a real-valued base, used
// with lookup-table schedules.
func WorstCaseBoundFloat(b float64, B, L int) int {
	if L < 1 {
		return 0
	}
	grow := int(math.Ceil((2*b*float64(L) - 1) / (b - 1)))
	reach := int(math.Ceil(b*float64(B))) + 1
	return (2*L - 1) + maxInt(grow, reach)
}

// AverageCaseFactor returns the §3.2 bound on the expected detection time
// under uniformly random identifiers, in multiples of X. The paper's
// three-case analysis gives 3·X for the optimal base b = 3; for other
// bases the dominating case yields max over the three case expressions.
func AverageCaseFactor(b int) float64 {
	fb := float64(b)
	// Case 1 maximum over α ∈ [0,1] of (1+α)/(b−1) + 2.5 − α + α²(1−α)...
	// evaluated numerically; cases 2 and 3 give b/(b−1) + 1.5 and 3.
	c1 := 0.0
	for a := 0.0; a <= 1.0; a += 1e-3 {
		v := (1+a)/(fb-1) + 2.5 - a + a*a*(1-a)/2
		if v > c1 {
			c1 = v
		}
	}
	c2 := fb/(fb-1) + 1.5
	c3 := 3.0
	return math.Max(c1, math.Max(c2, c3))
}

// DetectionLowerBound is the trivial information-theoretic floor: no
// algorithm can report before some switch is visited twice, which takes
// X = B + L hops.
func DetectionLowerBound(B, L int) int {
	if L < 1 {
		return 0
	}
	return B + L
}

// FalsePositiveBound estimates an upper bound on the probability that a
// loop-free path of n hops triggers a report, for z-bit hashed
// identifiers, s = c·H slots and threshold Th (§3.3). Each hop matches a
// stored fingerprint with probability at most s/2^z; a report needs Th
// matching hops, and there are C(n, Th) ways to choose them.
func FalsePositiveBound(n int, z uint, slots, th int) float64 {
	if th < 1 || n < th {
		return 0
	}
	p := float64(slots) / math.Pow(2, float64(z))
	if p > 1 {
		p = 1
	}
	return binom(n, th) * math.Pow(p, float64(th))
}

// binom returns C(n, k) as a float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
