package core_test

import (
	"fmt"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
)

// ExampleUnroller traces the algorithm's mechanics on a tiny walk: one
// pre-loop switch, then a three-switch loop, with b = 2 so phases are
// short. The loop is reported when the packet revisits the switch whose
// identifier survived a whole phase as the minimum.
func ExampleUnroller() {
	cfg := core.DefaultConfig()
	cfg.Base = 2
	u := core.MustNew(cfg)
	st := u.NewPacketState()

	walk := []detect.SwitchID{50 /* pre-loop */, 30, 10, 20, 30, 10, 20, 30, 10, 20, 30, 10}
	for i, sw := range walk {
		if st.Visit(sw) == detect.Loop {
			fmt.Printf("switch %d reports a loop at hop %d\n", sw, i+1)
			return
		}
	}
	// Output:
	// switch 10 reports a loop at hop 12
}

// ExampleConfig_Validate shows the validation surface.
func ExampleConfig_Validate() {
	bad := core.Config{Base: 1, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1}
	fmt.Println(bad.Validate() != nil)
	fmt.Println(core.DefaultConfig().Validate())
	// Output:
	// true
	// <nil>
}

// ExampleWorstCaseBound evaluates the Theorem 1 guarantee for the
// paper's running configuration.
func ExampleWorstCaseBound() {
	fmt.Println(core.WorstCaseBound(4, 5, 20)) // b=4, B=5, L=20
	fmt.Printf("%.2f\n", core.WorstCaseFactor(4))
	// Output:
	// 92
	// 4.67
}

// ExampleState_EncodeHeader round-trips packet state through the Table 3
// wire format.
func ExampleState_EncodeHeader() {
	u := core.MustNew(core.DefaultConfig())
	st := u.NewPacketState()
	st.Visit(7)
	st.Visit(3)

	wire, _ := st.AppendHeader(nil)
	dec, _ := u.DecodeHeader(wire)
	fmt.Printf("%d bytes on the wire, Xcnt=%d, slot=%d\n", len(wire), dec.Hops(), dec.Slots()[0])
	// Output:
	// 5 bytes on the wire, Xcnt=2, slot=3
}
