package core

import (
	"testing"

	"github.com/unroller/unroller/internal/bitpack"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// configsUnderTest spans the wire-format parameter space.
func configsUnderTest() []Config {
	return []Config{
		{Base: 4, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1},
		{Base: 2, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1},
		{Base: 4, Chunks: 2, Hashes: 2, ZBits: 16, Threshold: 1, HashIDs: true},
		{Base: 4, Chunks: 4, Hashes: 4, ZBits: 7, Threshold: 4, HashIDs: true},
		{Base: 4, Chunks: 1, Hashes: 1, ZBits: 9, Threshold: 2, HashIDs: true},
		{Base: 6, Chunks: 3, Hashes: 1, ZBits: 12, Threshold: 1, HashIDs: true, Schedule: ScheduleHardware},
	}
}

// TestHeaderRoundTrip encodes the packet state at every hop of a loopy
// walk, decodes it, and requires the decoded state to behave identically
// to the original for the remainder of the walk — the property a real
// deployment needs, since every hop re-parses the header from wire bytes.
func TestHeaderRoundTrip(t *testing.T) {
	rng := xrand.New(2024)
	for _, cfg := range configsUnderTest() {
		u := MustNew(cfg)
		ids := make([]detect.SwitchID, 0, 40)
		seen := map[detect.SwitchID]bool{}
		for len(ids) < 40 {
			id := detect.SwitchID(rng.Uint32())
			if id != 0xFFFFFFFF && !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		walkAt := func(h int) detect.SwitchID {
			if h-1 < 10 {
				return ids[h-1] // 10-hop prefix
			}
			return ids[10+(h-11)%15] // 15-switch loop
		}

		st := u.NewPacketState()
		for h := 1; h <= 60; h++ {
			// Serialise, re-parse, and check equivalence before
			// each hop.
			var w bitpack.Writer
			if err := st.EncodeHeader(&w); err != nil {
				t.Fatalf("%v hop %d: encode: %v", cfg, h, err)
			}
			if got, want := w.Len(), uint(cfg.HeaderBits()); got != want {
				t.Fatalf("%v: encoded %d bits, config says %d", cfg, got, want)
			}
			dec, err := u.DecodeHeader(w.Bytes())
			if err != nil {
				t.Fatalf("%v hop %d: decode: %v", cfg, h, err)
			}
			if dec.Hops() != st.Hops() || dec.Matches() != st.Matches() {
				t.Fatalf("%v hop %d: decoded counters differ: x %d/%d th %d/%d",
					cfg, h, dec.Hops(), st.Hops(), dec.Matches(), st.Matches())
			}
			if !equalSlots(dec.Slots(), st.Slots()) {
				t.Fatalf("%v hop %d: decoded slots %v != %v", cfg, h, dec.Slots(), st.Slots())
			}

			// Drive both; they must agree verdict-for-verdict.
			id := walkAt(h)
			v1, v2 := st.Visit(id), dec.Visit(id)
			if v1 != v2 {
				t.Fatalf("%v hop %d: original %v, decoded %v", cfg, h, v1, v2)
			}
			if v1 == detect.Loop {
				break
			}
		}
	}
}

func equalSlots(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHeaderBytesAlignment checks byte-size rounding and AppendHeader.
func TestHeaderBytesAlignment(t *testing.T) {
	for _, cfg := range configsUnderTest() {
		u := MustNew(cfg)
		st := u.NewPacketState()
		st.Visit(detect.SwitchID(3))
		buf, err := st.AppendHeader([]byte{0xAA})
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if buf[0] != 0xAA {
			t.Fatal("AppendHeader must preserve the destination prefix")
		}
		if got, want := len(buf)-1, cfg.HeaderBytes(); got != want {
			t.Errorf("%v: appended %d bytes, want %d", cfg, got, want)
		}
	}
}

// TestHeaderHopOverflow checks that the 8-bit wire counter rejects
// packets that outlived a real TTL.
func TestHeaderHopOverflow(t *testing.T) {
	u := MustNew(DefaultConfig())
	st := u.NewPacketState()
	st.x = 256
	var w bitpack.Writer
	if err := st.EncodeHeader(&w); err == nil {
		t.Fatal("expected overflow error at Xcnt=256")
	}
	st.x = 255
	w.Reset()
	if err := st.EncodeHeader(&w); err != nil {
		t.Fatalf("Xcnt=255 must encode: %v", err)
	}
}

// TestDecodeShortBuffer checks truncation errors.
func TestDecodeShortBuffer(t *testing.T) {
	u := MustNew(DefaultConfig())
	if _, err := u.DecodeHeader([]byte{1, 2}); err == nil {
		t.Fatal("expected short-buffer error")
	}
	if _, err := u.DecodeHeader(nil); err == nil {
		t.Fatal("expected short-buffer error on nil")
	}
}

// TestDecodeHeaderInto: decoding into a reused state scrubs every trace
// of the previous packet — including thcnt when Th = 1 (not carried on
// the wire) and the phase cache for pristine packets, which
// rebuildPhase leaves untouched — so a pooled state is indistinguishable
// from a fresh decode.
func TestDecodeHeaderInto(t *testing.T) {
	for _, cfg := range configsUnderTest() {
		u := MustNew(cfg)
		for _, srcHops := range []int{0, 1, 7} {
			src := u.NewPacketState()
			for h := 1; h <= srcHops; h++ {
				src.Visit(detect.SwitchID(100 + h))
			}
			wire, err := src.AppendHeader(nil)
			if err != nil {
				t.Fatalf("%v: %v", cfg, err)
			}
			// Dirty the reuse target with an unrelated walk first.
			reused := u.NewPacketState()
			for h := 1; h <= 9; h++ {
				reused.Visit(detect.SwitchID(h))
			}
			if err := u.DecodeHeaderInto(reused, wire); err != nil {
				t.Fatalf("%v: DecodeHeaderInto: %v", cfg, err)
			}
			fresh, err := u.DecodeHeader(wire)
			if err != nil {
				t.Fatalf("%v: %v", cfg, err)
			}
			if reused.Hops() != fresh.Hops() || reused.Matches() != fresh.Matches() ||
				!equalSlots(reused.Slots(), fresh.Slots()) {
				t.Fatalf("%v src %d hops: reused state %d/%d/%v differs from fresh %d/%d/%v",
					cfg, srcHops, reused.Hops(), reused.Matches(), reused.Slots(),
					fresh.Hops(), fresh.Matches(), fresh.Slots())
			}
			// Drive both onward; verdicts must agree hop for hop (this
			// is where stale phase or reset flags would diverge).
			for h := 0; h < 30; h++ {
				id := detect.SwitchID(200 + h%6)
				v1, v2 := reused.Visit(id), fresh.Visit(id)
				if v1 != v2 {
					t.Fatalf("%v src %d hops: verdicts diverge at hop %d: %v vs %v", cfg, srcHops, h, v1, v2)
				}
				if v1 == detect.Loop {
					break
				}
			}
		}
	}
}

// TestDecodeHeaderIntoMisuse: the Into variants enforce the same
// config-matching rules as their allocating counterparts, plus a
// same-detector check on the target state.
func TestDecodeHeaderIntoMisuse(t *testing.T) {
	base := DefaultConfig()
	u := MustNew(base)
	ttlCfg := base
	ttlCfg.TTLHopCount = true
	uTTL := MustNew(ttlCfg)

	wire, err := u.NewPacketState().AppendHeader(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := uTTL.DecodeHeaderInto(uTTL.NewPacketState(), wire); err == nil {
		t.Fatal("DecodeHeaderInto must reject a TTL-hop-count config")
	}
	if err := u.DecodeHeaderAtInto(u.NewPacketState(), wire, 3); err == nil {
		t.Fatal("DecodeHeaderAtInto must reject a self-counting config")
	}
	// A state from a different detector must be refused, not silently
	// reshaped.
	if err := u.DecodeHeaderInto(MustNew(base).NewPacketState(), wire); err == nil {
		t.Fatal("DecodeHeaderInto accepted a foreign state")
	}
	if err := u.DecodeHeaderInto(u.NewPacketState(), wire[:1]); err == nil {
		t.Fatal("DecodeHeaderInto accepted a truncated header")
	}
}

// TestDecodeHeaderIntoAllocFree: the reuse path is allocation-free —
// the property the emulator's hop loop is built on.
func TestDecodeHeaderIntoAllocFree(t *testing.T) {
	u := MustNew(DefaultConfig())
	src := u.NewPacketState()
	src.Visit(detect.SwitchID(9))
	wire, err := src.AppendHeader(nil)
	if err != nil {
		t.Fatal(err)
	}
	st := u.NewPacketState()
	allocs := testing.AllocsPerRun(200, func() {
		if err := u.DecodeHeaderInto(st, wire); err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendHeader(wire[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode+re-encode allocated %.1f times per hop", allocs)
	}
}

// TestDecodePristine checks the zero-hop round trip (a packet that has
// not yet visited any switch).
func TestDecodePristine(t *testing.T) {
	u := MustNew(DefaultConfig())
	st := u.NewPacketState()
	buf, err := st.AppendHeader(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := u.DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hops() != 0 {
		t.Fatalf("pristine decode has %d hops", dec.Hops())
	}
	if dec.Visit(detect.SwitchID(1)) != detect.Continue {
		t.Fatal("pristine packet cannot report a loop on hop 1")
	}
}
