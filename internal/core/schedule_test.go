package core

import (
	"testing"
	"testing/quick"
)

// cfgFor builds a minimal valid config for schedule unit tests.
func cfgFor(b int, k ScheduleKind) *Config {
	c := DefaultConfig()
	c.Base = b
	c.Schedule = k
	if k == ScheduleLookup {
		c.PhaseTable = FractionalPhaseTable(float64(b), 24)
	}
	return &c
}

// TestAnalysisPhaseBoundaries enumerates the first phases for small bases
// and checks starts and lengths against the closed forms: phase i lasts
// b^i and starts at 1 + (b^i − 1)/(b − 1).
func TestAnalysisPhaseBoundaries(t *testing.T) {
	for _, b := range []int{2, 3, 4, 6, 10} {
		cfg := cfgFor(b, ScheduleAnalysis)
		p := firstPhase(cfg)
		wantStart := uint64(1)
		wantLen := uint64(1)
		for i := 0; i < 8; i++ {
			if p.index != i || p.start != wantStart || p.len != wantLen {
				t.Fatalf("b=%d phase %d: got {%d %d %d}, want start=%d len=%d",
					b, i, p.index, p.start, p.len, wantStart, wantLen)
			}
			wantStart += wantLen
			wantLen *= uint64(b)
			p = p.next(cfg)
		}
	}
}

// TestHardwarePhaseBoundaries checks that hardware-schedule resets land
// exactly on powers of b.
func TestHardwarePhaseBoundaries(t *testing.T) {
	for _, b := range []int{2, 4, 6} {
		cfg := cfgFor(b, ScheduleHardware)
		p := firstPhase(cfg)
		pow := uint64(1)
		for i := 0; i < 8; i++ {
			if p.start != pow {
				t.Fatalf("b=%d phase %d starts at %d, want %d", b, i, p.start, pow)
			}
			if p.len != pow*uint64(b)-pow {
				t.Fatalf("b=%d phase %d length %d, want %d", b, i, p.len, pow*uint64(b)-pow)
			}
			pow *= uint64(b)
			p = p.next(cfg)
		}
	}
}

// TestLookupPhaseBoundaries: a lookup schedule follows its table exactly
// and keeps growing past the table's end.
func TestLookupPhaseBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Schedule = ScheduleLookup
	cfg.PhaseTable = []uint64{1, 3, 5, 17}
	p := firstPhase(&cfg)
	wantLens := []uint64{1, 3, 5, 17}
	start := uint64(1)
	for i, want := range wantLens {
		if p.index != i || p.len != want || p.start != start {
			t.Fatalf("phase %d: got {%d %d %d}, want len=%d start=%d", i, p.index, p.start, p.len, want, start)
		}
		start += want
		p = p.next(&cfg)
	}
	// Past the table: tail ratio ceil(17/5)=4.
	if p.len != 17*4 {
		t.Fatalf("post-table phase length %d, want 68", p.len)
	}
	q := p.next(&cfg)
	if q.len <= p.len {
		t.Fatal("phases must keep growing past the table")
	}
}

// TestPhaseAt cross-checks the random-access phase lookup against the
// incremental iteration for every hop up to 5000.
func TestPhaseAt(t *testing.T) {
	for _, b := range []int{2, 3, 4, 7} {
		for _, k := range []ScheduleKind{ScheduleAnalysis, ScheduleHardware, ScheduleLookup} {
			cfg := cfgFor(b, k)
			p := firstPhase(cfg)
			for x := uint64(1); x <= 5000; x++ {
				if x >= p.start+p.len {
					p = p.next(cfg)
				}
				got := phaseAt(x, cfg)
				if got != p {
					t.Fatalf("b=%d %v: phaseAt(%d) = %+v, want %+v", b, k, x, got, p)
				}
			}
		}
	}
}

// TestPhaseStartTable checks the P4 lookup table against phase starts.
func TestPhaseStartTable(t *testing.T) {
	for _, b := range []int{2, 3, 4, 6} {
		for _, k := range []ScheduleKind{ScheduleAnalysis, ScheduleHardware} {
			cfg := cfgFor(b, k)
			tab := PhaseStartTable(*cfg, 256)
			if len(tab) != 256 {
				t.Fatalf("table size %d", len(tab))
			}
			for x := uint64(1); x < 256; x++ {
				want := phaseAt(x, cfg).start == x
				if tab[x] != want {
					t.Errorf("b=%d %v: table[%d]=%v, want %v", b, k, x, tab[x], want)
				}
			}
		}
	}
}

// TestFractionalPhaseTable: rounding, monotonicity, and validation.
func TestFractionalPhaseTable(t *testing.T) {
	tab := FractionalPhaseTable(OptimalWorstCaseBase(), 12)
	if len(tab) != 12 || tab[0] != 1 {
		t.Fatalf("table %v", tab)
	}
	for i := 1; i < len(tab); i++ {
		if tab[i] < tab[i-1] {
			t.Fatalf("table not monotone: %v", tab)
		}
	}
	// round(4.56²) = round(20.8) = 21.
	if tab[2] != 21 {
		t.Fatalf("tab[2] = %d, want 21", tab[2])
	}
	for _, bad := range []func(){
		func() { FractionalPhaseTable(1.0, 5) },
		func() { FractionalPhaseTable(3.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid fractional table args should panic")
				}
			}()
			bad()
		}()
	}
}

// TestIsPowerOf compares the bitwise fast paths against naive iteration,
// exhaustively to 10^6 and via quick-check beyond.
func TestIsPowerOf(t *testing.T) {
	naive := func(x uint64, base int) bool {
		if x == 0 {
			return false
		}
		v := uint64(1)
		for v < x {
			old := v
			v *= uint64(base)
			if v < old { // overflow
				return false
			}
		}
		return v == x
	}
	for _, base := range []int{2, 3, 4, 5, 6, 10} {
		for x := uint64(0); x <= 1_000_000; x++ {
			if got, want := IsPowerOf(x, base), naive(x, base); got != want {
				t.Fatalf("IsPowerOf(%d, %d) = %v, want %v", x, base, got, want)
			}
		}
	}
	f := func(x uint64) bool {
		return IsPowerOf(x, 2) == naive(x, 2) && IsPowerOf(x, 4) == naive(x, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestChunkIndexPartition checks that chunk windows partition each phase:
// indices are non-decreasing, cover [0, c), and "first" flags fire
// exactly at window openings.
func TestChunkIndexPartition(t *testing.T) {
	for _, c := range []int{1, 2, 3, 4, 8} {
		for _, plen := range []uint64{1, 2, 3, 4, 7, 8, 16, 100} {
			prev := -1
			firsts := 0
			for off := uint64(0); off < plen; off++ {
				idx, first := chunkIndex(off, plen, c)
				if idx < 0 || idx >= c {
					t.Fatalf("c=%d plen=%d off=%d: index %d out of range", c, plen, off, idx)
				}
				if idx < prev {
					t.Fatalf("c=%d plen=%d: chunk index decreased %d→%d", c, plen, prev, idx)
				}
				if first != (idx != prev) {
					t.Fatalf("c=%d plen=%d off=%d: first=%v but idx %d prev %d", c, plen, off, first, idx, prev)
				}
				if first {
					firsts++
				}
				prev = idx
			}
			wantWindows := c
			if plen < uint64(c) {
				wantWindows = int(plen) // short phases skip some windows
			}
			if firsts != wantWindows {
				t.Fatalf("c=%d plen=%d: %d window openings, want %d", c, plen, firsts, wantWindows)
			}
		}
	}
}

// TestSatMul covers the saturation arithmetic.
func TestSatMul(t *testing.T) {
	if got := satMul(maxHop/2, 4); got != maxHop {
		t.Errorf("satMul should saturate, got %d", got)
	}
	if got := satMul(3, 7); got != 21 {
		t.Errorf("satMul(3,7) = %d", got)
	}
	if got := satMul(0, 9); got != 0 {
		t.Errorf("satMul(0,9) = %d", got)
	}
}

// TestScheduleKindString covers the stringer.
func TestScheduleKindString(t *testing.T) {
	if ScheduleAnalysis.String() != "analysis" || ScheduleHardware.String() != "hardware" {
		t.Error("schedule names changed")
	}
	if ScheduleKind(9).String() == "" {
		t.Error("unknown kinds must still format")
	}
}
