package core

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/unroller/unroller/internal/xhash"
)

// Config selects an Unroller variant. The zero value is not valid; start
// from DefaultConfig (the paper's default evaluation configuration) and
// override fields.
type Config struct {
	// Base is the phase growth base b ≥ 2. The i'th phase lasts b^i hops
	// (analysis schedule). b = 4 optimises the worst case (4.67·X),
	// b = 3 the average case (3·X).
	Base int

	// Chunks is c ≥ 1, the number of windows each phase is partitioned
	// into (Appendix B). Each chunk owns one identifier slot per hash
	// function; larger c speeds detection at c·H·z bits of header cost.
	Chunks int

	// Hashes is H ≥ 1, the number of independent hash functions
	// (Appendix B). H > 1 forces hashed identifiers.
	Hashes int

	// ZBits is z, the width of each stored identifier in bits,
	// 1 ≤ z ≤ 32. With z = 32 and Hashes == 1 and HashIDs == false the
	// raw switch identifier is stored and there are no false positives;
	// smaller z compresses the header at the cost of hash collisions
	// (§3.3).
	ZBits uint

	// Threshold is Th ≥ 1: a loop is reported on the Th'th identifier
	// match (§3.3). Values above 1 exponentially reduce false positives
	// and add roughly (Th−1)·L hops of detection delay.
	Threshold int

	// Schedule selects how phase boundaries are computed; see
	// ScheduleKind.
	Schedule ScheduleKind

	// HashIDs forces identifiers through the hash family even when
	// z = 32 and H = 1. The paper recommends this when operator-assigned
	// IDs are not uniform, trading determinism for a vanishing false
	// positive rate.
	HashIDs bool

	// TTLHopCount derives the hop counter from the packet's TTL instead
	// of carrying an explicit Xcnt field, saving 8 header bits
	// (footnote 3 of the paper). Wire encoding then omits the counter;
	// decoding needs the hop count supplied externally via
	// DecodeHeaderAt. Requires a known initial TTL on the wire.
	TTLHopCount bool

	// PhaseTable supplies explicit phase lengths for ScheduleLookup —
	// the lookup-table mechanism §4 describes for bases that are not
	// powers of two, including fractional bases (see
	// FractionalPhaseTable). Beyond the table's end, lengths continue
	// growing by the ratio of its last two entries.
	PhaseTable []uint64

	// Seed selects the hash family shared by all switches.
	Seed uint64
}

// DefaultConfig returns the paper's default evaluation configuration
// (§5): b = 4, c = 1, H = 1, z = 32 raw identifiers, Th = 1, analysis
// schedule.
func DefaultConfig() Config {
	return Config{
		Base:      4,
		Chunks:    1,
		Hashes:    1,
		ZBits:     32,
		Threshold: 1,
		Schedule:  ScheduleAnalysis,
	}
}

// Validate reports whether the configuration is usable.
//
//unroller:allow errctx -- sub-errors are joined under "core: invalid config: %w" by New
func (c Config) Validate() error {
	var errs []error
	if c.Base < 2 {
		errs = append(errs, fmt.Errorf("base b must be ≥ 2, got %d", c.Base))
	}
	if c.Chunks < 1 {
		errs = append(errs, fmt.Errorf("chunks c must be ≥ 1, got %d", c.Chunks))
	}
	if c.Hashes < 1 {
		errs = append(errs, fmt.Errorf("hashes H must be ≥ 1, got %d", c.Hashes))
	}
	if c.ZBits < 1 || c.ZBits > 32 {
		errs = append(errs, fmt.Errorf("z must be in [1, 32] bits, got %d", c.ZBits))
	}
	if c.Threshold < 1 {
		errs = append(errs, fmt.Errorf("threshold Th must be ≥ 1, got %d", c.Threshold))
	}
	switch c.Schedule {
	case ScheduleAnalysis, ScheduleHardware:
		if len(c.PhaseTable) != 0 {
			errs = append(errs, fmt.Errorf("PhaseTable is only meaningful with ScheduleLookup"))
		}
	case ScheduleLookup:
		if len(c.PhaseTable) < 2 {
			errs = append(errs, fmt.Errorf("ScheduleLookup needs a PhaseTable of ≥ 2 lengths, got %d", len(c.PhaseTable)))
		}
		for i, l := range c.PhaseTable {
			if l == 0 {
				errs = append(errs, fmt.Errorf("PhaseTable[%d] is zero", i))
				break
			}
		}
	default:
		errs = append(errs, fmt.Errorf("unknown schedule %v", c.Schedule))
	}
	return errors.Join(errs...)
}

// hashed reports whether identifiers pass through the hash family before
// being stored. Raw storage is only sound for a single full-width slot
// value per switch.
func (c Config) hashed() bool {
	return c.HashIDs || c.Hashes > 1 || c.ZBits < 32
}

// family materialises the hash functions for this configuration.
func (c Config) family() xhash.Family {
	return xhash.NewFamily(c.Seed, c.Hashes)
}

// slotSentinel returns the "empty slot" marker for width z: the all-ones
// value. Stored hashes are mapped into [0, sentinel) so the marker can
// never be a real value; raw 32-bit identifiers must avoid 0xFFFFFFFF
// (the topology ID assigners in this module never produce it).
func slotSentinel(z uint) uint64 { return (uint64(1) << z) - 1 }

// HeaderBits returns the per-packet overhead of this configuration in
// bits: an 8-bit hop counter (elided when it is derived from the TTL),
// c·H identifiers of z bits, and ⌈log2 Th⌉ threshold-counter bits
// (Table 3 and §3.3 of the paper; footnote 2 notes Th itself need not be
// carried).
func (c Config) HeaderBits() int {
	bits := c.Chunks*c.Hashes*int(c.ZBits) + thresholdBits(c.Threshold)
	if !c.TTLHopCount {
		bits += hopCounterBits
	}
	return bits
}

// hopCounterBits is the wire width of Xcnt. IP TTL caps any packet's
// lifetime at 255 hops, so 8 bits always suffice (footnote 3 of the
// paper notes it can even be elided when the TTL is usable directly).
const hopCounterBits = 8

// thresholdBits returns ⌈log2 Th⌉, the wire width of the threshold
// counter. Th = 1 needs no counter at all.
func thresholdBits(th int) int {
	if th <= 1 {
		return 0
	}
	return bits.Len(uint(th - 1))
}

// String summarises the configuration the way the paper's figures label
// their series.
func (c Config) String() string {
	return fmt.Sprintf("unroller(b=%d,c=%d,H=%d,z=%d,Th=%d,%s)",
		c.Base, c.Chunks, c.Hashes, c.ZBits, c.Threshold, c.Schedule)
}
