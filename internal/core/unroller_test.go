package core

import (
	"testing"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// drive runs a fresh state over a prefix+loop walk and returns the
// detection hop (1-based) or 0 if maxHops elapsed undetected.
func drive(t *testing.T, u *Unroller, prefix, loop []detect.SwitchID, maxHops int) int {
	t.Helper()
	st := u.NewPacketState()
	for h := 1; h <= maxHops; h++ {
		var id detect.SwitchID
		if h-1 < len(prefix) {
			id = prefix[h-1]
		} else {
			if len(loop) == 0 {
				return 0
			}
			id = loop[(h-1-len(prefix))%len(loop)]
		}
		if st.Visit(id) == detect.Loop {
			return h
		}
	}
	return 0
}

// TestWorkedExample traces the single-slot b=2 detector hop by hop over a
// fixed walk (B=1, L=3) and checks every intermediate slot value against
// a hand-computed trace — the Figure 1 mechanism made concrete.
func TestWorkedExample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base = 2
	u := MustNew(cfg)
	st := u.NewPacketState()

	prefix := []detect.SwitchID{50}
	loop := []detect.SwitchID{30, 10, 20}
	// hop: switch, expected slot after the hop, expected verdict
	steps := []struct {
		id   detect.SwitchID
		slot uint64
	}{
		{50, 50}, // phase {1}: reset to 50
		{30, 30}, // phase {2,3}: reset to 30
		{10, 10}, // min
		{20, 20}, // phase {4..7}: reset to 20
		{30, 20}, // min keeps 20
		{10, 10},
		{20, 10},
		{30, 30}, // phase {8..15}: reset
		{10, 10},
		{20, 10},
		{30, 10},
	}
	for i, s := range steps {
		if got := st.Visit(s.id); got != detect.Continue {
			t.Fatalf("hop %d (switch %d): unexpected verdict %v", i+1, s.id, got)
		}
		if got := st.Slots()[0]; got != s.slot {
			t.Fatalf("hop %d (switch %d): slot = %d, want %d", i+1, s.id, got, s.slot)
		}
	}
	// Hop 12 revisits switch 10, whose ID is stored: loop reported.
	if got := st.Visit(10); got != detect.Loop {
		t.Fatalf("hop 12: verdict %v, want Loop", got)
	}
	if st.Hops() != 12 {
		t.Fatalf("Xcnt = %d, want 12", st.Hops())
	}
	// Sanity: detection respects Theorem 1 for b=2, B=1, L=3.
	if bound := WorstCaseBound(2, 1, 3); 12 > bound {
		t.Fatalf("detection at hop 12 violates Theorem 1 bound %d", bound)
	}
	_ = prefix
	_ = loop
}

// TestSelfLoop checks the degenerate L=1 loop (a switch forwarding to
// itself): the second visit must report.
func TestSelfLoop(t *testing.T) {
	for _, b := range []int{2, 3, 4, 6} {
		cfg := DefaultConfig()
		cfg.Base = b
		u := MustNew(cfg)
		got := drive(t, u, nil, []detect.SwitchID{7}, 100)
		if got != 2 {
			t.Errorf("b=%d: self-loop detected at hop %d, want 2", b, got)
		}
	}
}

// TestPingPong checks the L=2 loop with and without a prefix.
func TestPingPong(t *testing.T) {
	u := MustNew(DefaultConfig())
	if got := drive(t, u, nil, []detect.SwitchID{3, 9}, 100); got == 0 {
		t.Fatal("ping-pong loop not detected")
	}
	got := drive(t, u, []detect.SwitchID{100, 101, 102}, []detect.SwitchID{3, 9}, 200)
	if got == 0 {
		t.Fatal("ping-pong after prefix not detected")
	}
	if bound := WorstCaseBound(4, 3, 2); got > bound {
		t.Fatalf("detected at %d > Theorem 1 bound %d", got, bound)
	}
}

// randomWalkIDs draws B+L distinct identifiers.
func randomWalkIDs(rng *xrand.Rand, B, L int) (prefix, loop []detect.SwitchID) {
	seen := map[uint32]bool{0xFFFFFFFF: true}
	draw := func() detect.SwitchID {
		for {
			v := rng.Uint32()
			if !seen[v] {
				seen[v] = true
				return detect.SwitchID(v)
			}
		}
	}
	for i := 0; i < B; i++ {
		prefix = append(prefix, draw())
	}
	for i := 0; i < L; i++ {
		loop = append(loop, draw())
	}
	return prefix, loop
}

// TestNoFalseNegativesAndTheorem1 sweeps B and L and random identifier
// draws, asserting that the uncompressed single-slot detector (analysis
// schedule) always detects, never before the X = B+L information floor,
// and never after the Theorem 1 bound.
func TestNoFalseNegativesAndTheorem1(t *testing.T) {
	rng := xrand.New(0xC0FFEE)
	for _, b := range []int{2, 3, 4, 6} {
		cfg := DefaultConfig()
		cfg.Base = b
		u := MustNew(cfg)
		for B := 0; B <= 24; B += 3 {
			for L := 1; L <= 25; L += 2 {
				bound := WorstCaseBound(b, B, L)
				for rep := 0; rep < 8; rep++ {
					prefix, loop := randomWalkIDs(rng, B, L)
					got := drive(t, u, prefix, loop, bound+1)
					if got == 0 {
						t.Fatalf("b=%d B=%d L=%d: not detected within Theorem 1 bound %d", b, B, L, bound)
					}
					if got < B+L {
						t.Fatalf("b=%d B=%d L=%d: detected at hop %d < X=%d (impossible without FP)", b, B, L, got, B+L)
					}
				}
			}
		}
	}
}

// TestAdversarialMinimumPlacement exercises the Lemma 6 adversary: the
// globally minimal identifier sits on the last pre-loop hop, the worst
// case for min-tracking. Theorem 1 must still hold.
func TestAdversarialMinimumPlacement(t *testing.T) {
	rng := xrand.New(0xBAD)
	for _, b := range []int{2, 4} {
		cfg := DefaultConfig()
		cfg.Base = b
		u := MustNew(cfg)
		for B := 1; B <= 20; B += 4 {
			for L := 1; L <= 20; L += 4 {
				prefix, loop := randomWalkIDs(rng, B, L)
				prefix[B-1] = 0 // global minimum right before the loop
				bound := WorstCaseBound(b, B, L)
				got := drive(t, u, prefix, loop, bound+1)
				if got == 0 || got > bound {
					t.Fatalf("b=%d B=%d L=%d adversarial: detected at %d, bound %d", b, B, L, got, bound)
				}
			}
		}
	}
}

// TestHardwareSchedule checks the power-of-b reset variant: no false
// negatives, detection within the hardware bound, and for b=2 exact
// agreement with the analysis schedule (the two schedules coincide).
func TestHardwareSchedule(t *testing.T) {
	rng := xrand.New(42)
	for _, b := range []int{2, 4, 6} {
		hw := DefaultConfig()
		hw.Base = b
		hw.Schedule = ScheduleHardware
		uhw := MustNew(hw)
		an := hw
		an.Schedule = ScheduleAnalysis
		uan := MustNew(an)
		for B := 0; B <= 15; B += 5 {
			for L := 1; L <= 21; L += 4 {
				bound := WorstCaseBoundHardware(b, B, L)
				for rep := 0; rep < 6; rep++ {
					prefix, loop := randomWalkIDs(rng, B, L)
					got := drive(t, uhw, prefix, loop, bound+1)
					if got == 0 || got > bound {
						t.Fatalf("hw b=%d B=%d L=%d: detected at %d, bound %d", b, B, L, got, bound)
					}
					if b == 2 {
						if gotAn := drive(t, uan, prefix, loop, bound+1); gotAn != got {
							t.Fatalf("b=2 schedules disagree: hw=%d analysis=%d", got, gotAn)
						}
					}
				}
			}
		}
	}
}

// TestChunksBound checks the Appendix B multi-chunk variant against its
// worst-case bound, and that more chunks never lose detections.
func TestChunksBound(t *testing.T) {
	rng := xrand.New(7)
	for _, c := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Chunks = c
		cfg.HashIDs = true // multi-slot requires hashed IDs in practice
		u := MustNew(cfg)
		for B := 0; B <= 15; B += 5 {
			for L := 1; L <= 21; L += 5 {
				bound := WorstCaseBoundChunks(cfg.Base, c, B, L)
				for rep := 0; rep < 6; rep++ {
					prefix, loop := randomWalkIDs(rng, B, L)
					got := drive(t, u, prefix, loop, bound+1)
					if got == 0 {
						t.Fatalf("c=%d B=%d L=%d: not detected within Appendix B bound %d", c, B, L, bound)
					}
				}
			}
		}
	}
}

// TestMultiHashDetects checks H > 1: detection still guaranteed, and the
// average detection time does not regress versus H = 1 on a fixed
// workload batch.
func TestMultiHashDetects(t *testing.T) {
	mean := func(h int) float64 {
		cfg := DefaultConfig()
		cfg.Hashes = h
		cfg.HashIDs = true
		u := MustNew(cfg)
		rng := xrand.New(99)
		total := 0.0
		const runs = 400
		for i := 0; i < runs; i++ {
			prefix, loop := randomWalkIDs(rng, 5, 20)
			got := drive(t, u, prefix, loop, 4000)
			if got == 0 {
				t.Fatalf("H=%d: loop not detected", h)
			}
			total += float64(got) / 25.0
		}
		return total / runs
	}
	m1, m4 := mean(1), mean(4)
	if m4 > m1*1.05 {
		t.Errorf("H=4 mean %.3f worse than H=1 mean %.3f", m4, m1)
	}
}

// TestAverageCaseFactor spot-checks the §3.2 claim: with b = 3 and random
// identifiers the mean detection time is at most 3·X (allowing sampling
// slack).
func TestAverageCaseFactor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base = 3
	u := MustNew(cfg)
	rng := xrand.New(123)
	for _, shape := range []struct{ B, L int }{{0, 10}, {5, 20}, {10, 5}, {3, 30}} {
		var total float64
		const runs = 3000
		for i := 0; i < runs; i++ {
			prefix, loop := randomWalkIDs(rng, shape.B, shape.L)
			got := drive(t, u, prefix, loop, 100*(shape.B+shape.L))
			if got == 0 {
				t.Fatalf("B=%d L=%d: undetected", shape.B, shape.L)
			}
			total += float64(got) / float64(shape.B+shape.L)
		}
		mean := total / runs
		if mean > 3.05 {
			t.Errorf("B=%d L=%d: mean %.3f×X exceeds the 3×X average-case bound", shape.B, shape.L, mean)
		}
	}
}

// TestThresholdDelaysDetection checks §3.3: raising Th to k delays
// detection by about (k−1)·L hops and never loses the loop.
func TestThresholdDelaysDetection(t *testing.T) {
	rng := xrand.New(5)
	prefix, loop := randomWalkIDs(rng, 5, 12)
	var at [3]int
	for i, th := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.Threshold = th
		u := MustNew(cfg)
		got := drive(t, u, prefix, loop, 10000)
		if got == 0 {
			t.Fatalf("Th=%d: undetected", th)
		}
		at[i] = got
	}
	if !(at[0] < at[1] && at[1] < at[2]) {
		t.Fatalf("threshold should delay detection monotonically: %v", at)
	}
	// Each extra required match costs exactly one extra trip around the
	// loop once the minimum is latched.
	if at[1]-at[0] != 12 || at[2]-at[1] != 2*12 {
		t.Errorf("threshold delays %d, %d; want 12 and 24 (one loop per extra match)", at[1]-at[0], at[2]-at[1])
	}
}

// TestCompressedStillDetects checks that tiny z never causes a false
// negative — compression can only fire early, not late.
func TestCompressedStillDetects(t *testing.T) {
	rng := xrand.New(17)
	for _, z := range []uint{4, 8, 12} {
		cfg := DefaultConfig()
		cfg.ZBits = z
		u := MustNew(cfg)
		for rep := 0; rep < 50; rep++ {
			prefix, loop := randomWalkIDs(rng, 5, 15)
			bound := WorstCaseBound(4, 5, 15)
			if got := drive(t, u, prefix, loop, bound+1); got == 0 {
				t.Fatalf("z=%d: loop not detected within %d hops", z, bound)
			}
		}
	}
}

// TestCompressedFalsePositiveRate checks the §3.3 trade-off directions on
// a loop-free path: FP rate decreases in z and decreases in Th.
func TestCompressedFalsePositiveRate(t *testing.T) {
	rate := func(z uint, th int) float64 {
		cfg := DefaultConfig()
		cfg.ZBits = z
		cfg.Threshold = th
		u := MustNew(cfg)
		rng := xrand.New(31)
		fp := 0
		const runs = 4000
		for i := 0; i < runs; i++ {
			prefix, _ := randomWalkIDs(rng, 20, 0)
			st := u.NewPacketState()
			for _, id := range prefix {
				if st.Visit(id) == detect.Loop {
					fp++
					break
				}
			}
		}
		return float64(fp) / runs
	}
	r4, r8 := rate(4, 1), rate(8, 1)
	if !(r4 > r8) {
		t.Errorf("FP rate should fall with z: z=4 %.4f, z=8 %.4f", r4, r8)
	}
	r4t2 := rate(4, 2)
	if !(r4t2 < r4) {
		t.Errorf("threshold should cut FP rate: Th=1 %.4f, Th=2 %.4f", r4, r4t2)
	}
	if r8 > 0.25 {
		t.Errorf("z=8 FP rate %.4f implausibly high on a 20-hop path", r8)
	}
}

// TestConfigValidate covers the validation matrix.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Base: 1, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1},
		{Base: 4, Chunks: 0, Hashes: 1, ZBits: 32, Threshold: 1},
		{Base: 4, Chunks: 1, Hashes: 0, ZBits: 32, Threshold: 1},
		{Base: 4, Chunks: 1, Hashes: 1, ZBits: 0, Threshold: 1},
		{Base: 4, Chunks: 1, Hashes: 1, ZBits: 33, Threshold: 1},
		{Base: 4, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 0},
		{Base: 4, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1, Schedule: 99},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New should reject config %d", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// TestHeaderBits checks the Table 3 cost model.
func TestHeaderBits(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Base: 4, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1}, 8 + 32},
		{Config{Base: 4, Chunks: 2, Hashes: 2, ZBits: 16, Threshold: 1}, 8 + 4*16},
		{Config{Base: 4, Chunks: 1, Hashes: 1, ZBits: 7, Threshold: 4}, 8 + 7 + 2},
		{Config{Base: 4, Chunks: 1, Hashes: 1, ZBits: 7, Threshold: 2}, 8 + 7 + 1},
	}
	for _, c := range cases {
		if got := c.cfg.HeaderBits(); got != c.want {
			t.Errorf("%v HeaderBits = %d, want %d", c.cfg, got, c.want)
		}
	}
	// The §3.3 worked example: z=7, Th=4 runs at 9 bits of ID+counter
	// overhead, a 72% reduction versus a 32-bit identifier.
	full := Config{Base: 4, Chunks: 1, Hashes: 1, ZBits: 32, Threshold: 1}
	small := Config{Base: 4, Chunks: 1, Hashes: 1, ZBits: 7, Threshold: 4}
	fullID := full.HeaderBits() - 8
	smallID := small.HeaderBits() - 8
	saving := 1 - float64(smallID)/float64(fullID)
	if saving < 0.70 || saving > 0.74 {
		t.Errorf("z=7,Th=4 saves %.0f%% of ID bits, want ≈72%%", saving*100)
	}
}

// TestDetectorInterface ensures the facade types satisfy the contract.
func TestDetectorInterface(t *testing.T) {
	u := MustNew(DefaultConfig())
	if u.Name() == "" {
		t.Error("empty detector name")
	}
	if u.BitOverhead(100) != u.BitOverhead(1) {
		t.Error("Unroller overhead must be path-length independent")
	}
	st := u.NewState()
	if st.Visit(detect.SwitchID(1)) != detect.Continue {
		t.Error("first hop cannot be a loop")
	}
}
