// Package xrand provides deterministic, seedable pseudo-random number
// generation for the simulation harness.
//
// The standard library's math/rand is avoided on purpose: the Monte Carlo
// engine forks one generator per worker from a single experiment seed, and
// results must be bit-for-bit reproducible across runs and Go versions.
// SplitMix64 is used for stream splitting and xoshiro256** for bulk
// generation, both with published reference outputs that the tests check.
package xrand

// SplitMix64 is a tiny, fast generator with a 64-bit state. It is primarily
// used to seed other generators: consecutive outputs of a SplitMix64 stream
// are statistically independent enough to serve as seeds for parallel
// workers.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is the SplitMix64 output finalizer: a full-avalanche bijection
// on 64-bit words.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix3 is a stateless keyed hash of three words, built from chained
// SplitMix64 finalizer rounds with the golden-ratio increment between
// inputs. It powers seeded *event streams*: a fault model that must
// decide, for every (flow, hop) pair, whether an event fires can call
// Mix3(seed, flow, hop) and get the same verdict no matter which worker
// asks or in what order — the property that keeps fault injection
// replayable and worker-count-invariant, which a shared stateful
// generator cannot provide under concurrency.
func Mix3(a, b, c uint64) uint64 {
	h := mix64(a + 0x9e3779b97f4a7c15)
	h = mix64(h ^ (b + 0x9e3779b97f4a7c15))
	h = mix64(h ^ (c + 0x9e3779b97f4a7c15))
	return h
}

// Rand is the workhorse generator (xoshiro256**). The zero value is not
// usable; construct with New or NewFrom.
type Rand struct {
	s [4]uint64
}

// New returns a generator whose state is expanded from seed via SplitMix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// NewFrom derives an independent child generator from r. It consumes two
// values from r, so children forked in sequence get distinct streams.
func (r *Rand) NewFrom() *Rand {
	return New(r.Uint64() ^ rotl(r.Uint64(), 13))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Debiasing uses Lemire's multiply-shift rejection method.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Rejection sampling to remove modulo bias.
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// DistinctUint32 fills out with n distinct uniform 32-bit values.
// It is used to assign unique switch identifiers: the paper's evaluation
// draws "randomly generated 32-bit numbers" and uniqueness keeps the
// full-width detector free of false positives.
func (r *Rand) DistinctUint32(n int) []uint32 {
	out := make([]uint32, 0, n)
	seen := make(map[uint32]struct{}, n)
	for len(out) < n {
		v := r.Uint32()
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
