package xrand

import (
	"testing"
	"testing/quick"
)

// TestSplitMix64Reference checks against the published reference outputs
// of SplitMix64 for seed 1234567 (from the author's C reference
// implementation).
func TestSplitMix64Reference(t *testing.T) {
	sm := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

// TestDeterminism: same seed, same stream; different seed, different
// stream.
func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

// TestForkIndependence: a child stream should not replicate the parent.
func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.NewFrom()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream matches parent %d/1000 times", same)
	}
}

// TestIntnRange: Intn stays in range and covers all residues.
func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 16, 100} {
		seen := make([]bool, n)
		for i := 0; i < n*200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

// TestIntnPanics: non-positive bounds are misuse.
func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

// TestUint64nUnbiased: chi-square-lite uniformity over a non-power-of-two
// modulus.
func TestUint64nUnbiased(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	for v, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("residue %d drawn %d times, expected ≈%d", v, c, draws/n)
		}
	}
}

// TestFloat64Range via quick-check over seeds.
func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPerm: valid permutations, varying across draws.
func TestPerm(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	identity := 0
	for trial := 0; trial < 50; trial++ {
		q := r.Perm(10)
		same := true
		for i := range q {
			if q[i] != i {
				same = false
				break
			}
		}
		if same {
			identity++
		}
	}
	if identity > 2 {
		t.Errorf("identity permutation drawn %d/50 times", identity)
	}
}

// TestDistinctUint32: all distinct, correct count.
func TestDistinctUint32(t *testing.T) {
	r := New(3)
	ids := r.DistinctUint32(5000)
	if len(ids) != 5000 {
		t.Fatalf("got %d ids", len(ids))
	}
	seen := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

// TestUint32Uniformity: high/low halves balanced.
func TestUint32Uniformity(t *testing.T) {
	r := New(9)
	hi := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Uint32() >= 1<<31 {
			hi++
		}
	}
	if hi < draws*45/100 || hi > draws*55/100 {
		t.Errorf("high-half fraction %d/%d", hi, draws)
	}
}

// TestBool balance.
func TestBool(t *testing.T) {
	r := New(13)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Errorf("Bool true fraction %d/10000", trues)
	}
}

// TestZeroSeedUsable: the all-zero expansion guard.
func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("zero seed produced a dead stream")
	}
}
