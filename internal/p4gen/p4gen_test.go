package p4gen

import (
	"fmt"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/core"
)

// TestGenerateDefault: the paper's default configuration produces a
// structurally correct program.
func TestGenerateDefault(t *testing.T) {
	p, err := Generate(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotCount != 1 || p.ZBits != 32 {
		t.Fatalf("metadata %+v", p)
	}
	for _, want := range []string{
		"bit<8> xcnt;",
		"bit<32> swid_0;",
		"register<bit<32>>(1) my_id_h0;",
		"control UnrollerIngress",
		"PHASE_START", // analysis schedule uses the lookup table
	} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("generated program missing %q", want)
		}
	}
	if strings.Contains(p.Source, "thcnt") {
		t.Error("Th=1 must not emit a threshold counter")
	}
	if p.UsesBitwisePhaseCheck {
		t.Error("analysis schedule cannot use the bitwise check")
	}
	// The analysis-schedule phase starts below 256 are 1, 2, 4, 8, 22,
	// 86: starts at 1 + (4^i − 1)/3 → 1, 2, 6, 22, 86 … recompute via
	// the core table instead of hand-listing.
	entries := phaseStartEntries(core.DefaultConfig())
	if p.PhaseTableEntries != len(entries) {
		t.Errorf("table entries %d, want %d", p.PhaseTableEntries, len(entries))
	}
}

// TestGenerateHardwareBitwise: b ∈ {2, 4} on the hardware schedule use
// bitwise phase checks instead of a table.
func TestGenerateHardwareBitwise(t *testing.T) {
	for _, base := range []int{2, 4} {
		cfg := core.DefaultConfig()
		cfg.Base = base
		cfg.Schedule = core.ScheduleHardware
		p, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !p.UsesBitwisePhaseCheck {
			t.Fatalf("b=%d hardware should be bitwise", base)
		}
		if strings.Contains(p.Source, "PHASE_START") {
			t.Errorf("b=%d: table emitted despite bitwise check", base)
		}
		if !strings.Contains(p.Source, "(xcnt & (xcnt - 1)) == 0") {
			t.Errorf("b=%d: bitwise power check missing", base)
		}
		if base == 4 && !strings.Contains(p.Source, "0x55") {
			t.Error("b=4 needs the even-bit-position mask")
		}
	}
	// b=6 hardware still needs the table.
	cfg := core.DefaultConfig()
	cfg.Base = 6
	cfg.Schedule = core.ScheduleHardware
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.UsesBitwisePhaseCheck || !strings.Contains(p.Source, "PHASE_START") {
		t.Error("b=6 hardware must fall back to the lookup table")
	}
}

// TestGenerateMultiSlotThreshold: the §3.3/Appendix B configuration
// emits every slot, the threshold counter, and alignment padding.
func TestGenerateMultiSlotThreshold(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Chunks, cfg.Hashes, cfg.ZBits, cfg.Threshold, cfg.HashIDs = 2, 2, 7, 4, true
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotCount != 4 {
		t.Fatalf("slots %d", p.SlotCount)
	}
	for i := 0; i < 4; i++ {
		if !strings.Contains(p.Source, fmt.Sprintf("bit<7> swid_%d;", i)) {
			t.Errorf("slot %d missing", i)
		}
	}
	if !strings.Contains(p.Source, "bit<2> thcnt;") {
		t.Error("Th=4 needs a 2-bit counter")
	}
	if !strings.Contains(p.Source, "thcnt == 3") {
		t.Error("report must fire at Th−1 (footnote 2)")
	}
	// 8 + 4·7 + 2 = 38 bits → 2 bits of padding.
	if !strings.Contains(p.Source, "bit<2> _pad;") {
		t.Error("padding to byte alignment missing")
	}
	if !strings.Contains(p.Source, "register<bit<7>>(1) my_id_h1;") {
		t.Error("second hash register missing")
	}
}

// TestGenerateTTLVariant: footnote 3 drops the xcnt field.
func TestGenerateTTLVariant(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.TTLHopCount = true
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Source, "bit<8> xcnt;") {
		t.Error("TTL variant must not carry xcnt")
	}
	if !strings.Contains(p.Source, "255 - std.ttl_proxy") {
		t.Error("TTL derivation missing")
	}
}

// TestGenerateRejectsInvalid.
func TestGenerateRejectsInvalid(t *testing.T) {
	if _, err := Generate(core.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestGenerateLookupSchedule: the fractional-base variant compiles its
// phase starts into the table constant.
func TestGenerateLookupSchedule(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Schedule = core.ScheduleLookup
	cfg.PhaseTable = core.FractionalPhaseTable(core.OptimalWorstCaseBase(), 24)
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.UsesBitwisePhaseCheck {
		t.Fatal("lookup schedule cannot be bitwise")
	}
	if !strings.Contains(p.Source, "PHASE_START") || p.PhaseTableEntries < 4 {
		t.Fatalf("phase table missing: %d entries", p.PhaseTableEntries)
	}
}

// TestBitmap256 pins the const encoding.
func TestBitmap256(t *testing.T) {
	s := bitmap256([]int{0, 1, 64, 255})
	if !strings.HasPrefix(s, "0x8000000000000000") {
		t.Errorf("bit 255 not set: %s", s)
	}
	if !strings.HasSuffix(s, "0000000000000003") {
		t.Errorf("bits 0,1 not set: %s", s)
	}
	if len(s) != 2+64 {
		t.Errorf("literal length %d", len(s))
	}
}
