package p4gen_test

import (
	"fmt"
	"strings"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/p4gen"
)

// ExampleGenerate emits the §4 P4 artifact for the paper's hardware
// configuration and inspects its structure.
func ExampleGenerate() {
	cfg := core.DefaultConfig()
	cfg.Schedule = core.ScheduleHardware // b=4: bitwise phase check
	prog, _ := p4gen.Generate(cfg)
	fmt.Printf("slots=%d z=%d bitwise=%v lines=%v\n",
		prog.SlotCount, prog.ZBits, prog.UsesBitwisePhaseCheck,
		strings.Count(prog.Source, "\n") > 40)
	// Output:
	// slots=1 z=32 bitwise=true lines=true
}
