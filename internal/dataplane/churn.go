package dataplane

import (
	"fmt"
	"strings"
)

// The churn driver alternates quiesced fault application with traffic
// bursts, emulating a network whose control plane mutates state *between*
// packet batches — the granularity at which the determinism contract
// holds. One epoch is:
//
//	apply this epoch's scheduled faults   (traffic quiesced)
//	inject the epoch's flow batch         (workers race freely)
//	advance the controller's logical tick (traffic quiesced again)
//
// Because every shared-state mutation happens at the boundaries and every
// per-hop fault decision is a pure function of (seed, flow, hop), the
// result — event log, disposition table, controller stats — is identical
// for any worker count and replayable from the scenario seed.

// ChurnEpoch is one epoch's traffic: the flows injected after that
// epoch's faults fire.
type ChurnEpoch struct {
	Flows []Flow
}

// EpochSummary aggregates one epoch's traffic outcome.
type EpochSummary struct {
	Epoch        int
	Flows        int
	Hops         uint64
	Reports      uint64
	Dispositions [NumDispositions]uint64
}

// ChurnResult is the replayable outcome of a churn run. Every field is a
// deterministic function of (topology, plan, flows): the log records the
// faults as they fired plus one summary line per epoch, and the tables
// hold worker-count-invariant aggregates.
type ChurnResult struct {
	Epochs       int
	Flows        int
	Hops         uint64
	Reports      uint64
	Dispositions [NumDispositions]uint64
	PerEpoch     []EpochSummary
	Log          []string
	Controller   ControllerStats
}

// Table renders the disposition table as stable text, one line per
// disposition in declaration order (zero rows included, so the shape
// never varies between runs).
func (r *ChurnResult) Table() string {
	var b strings.Builder
	for d := 0; d < NumDispositions; d++ {
		fmt.Fprintf(&b, "%-14s %d\n", Disposition(d).String(), r.Dispositions[d])
	}
	return b.String()
}

// ChurnObserver watches a churn run at its quiesced epoch boundaries —
// the only instants where the network's shared state is stable and an
// external view of it is sound. EpochStart fires after the epoch's
// faults have been applied and before any traffic moves; EpochEnd fires
// after the epoch's traffic has fully drained (sums is empty for
// fault-only epochs) and before the controller tick. Both run with
// traffic quiesced, so the observer may read any network state without
// synchronisation. A non-nil error aborts the run.
//
// The cross-plane verification oracle (internal/verify) implements this
// to compute static ground truth per epoch and reconcile it against the
// detections carried in the summaries.
type ChurnObserver interface {
	EpochStart(epoch int, events []FaultEvent) error
	EpochEnd(epoch int, sums []TraceSummary) error
}

// RunChurn drives the engine through the fault plan: epoch e applies
// plan.At(e), injects epochs[e].Flows (when present), then ticks the
// controller clock. The run spans max(len(epochs), plan.Epochs()) epochs,
// so trailing fault-only epochs still fire. Traffic errors abort the run;
// fault application errors do too (a plan referencing a missing link is a
// scenario bug, not a network condition).
func RunChurn(eng *TrafficEngine, plan *FaultPlan, epochs []ChurnEpoch) (*ChurnResult, error) {
	return RunChurnObserved(eng, plan, epochs, nil)
}

// RunChurnObserved is RunChurn with a ChurnObserver attached at every
// epoch boundary; a nil observer makes it identical to RunChurn.
func RunChurnObserved(eng *TrafficEngine, plan *FaultPlan, epochs []ChurnEpoch, obs ChurnObserver) (*ChurnResult, error) {
	net := eng.Network()
	total := len(epochs)
	if plan != nil && plan.Epochs() > total {
		total = plan.Epochs()
	}
	res := &ChurnResult{Epochs: total}
	for e := 0; e < total; e++ {
		var events []FaultEvent
		if plan != nil {
			events = plan.At(e)
			for _, ev := range events {
				if err := net.ApplyFault(ev); err != nil {
					return res, fmt.Errorf("dataplane: epoch %d fault %q: %w", e, ev.String(), err)
				}
				res.Log = append(res.Log, fmt.Sprintf("[epoch %d] fault: %s", e, ev))
			}
		}
		if obs != nil {
			if err := obs.EpochStart(e, events); err != nil {
				return res, fmt.Errorf("dataplane: epoch %d observer: %w", e, err)
			}
		}
		es := EpochSummary{Epoch: e}
		var sums []TraceSummary
		if e < len(epochs) && len(epochs[e].Flows) > 0 {
			var err error
			sums, err = eng.SendMany(epochs[e].Flows)
			if err != nil {
				return res, err
			}
			es.Flows = len(sums)
			for i := range sums {
				s := &sums[i]
				es.Hops += uint64(s.Hops)
				es.Reports += uint64(s.Reports)
				es.Dispositions[s.Final]++
			}
		}
		if obs != nil {
			if err := obs.EpochEnd(e, sums); err != nil {
				return res, fmt.Errorf("dataplane: epoch %d observer: %w", e, err)
			}
		}
		res.Flows += es.Flows
		res.Hops += es.Hops
		res.Reports += es.Reports
		for d := 0; d < NumDispositions; d++ {
			res.Dispositions[d] += es.Dispositions[d]
		}
		res.PerEpoch = append(res.PerEpoch, es)
		res.Log = append(res.Log, fmt.Sprintf(
			"[epoch %d] flows=%d hops=%d reports=%d delivered=%d looped=%d dropped-link=%d corrupted=%d",
			e, es.Flows, es.Hops, es.Reports,
			es.Dispositions[Deliver], es.Dispositions[DropLoop],
			es.Dispositions[DropLink], es.Dispositions[DropCorrupt]))
		net.Controller.Tick()
	}
	res.Controller = net.Controller.Stats()
	return res, nil
}
