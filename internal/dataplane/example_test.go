package dataplane_test

import (
	"fmt"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// Example shows the emulator's whole arc: route a torus, misconfigure a
// square of FIBs, and let Unroller catch the loop on a live packet while
// a telemetry-less packet burns its TTL.
func Example() {
	g, _ := topology.Torus(4, 4)
	assign := topology.NewAssignment(g, xrand.New(2))
	net, _ := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	net.SetLoopPolicy(dataplane.ActionDrop)

	dst := 15
	net.InstallShortestPaths(dst)
	net.InjectLoop(dst, topology.Cycle{5, 6, 10, 9})

	withTel, _ := net.Send(5, dst, 1, 255, true)
	withoutTel, _ := net.Send(5, dst, 2, 255, false)
	fmt.Printf("with telemetry: %v after %d hops (reported: %v)\n",
		withTel.Final, len(withTel.Hops), withTel.Report != nil)
	fmt.Printf("without:        %v after %d hops\n", withoutTel.Final, len(withoutTel.Hops))
	// Output:
	// with telemetry: drop-loop after 13 hops (reported: true)
	// without:        drop-ttl after 256 hops
}

// ExampleNetwork_SetLoopPolicy contrasts the three reactions on the same
// loop.
func ExampleNetwork_SetLoopPolicy() {
	for _, policy := range []dataplane.LoopAction{
		dataplane.ActionDrop, dataplane.ActionCollect,
	} {
		g, _ := topology.Torus(4, 4)
		assign := topology.NewAssignment(g, xrand.New(2))
		net, _ := dataplane.NewNetwork(g, assign, core.DefaultConfig())
		net.SetLoopPolicy(policy)
		net.InstallShortestPaths(15)
		net.InjectLoop(15, topology.Cycle{5, 6, 10, 9})
		net.Send(5, 15, 1, 255, true)
		fmt.Printf("%v: reports=%d memberships=%d\n",
			policy, net.Controller.Count(), len(net.Controller.Memberships()))
	}
	// Output:
	// drop: reports=1 memberships=0
	// collect: reports=2 memberships=1
}
