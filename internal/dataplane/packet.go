// Package dataplane is the software stand-in for the paper's P4/FPGA
// prototype (§4): a byte-level packet format carrying the Unroller header,
// a per-switch ingress pipeline structured like the paper's single P4
// control block (parse → read registers → increment Xcnt → hash → compare
// → update → deparse), a forwarding network built from a topology with
// per-switch FIBs, loop injection by FIB misconfiguration, loop reports to
// a controller, and the reroute-on-detect reaction the paper sketches in
// its conclusion.
//
// The pipeline reuses the bit-exact header codec of internal/core, so the
// emulator and the Monte Carlo simulator execute the identical algorithm;
// the package tests cross-check detection hop counts between the two.
package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/unroller/unroller/internal/detect"
)

// Wire layout of the emulator's frame, big-endian like real network
// headers:
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     flags (bit 0: telemetry is a collection record)
//	2       1     TTL
//	3       4     flow id
//	7       4     source switch id
//	11      4     destination switch id
//	15      1     telemetry length in bytes (0 = absent)
//	16      n     telemetry: Unroller header, or a collection record
//	              when FlagCollect is set (see collect.go)
//	16+n    …     payload
const (
	frameVersion    = 1
	fixedHeaderSize = 16
)

// Frame flags.
const (
	// FlagCollect marks a packet that has already triggered a loop
	// report and is now circulating the loop once more to record the
	// identifiers of the participating switches (§3.5 of the paper:
	// "tag the packet to collect the involved switch IDs and send a
	// report for analysis").
	FlagCollect uint8 = 1 << 0

	// knownFlags is the set of flag bits this parser understands.
	// Unmarshal rejects frames with any other bit set: silently
	// accepting them would let a future extension flag be carried —
	// and misinterpreted — by parsers that predate it.
	knownFlags = FlagCollect
)

// ErrMalformed is returned when a frame cannot be parsed.
var ErrMalformed = errors.New("dataplane: malformed frame")

// Packet is the parsed representation of a frame.
type Packet struct {
	// Flags carries frame flags (FlagCollect).
	Flags uint8
	// TTL is decremented per hop; the packet is dropped at zero — the
	// fate Unroller exists to preempt.
	TTL uint8
	// Flow identifies the five-tuple surrogate.
	Flow uint32
	// Src and Dst are switch identifiers of the ingress and egress
	// edge; forwarding is destination-based.
	Src, Dst detect.SwitchID
	// Telemetry is the raw Unroller header carried in-band (nil when
	// the feature is disabled on this packet).
	Telemetry []byte
	// Payload is the opaque application data.
	Payload []byte
}

// Marshal serialises the packet into a fresh buffer.
func (p *Packet) Marshal() ([]byte, error) { return p.MarshalAppend(nil) }

// MarshalAppend serialises the packet onto the end of buf, growing it
// only when its capacity is insufficient, and returns the extended
// slice. A hop loop that alternates two scratch buffers therefore stops
// allocating once both have reached the frame size. buf must not alias
// p.Telemetry or p.Payload (the ping-pong in Network sends guarantees
// this by marshalling into the buffer the packet was not parsed from).
func (p *Packet) MarshalAppend(buf []byte) ([]byte, error) {
	if len(p.Telemetry) > 255 {
		return nil, fmt.Errorf("%w: telemetry %d bytes exceeds the 1-byte length field", ErrMalformed, len(p.Telemetry))
	}
	off := len(buf)
	total := off + fixedHeaderSize + len(p.Telemetry) + len(p.Payload)
	if cap(buf) >= total {
		buf = buf[:total]
	} else {
		grown := make([]byte, total)
		copy(grown, buf[:off])
		buf = grown
	}
	b := buf[off:]
	b[0] = frameVersion
	b[1] = p.Flags
	b[2] = p.TTL
	binary.BigEndian.PutUint32(b[3:], p.Flow)
	binary.BigEndian.PutUint32(b[7:], uint32(p.Src))
	binary.BigEndian.PutUint32(b[11:], uint32(p.Dst))
	b[15] = byte(len(p.Telemetry))
	copy(b[fixedHeaderSize:], p.Telemetry)
	copy(b[fixedHeaderSize+len(p.Telemetry):], p.Payload)
	return buf, nil
}

// Unmarshal parses a frame. The telemetry and payload slices alias buf.
func (p *Packet) Unmarshal(buf []byte) error {
	if len(buf) < fixedHeaderSize {
		return fmt.Errorf("%w: %d bytes, need %d", ErrMalformed, len(buf), fixedHeaderSize)
	}
	if buf[0] != frameVersion {
		return fmt.Errorf("%w: version %d", ErrMalformed, buf[0])
	}
	if bad := buf[1] &^ knownFlags; bad != 0 {
		return fmt.Errorf("%w: unknown flag bits %#02x", ErrMalformed, bad)
	}
	tlen := int(buf[15])
	if len(buf) < fixedHeaderSize+tlen {
		return fmt.Errorf("%w: telemetry truncated (%d of %d bytes)", ErrMalformed, len(buf)-fixedHeaderSize, tlen)
	}
	p.Flags = buf[1]
	p.TTL = buf[2]
	p.Flow = binary.BigEndian.Uint32(buf[3:])
	p.Src = detect.SwitchID(binary.BigEndian.Uint32(buf[7:]))
	p.Dst = detect.SwitchID(binary.BigEndian.Uint32(buf[11:]))
	if tlen > 0 {
		p.Telemetry = buf[fixedHeaderSize : fixedHeaderSize+tlen]
	} else {
		p.Telemetry = nil
	}
	p.Payload = buf[fixedHeaderSize+tlen:]
	return nil
}

// String summarises the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{flow=%d %v→%v ttl=%d tel=%dB pay=%dB}",
		p.Flow, p.Src, p.Dst, p.TTL, len(p.Telemetry), len(p.Payload))
}
