package dataplane

import (
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// TestPacketRoundTrip: marshal/unmarshal is the identity.
func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		TTL:       64,
		Flow:      0xCAFE,
		Src:       detect.SwitchID(0x1111),
		Dst:       detect.SwitchID(0x2222),
		Telemetry: []byte{1, 2, 3, 4, 5},
		Payload:   []byte("hello"),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if q.TTL != p.TTL || q.Flow != p.Flow || q.Src != p.Src || q.Dst != p.Dst {
		t.Fatalf("fixed fields: %v vs %v", &q, p)
	}
	if string(q.Telemetry) != string(p.Telemetry) || string(q.Payload) != string(p.Payload) {
		t.Fatal("variable fields")
	}
	if !strings.Contains(q.String(), "flow=51966") {
		t.Fatalf("String: %s", q.String())
	}
}

// TestPacketMalformed: truncation, version, oversized telemetry.
func TestPacketMalformed(t *testing.T) {
	var q Packet
	if err := q.Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("short frame accepted")
	}
	good, _ := (&Packet{TTL: 1}).Marshal()
	good[0] = 9
	if err := q.Unmarshal(good); err == nil {
		t.Fatal("bad version accepted")
	}
	good[0] = 1
	good[15] = 200 // telemetry length beyond the buffer
	if err := q.Unmarshal(good); err == nil {
		t.Fatal("truncated telemetry accepted")
	}
	big := &Packet{Telemetry: make([]byte, 300)}
	if _, err := big.Marshal(); err == nil {
		t.Fatal("oversized telemetry accepted")
	}
}

// buildNet wires a network over a graph with deterministic ids.
func buildNet(t *testing.T, g *topology.Graph, cfg core.Config, seed uint64) *Network {
	t.Helper()
	assign := topology.NewAssignment(g, xrand.New(seed))
	n, err := NewNetwork(g, assign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestDeliveryWithoutLoop: clean shortest-path forwarding delivers, no
// reports, telemetry intact end to end.
func TestDeliveryWithoutLoop(t *testing.T) {
	g, _ := topology.FatTree(4)
	n := buildNet(t, g, core.DefaultConfig(), 1)
	if err := n.InstallShortestPaths(19); err != nil {
		t.Fatal(err)
	}
	tr, err := n.Send(0, 19, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != Deliver {
		t.Fatalf("final %v, want deliver; trace %v", tr.Final, tr.Hops)
	}
	if tr.Report != nil || n.Controller.Count() != 0 {
		t.Fatal("clean path raised a loop report")
	}
	// FatTree diameter is 4: the path is at most 5 switches.
	if len(tr.Hops) > 5 {
		t.Fatalf("path too long: %d hops", len(tr.Hops))
	}
}

// TestLoopDetectedAndDropped: inject a loop, packet must be dropped by a
// loop report (not TTL), and the controller hears about it.
func TestLoopDetectedAndDropped(t *testing.T) {
	g, _ := topology.Torus(4, 4)
	n := buildNet(t, g, core.DefaultConfig(), 2)
	dst := 15
	if err := n.InstallShortestPaths(dst); err != nil {
		t.Fatal(err)
	}
	// Remove backups so detection drops instead of deflecting.
	for node := 0; node < g.N(); node++ {
		n.Switch(node).backup = map[detect.SwitchID]PortID{}
	}
	cycle := topology.Cycle{5, 6, 10, 9} // a unit square on the torus
	if err := cycle.Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectLoop(dst, cycle); err != nil {
		t.Fatal(err)
	}
	// Inject at a switch on the cycle so the dst-bound packet is
	// guaranteed to enter the misconfigured region.
	tr, err := n.Send(5, dst, 7, 255, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropLoop {
		t.Fatalf("final %v, want drop-loop; hops=%d", tr.Final, len(tr.Hops))
	}
	if tr.Report == nil || n.Controller.Count() == 0 {
		t.Fatal("no report delivered")
	}
	// The reporter must be a switch on the injected cycle.
	node := n.Assign.Node(tr.Report.Reporter)
	if !cycle.Contains(node) {
		t.Fatalf("reporter node %d not on the cycle %v", node, cycle)
	}
	// Detection must beat TTL death by a wide margin.
	if len(tr.Hops) > 80 {
		t.Fatalf("detection took %d hops", len(tr.Hops))
	}
}

// TestLoopWithoutTelemetryDiesByTTL: the counterfactual the paper
// motivates with — without in-band detection the packet burns its TTL.
func TestLoopWithoutTelemetryDiesByTTL(t *testing.T) {
	g, _ := topology.Torus(4, 4)
	n := buildNet(t, g, core.DefaultConfig(), 3)
	dst := 15
	if err := n.InstallShortestPaths(dst); err != nil {
		t.Fatal(err)
	}
	cycle := topology.Cycle{5, 6, 10, 9}
	if err := n.InjectLoop(dst, cycle); err != nil {
		t.Fatal(err)
	}
	tr, err := n.Send(5, dst, 7, 255, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropTTL {
		t.Fatalf("final %v, want drop-ttl", tr.Final)
	}
	if len(tr.Hops) < 250 {
		t.Fatalf("TTL death after only %d hops", len(tr.Hops))
	}
	if n.Controller.Count() != 0 {
		t.Fatal("report without telemetry?")
	}
}

// TestRerouteOnDetect: with backup ports installed, the packet escapes
// the loop and still reaches the destination.
func TestRerouteOnDetect(t *testing.T) {
	g, _ := topology.Torus(4, 4)
	n := buildNet(t, g, core.DefaultConfig(), 4)
	dst := 15
	if err := n.InstallShortestPaths(dst); err != nil {
		t.Fatal(err)
	}
	cycle := topology.Cycle{5, 6, 10, 9}
	if err := n.InjectLoop(dst, cycle); err != nil {
		t.Fatal(err)
	}
	delivered := false
	for _, src := range []int{5, 6, 10, 9} { // start inside the loop
		if delivered {
			break
		}
		tr, err := n.Send(src, dst, uint32(src), 255, true)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Rerouted && tr.Final == Deliver {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("no packet escaped the loop via a backup port")
	}
	if n.Controller.Count() == 0 {
		t.Fatal("reroute must still report")
	}
}

// TestEmulatorMatchesSimulator: drive the identical walk through the
// Monte Carlo simulator and the byte-level emulator; detection must land
// at the same hop. This pins the two substrates to one semantics.
func TestEmulatorMatchesSimulator(t *testing.T) {
	g, _ := topology.Torus(5, 5)
	rng := xrand.New(6)
	for trial := 0; trial < 30; trial++ {
		sc, err := sim.SampleScenario(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Cycle.Contains(sc.Dst) {
			// A loop through the destination delivers before it
			// can loop; the walk abstraction has no destination,
			// so such scenarios are not comparable.
			continue
		}
		cfg := core.DefaultConfig()
		det := core.MustNew(cfg)
		w := sc.Walk()
		simOut := sim.Run(det, w, 40*w.X()+64)
		if !simOut.Detected {
			t.Fatal("simulator missed")
		}

		// Emulator: same assignment, loop injected for a dst beyond
		// the attachment; source at the path head.
		n, err := NewNetwork(g, sc.Assign, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dst := sc.Dst
		if err := n.InstallShortestPaths(dst); err != nil {
			t.Fatal(err)
		}
		// Pin the pre-loop segment to the sampled path, then the
		// cycle.
		dstID := sc.Assign.ID(dst)
		for i := 0; i+1 <= sc.Attach; i++ {
			u, v := sc.Path[i], sc.Path[i+1]
			p, err := n.portTo(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Switch(u).SetRoute(dstID, p); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.InjectLoop(dst, sc.Cycle); err != nil {
			t.Fatal(err)
		}
		for node := 0; node < g.N(); node++ {
			n.Switch(node).backup = map[detect.SwitchID]PortID{}
		}
		tr, err := n.Send(sc.Path[0], dst, 1, 255, true)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Final != DropLoop {
			t.Fatalf("trial %d: emulator final %v (sim detected at %d)", trial, tr.Final, simOut.Hops)
		}
		// The emulator's first hop is the source switch itself, which
		// the walk model does not count (the walk starts at the first
		// forwarding switch). Compare detection switch and hop count.
		if tr.Report.Hops != simOut.Hops {
			t.Fatalf("trial %d: emulator detected after %d hops, simulator %d", trial, tr.Report.Hops, simOut.Hops)
		}
		if tr.Report.Reporter != simOut.Reporter {
			t.Fatalf("trial %d: reporters differ: %v vs %v", trial, tr.Report.Reporter, simOut.Reporter)
		}
	}
}

// TestControllerAggregation.
func TestControllerAggregation(t *testing.T) {
	c := NewController()
	c.Deliver(detect.Report{Reporter: 5, Hops: 10}, 1)
	c.Deliver(detect.Report{Reporter: 5, Hops: 12}, 1)
	c.Deliver(detect.Report{Reporter: 9, Hops: 8}, 2)
	if c.Count() != 3 {
		t.Fatal("count")
	}
	top := c.TopReporters()
	if len(top) != 2 || top[0] != 5 {
		t.Fatalf("top reporters %v", top)
	}
	if len(c.Events()) != 3 {
		t.Fatal("events")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset")
	}
}

// TestSwitchValidation: bad ports rejected; stats accumulate.
func TestSwitchValidation(t *testing.T) {
	g, _ := topology.Ring(4)
	n := buildNet(t, g, core.DefaultConfig(), 8)
	sw := n.Switch(0)
	if err := sw.SetRoute(detect.SwitchID(1), PortID(99)); err == nil {
		t.Fatal("bad port accepted")
	}
	if err := sw.SetBackup(detect.SwitchID(1), PortID(-1)); err == nil {
		t.Fatal("bad backup accepted")
	}
	if sw.Ports() != 2 {
		t.Fatalf("ring switch has %d ports", sw.Ports())
	}
	if len(sw.PhaseStartLUT()) != 256 {
		t.Fatal("phase LUT size")
	}
	// No route: drop and count.
	pkt := &Packet{TTL: 4, Dst: detect.SwitchID(0xDEAD)}
	dec, err := sw.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Disposition != DropNoRoute || sw.Stats().NoRoute != 1 {
		t.Fatalf("no-route handling: %v", dec.Disposition)
	}
}

// TestInstallShortestPathsDegenerate: degenerate inputs fail with clear
// errors instead of panics or the confusing portTo "no link to -1".
func TestInstallShortestPathsDegenerate(t *testing.T) {
	g, _ := topology.Ring(4)
	n := buildNet(t, g, core.DefaultConfig(), 10)
	for _, dst := range []int{-1, 4, 99} {
		err := n.InstallShortestPaths(dst)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("dst %d: err = %v, want out-of-range error", dst, err)
		}
	}
	// Disconnected: reachability error, not a next-hop one.
	island := topology.NewGraph("island", 3)
	for i := 0; i < 3; i++ {
		island.AddNode("")
	}
	if err := island.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	ni := buildNet(t, island, core.DefaultConfig(), 11)
	if err := ni.InstallShortestPaths(0); err == nil || !strings.Contains(err.Error(), "cannot reach") {
		t.Fatalf("disconnected graph: %v", err)
	}

	// The primary == -1 guard itself: a distance labelling with no
	// strictly closer neighbour (every neighbour at the same level)
	// must yield no next hop rather than node index -1.
	if primary, _ := shortestNextHops([]int{1, 2}, []int{2, 2, 2}, 2); primary != -1 {
		t.Fatalf("degenerate labelling produced next hop %d", primary)
	}
	// Sanity on a consistent labelling: primary strictly closer, backup
	// the equal-distance detour.
	primary, backup := shortestNextHops([]int{1, 2}, []int{2, 1, 2}, 2)
	if primary != 1 || backup != 2 {
		t.Fatalf("next hops (%d, %d), want (1, 2)", primary, backup)
	}
}

// TestDispositionString covers the stringer.
func TestDispositionString(t *testing.T) {
	for d := Forward; d <= RerouteLoop; d++ {
		if d.String() == "" || strings.HasPrefix(d.String(), "Disposition(") {
			t.Errorf("missing name for %d", d)
		}
	}
	if !strings.HasPrefix(Disposition(42).String(), "Disposition(") {
		t.Error("unknown disposition should format numerically")
	}
}
