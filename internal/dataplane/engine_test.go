package dataplane

import (
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/core"
)

// TestTrafficEngineResultOrder: summaries land at their flow's index
// regardless of worker interleaving, and echo the flow's identity.
func TestTrafficEngineResultOrder(t *testing.T) {
	n, _, dst := torusWithLoop(t, core.DefaultConfig(), 91)
	flows := mixedFlows(dst, 40, 0xAB)
	got, err := NewTrafficEngine(n, 7).SendMany(flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("%d summaries for %d flows", len(got), len(flows))
	}
	for i, s := range got {
		if s.Flow != flows[i].ID || s.Src != flows[i].Src || s.Dst != flows[i].Dst {
			t.Fatalf("summary %d does not echo its flow: %+v vs %+v", i, s, flows[i])
		}
		if s.Hops == 0 {
			t.Fatalf("summary %d recorded no hops", i)
		}
	}
}

// TestTrafficEngineDefaults: worker selection and accessors.
func TestTrafficEngineDefaults(t *testing.T) {
	n, _, _ := torusWithLoop(t, core.DefaultConfig(), 92)
	if e := NewTrafficEngine(n, 0); e.Workers() < 1 {
		t.Fatalf("default worker count %d", e.Workers())
	}
	e := NewTrafficEngine(n, 3)
	if e.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", e.Workers())
	}
	if e.Network() != n {
		t.Fatal("Network() lost the network")
	}
	// Empty batches are a no-op, not a hang.
	out, err := e.SendMany(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d summaries", err, len(out))
	}
}

// TestTrafficEngineErrorPropagation: a failing flow surfaces the
// first-in-order error while the rest of the batch still runs.
func TestTrafficEngineErrorPropagation(t *testing.T) {
	n, _, dst := torusWithLoop(t, core.DefaultConfig(), 93)
	flows := mixedFlows(dst, 10, 0xCD)
	flows[3].Src = -1 // out of range: send must reject it
	flows[7].Src = 99
	got, err := NewTrafficEngine(n, 4).SendMany(flows)
	if err == nil {
		t.Fatal("invalid flow accepted")
	}
	if !strings.Contains(err.Error(), "(-1,") && !strings.Contains(err.Error(), "(-1, ") {
		t.Fatalf("error is not the first-in-order failure (flow 3, src -1): %v", err)
	}
	for i, s := range got {
		if i == 3 || i == 7 {
			continue
		}
		if s.Hops == 0 {
			t.Fatalf("valid flow %d did not run after the failure", i)
		}
	}
}

// TestSendFlowMatchesSend: the summary path and the traced path agree on
// every derived quantity.
func TestSendFlowMatchesSend(t *testing.T) {
	nA, _, dst := torusWithLoop(t, core.DefaultConfig(), 94)
	nB, _, _ := torusWithLoop(t, core.DefaultConfig(), 94)
	for _, f := range mixedFlows(dst, 20, 0xEF) {
		sum, err := nA.SendFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := nB.Send(f.Src, f.Dst, f.ID, f.TTL, f.Telemetry)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Final != tr.Final || sum.Hops != len(tr.Hops) || sum.Rerouted != tr.Rerouted {
			t.Fatalf("flow %d: summary %+v vs trace final=%v hops=%d rerouted=%v", f.ID, sum, tr.Final, len(tr.Hops), tr.Rerouted)
		}
		if (tr.Report != nil) != (sum.Reports > 0) {
			t.Fatalf("flow %d: report presence diverges", f.ID)
		}
		if tr.Report != nil && sum.Reporter != tr.Report.Reporter {
			t.Fatalf("flow %d: reporter %v vs %v", f.ID, sum.Reporter, tr.Report.Reporter)
		}
	}
}
