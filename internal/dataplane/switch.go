package dataplane

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
)

// PortID indexes a switch's ports (its position in the adjacency list).
type PortID int

// Disposition is the pipeline's decision for a packet.
type Disposition uint8

const (
	// Forward sends the packet out of Egress.
	Forward Disposition = iota
	// Deliver terminates the packet at this switch (it is the
	// destination).
	Deliver
	// DropTTL discards the packet because its TTL reached zero.
	DropTTL
	// DropNoRoute discards the packet for lack of a FIB entry.
	DropNoRoute
	// DropLoop discards the packet because this switch detected a
	// routing loop and no backup port is configured (§4: "drop the
	// packet and inform the controller").
	DropLoop
	// RerouteLoop forwards the packet out of a backup port after
	// detecting a loop — the PURR-style reaction from the paper's
	// conclusion.
	RerouteLoop
	// DropLink discards the packet because its egress port's link is
	// down (fault injection: the FIB still points at the dead link but
	// the wire is gone).
	DropLink
	// DropCorrupt discards the packet because wire-level corruption made
	// the frame unparseable at this hop (fault injection: the receiving
	// switch rejects the malformed frame instead of forwarding garbage).
	DropCorrupt
)

// NumDispositions is the number of Disposition values — the size callers
// use for per-disposition count arrays.
const NumDispositions = int(DropCorrupt) + 1

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Forward:
		return "forward"
	case Deliver:
		return "deliver"
	case DropTTL:
		return "drop-ttl"
	case DropNoRoute:
		return "drop-no-route"
	case DropLoop:
		return "drop-loop"
	case RerouteLoop:
		return "reroute-loop"
	case DropLink:
		return "drop-link"
	case DropCorrupt:
		return "drop-corrupt"
	default:
		return fmt.Sprintf("Disposition(%d)", uint8(d))
	}
}

// Decision is the full pipeline output for one packet.
type Decision struct {
	Disposition Disposition
	// Egress is valid for Forward and RerouteLoop.
	Egress PortID
	// LoopReport is non-nil when the Unroller logic fired at this
	// switch, regardless of whether the packet was dropped, rerouted,
	// or sent on a collection lap.
	LoopReport *detect.Report
	// Members is the full loop membership, present only when a
	// collection lap (§3.5) just completed at this switch.
	Members []detect.SwitchID
}

// InitialTTL is the TTL edge injection uses. Configurations with
// TTLHopCount derive the Unroller hop counter as InitialTTL − TTL, so
// such packets must enter the network with exactly this TTL.
const InitialTTL = 255

// Switch is one forwarding element. Per the paper, Unroller keeps no
// per-flow state on the switch: the registers hold only the switch's own
// identifier, the algorithm configuration, and the 256-entry phase-start
// lookup table. The FIB is ordinary destination-based forwarding state.
type Switch struct {
	// ID is the switch identifier announced in packets.
	ID detect.SwitchID
	// Node is the topology node index this switch realises.
	Node int
	// LoopPolicy selects the reaction to a detected loop; the default
	// ActionReroute deflects when a backup port exists and drops
	// otherwise.
	LoopPolicy LoopAction

	// fib maps destination switch ID to egress port.
	fib map[detect.SwitchID]PortID
	// backup maps destination switch ID to an alternate egress used
	// after a loop report; absent entries mean "drop on loop".
	backup map[detect.SwitchID]PortID
	// neighbors[p] is the node index reachable through port p.
	neighbors []int
	// portUp[p] mirrors the physical state of the link behind port p.
	// It is written only through Network.SetLink while traffic is
	// quiesced (the fault-injection contract), so the hot path reads it
	// without synchronisation.
	portUp []bool

	// unroller is the shared detector (immutable, safe to share across
	// switches); phaseLUT mirrors the hardware's lookup-table register.
	unroller *core.Unroller
	phaseLUT []bool

	// states recycles per-packet detector state across Process calls;
	// DecodeHeaderInto overwrites every field, so reuse is invisible to
	// the pipeline.
	states *statePool

	// stats are the live counters, mirroring what a P4 target would
	// expose; read a consistent-enough snapshot with Stats.
	stats switchCounters
}

// statePool recycles *core.State values so the hot hop loop does not
// allocate a fresh state (struct plus two slices) per decode. It is a
// thin typed wrapper over sync.Pool; the Get-side type assertion lives
// here, outside any hotpath-tagged function body.
type statePool struct {
	pool sync.Pool
}

func newStatePool(u *core.Unroller) *statePool {
	sp := &statePool{}
	sp.pool.New = func() any { return u.NewPacketState() }
	return sp
}

func (sp *statePool) get() *core.State   { return sp.pool.Get().(*core.State) }
func (sp *statePool) put(st *core.State) { sp.pool.Put(st) }

// SwitchStats is a snapshot of a switch's packet counters.
type SwitchStats struct {
	Received  uint64
	Forwarded uint64
	Delivered uint64
	TTLDrops  uint64
	NoRoute   uint64
	LoopHits  uint64
	Reroutes  uint64
	LinkDrops uint64
	Restarts  uint64
}

// switchCounters are the live per-switch counters. They are updated
// atomically so parallel Send calls and TrafficEngine workers can share
// switches without locks: each field is an independent statistic, so
// per-field atomicity is the exact semantics a hardware counter array
// has.
type switchCounters struct {
	received  atomic.Uint64
	forwarded atomic.Uint64
	delivered atomic.Uint64
	ttlDrops  atomic.Uint64
	noRoute   atomic.Uint64
	loopHits  atomic.Uint64
	reroutes  atomic.Uint64
	linkDrops atomic.Uint64
	restarts  atomic.Uint64
}

// Stats returns a snapshot of the switch's counters. Each field is read
// atomically; when sends are in flight the fields may straddle packet
// boundaries, but once traffic quiesces (e.g. after SendMany returns)
// the snapshot is exact.
func (s *Switch) Stats() SwitchStats {
	return SwitchStats{
		Received:  s.stats.received.Load(),
		Forwarded: s.stats.forwarded.Load(),
		Delivered: s.stats.delivered.Load(),
		TTLDrops:  s.stats.ttlDrops.Load(),
		NoRoute:   s.stats.noRoute.Load(),
		LoopHits:  s.stats.loopHits.Load(),
		Reroutes:  s.stats.reroutes.Load(),
		LinkDrops: s.stats.linkDrops.Load(),
		Restarts:  s.stats.restarts.Load(),
	}
}

// newSwitch wires a switch for the given node.
func newSwitch(id detect.SwitchID, node int, neighbors []int, u *core.Unroller) *Switch {
	up := make([]bool, len(neighbors))
	for i := range up {
		up[i] = true
	}
	return &Switch{
		ID:         id,
		Node:       node,
		LoopPolicy: ActionReroute, // deflect when a backup exists, else drop
		fib:        make(map[detect.SwitchID]PortID),
		backup:     make(map[detect.SwitchID]PortID),
		neighbors:  neighbors,
		portUp:     up,
		unroller:   u,
		phaseLUT:   core.PhaseStartTable(u.Config(), 256),
		states:     newStatePool(u),
	}
}

// SetRoute installs dst→port in the FIB.
func (s *Switch) SetRoute(dst detect.SwitchID, port PortID) error {
	if int(port) < 0 || int(port) >= len(s.neighbors) {
		return fmt.Errorf("dataplane: %v has no port %d", s.ID, port)
	}
	s.fib[dst] = port
	return nil
}

// SetBackup installs an alternate egress for dst used after a loop
// report.
func (s *Switch) SetBackup(dst detect.SwitchID, port PortID) error {
	if int(port) < 0 || int(port) >= len(s.neighbors) {
		return fmt.Errorf("dataplane: %v has no port %d", s.ID, port)
	}
	s.backup[dst] = port
	return nil
}

// ClearBackups removes every backup route, reverting the switch to the
// paper's base behaviour: drop and report on detection.
func (s *Switch) ClearBackups() { s.backup = make(map[detect.SwitchID]PortID) }

// ClearRoute withdraws the FIB entry for dst (a route withdrawal from
// the control plane); subsequent dst-bound packets drop as no-route.
func (s *Switch) ClearRoute(dst detect.SwitchID) {
	delete(s.fib, dst)
	delete(s.backup, dst)
}

// Routes returns a copy of the FIB — the snapshot a scenario captures
// before a restart so recovery can reinstall the exact same state.
func (s *Switch) Routes() map[detect.SwitchID]PortID {
	out := make(map[detect.SwitchID]PortID, len(s.fib))
	for dst, p := range s.fib {
		out[dst] = p
	}
	return out
}

// Restart emulates a switch reboot: the FIB and backup tables are wiped
// (forwarding state lives in volatile memory; until the control plane
// reprograms it, traffic through this switch drops as no-route). The
// Unroller registers survive conceptually — they hold only the switch's
// identifier and static configuration — and the traffic counters are
// external observability, so both are kept. Restart must not race with
// in-flight sends, like all route mutation.
func (s *Switch) Restart() {
	s.fib = make(map[detect.SwitchID]PortID)
	s.backup = make(map[detect.SwitchID]PortID)
	s.stats.restarts.Add(1)
}

// Route returns the FIB entry for dst.
func (s *Switch) Route(dst detect.SwitchID) (PortID, bool) {
	p, ok := s.fib[dst]
	return p, ok
}

// Ports returns the number of ports.
func (s *Switch) Ports() int { return len(s.neighbors) }

// Peer returns the node index on the far end of port p.
func (s *Switch) Peer(p PortID) int { return s.neighbors[p] }

// Process runs the ingress pipeline on the packet in place, mirroring the
// paper's P4 control block: (0) TTL check, (1) parse the Unroller header
// and bump Xcnt via Visit, (2)–(3) hash, compare, and update the stored
// identifiers, (4) on a match report to the controller and drop — or
// deflect to the backup port when one is installed — then deparse and
// forward by FIB.
//
//unroller:hotpath
func (s *Switch) Process(p *Packet) (Decision, error) {
	s.stats.received.Add(1)

	// Collection-mode packets circulate the loop to record membership;
	// they never deliver.
	if p.Flags&FlagCollect != 0 {
		if p.TTL == 0 {
			s.stats.ttlDrops.Add(1)
			return Decision{Disposition: DropTTL}, nil
		}
		p.TTL--
		return s.processCollect(p)
	}

	// Destination check precedes everything: the last hop delivers.
	if p.Dst == s.ID {
		s.stats.delivered.Add(1)
		return Decision{Disposition: Deliver}, nil
	}

	// TTL: decrement and drop at zero, the loss Unroller preempts.
	if p.TTL == 0 {
		s.stats.ttlDrops.Add(1)
		return Decision{Disposition: DropTTL}, nil
	}
	p.TTL--

	// Unroller control block over the in-band header.
	var report *detect.Report
	if len(p.Telemetry) > 0 {
		st, err := s.decodeTelemetry(p)
		if err != nil {
			//unroller:allow hotpath -- malformed-header path: the packet is already dead
			return Decision{}, fmt.Errorf("dataplane: %v: %w", s.ID, err)
		}
		verdict := st.Visit(s.ID)
		if verdict == detect.Loop {
			s.stats.loopHits.Add(1)
			//unroller:allow hotpath -- fires once per detected loop, not per hop
			report = &detect.Report{Reporter: s.ID, Hops: int(st.Hops())}
			s.states.put(st)
			return s.reactToLoop(p, report)
		}
		tel, err := st.AppendHeader(p.Telemetry[:0])
		s.states.put(st)
		if err != nil {
			//unroller:allow hotpath -- encode failure path: the packet is already dead
			return Decision{}, fmt.Errorf("dataplane: %v: re-encode: %w", s.ID, err)
		}
		p.Telemetry = tel
	}

	// Destination-based forwarding.
	port, ok := s.fib[p.Dst]
	if !ok {
		s.stats.noRoute.Add(1)
		return Decision{Disposition: DropNoRoute, LoopReport: report}, nil
	}
	if !s.portUp[port] {
		s.stats.linkDrops.Add(1)
		return Decision{Disposition: DropLink, LoopReport: report}, nil
	}
	s.stats.forwarded.Add(1)
	return Decision{Disposition: Forward, Egress: port, LoopReport: report}, nil
}

// decodeTelemetry parses the packet's Unroller header, deriving the hop
// counter from the TTL when the configuration elides it (footnote 3 of
// the paper). TTL-derived counting requires packets injected with
// InitialTTL; Process has already decremented the TTL for this hop, so
// the pre-Visit hop count is InitialTTL − TTL − 1.
//
//unroller:allow errctx -- Process wraps every return as "dataplane: <switch>: %w"
func (s *Switch) decodeTelemetry(p *Packet) (*core.State, error) {
	st := s.states.get()
	var err error
	switch {
	case !s.unroller.Config().TTLHopCount:
		err = s.unroller.DecodeHeaderInto(st, p.Telemetry)
	case p.TTL >= InitialTTL:
		err = fmt.Errorf("TTL %d inconsistent with TTL-derived hop counting (initial %d)", p.TTL, InitialTTL)
	default:
		err = s.unroller.DecodeHeaderAtInto(st, p.Telemetry, uint64(InitialTTL)-uint64(p.TTL)-1)
	}
	if err != nil {
		s.states.put(st)
		return nil, err
	}
	return st, nil
}

// reactToLoop applies the switch's loop policy to a packet on which the
// Unroller logic just fired.
func (s *Switch) reactToLoop(p *Packet, report *detect.Report) (Decision, error) {
	switch s.LoopPolicy {
	case ActionReroute:
		if bp, ok := s.backup[p.Dst]; ok && s.portUp[bp] {
			// Deflect: reset the telemetry so the detector
			// restarts on the new route.
			fresh := s.unroller.NewPacketState()
			tel, err := fresh.AppendHeader(nil)
			if err != nil {
				return Decision{}, err
			}
			p.Telemetry = tel
			s.stats.reroutes.Add(1)
			return Decision{Disposition: RerouteLoop, Egress: bp, LoopReport: report}, nil
		}
	case ActionCollect:
		// Tag the packet for one recording lap (§3.5); it keeps
		// following the looping FIB and returns here with the full
		// membership.
		if port, ok := s.fib[p.Dst]; ok && s.portUp[port] {
			rec := collectRecord{Initiator: s.ID}
			tel, err := rec.marshal()
			if err != nil {
				return Decision{}, err
			}
			p.Telemetry = tel
			p.Flags |= FlagCollect
			s.stats.forwarded.Add(1)
			return Decision{Disposition: Forward, Egress: port, LoopReport: report}, nil
		}
	case ActionDrop:
		// fall through to the drop below
	}
	return Decision{Disposition: DropLoop, LoopReport: report}, nil
}

// PhaseStartLUT exposes the lookup-table register (useful for inspecting
// hardware fidelity in tests and the emulator CLI).
func (s *Switch) PhaseStartLUT() []bool { return s.phaseLUT }
