package dataplane

import (
	"testing"

	"github.com/unroller/unroller/internal/detect"
)

// TestControllerBoundedUnderMillionFlowChurn: a million delivered events
// — the flood a looping million-flow batch could raise — leaves the
// controller holding at most MaxEvents buffered events, with every
// suppressed or displaced event accounted for, never silently lost.
func TestControllerBoundedUnderMillionFlowChurn(t *testing.T) {
	const (
		maxEvents = 1024
		total     = 1 << 20
	)
	c := NewControllerWithConfig(ControllerConfig{MaxEvents: maxEvents, MaxAgeTicks: 2})
	for i := 0; i < total; i++ {
		ev := LoopEvent{Node: i % 64, Flow: uint32(i)}
		ev.Reporter = detect.SwitchID(i % 64)
		ev.Hops = i % 40
		c.DeliverEvent(ev)
		if i%131072 == 0 {
			c.Tick()
		}
	}
	st := c.Stats()
	if st.Delivered != total || st.Accepted != total {
		t.Fatalf("delivered=%d accepted=%d, want %d each", st.Delivered, st.Accepted, total)
	}
	if st.Buffered > maxEvents {
		t.Fatalf("buffered %d exceeds MaxEvents %d", st.Buffered, maxEvents)
	}
	if got := len(c.Events()); got != st.Buffered {
		t.Fatalf("Events() returned %d, stats say %d buffered", got, st.Buffered)
	}
	if st.Accepted != uint64(st.Buffered)+st.Evicted+st.Aged {
		t.Fatalf("accepted != buffered+evicted+aged: %+v", st)
	}
	if st.Evicted == 0 {
		t.Fatal("a full ring under churn must evict")
	}
}

// TestControllerDedupWindow: repeat reports from the same reporter
// within the window are counted as deduped, the anchor holds until the
// window passes, and distinct reporters never dedup against each other.
func TestControllerDedupWindow(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{DedupWindow: 10})
	var w DedupWindow
	w.Reset()
	ev := func(rep detect.SwitchID) LoopEvent {
		e := LoopEvent{Flow: 1}
		e.Reporter = rep
		return e
	}
	if !c.DeliverFlow(ev(1), &w, 5) {
		t.Fatal("first report must be accepted")
	}
	if c.DeliverFlow(ev(1), &w, 8) {
		t.Fatal("repeat within window must dedup")
	}
	if c.DeliverFlow(ev(1), &w, 14) {
		t.Fatal("anchor is the accepted report at hop 5; hop 14 is still inside its window")
	}
	if !c.DeliverFlow(ev(1), &w, 15) {
		t.Fatal("hop 15 is past the window; must be accepted")
	}
	if !c.DeliverFlow(ev(2), &w, 16) {
		t.Fatal("a different reporter never dedups against reporter 1")
	}
	st := c.Stats()
	if st.Accepted != 3 || st.Deduped != 2 || st.Delivered != 5 {
		t.Fatalf("accepted=%d deduped=%d delivered=%d, want 3/2/5", st.Accepted, st.Deduped, st.Delivered)
	}
}

// TestControllerDedupWindowOverflow: the fixed 8-entry window forgets
// its stalest anchor under pressure from many distinct reporters — a
// bounded-memory design that errs towards re-accepting, never towards
// suppressing a fresh reporter.
func TestControllerDedupWindowOverflow(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{DedupWindow: 100})
	var w DedupWindow
	w.Reset()
	for i := 0; i < dedupEntries+1; i++ {
		e := LoopEvent{}
		e.Reporter = detect.SwitchID(i + 1)
		if !c.DeliverFlow(e, &w, i+1) {
			t.Fatalf("distinct reporter %d must be accepted", i+1)
		}
	}
	// Reporter 1's anchor (hop 1, the stalest) was overwritten, so its
	// repeat inside the nominal window is accepted again.
	e := LoopEvent{}
	e.Reporter = 1
	if !c.DeliverFlow(e, &w, 50) {
		t.Fatal("evicted anchor must not suppress its reporter")
	}
}

// TestControllerQuarantine: a reporter that trips the per-window accept
// cap is muted for the remainder of the window plus QuarantineTicks;
// windows roll over at Tick.
func TestControllerQuarantine(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{QuarantineAfter: 2, QuarantineTicks: 1})
	ev := func() LoopEvent {
		e := LoopEvent{}
		e.Reporter = 7
		return e
	}
	for i := 0; i < 5; i++ {
		c.DeliverEvent(ev())
	}
	st := c.Stats()
	if st.Accepted != 2 || st.Quarantined != 3 {
		t.Fatalf("tick 0: accepted=%d quarantined=%d, want 2/3", st.Accepted, st.Quarantined)
	}
	// Tick 1 is still inside the mute (rest of window + 1 extra tick).
	c.Tick()
	c.DeliverEvent(ev())
	if st = c.Stats(); st.Accepted != 2 || st.Quarantined != 4 {
		t.Fatalf("tick 1: accepted=%d quarantined=%d, want 2/4", st.Accepted, st.Quarantined)
	}
	// Tick 2: the mute expired, the window is fresh.
	c.Tick()
	c.DeliverEvent(ev())
	if st = c.Stats(); st.Accepted != 3 || st.Quarantined != 4 {
		t.Fatalf("tick 2: accepted=%d quarantined=%d, want 3/4", st.Accepted, st.Quarantined)
	}
	// An innocent reporter is never caught in 7's quarantine.
	e := LoopEvent{}
	e.Reporter = 8
	c.DeliverEvent(e)
	if st = c.Stats(); st.Accepted != 4 {
		t.Fatalf("innocent reporter suppressed: %+v", st)
	}
}

// TestControllerAging: buffered events older than MaxAgeTicks are aged
// out at Tick, and only then.
func TestControllerAging(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{MaxEvents: 16, MaxAgeTicks: 1})
	for i := 0; i < 4; i++ {
		e := LoopEvent{Flow: uint32(i)}
		e.Reporter = detect.SwitchID(i)
		c.DeliverEvent(e)
	}
	c.Tick() // age 1: still within MaxAgeTicks
	if st := c.Stats(); st.Buffered != 4 || st.Aged != 0 {
		t.Fatalf("after 1 tick: %+v, want 4 buffered, 0 aged", st)
	}
	e := LoopEvent{Flow: 99}
	e.Reporter = 9
	c.DeliverEvent(e) // stamped at tick 1
	c.Tick()          // tick 2: the first four (age 2) expire, the fifth (age 1) stays
	st := c.Stats()
	if st.Buffered != 1 || st.Aged != 4 {
		t.Fatalf("after 2 ticks: %+v, want 1 buffered, 4 aged", st)
	}
	evs := c.Events()
	if len(evs) != 1 || evs[0].Flow != 99 {
		t.Fatalf("survivor should be the tick-1 event, got %v", evs)
	}
	if st.Accepted != uint64(st.Buffered)+st.Evicted+st.Aged {
		t.Fatalf("accounting broken: %+v", st)
	}
}

// TestControllerEvictionOrder: a full ring drops oldest-first and
// Events stays in arrival order.
func TestControllerEvictionOrder(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{MaxEvents: 4})
	for i := 0; i < 6; i++ {
		e := LoopEvent{Flow: uint32(i)}
		e.Reporter = detect.SwitchID(i)
		c.DeliverEvent(e)
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Flow != uint32(i+2) {
			t.Fatalf("Events()[%d].Flow = %d, want %d (oldest evicted first)", i, e.Flow, i+2)
		}
	}
	if st := c.Stats(); st.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted)
	}
}

// TestControllerResetKeepsConfig: Reset clears state and clock but the
// hardening knobs survive.
func TestControllerResetKeepsConfig(t *testing.T) {
	cfg := ControllerConfig{MaxEvents: 8, DedupWindow: 3, QuarantineAfter: 1, QuarantineTicks: 2, MaxAgeTicks: 4}
	c := NewControllerWithConfig(cfg)
	for i := 0; i < 5; i++ {
		e := LoopEvent{}
		e.Reporter = 1
		c.DeliverEvent(e)
	}
	c.Tick()
	c.Reset()
	st := c.Stats()
	if st.Delivered != 0 || st.Accepted != 0 || st.Quarantined != 0 || st.Buffered != 0 || st.Tick != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
	if got := c.Config(); got != cfg {
		t.Fatalf("Reset changed config: %+v", got)
	}
	if len(c.TopReporters()) != 0 {
		t.Fatal("Reset left reporter totals behind")
	}
}

// TestControllerStatsString pins the event-log stats line format.
func TestControllerStatsString(t *testing.T) {
	s := ControllerStats{Delivered: 10, Accepted: 6, Deduped: 3, Quarantined: 1, Evicted: 2, Aged: 1, Buffered: 3}
	want := "delivered=10 accepted=6 deduped=3 quarantined=1 evicted=2 aged=1 buffered=3"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
