package dataplane

import (
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// torusNet builds a 4x4 torus with shortest paths installed for dst 15
// and no loop — the plain substrate the fault tests mutate.
func torusNet(t *testing.T, seed uint64) *Network {
	t.Helper()
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(g, topology.NewAssignment(g, xrand.New(seed)), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(15); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFaultPlanScheduling: events fire grouped by epoch in insertion
// order, and the plan knows its span.
func TestFaultPlanScheduling(t *testing.T) {
	p := &FaultPlan{}
	p.LinkDownAt(2, 0, 1)
	p.RestartAt(0, 3)
	p.LinkUpAt(2, 0, 1)
	p.CorruptionAt(5, 0.5, 9)
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
	if p.Epochs() != 6 {
		t.Fatalf("Epochs = %d, want 6", p.Epochs())
	}
	at2 := p.At(2)
	if len(at2) != 2 || at2[0].Kind != FaultLinkDown || at2[1].Kind != FaultLinkUp {
		t.Fatalf("At(2) = %v, want down then up", at2)
	}
	if len(p.At(1)) != 0 {
		t.Fatalf("At(1) should be empty")
	}
}

// TestFaultEventString pins the event-log vocabulary the golden files
// depend on.
func TestFaultEventString(t *testing.T) {
	cases := []struct {
		ev   FaultEvent
		want string
	}{
		{FaultEvent{Kind: FaultLinkDown, U: 1, V: 2}, "link (1,2) down"},
		{FaultEvent{Kind: FaultLinkUp, U: 1, V: 2}, "link (1,2) up"},
		{FaultEvent{Kind: FaultRoutes, Routes: make([]RouteUpdate, 3)}, "fib update: 3 routes"},
		{FaultEvent{Kind: FaultRestart, Node: 7}, "switch 7 restart"},
		{FaultEvent{Kind: FaultCorruption, Prob: 0.05}, "corruption p=0.05"},
		{FaultEvent{Kind: FaultCorruption, Prob: 0}, "corruption off"},
		{FaultEvent{Kind: FaultControllerReset}, "controller reset"},
		{FaultEvent{Kind: FaultKind(99)}, "FaultKind(99)"},
	}
	for _, tc := range cases {
		if got := tc.ev.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestCorruptionModelDeterminism: strikes are a pure function of (seed,
// flow, hop) — the property that keeps corrupted runs replayable — and
// the probability knob behaves at its extremes.
func TestCorruptionModelDeterminism(t *testing.T) {
	if m := newCorruptionModel(0, 1); m != nil {
		t.Fatal("prob 0 should disable the model")
	}
	if m := newCorruptionModel(-0.5, 1); m != nil {
		t.Fatal("negative prob should disable the model")
	}
	always := newCorruptionModel(1, 7)
	never := newCorruptionModel(1, 7)
	if always.strike(1, 1, nil) {
		t.Fatal("empty wire must never be struck")
	}
	for hop := uint64(0); hop < 64; hop++ {
		a := make([]byte, 32)
		b := make([]byte, 32)
		sa := always.strike(3, hop, a)
		sb := never.strike(3, hop, b)
		if !sa || !sb {
			t.Fatalf("prob 1 must strike every hop (hop %d: %v %v)", hop, sa, sb)
		}
		if string(a) != string(b) {
			t.Fatalf("hop %d: same (seed, flow, hop) flipped different bits", hop)
		}
		ones := 0
		for _, x := range a {
			for ; x != 0; x &= x - 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("hop %d: %d bits flipped, want exactly 1", hop, ones)
		}
	}
	// A mid-range probability strikes some hops and spares others, with
	// identical verdicts on a second pass.
	m1 := newCorruptionModel(0.3, 99)
	m2 := newCorruptionModel(0.3, 99)
	var struck, spared int
	buf := make([]byte, 16)
	for hop := uint64(0); hop < 200; hop++ {
		s1 := m1.strike(8, hop, buf)
		s2 := m2.strike(8, hop, buf)
		if s1 != s2 {
			t.Fatalf("hop %d: replay diverged", hop)
		}
		if s1 {
			struck++
		} else {
			spared++
		}
	}
	if struck == 0 || spared == 0 {
		t.Fatalf("p=0.3 over 200 hops: struck=%d spared=%d, want both nonzero", struck, spared)
	}
}

// TestSetLinkDropsTraffic: cutting a link makes traffic that the FIB
// still steers onto it die as drop-link at the dead port; restoring the
// link heals delivery. The FIBs are never touched.
func TestSetLinkDropsTraffic(t *testing.T) {
	n := torusNet(t, 11)
	// Node 14 is a direct neighbour of 15 on the torus; its shortest
	// path uses the (14,15) link.
	tr, err := n.Send(14, 15, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != Deliver {
		t.Fatalf("baseline: %v, want deliver", tr.Final)
	}
	if err := n.SetLink(14, 15, false); err != nil {
		t.Fatal(err)
	}
	if n.LinkIsUp(14, 15) {
		t.Fatal("link should report down")
	}
	tr, err = n.Send(14, 15, 2, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropLink {
		t.Fatalf("downed link: %v, want drop-link", tr.Final)
	}
	if got := n.Switch(14).Stats().LinkDrops; got != 1 {
		t.Fatalf("LinkDrops = %d, want 1", got)
	}
	if err := n.SetLink(14, 15, true); err != nil {
		t.Fatal(err)
	}
	tr, err = n.Send(14, 15, 3, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != Deliver {
		t.Fatalf("restored link: %v, want deliver", tr.Final)
	}
	if err := n.SetLink(0, 5, false); err == nil {
		t.Fatal("SetLink on a non-link should fail")
	}
}

// TestRestartWipesForwardingState: a rebooted switch forgets its FIB
// (traffic through it drops as no-route) until routes are reinstalled,
// and the restart is counted.
func TestRestartWipesForwardingState(t *testing.T) {
	n := torusNet(t, 12)
	saved := routesAsUpdates(n, 14)
	if len(saved) == 0 {
		t.Fatal("switch 14 should have routes installed")
	}
	if err := n.ApplyFault(FaultEvent{Kind: FaultRestart, Node: 14}); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Switch(14).Routes()); got != 0 {
		t.Fatalf("restarted switch still has %d routes", got)
	}
	if got := n.Switch(14).Stats().Restarts; got != 1 {
		t.Fatalf("Restarts = %d, want 1", got)
	}
	tr, err := n.Send(14, 15, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropNoRoute {
		t.Fatalf("blank FIB: %v, want drop-no-route", tr.Final)
	}
	if err := n.ApplyFault(FaultEvent{Kind: FaultRoutes, Routes: saved}); err != nil {
		t.Fatal(err)
	}
	tr, err = n.Send(14, 15, 2, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != Deliver {
		t.Fatalf("reinstalled FIB: %v, want deliver", tr.Final)
	}
}

// routesAsUpdates snapshots a switch's FIB as a reinstallable batch.
func routesAsUpdates(n *Network, node int) []RouteUpdate {
	var out []RouteUpdate
	for dst, port := range n.Switch(node).Routes() {
		out = append(out, RouteUpdate{Node: node, Dst: dst, Port: port})
	}
	return out
}

// TestApplyFaultErrors: plans referencing missing links, out-of-range
// nodes, or unknown kinds fail loudly instead of silently no-opping.
func TestApplyFaultErrors(t *testing.T) {
	n := torusNet(t, 13)
	cases := []FaultEvent{
		{Kind: FaultLinkDown, U: 0, V: 5},
		{Kind: FaultRestart, Node: 99},
		{Kind: FaultRestart, Node: -1},
		{Kind: FaultRoutes, Routes: []RouteUpdate{{Node: 99, Dst: 1, Port: 0}}},
		{Kind: FaultKind(200)},
	}
	for _, ev := range cases {
		if err := n.ApplyFault(ev); err == nil {
			t.Errorf("ApplyFault(%v) should fail", ev)
		} else if !strings.HasPrefix(err.Error(), "dataplane: ") {
			t.Errorf("ApplyFault(%v) error %q lacks package context", ev, err)
		}
	}
}

// TestRouteUpdateClear: a Clear update withdraws the route.
func TestRouteUpdateClear(t *testing.T) {
	n := torusNet(t, 14)
	dstID := n.Assign.ID(15)
	if err := n.ApplyFault(FaultEvent{Kind: FaultRoutes, Routes: []RouteUpdate{
		{Node: 14, Dst: dstID, Clear: true},
	}}); err != nil {
		t.Fatal(err)
	}
	tr, err := n.Send(14, 15, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropNoRoute {
		t.Fatalf("cleared route: %v, want drop-no-route", tr.Final)
	}
}

// TestCorruptionEndToEnd: with every hop struck, traffic dies as
// drop-corrupt (never as an emulator error), and turning the model off
// restores clean delivery.
func TestCorruptionEndToEnd(t *testing.T) {
	n := torusNet(t, 15)
	n.SetCorruption(1, 42)
	sawCorrupt := false
	for flow := uint32(0); flow < 32; flow++ {
		tr, err := n.Send(0, 15, flow, 64, true)
		if err != nil {
			t.Fatalf("flow %d: corruption surfaced as error: %v", flow, err)
		}
		if tr.Final == DropCorrupt {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("p=1 corruption never produced drop-corrupt")
	}
	n.SetCorruption(0, 0)
	tr, err := n.Send(0, 15, 999, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != Deliver {
		t.Fatalf("after storm: %v, want deliver", tr.Final)
	}
}
