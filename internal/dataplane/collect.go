package dataplane

import (
	"encoding/binary"
	"fmt"

	"github.com/unroller/unroller/internal/detect"
)

// This file implements the loop-membership collection reaction of §3.5:
// Unroller itself stays lightweight, but once a loop is detected the
// reporting switch can tag the packet (FlagCollect) and let it take one
// more lap while every switch appends its identifier — INT-style, but
// only after detection and only around the loop, so the recording
// overhead is paid exactly once per loop event instead of on every
// packet. When the packet returns to the initiating switch, the full
// membership is delivered to the controller.

// maxCollectIDs bounds a collection record; loops longer than this are
// truncated (the controller still learns a prefix of the membership).
const maxCollectIDs = 32

// collectRecord is the telemetry payload of a FlagCollect packet:
//
//	offset  size  field
//	0       4     initiator switch id
//	4       1     recorded id count
//	5       4·n   recorded switch ids, in hop order
type collectRecord struct {
	Initiator detect.SwitchID
	IDs       []detect.SwitchID
}

// marshalCollect serialises the record.
func (r *collectRecord) marshal() ([]byte, error) {
	if len(r.IDs) > maxCollectIDs {
		return nil, fmt.Errorf("dataplane: collection record with %d ids exceeds cap %d", len(r.IDs), maxCollectIDs)
	}
	buf := make([]byte, 5+4*len(r.IDs))
	binary.BigEndian.PutUint32(buf, uint32(r.Initiator))
	buf[4] = byte(len(r.IDs))
	for i, id := range r.IDs {
		binary.BigEndian.PutUint32(buf[5+4*i:], uint32(id))
	}
	return buf, nil
}

// unmarshalCollect parses a record.
func unmarshalCollect(buf []byte) (*collectRecord, error) {
	if len(buf) < 5 {
		return nil, fmt.Errorf("%w: collection record of %d bytes", ErrMalformed, len(buf))
	}
	n := int(buf[4])
	if n > maxCollectIDs {
		// Reject at parse time: a crafted count byte up to 255 would
		// otherwise parse fine and only fail deep in the pipeline when
		// the record is re-marshalled against the cap.
		return nil, fmt.Errorf("%w: collection record claims %d ids, cap is %d", ErrMalformed, n, maxCollectIDs)
	}
	if len(buf) < 5+4*n {
		return nil, fmt.Errorf("%w: collection record truncated (%d of %d ids)", ErrMalformed, (len(buf)-5)/4, n)
	}
	r := &collectRecord{Initiator: detect.SwitchID(binary.BigEndian.Uint32(buf))}
	for i := 0; i < n; i++ {
		r.IDs = append(r.IDs, detect.SwitchID(binary.BigEndian.Uint32(buf[5+4*i:])))
	}
	return r, nil
}

// LoopAction selects what a switch does with a packet on which it just
// detected a loop.
type LoopAction uint8

const (
	// ActionDrop reports to the controller and discards the packet —
	// the paper's base design (§4).
	ActionDrop LoopAction = iota
	// ActionReroute deflects the packet to the backup port for its
	// destination when one is installed (the §6 PURR-style reaction),
	// falling back to drop otherwise.
	ActionReroute
	// ActionCollect tags the packet to take one more lap recording
	// switch identifiers, then reports the full loop membership when
	// it returns (§3.5).
	ActionCollect
)

// String names the action.
func (a LoopAction) String() string {
	switch a {
	case ActionDrop:
		return "drop"
	case ActionReroute:
		return "reroute"
	case ActionCollect:
		return "collect"
	default:
		return fmt.Sprintf("LoopAction(%d)", uint8(a))
	}
}

// processCollect handles a packet already in collection mode: the
// initiator closes the lap and reports; everyone else appends its
// identifier and forwards along the (still looping) FIB.
func (s *Switch) processCollect(p *Packet) (Decision, error) {
	rec, err := unmarshalCollect(p.Telemetry)
	if err != nil {
		return Decision{}, fmt.Errorf("dataplane: %v: %w", s.ID, err)
	}
	if rec.Initiator == s.ID {
		// Full lap completed: the recorded ids are the loop members
		// (the initiator itself closes the set).
		members := append(rec.IDs, s.ID)
		return Decision{
			Disposition: DropLoop,
			LoopReport:  &detect.Report{Reporter: s.ID, Hops: 0},
			Members:     members,
		}, nil
	}
	if len(rec.IDs) < maxCollectIDs {
		rec.IDs = append(rec.IDs, s.ID)
		tel, err := rec.marshal()
		if err != nil {
			return Decision{}, err
		}
		p.Telemetry = tel
	}
	port, ok := s.fib[p.Dst]
	if !ok {
		s.stats.noRoute.Add(1)
		return Decision{Disposition: DropNoRoute}, nil
	}
	if !s.portUp[port] {
		s.stats.linkDrops.Add(1)
		return Decision{Disposition: DropLink}, nil
	}
	s.stats.forwarded.Add(1)
	return Decision{Disposition: Forward, Egress: port}, nil
}
