package dataplane

import (
	"fmt"
	"sort"
	"sync"

	"github.com/unroller/unroller/internal/detect"
)

// Controller is the control-plane sink for loop reports. Real deployments
// would push these over a southbound channel; the emulator delivers them
// synchronously but the sink is safe for concurrent use so parallel
// benchmarks can share one.
//
// A production controller under churn must degrade gracefully: a
// million-flow batch traversing a flapping network can raise a report per
// flow, and an unbounded in-memory log is a self-inflicted outage. The
// controller therefore keeps a *bounded* ring of recent events (oldest
// evicted first), ages buffered events out on its logical clock, and
// applies a per-reporter quarantine so a flapping switch cannot dominate
// the buffer. All suppression is counted, never silent — see
// ControllerStats.
//
// Every admission rule is deliberately order-invariant so aggregate
// counts do not depend on worker scheduling: per-flow dedup state rides
// with the packet (a flow's journey is sequential), quarantine caps the
// *number* of events accepted per reporter per tick window (min(quota,
// arrivals) regardless of interleaving), and the clock only advances via
// Tick() while traffic is quiesced.
type Controller struct {
	mu  sync.Mutex
	cfg ControllerConfig

	// tick is the logical clock; it advances only through Tick(), which
	// the churn driver calls at quiesced epoch boundaries.
	tick uint64

	// ring is a circular buffer of the most recent accepted events:
	// ring[(head+i)%MaxEvents] for i in [0,n) is oldest→newest.
	ring []timedEvent
	head int
	n    int

	// Monotonic totals; delivered = accepted + deduped + quarantined.
	delivered   uint64
	accepted    uint64
	deduped     uint64
	quarantined uint64
	evicted     uint64
	aged        uint64

	// reporters tracks per-reporter accept totals (for TopReporters) and
	// quarantine state; bounded by the number of switches.
	reporters map[detect.SwitchID]*reporterState
}

// timedEvent stamps an event with the logical tick it was accepted at,
// so aging needs no wall clock.
type timedEvent struct {
	ev   LoopEvent
	tick uint64
}

// reporterState is the controller's per-reporter bookkeeping.
type reporterState struct {
	// total counts accepted events across the controller's lifetime.
	total uint64
	// window counts events accepted in the current tick window; Tick
	// resets it.
	window uint64
	// mutedUntil quarantines the reporter: events are suppressed while
	// tick < mutedUntil.
	mutedUntil uint64
}

// ControllerConfig tunes the hardening knobs. The zero value of each
// field disables that mechanism, except MaxEvents which falls back to
// DefaultMaxEvents (a controller with a truly unbounded log is never the
// right default under heavy traffic).
type ControllerConfig struct {
	// MaxEvents bounds the in-memory event ring; once full, accepting a
	// new event evicts the oldest. <= 0 selects DefaultMaxEvents.
	MaxEvents int
	// DedupWindow, in hops of the reporting packet's journey, suppresses
	// repeat reports from the same reporter for the same flow: a second
	// report within DedupWindow hops of the previously accepted one is
	// counted as deduped and not buffered. 0 disables dedup.
	DedupWindow int
	// QuarantineAfter caps the events accepted from one reporter within
	// a tick window; the reporter is then muted until the window rolls
	// over (plus QuarantineTicks). 0 disables quarantine.
	QuarantineAfter int
	// QuarantineTicks extends a triggered quarantine beyond the current
	// window: a flapping reporter that keeps tripping the cap stays
	// muted for this many additional ticks per trip.
	QuarantineTicks int
	// MaxAgeTicks evicts buffered events older than this many ticks at
	// each Tick (report aging). 0 disables aging.
	MaxAgeTicks int
}

// DefaultMaxEvents bounds the event ring when the config does not.
const DefaultMaxEvents = 4096

// LoopEvent is a controller-side record of one report.
type LoopEvent struct {
	detect.Report
	// Node is the topology node of the reporting switch.
	Node int
	// Flow is the flow whose packet raised the report (0 when unknown —
	// e.g. reports delivered through the bare Deliver API).
	Flow uint32
	// Members is the full loop membership when the report closed a
	// §3.5 collection lap; nil for plain detection reports.
	Members []detect.SwitchID
}

// ControllerStats is a snapshot of the controller's counters. All totals
// are monotonic since the last Reset; delivered = accepted + deduped +
// quarantined, and accepted = buffered + evicted + aged.
type ControllerStats struct {
	Delivered   uint64
	Accepted    uint64
	Deduped     uint64
	Quarantined uint64
	Evicted     uint64
	Aged        uint64
	Buffered    int
	Tick        uint64
}

// String renders the snapshot as a stable single line for event logs.
func (s ControllerStats) String() string {
	return fmt.Sprintf("delivered=%d accepted=%d deduped=%d quarantined=%d evicted=%d aged=%d buffered=%d",
		s.Delivered, s.Accepted, s.Deduped, s.Quarantined, s.Evicted, s.Aged, s.Buffered)
}

// NewController returns a controller with default hardening: a bounded
// ring of DefaultMaxEvents and no dedup/quarantine/aging.
func NewController() *Controller { return NewControllerWithConfig(ControllerConfig{}) }

// NewControllerWithConfig returns a controller with explicit hardening
// knobs.
func NewControllerWithConfig(cfg ControllerConfig) *Controller {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &Controller{
		cfg:       cfg,
		reporters: make(map[detect.SwitchID]*reporterState),
	}
}

// Config returns the controller's hardening configuration.
func (c *Controller) Config() ControllerConfig { return c.cfg }

// Deliver records a plain detection report.
func (c *Controller) Deliver(r detect.Report, node int) {
	c.DeliverEvent(LoopEvent{Report: r, Node: node})
}

// DeliverEvent records a full event (e.g. with loop membership), subject
// to quarantine and the ring bound but not to per-flow dedup (dedup
// needs the flow's journey context — see deliverFlow).
func (c *Controller) DeliverEvent(ev LoopEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admitLocked(ev)
}

// dedupEntries is the capacity of a per-flow dedup window: the distinct
// reporters a single journey can realistically alternate between inside
// one window (reports are rare — at most one per detection, and a
// detection resets the in-band state).
const dedupEntries = 8

// DedupWindow is the per-flow dedup window. In the emulator it lives in
// the sender's scratch (one packet's journey is sequential), so it needs
// no locking, its memory is bounded per in-flight packet rather than per
// flow ever seen, and its decisions depend only on the flow's own
// history — the property that keeps controller aggregates
// worker-count-invariant. A networked collector (internal/collectorsvc)
// keeps one per flow on the ingesting shard and reproduces the same
// decisions from the hop counts carried on the wire.
type DedupWindow struct {
	n int
	e [dedupEntries]struct {
		reporter detect.SwitchID
		hop      int
	}
}

// Reset clears the window for a new flow.
func (d *DedupWindow) Reset() { d.n = 0 }

// DedupEntry is one externally-visible window slot — the serialization
// surface the collector's write-ahead journal snapshots through.
type DedupEntry struct {
	Reporter detect.SwitchID
	Hop      int
}

// Entries returns the window's live slots in insertion order.
func (d *DedupWindow) Entries() []DedupEntry {
	if d.n == 0 {
		return nil
	}
	out := make([]DedupEntry, d.n)
	for i := 0; i < d.n; i++ {
		out[i] = DedupEntry{Reporter: d.e[i].reporter, Hop: d.e[i].hop}
	}
	return out
}

// Restore rebuilds the window from previously captured entries,
// truncating to capacity. Entries(); Restore() is the identity for any
// window the controller can produce.
func (d *DedupWindow) Restore(entries []DedupEntry) {
	d.n = 0
	for _, e := range entries {
		if d.n == len(d.e) {
			return
		}
		d.e[d.n].reporter = e.Reporter
		d.e[d.n].hop = e.Hop
		d.n++
	}
}

// DeliverFlow is the data-plane delivery path: per-flow dedup against w,
// then the shared admission pipeline. hop is the reporting packet's hop
// count when the report fired. Returns whether the event was accepted.
func (c *Controller) DeliverFlow(ev LoopEvent, w *DedupWindow, hop int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deliverFlowLocked(ev, w, hop)
}

// FlowDelivery is one unit of a batched delivery: an event with its
// flow's dedup window and the reporting packet's hop count.
type FlowDelivery struct {
	Ev  LoopEvent
	W   *DedupWindow
	Hop int
}

// DeliverFlowBatch runs a batch through the same per-flow dedup and
// admission pipeline as DeliverFlow, in order, under one lock
// acquisition — the collector's shard workers use it so the controller
// mutex is taken per drained batch rather than per report. Entries may
// share a window (consecutive reports of one flow); decisions are
// identical to delivering them one at a time. Returns the number
// accepted.
func (c *Controller) DeliverFlowBatch(batch []FlowDelivery) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range batch {
		if c.deliverFlowLocked(d.Ev, d.W, d.Hop) {
			n++
		}
	}
	return n
}

// deliverFlowLocked is DeliverFlow's body. Caller holds mu.
func (c *Controller) deliverFlowLocked(ev LoopEvent, w *DedupWindow, hop int) bool {
	if c.cfg.DedupWindow > 0 {
		for i := 0; i < w.n; i++ {
			if w.e[i].reporter == ev.Reporter && hop-w.e[i].hop < c.cfg.DedupWindow {
				c.delivered++
				c.deduped++
				return false
			}
		}
		// Record the accepted-report anchor: update the reporter's
		// entry, or take a free slot, or overwrite the stalest entry.
		slot := -1
		for i := 0; i < w.n; i++ {
			if w.e[i].reporter == ev.Reporter {
				slot = i
				break
			}
		}
		if slot < 0 {
			if w.n < dedupEntries {
				slot = w.n
				w.n++
			} else {
				slot = 0
				for i := 1; i < dedupEntries; i++ {
					if w.e[i].hop < w.e[slot].hop {
						slot = i
					}
				}
			}
		}
		w.e[slot].reporter = ev.Reporter
		w.e[slot].hop = hop
	}
	return c.admitLocked(ev)
}

// admitLocked runs quarantine and the ring bound. Caller holds mu.
func (c *Controller) admitLocked(ev LoopEvent) bool {
	c.delivered++
	rs := c.reporters[ev.Reporter]
	if rs == nil {
		rs = &reporterState{}
		c.reporters[ev.Reporter] = rs
	}
	if q := c.cfg.QuarantineAfter; q > 0 {
		if c.tick < rs.mutedUntil {
			c.quarantined++
			return false
		}
		if rs.window >= uint64(q) {
			// Tripping the cap mutes the reporter for the rest of this
			// window plus the configured backoff.
			rs.mutedUntil = c.tick + 1 + uint64(c.cfg.QuarantineTicks)
			c.quarantined++
			return false
		}
		rs.window++
	}
	rs.total++
	c.accepted++
	c.pushLocked(ev)
	return true
}

// pushLocked appends to the ring, evicting the oldest entry when full.
func (c *Controller) pushLocked(ev LoopEvent) {
	if c.ring == nil {
		c.ring = make([]timedEvent, c.cfg.MaxEvents)
	}
	if c.n == len(c.ring) {
		c.ring[c.head] = timedEvent{ev: ev, tick: c.tick}
		c.head = (c.head + 1) % len(c.ring)
		c.evicted++
		return
	}
	c.ring[(c.head+c.n)%len(c.ring)] = timedEvent{ev: ev, tick: c.tick}
	c.n++
}

// Tick advances the controller's logical clock: per-reporter quarantine
// windows roll over and buffered events past MaxAgeTicks age out. The
// churn driver calls it at quiesced epoch boundaries, which keeps every
// clock-driven decision deterministic.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	for _, rs := range c.reporters {
		rs.window = 0
	}
	if c.cfg.MaxAgeTicks > 0 {
		for c.n > 0 && c.tick-c.ring[c.head].tick > uint64(c.cfg.MaxAgeTicks) {
			c.ring[c.head] = timedEvent{}
			c.head = (c.head + 1) % len(c.ring)
			c.n--
			c.aged++
		}
	}
}

// Memberships returns every completed loop-membership report still
// buffered.
func (c *Controller) Memberships() [][]detect.SwitchID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][]detect.SwitchID
	for i := 0; i < c.n; i++ {
		e := c.ring[(c.head+i)%len(c.ring)].ev
		if len(e.Members) > 0 {
			out = append(out, append([]detect.SwitchID(nil), e.Members...))
		}
	}
	return out
}

// Events returns a copy of the buffered events, oldest first. Under the
// ring bound this is the most recent MaxEvents accepted events; use
// Stats for the monotonic totals.
func (c *Controller) Events() []LoopEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LoopEvent, 0, c.n)
	for i := 0; i < c.n; i++ {
		out = append(out, c.ring[(c.head+i)%len(c.ring)].ev)
	}
	return out
}

// Count returns the number of reports accepted since the last Reset.
// It is monotonic: eviction and aging remove events from the buffer but
// not from this total.
func (c *Controller) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.accepted)
}

// Stats returns a snapshot of the admission counters.
func (c *Controller) Stats() ControllerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ControllerStats{
		Delivered:   c.delivered,
		Accepted:    c.accepted,
		Deduped:     c.deduped,
		Quarantined: c.quarantined,
		Evicted:     c.evicted,
		Aged:        c.aged,
		Buffered:    c.n,
		Tick:        c.tick,
	}
}

// Reset clears the log, the counters, the quarantine state, and the
// logical clock. The configuration survives.
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = nil
	c.head, c.n = 0, 0
	c.tick = 0
	c.delivered, c.accepted, c.deduped = 0, 0, 0
	c.quarantined, c.evicted, c.aged = 0, 0, 0
	c.reporters = make(map[detect.SwitchID]*reporterState)
}

// TopReporters returns reporting switches ranked by accepted-report
// count — the operator's first view of where a loop lives. The ranking
// uses lifetime totals, not the buffer, so it is unaffected by eviction
// and identical for any worker count.
func (c *Controller) TopReporters() []detect.SwitchID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]detect.SwitchID, 0, len(c.reporters))
	for id, rs := range c.reporters {
		if rs.total > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		ti, tj := c.reporters[ids[i]].total, c.reporters[ids[j]].total
		if ti != tj {
			return ti > tj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// MergeControllerStats folds per-shard snapshots into one aggregate.
// Every monotonic counter sums, so the admission identities survive the
// merge exactly: delivered = accepted + deduped + quarantined and
// accepted = buffered + evicted + aged hold for the aggregate whenever
// they hold per shard. Tick reports the maximum shard clock (shards of
// one collector tick together; a straggler only lags, never leads).
func MergeControllerStats(shards ...ControllerStats) ControllerStats {
	var out ControllerStats
	for _, s := range shards {
		out.Delivered += s.Delivered
		out.Accepted += s.Accepted
		out.Deduped += s.Deduped
		out.Quarantined += s.Quarantined
		out.Evicted += s.Evicted
		out.Aged += s.Aged
		out.Buffered += s.Buffered
		if s.Tick > out.Tick {
			out.Tick = s.Tick
		}
	}
	return out
}
