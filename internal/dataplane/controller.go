package dataplane

import (
	"sort"
	"sync"

	"github.com/unroller/unroller/internal/detect"
)

// Controller is the control-plane sink for loop reports. Real deployments
// would push these over a southbound channel; the emulator delivers them
// synchronously but the sink is safe for concurrent use so parallel
// benchmarks can share one.
type Controller struct {
	mu      sync.Mutex
	reports []LoopEvent
}

// LoopEvent is a controller-side record of one report.
type LoopEvent struct {
	detect.Report
	// Node is the topology node of the reporting switch.
	Node int
	// Members is the full loop membership when the report closed a
	// §3.5 collection lap; nil for plain detection reports.
	Members []detect.SwitchID
}

// NewController returns an empty controller.
func NewController() *Controller { return &Controller{} }

// Deliver records a plain detection report.
func (c *Controller) Deliver(r detect.Report, node int) {
	c.DeliverEvent(LoopEvent{Report: r, Node: node})
}

// DeliverEvent records a full event (e.g. with loop membership).
func (c *Controller) DeliverEvent(ev LoopEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports = append(c.reports, ev)
}

// Memberships returns every completed loop-membership report.
func (c *Controller) Memberships() [][]detect.SwitchID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][]detect.SwitchID
	for _, e := range c.reports {
		if len(e.Members) > 0 {
			out = append(out, append([]detect.SwitchID(nil), e.Members...))
		}
	}
	return out
}

// Events returns a copy of all recorded reports.
func (c *Controller) Events() []LoopEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LoopEvent(nil), c.reports...)
}

// Count returns the number of reports received.
func (c *Controller) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reports)
}

// Reset clears the log.
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports = nil
}

// TopReporters returns reporting switches ranked by report count —
// the operator's first view of where a loop lives.
func (c *Controller) TopReporters() []detect.SwitchID {
	c.mu.Lock()
	defer c.mu.Unlock()
	counts := make(map[detect.SwitchID]int)
	for _, e := range c.reports {
		counts[e.Reporter]++
	}
	ids := make([]detect.SwitchID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
