package dataplane

import (
	"errors"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// torusWithLoop builds a 4x4 torus network with a unit-square loop
// injected for dst 15, packets entering at node 5 (on the loop).
func torusWithLoop(t *testing.T, cfg core.Config, seed uint64) (*Network, topology.Cycle, int) {
	t.Helper()
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign := topology.NewAssignment(g, xrand.New(seed))
	n, err := NewNetwork(g, assign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := 15
	if err := n.InstallShortestPaths(dst); err != nil {
		t.Fatal(err)
	}
	cycle := topology.Cycle{5, 6, 10, 9}
	if err := n.InjectLoop(dst, cycle); err != nil {
		t.Fatal(err)
	}
	return n, cycle, dst
}

// TestCollectMode: with ActionCollect the controller learns the complete
// loop membership, in cycle order.
func TestCollectMode(t *testing.T) {
	n, cycle, dst := torusWithLoop(t, core.DefaultConfig(), 21)
	n.SetLoopPolicy(ActionCollect)

	tr, err := n.Send(5, dst, 1, 255, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropLoop {
		t.Fatalf("final %v, want drop-loop after the collection lap", tr.Final)
	}
	members := n.Controller.Memberships()
	if len(members) != 1 {
		t.Fatalf("memberships: %d, want 1", len(members))
	}
	got := members[0]
	if len(got) != cycle.Len() {
		t.Fatalf("membership %v has %d switches, loop has %d", got, len(got), cycle.Len())
	}
	// Every reported ID must be a cycle member, each exactly once.
	onCycle := map[detect.SwitchID]bool{}
	for _, node := range cycle {
		onCycle[n.Assign.ID(node)] = true
	}
	seen := map[detect.SwitchID]bool{}
	for _, id := range got {
		if !onCycle[id] {
			t.Fatalf("reported member %v is not on the loop", id)
		}
		if seen[id] {
			t.Fatalf("member %v reported twice", id)
		}
		seen[id] = true
	}
	// Two reports total: the detection itself, then the membership.
	if n.Controller.Count() != 2 {
		t.Fatalf("controller has %d events, want 2", n.Controller.Count())
	}
}

// TestCollectRecordRoundTrip: the wire codec for collection records.
func TestCollectRecordRoundTrip(t *testing.T) {
	rec := collectRecord{Initiator: 0xABCD, IDs: []detect.SwitchID{1, 2, 3}}
	buf, err := rec.marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := unmarshalCollect(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Initiator != rec.Initiator || len(dec.IDs) != 3 || dec.IDs[2] != 3 {
		t.Fatalf("round trip: %+v", dec)
	}
	// Truncation and caps.
	if _, err := unmarshalCollect(buf[:7]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := unmarshalCollect(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	big := collectRecord{IDs: make([]detect.SwitchID, maxCollectIDs+1)}
	if _, err := big.marshal(); err == nil {
		t.Fatal("oversized record accepted")
	}
}

// TestCollectRecordRejectsCraftedCount: a count byte above maxCollectIDs
// must be rejected at parse time with ErrMalformed. Before this guard a
// crafted count up to 255 (with enough trailing bytes) parsed fine and
// only failed deep in the pipeline when the record was re-marshalled.
func TestCollectRecordRejectsCraftedCount(t *testing.T) {
	for _, count := range []int{maxCollectIDs + 1, 100, 255} {
		buf := make([]byte, 5+4*count)
		buf[4] = byte(count)
		_, err := unmarshalCollect(buf)
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("count %d: err = %v, want ErrMalformed", count, err)
		}
	}
	// The cap itself still parses and re-marshals.
	full := make([]byte, 5+4*maxCollectIDs)
	full[4] = maxCollectIDs
	rec, err := unmarshalCollect(full)
	if err != nil {
		t.Fatalf("record at the cap rejected: %v", err)
	}
	if _, err := rec.marshal(); err != nil {
		t.Fatalf("parse-accepted record failed to re-marshal: %v", err)
	}
}

// TestUnmarshalRejectsUnknownFlags: undefined flag bits are ErrMalformed
// on the wire, so a future FlagCollect-style extension cannot be
// silently misinterpreted by parsers that predate it.
func TestUnmarshalRejectsUnknownFlags(t *testing.T) {
	p := &Packet{Flags: FlagCollect, TTL: 3, Telemetry: []byte{0, 0, 0, 1, 0}}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatalf("known flags rejected: %v", err)
	}
	for _, flags := range []uint8{1 << 1, 1 << 7, FlagCollect | 1<<3, 0xFF} {
		buf[1] = flags
		err := q.Unmarshal(buf)
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("flags %#02x: err = %v, want ErrMalformed", flags, err)
		}
	}
}

// TestTTLHopCountInDataplane: the footnote-3 variant detects loops at
// the same hop as the self-counting one, while carrying 8 fewer bits.
func TestTTLHopCountInDataplane(t *testing.T) {
	base := core.DefaultConfig()
	ttlCfg := base
	ttlCfg.TTLHopCount = true

	nBase, _, dstA := torusWithLoop(t, base, 33)
	nTTL, _, dstB := torusWithLoop(t, ttlCfg, 33)
	nBase.SetLoopPolicy(ActionDrop)
	nTTL.SetLoopPolicy(ActionDrop)

	trBase, err := nBase.Send(5, dstA, 1, InitialTTL, true)
	if err != nil {
		t.Fatal(err)
	}
	trTTL, err := nTTL.Send(5, dstB, 1, InitialTTL, true)
	if err != nil {
		t.Fatal(err)
	}
	if trBase.Final != DropLoop || trTTL.Final != DropLoop {
		t.Fatalf("finals %v / %v", trBase.Final, trTTL.Final)
	}
	if trBase.Report.Hops != trTTL.Report.Hops {
		t.Fatalf("TTL-derived counting detected at %d, explicit at %d", trTTL.Report.Hops, trBase.Report.Hops)
	}
	if ttlCfg.HeaderBits() != base.HeaderBits()-8 {
		t.Fatal("TTL variant must save 8 bits")
	}
	// Misuse: wrong initial TTL is a loud error.
	if _, err := nTTL.Send(5, dstB, 1, 255, true); err != nil {
		t.Fatalf("InitialTTL send failed: %v", err)
	}
}

// TestLoopPolicyDrop: explicit drop policy ignores installed backups.
func TestLoopPolicyDrop(t *testing.T) {
	n, _, dst := torusWithLoop(t, core.DefaultConfig(), 44)
	n.SetLoopPolicy(ActionDrop) // backups still installed, must be ignored
	tr, err := n.Send(5, dst, 1, 255, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final != DropLoop || tr.Rerouted {
		t.Fatalf("drop policy produced %v (rerouted=%v)", tr.Final, tr.Rerouted)
	}
}

// TestLoopActionString covers the stringer.
func TestLoopActionString(t *testing.T) {
	for a, want := range map[LoopAction]string{
		ActionDrop: "drop", ActionReroute: "reroute", ActionCollect: "collect",
	} {
		if a.String() != want {
			t.Errorf("%d: %q", a, a.String())
		}
	}
	if LoopAction(9).String() == "" {
		t.Error("unknown action must format")
	}
}

// TestCollectSurvivesFlagsRoundTrip: the collect flag survives the wire.
func TestCollectSurvivesFlagsRoundTrip(t *testing.T) {
	p := &Packet{Flags: FlagCollect, TTL: 9, Telemetry: []byte{0, 0, 0, 1, 0}}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if q.Flags&FlagCollect == 0 {
		t.Fatal("flag lost on the wire")
	}
}

// TestUnmarshalFuzz: random bytes never panic the frame parser, and
// whatever the parsers accept must survive the rest of the pipeline —
// in particular, an accepted collection record must re-marshal (the
// crafted-count-byte corpus below used to parse fine and then blow up
// on re-marshal against maxCollectIDs).
func TestUnmarshalFuzz(t *testing.T) {
	rng := xrand.New(0xF022)
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Uint32())
		}
		var p Packet
		_ = p.Unmarshal(buf) // error or success, never a panic
	}
	// Collection-record corpus: random count bytes (the full 0..255
	// range, weighted to straddle the cap) over random-length bodies.
	for trial := 0; trial < 5000; trial++ {
		body := make([]byte, rng.Intn(5+4*(maxCollectIDs+4)))
		for i := range body {
			body[i] = byte(rng.Uint32())
		}
		if len(body) >= 5 && trial%2 == 0 {
			body[4] = byte(maxCollectIDs - 2 + rng.Intn(8))
		}
		rec, err := unmarshalCollect(body)
		if err != nil {
			continue
		}
		if len(rec.IDs) > maxCollectIDs {
			t.Fatalf("parser accepted %d ids (cap %d) from %d bytes", len(rec.IDs), maxCollectIDs, len(body))
		}
		if _, err := rec.marshal(); err != nil {
			t.Fatalf("parse-accepted record failed to re-marshal: %v", err)
		}
	}
}
