package dataplane

import (
	"errors"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
)

// These tests cover the pipeline's error paths, which the scenario tests
// never hit: malformed telemetry, inconsistent TTL-derived hop counts,
// and FIB installation on nonexistent ports.

func testSwitch(t *testing.T, cfg core.Config) *Switch {
	t.Helper()
	u, err := core.New(cfg)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return newSwitch(detect.SwitchID(0x11), 0, []int{1, 2}, u)
}

// TestProcessTruncatedTelemetry pins that a short Unroller header is
// rejected with the package-prefixed, sentinel-wrapped error chain.
func TestProcessTruncatedTelemetry(t *testing.T) {
	sw := testSwitch(t, core.DefaultConfig())
	p := &Packet{TTL: 10, Dst: detect.SwitchID(0x99), Telemetry: []byte{0x01}}
	_, err := sw.Process(p)
	if err == nil {
		t.Fatal("Process accepted a truncated header")
	}
	if !errors.Is(err, core.ErrHeaderTooShort) {
		t.Fatalf("error chain lost the sentinel: %v", err)
	}
	if !strings.HasPrefix(err.Error(), "dataplane: ") {
		t.Fatalf("error %q lacks the dataplane prefix", err)
	}
}

// TestDecodeInconsistentTTL pins the TTL-derived hop counting guard:
// after Process's per-hop decrement a legitimate packet can never still
// carry InitialTTL, so decodeTelemetry must refuse to derive a hop count
// from it. (TTL is a uint8, so Process itself cannot construct this
// state; the guard is the defence against a corrupted frame.)
func TestDecodeInconsistentTTL(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.TTLHopCount = true
	sw := testSwitch(t, cfg)
	tel, err := sw.unroller.NewPacketState().AppendHeader(nil)
	if err != nil {
		t.Fatalf("AppendHeader: %v", err)
	}
	p := &Packet{TTL: InitialTTL, Dst: detect.SwitchID(0x99), Telemetry: tel}
	if _, err := sw.decodeTelemetry(p); err == nil {
		t.Fatal("decodeTelemetry accepted a post-decrement TTL of InitialTTL")
	} else if !strings.Contains(err.Error(), "TTL") {
		t.Fatalf("error %q does not name the TTL inconsistency", err)
	}

	// A plausible TTL decodes fine and derives the right hop count.
	p.TTL = InitialTTL - 3 // injected at 255, now entering hop 3
	st, err := sw.decodeTelemetry(p)
	if err != nil {
		t.Fatalf("decodeTelemetry: %v", err)
	}
	if st.Hops() != 2 {
		t.Fatalf("derived hop count = %d, want 2 (pre-Visit)", st.Hops())
	}
}

// TestSetRouteBadPort pins FIB installation errors for out-of-range
// ports.
func TestSetRouteBadPort(t *testing.T) {
	sw := testSwitch(t, core.DefaultConfig())
	for _, port := range []PortID{-1, 2, 99} {
		if err := sw.SetRoute(detect.SwitchID(0x22), port); err == nil {
			t.Errorf("SetRoute accepted nonexistent port %d", port)
		}
		if err := sw.SetBackup(detect.SwitchID(0x22), port); err == nil {
			t.Errorf("SetBackup accepted nonexistent port %d", port)
		}
	}
	if err := sw.SetRoute(detect.SwitchID(0x22), 1); err != nil {
		t.Errorf("SetRoute rejected valid port: %v", err)
	}
}
