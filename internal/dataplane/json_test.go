package dataplane

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/unroller/unroller/internal/detect"
)

var updateJSON = flag.Bool("update", false, "rewrite JSON golden files from current output")

// TestControllerJSONGolden pins the machine-readable schema shared by
// collectord's admin endpoint and the CLI byte-for-byte. Changing a
// field name, the key order, or the switch-ID rendering is a schema
// break and must be done deliberately (regenerate with -update).
func TestControllerJSONGolden(t *testing.T) {
	stats := ControllerStats{
		Delivered: 10, Accepted: 6, Deduped: 3, Quarantined: 1,
		Evicted: 2, Aged: 1, Buffered: 3, Tick: 7,
	}
	event := LoopEvent{
		Report: detect.Report{Reporter: 0xDEADBEEF, Hops: 9},
		Node:   4,
		Flow:   1234,
		Members: []detect.SwitchID{
			0xDEADBEEF, 0x00C0FFEE,
		},
	}
	plain := LoopEvent{
		Report: detect.Report{Reporter: 0x01020304, Hops: 2},
		Node:   0,
		Flow:   1,
	}

	var got bytes.Buffer
	enc := json.NewEncoder(&got)
	enc.SetIndent("", "  ")
	for _, v := range []any{stats, event, plain} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}

	golden := filepath.Join("testdata", "controller_json.golden")
	if *updateJSON {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("JSON schema drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, got.String(), want)
	}
}

// TestLoopEventJSONRoundTrip checks Unmarshal inverts Marshal, members
// or not.
func TestLoopEventJSONRoundTrip(t *testing.T) {
	events := []LoopEvent{
		{Report: detect.Report{Reporter: 0xABCD0123, Hops: 17}, Node: 3, Flow: 99,
			Members: []detect.SwitchID{1, 2, 0xFFFFFFFF}},
		{Report: detect.Report{Reporter: 1, Hops: 1}},
	}
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back LoopEvent
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !reflect.DeepEqual(ev, back) {
			t.Errorf("round trip: got %+v want %+v", back, ev)
		}
	}
}

// TestLoopEventJSONRejectsBadIDs checks malformed switch IDs error
// rather than silently zeroing.
func TestLoopEventJSONRejectsBadIDs(t *testing.T) {
	for _, in := range []string{
		`{"reporter":"deadbeef","hops":1,"node":0,"flow":0,"members":[]}`,
		`{"reporter":"sw-XYZ","hops":1,"node":0,"flow":0,"members":[]}`,
		`{"reporter":"sw-00000001","hops":1,"node":0,"flow":0,"members":["nope"]}`,
	} {
		var ev LoopEvent
		if err := json.Unmarshal([]byte(in), &ev); err == nil {
			t.Errorf("accepted malformed input %s", in)
		}
	}
}
