package dataplane

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// buildChurn constructs a deterministic churn workload from seed: a 4x4
// torus with full shortest-path FIBs and a persistent loop, a plan that
// cuts a link, reboots a loop member, restores it from a stale snapshot
// under a corruption storm, then heals everything, and five epochs of
// seeded mixed traffic. Two calls with the same seed produce networks,
// plans, and flow lists that are bit-for-bit identical.
func buildChurn(t *testing.T, seed uint64) (*Network, *FaultPlan, []ChurnEpoch) {
	t.Helper()
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(g, topology.NewAssignment(g, xrand.New(seed)), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Controller = NewControllerWithConfig(ControllerConfig{
		MaxEvents: 128, DedupWindow: 8, QuarantineAfter: 4, QuarantineTicks: 1, MaxAgeTicks: 2,
	})
	for dst := 0; dst < g.N(); dst++ {
		if err := n.InstallShortestPaths(dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.InjectLoop(15, topology.Cycle{5, 6, 10, 9}); err != nil {
		t.Fatal(err)
	}
	n.SetLoopPolicy(ActionDrop)
	stale := routesAsUpdates(n, 6)

	plan := &FaultPlan{}
	plan.LinkDownAt(1, 0, 1)
	plan.RestartAt(2, 6)
	plan.RoutesAt(3, stale)
	plan.CorruptionAt(3, 0.2, seed^77)
	plan.LinkUpAt(4, 0, 1)
	plan.CorruptionAt(4, 0, 0)

	rng := xrand.New(seed ^ 0xF10)
	var epochs []ChurnEpoch
	id := uint32(0)
	for e := 0; e < 5; e++ {
		var flows []Flow
		for i := 0; i < 60; i++ {
			f := Flow{ID: id, TTL: InitialTTL, Telemetry: true}
			id++
			if i%3 == 0 {
				// Steer a third of the traffic into the loop.
				f.Src, f.Dst = 5, 15
			} else {
				f.Src = rng.Intn(g.N())
				f.Dst = rng.Intn(g.N() - 1)
				if f.Dst >= f.Src {
					f.Dst++
				}
			}
			flows = append(flows, f)
		}
		epochs = append(epochs, ChurnEpoch{Flows: flows})
	}
	return n, plan, epochs
}

// TestRunChurnWorkerInvariance: the full churn result — event log,
// per-epoch aggregates, disposition table, controller admission stats,
// link loads — is identical at 1, 4, and 16 workers while faults fire
// between every epoch. This is the determinism contract of the whole
// fault subsystem: quiesced shared-state mutation plus pure per-hop
// corruption leaves nothing for scheduling to perturb.
func TestRunChurnWorkerInvariance(t *testing.T) {
	const seed = 31
	netBase, plan, epochs := buildChurn(t, seed)
	base, err := RunChurn(NewTrafficEngine(netBase, 1), plan, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Reports == 0 {
		t.Fatal("workload produced no loop reports; invariance test is vacuous")
	}
	if base.Dispositions[DropLink] == 0 || base.Dispositions[DropCorrupt] == 0 || base.Dispositions[DropNoRoute] == 0 {
		t.Fatalf("workload must exercise link, corruption, and restart drops: %v", base.Dispositions)
	}
	for _, workers := range []int{4, 16} {
		net, plan, epochs := buildChurn(t, seed)
		res, err := RunChurn(NewTrafficEngine(net, workers), plan, epochs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("workers=%d: churn result diverged\n base: %+v\n got:  %+v", workers, base, res)
		}
		if got, want := net.TotalPacketHops(), netBase.TotalPacketHops(); got != want {
			t.Errorf("workers=%d: total packet hops %d, want %d", workers, got, want)
		}
		if got, want := net.Controller.TopReporters(), netBase.Controller.TopReporters(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: top reporters %v, want %v", workers, got, want)
		}
	}
}

// TestRunChurnReplaysFromSeed: the same seed replays the identical run;
// a different seed produces a different one (the log embeds the flows'
// fates, so identical logs across seeds would mean the seed is dead).
func TestRunChurnReplaysFromSeed(t *testing.T) {
	run := func(seed uint64) *ChurnResult {
		net, plan, epochs := buildChurn(t, seed)
		res, err := RunChurn(NewTrafficEngine(net, 8), plan, epochs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(99), run(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed did not replay the identical churn result")
	}
	c := run(100)
	if reflect.DeepEqual(a.PerEpoch, c.PerEpoch) {
		t.Fatal("different seeds produced identical per-epoch results")
	}
}

// TestChurnConcurrentReaders races the controller's read API —
// Events, Stats, Count, Memberships, TopReporters — against a full
// churn run with faults firing, then checks the final accounting
// invariants. The readers assert only internally-consistent snapshots;
// the race detector (ci.sh runs this suite under -race) does the rest.
func TestChurnConcurrentReaders(t *testing.T) {
	net, plan, epochs := buildChurn(t, 47)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := net.Controller.Stats()
				if st.Delivered != st.Accepted+st.Deduped+st.Quarantined {
					t.Errorf("stats snapshot inconsistent: %+v", st)
					return
				}
				if got := len(net.Controller.Events()); got > 128 {
					t.Errorf("events snapshot exceeds MaxEvents: %d", got)
					return
				}
				net.Controller.Count()
				net.Controller.Memberships()
				net.Controller.TopReporters()
			}
		}()
	}
	res, err := RunChurn(NewTrafficEngine(net, 8), plan, epochs)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	st := res.Controller
	if st.Delivered != st.Accepted+st.Deduped+st.Quarantined {
		t.Fatalf("final stats violate delivered = accepted+deduped+quarantined: %+v", st)
	}
	if st.Accepted != uint64(st.Buffered)+st.Evicted+st.Aged {
		t.Fatalf("final stats violate accepted = buffered+evicted+aged: %+v", st)
	}
}

// TestControllerDeliverResetRace hammers Deliver/DeliverEvent from many
// goroutines while others read Events/Stats and one repeatedly Resets —
// the worst-case interleaving for the mutex discipline. Correctness
// assertions are minimal (Reset wipes counters mid-flight); the test
// exists so the race detector can prove the locking sound.
func TestControllerDeliverResetRace(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{
		MaxEvents: 64, DedupWindow: 4, QuarantineAfter: 3, QuarantineTicks: 1, MaxAgeTicks: 1,
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var d DedupWindow
			for i := 0; i < 5000; i++ {
				ev := LoopEvent{Node: w, Flow: uint32(i)}
				ev.Reporter = detect.SwitchID(w*7 + i%13)
				ev.Hops = i % 50
				if i%2 == 0 {
					c.DeliverEvent(ev)
				} else {
					c.DeliverFlow(ev, &d, i)
				}
				if i%1000 == 0 {
					d.Reset()
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Events()
				st := c.Stats()
				if st.Delivered != st.Accepted+st.Deduped+st.Quarantined {
					t.Errorf("mid-flight stats inconsistent: %+v", st)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			c.Reset()
			c.Tick()
		}
		close(stop)
	}()
	wg.Wait()
	st := c.Stats()
	if st.Delivered != st.Accepted+st.Deduped+st.Quarantined {
		t.Fatalf("final stats inconsistent: %+v", st)
	}
}

// TestRunChurnFaultOnlyEpochs: a plan whose span exceeds the traffic
// schedule still fires its trailing events.
func TestRunChurnFaultOnlyEpochs(t *testing.T) {
	net, _, _ := buildChurn(t, 7)
	plan := &FaultPlan{}
	plan.LinkDownAt(0, 0, 1)
	plan.LinkUpAt(3, 0, 1)
	res, err := RunChurn(NewTrafficEngine(net, 2), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 4 {
		t.Fatalf("Epochs = %d, want 4 (plan span)", res.Epochs)
	}
	if res.Flows != 0 {
		t.Fatalf("Flows = %d, want 0", res.Flows)
	}
	if net.LinkIsUp(0, 1) != true {
		t.Fatal("trailing link-up event did not fire")
	}
	if res.Controller.Tick != 4 {
		t.Fatalf("controller ticked %d times, want 4", res.Controller.Tick)
	}
}

// TestRunChurnBadPlan: a fault referencing a missing link aborts with
// epoch context.
func TestRunChurnBadPlan(t *testing.T) {
	net, _, _ := buildChurn(t, 8)
	plan := &FaultPlan{}
	plan.LinkDownAt(0, 0, 5) // not a torus edge
	if _, err := RunChurn(NewTrafficEngine(net, 2), plan, nil); err == nil {
		t.Fatal("bad plan should abort the run")
	}
}

// TestChurnResultTable: the disposition table renders every disposition
// in declaration order, including zero rows.
func TestChurnResultTable(t *testing.T) {
	var r ChurnResult
	r.Dispositions[Deliver] = 3
	table := r.Table()
	for d := 0; d < NumDispositions; d++ {
		if !strings.Contains(table, Disposition(d).String()) {
			t.Errorf("table missing disposition %v:\n%s", Disposition(d), table)
		}
	}
}
