package dataplane

import (
	"fmt"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// This file is the data plane's fault-injection surface. The paper's
// premise is that loops are *transient*: they open while FIB updates are
// in flight and close when convergence completes, and a detector must
// catch them inside that window. A static emulation can't exercise that
// regime, so faults here are first-class, scheduled events:
//
//   - link failures and recoveries (SetLink): the wire dies under a FIB
//     that still points at it;
//   - staggered FIB updates (RouteUpdate batches): some switches learn
//     the new routes before others — the inconsistency window where
//     micro-loops live;
//   - switch restarts: forwarding state wiped until the control plane
//     reprograms it;
//   - wire-level corruption (CorruptionModel): seeded bit flips that the
//     parsers must reject cleanly.
//
// Determinism contract: shared-state events (links, routes, restarts,
// corruption-model changes) fire only at quiesced epoch boundaries (see
// RunChurn), and per-hop corruption strikes are a pure function of
// (seed, flow, hop) via xrand.Mix3. Every run is therefore replayable
// from its seed, and aggregates are identical at any worker count.

// CorruptionModel decides, per (flow, hop), whether the frame on the
// wire takes a bit flip — a stateless, seeded event stream.
type CorruptionModel struct {
	seed uint64
	// threshold compares against a uniform Mix3 output: a hop is struck
	// when the 64-bit hash falls below it, so threshold/2^64 ≈ prob.
	threshold uint64
}

// newCorruptionModel maps a probability to a threshold; prob <= 0 means
// no model (nil), prob >= 1 strikes every hop.
func newCorruptionModel(prob float64, seed uint64) *CorruptionModel {
	if prob <= 0 {
		return nil
	}
	m := &CorruptionModel{seed: seed}
	if prob >= 1 {
		m.threshold = ^uint64(0)
		return m
	}
	// 2^64 as a float64; the product back-converts exactly enough for a
	// probability knob, and identically on every conforming platform.
	m.threshold = uint64(prob * 18446744073709551616.0)
	return m
}

// strike flips one pseudo-random bit of wire when the (flow, hop) event
// fires, reporting whether it did. Pure function of the model's seed and
// the arguments — never of goroutine interleaving.
func (m *CorruptionModel) strike(flow uint32, hop uint64, wire []byte) bool {
	if len(wire) == 0 {
		return false
	}
	h := xrand.Mix3(m.seed, uint64(flow), hop)
	if h >= m.threshold {
		return false
	}
	bit := xrand.Mix3(m.seed^0xc0ffee, uint64(flow), hop) % uint64(len(wire)*8)
	wire[bit>>3] ^= byte(1) << (bit & 7)
	return true
}

// FaultKind enumerates the scheduled fault events.
type FaultKind uint8

const (
	// FaultLinkDown cuts the link {U, V}.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp restores the link {U, V}.
	FaultLinkUp
	// FaultRoutes applies a batch of FIB updates (Routes).
	FaultRoutes
	// FaultRestart reboots the switch at Node (FIB wiped).
	FaultRestart
	// FaultCorruption sets the wire corruption model to (Prob, Seed);
	// Prob 0 turns corruption off.
	FaultCorruption
	// FaultControllerReset wipes the controller's report log and
	// quarantine state — the control plane restarting mid-incident.
	FaultControllerReset
)

// RouteUpdate is one incremental FIB change: point Node's route for Dst
// at Port, or withdraw it when Clear is set.
type RouteUpdate struct {
	Node  int
	Dst   detect.SwitchID
	Port  PortID
	Clear bool
}

// FaultEvent is one scheduled fault; which fields matter depends on
// Kind. Events fire at the start of their Epoch, in plan insertion
// order.
type FaultEvent struct {
	Epoch int
	Kind  FaultKind

	U, V   int           // FaultLinkDown, FaultLinkUp
	Node   int           // FaultRestart
	Routes []RouteUpdate // FaultRoutes
	Prob   float64       // FaultCorruption
	Seed   uint64        // FaultCorruption
}

// String renders the event as a stable event-log line fragment.
func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultLinkDown:
		return fmt.Sprintf("link (%d,%d) down", e.U, e.V)
	case FaultLinkUp:
		return fmt.Sprintf("link (%d,%d) up", e.U, e.V)
	case FaultRoutes:
		return fmt.Sprintf("fib update: %d routes", len(e.Routes))
	case FaultRestart:
		return fmt.Sprintf("switch %d restart", e.Node)
	case FaultCorruption:
		if e.Prob <= 0 {
			return "corruption off"
		}
		return fmt.Sprintf("corruption p=%g", e.Prob)
	case FaultControllerReset:
		return "controller reset"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(e.Kind))
	}
}

// FaultPlan is a deterministic schedule of fault events keyed by epoch.
// Build it once from a seed; replaying the same plan over the same flows
// reproduces the same run bit for bit.
type FaultPlan struct {
	events []FaultEvent
}

// Add appends events to the plan. Within an epoch, events fire in the
// order they were added.
func (p *FaultPlan) Add(events ...FaultEvent) { p.events = append(p.events, events...) }

// LinkDownAt schedules a link cut.
func (p *FaultPlan) LinkDownAt(epoch, u, v int) {
	p.Add(FaultEvent{Epoch: epoch, Kind: FaultLinkDown, U: u, V: v})
}

// LinkUpAt schedules a link recovery.
func (p *FaultPlan) LinkUpAt(epoch, u, v int) {
	p.Add(FaultEvent{Epoch: epoch, Kind: FaultLinkUp, U: u, V: v})
}

// RoutesAt schedules a batch of FIB updates.
func (p *FaultPlan) RoutesAt(epoch int, routes []RouteUpdate) {
	p.Add(FaultEvent{Epoch: epoch, Kind: FaultRoutes, Routes: routes})
}

// RestartAt schedules a switch reboot.
func (p *FaultPlan) RestartAt(epoch, node int) {
	p.Add(FaultEvent{Epoch: epoch, Kind: FaultRestart, Node: node})
}

// CorruptionAt schedules a corruption-model change.
func (p *FaultPlan) CorruptionAt(epoch int, prob float64, seed uint64) {
	p.Add(FaultEvent{Epoch: epoch, Kind: FaultCorruption, Prob: prob, Seed: seed})
}

// ControllerResetAt schedules a controller state wipe.
func (p *FaultPlan) ControllerResetAt(epoch int) {
	p.Add(FaultEvent{Epoch: epoch, Kind: FaultControllerReset})
}

// At returns the events scheduled for epoch, in insertion order.
func (p *FaultPlan) At(epoch int) []FaultEvent {
	var out []FaultEvent
	for _, e := range p.events {
		if e.Epoch == epoch {
			out = append(out, e)
		}
	}
	return out
}

// Epochs returns the number of epochs the plan spans (max epoch + 1).
func (p *FaultPlan) Epochs() int {
	max := 0
	for _, e := range p.events {
		if e.Epoch+1 > max {
			max = e.Epoch + 1
		}
	}
	return max
}

// Len returns the total number of scheduled events.
func (p *FaultPlan) Len() int { return len(p.events) }

// ApplyFault executes one fault event against the network. Like all
// shared-state mutation it must run while traffic is quiesced; RunChurn
// guarantees that by applying events only at epoch boundaries.
func (n *Network) ApplyFault(ev FaultEvent) error {
	switch ev.Kind {
	case FaultLinkDown:
		return n.SetLink(ev.U, ev.V, false)
	case FaultLinkUp:
		return n.SetLink(ev.U, ev.V, true)
	case FaultRoutes:
		for _, ru := range ev.Routes {
			if ru.Node < 0 || ru.Node >= len(n.switches) {
				return fmt.Errorf("dataplane: route update for node %d out of range (graph has %d nodes)", ru.Node, len(n.switches))
			}
			sw := n.switches[ru.Node]
			if ru.Clear {
				sw.ClearRoute(ru.Dst)
				continue
			}
			if err := sw.SetRoute(ru.Dst, ru.Port); err != nil {
				return err
			}
		}
		return nil
	case FaultRestart:
		if ev.Node < 0 || ev.Node >= len(n.switches) {
			return fmt.Errorf("dataplane: restart of node %d out of range (graph has %d nodes)", ev.Node, len(n.switches))
		}
		n.switches[ev.Node].Restart()
		return nil
	case FaultCorruption:
		n.SetCorruption(ev.Prob, ev.Seed)
		return nil
	case FaultControllerReset:
		n.Controller.Reset()
		return nil
	default:
		return fmt.Errorf("dataplane: unknown fault kind %d", ev.Kind)
	}
}
