package dataplane

import (
	"sync"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/xrand"
)

// These tests pin the package's concurrency contract: a configured
// Network is safe for parallel Send, and W workers sending N packets
// each leave exactly the counters a single-threaded run leaves — switch
// stats, link loads, and controller counts alike. The CI gate runs them
// under -race.

// mixedFlows builds a deterministic batch mixing sources on and off the
// injected loop, with and without telemetry.
func mixedFlows(dst, count int, seed uint64) []Flow {
	rng := xrand.New(seed)
	flows := make([]Flow, count)
	for i := range flows {
		src := rng.Intn(16)
		for src == dst {
			src = rng.Intn(16)
		}
		flows[i] = Flow{
			Src:       src,
			Dst:       dst,
			ID:        uint32(i),
			TTL:       255,
			Telemetry: i%4 != 0, // every 4th packet is the blind counterfactual
		}
	}
	return flows
}

// netTotals sums every observable counter of a quiesced network.
func netTotals(n *Network) (stats SwitchStats, loads []uint64, reports int) {
	for node := 0; node < n.Graph.N(); node++ {
		s := n.Switch(node).Stats()
		stats.Received += s.Received
		stats.Forwarded += s.Forwarded
		stats.Delivered += s.Delivered
		stats.TTLDrops += s.TTLDrops
		stats.NoRoute += s.NoRoute
		stats.LoopHits += s.LoopHits
		stats.Reroutes += s.Reroutes
	}
	for _, l := range n.links {
		loads = append(loads, n.LinkLoad(l[0], l[1]))
	}
	return stats, loads, n.Controller.Count()
}

// TestParallelSendExactCounts: W goroutines calling Send directly on a
// shared network must leave exactly the single-threaded totals.
func TestParallelSendExactCounts(t *testing.T) {
	const workers = 8
	const perWorker = 16

	seqNet, _, dst := torusWithLoop(t, core.DefaultConfig(), 77)
	parNet, _, _ := torusWithLoop(t, core.DefaultConfig(), 77)
	flows := mixedFlows(dst, workers*perWorker, 0xC0C0)

	for _, f := range flows {
		if _, err := seqNet.Send(f.Src, f.Dst, f.ID, f.TTL, f.Telemetry); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(batch []Flow) {
			defer wg.Done()
			for _, f := range batch {
				if _, err := parNet.Send(f.Src, f.Dst, f.ID, f.TTL, f.Telemetry); err != nil {
					t.Error(err)
					return
				}
			}
		}(flows[w*perWorker : (w+1)*perWorker])
	}
	wg.Wait()

	wantStats, wantLoads, wantReports := netTotals(seqNet)
	gotStats, gotLoads, gotReports := netTotals(parNet)
	if gotStats != wantStats {
		t.Fatalf("switch stats diverge:\nparallel   %+v\nsequential %+v", gotStats, wantStats)
	}
	if gotReports != wantReports {
		t.Fatalf("controller counts diverge: parallel %d, sequential %d", gotReports, wantReports)
	}
	for i := range wantLoads {
		if gotLoads[i] != wantLoads[i] {
			l := parNet.links[i]
			t.Fatalf("link {%d,%d} load diverges: parallel %d, sequential %d", l[0], l[1], gotLoads[i], wantLoads[i])
		}
	}
	if parNet.TotalPacketHops() != seqNet.TotalPacketHops() {
		t.Fatal("total packet hops diverge")
	}
}

// TestTrafficEngineExactCounts: the batched engine path (per-worker
// scratch buffers and load accumulators) must match a single-threaded
// run summary for summary and counter for counter, at every worker
// count.
func TestTrafficEngineExactCounts(t *testing.T) {
	seqNet, _, dst := torusWithLoop(t, core.DefaultConfig(), 78)
	flows := mixedFlows(dst, 96, 0xD0D0)

	want := make([]TraceSummary, len(flows))
	for i, f := range flows {
		var err error
		if want[i], err = seqNet.SendFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	wantStats, wantLoads, wantReports := netTotals(seqNet)

	for _, workers := range []int{1, 2, 8} {
		parNet, _, _ := torusWithLoop(t, core.DefaultConfig(), 78)
		got, err := NewTrafficEngine(parNet, workers).SendMany(flows)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: summary %d diverges:\nengine     %+v\nsequential %+v", workers, i, got[i], want[i])
			}
		}
		gotStats, gotLoads, gotReports := netTotals(parNet)
		if gotStats != wantStats {
			t.Fatalf("workers=%d: switch stats diverge:\nengine     %+v\nsequential %+v", workers, gotStats, wantStats)
		}
		if gotReports != wantReports {
			t.Fatalf("workers=%d: controller counts diverge: %d vs %d", workers, gotReports, wantReports)
		}
		for i := range wantLoads {
			if gotLoads[i] != wantLoads[i] {
				l := parNet.links[i]
				t.Fatalf("workers=%d: link {%d,%d} load diverges: %d vs %d", workers, l[0], l[1], gotLoads[i], wantLoads[i])
			}
		}
	}
}

// TestParallelSendAndEngineInterleaved: raw Send calls racing an engine
// batch on the same network still account every traversal exactly.
func TestParallelSendAndEngineInterleaved(t *testing.T) {
	seqNet, _, dst := torusWithLoop(t, core.DefaultConfig(), 79)
	parNet, _, _ := torusWithLoop(t, core.DefaultConfig(), 79)
	engineFlows := mixedFlows(dst, 48, 0xE0E0)
	rawFlows := mixedFlows(dst, 24, 0xE1E1)

	for _, f := range append(append([]Flow(nil), engineFlows...), rawFlows...) {
		if _, err := seqNet.SendFlow(f); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := NewTrafficEngine(parNet, 4).SendMany(engineFlows); err != nil {
			t.Error(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, f := range rawFlows {
			if _, err := parNet.Send(f.Src, f.Dst, f.ID, f.TTL, f.Telemetry); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	wantStats, _, wantReports := netTotals(seqNet)
	gotStats, _, gotReports := netTotals(parNet)
	if gotStats != wantStats {
		t.Fatalf("switch stats diverge:\ninterleaved %+v\nsequential  %+v", gotStats, wantStats)
	}
	if gotReports != wantReports {
		t.Fatalf("controller counts diverge: %d vs %d", gotReports, wantReports)
	}
	if parNet.TotalPacketHops() != seqNet.TotalPacketHops() {
		t.Fatalf("total packet hops diverge: %d vs %d", parNet.TotalPacketHops(), seqNet.TotalPacketHops())
	}
}
