package dataplane

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/topology"
)

// Network is an emulated data plane: one Switch per topology node,
// destination-based FIBs, and a controller sink for loop reports.
//
// A Network is safe for concurrent Send calls once its routes are
// installed: switch counters and link-load counters are atomic, and the
// Controller sink is mutex-guarded. Route mutation (InstallShortestPaths,
// InjectLoop, SetRoute, SetLoopPolicy, ResetLoad) must not race with
// in-flight sends — configure first, then inject traffic, exactly like a
// real network quiesces FIB updates.
type Network struct {
	Graph  *topology.Graph
	Assign *topology.Assignment

	switches []*Switch
	unroller *core.Unroller

	// Link-load accounting is dense and lock-free. Every undirected
	// link {u, v} (u < v) gets an index into links, assigned in
	// ascending (u, v) order so iteration — and therefore tie-breaking
	// in MaxLinkLoad — is deterministic. linkLoad[i] is the shared
	// traversal counter for links[i]; Send bumps it atomically, while
	// TrafficEngine workers batch traversals in private per-worker
	// accumulators and merge them here when their flows finish.
	links     [][2]int
	linkIndex map[[2]int]int
	portLink  [][]int // portLink[node][port] = link index
	linkLoad  []atomic.Uint64

	// linkUp[i] is the physical state of links[i]; false means the wire
	// is cut and switches drop on its ports (DropLink). Mutated only
	// through SetLink while traffic is quiesced, like route mutation.
	linkUp []bool

	// corrupt, when non-nil, injects wire-level bit flips into frames in
	// flight. Decisions are a pure function of (seed, flow, hop), so a
	// corrupted run is replayable and worker-count-invariant. Set via
	// SetCorruption while quiesced.
	corrupt *CorruptionModel

	// Controller receives every loop report raised in the data plane.
	Controller *Controller

	// OnHop, when set, observes every packet arrival before the switch
	// pipeline runs — the tap a mirroring/tracing deployment would
	// install (internal/trace records through it). The callback must
	// not retain p (its slices alias reused scratch buffers), and must
	// itself be safe for concurrent use before driving the network from
	// multiple goroutines.
	OnHop func(node int, sw detect.SwitchID, p *Packet)

	// OnReport, when set, observes every loop report raised in the data
	// plane — the raw pre-admission stream, fired whether or not the
	// local Controller accepts the event. hop is the reporting packet's
	// hop count when the report fired, the context a remote collector
	// needs to replay per-flow dedup decisions (see
	// internal/collectorsvc). Called from Send's hop loop, so it must be
	// safe for concurrent use before driving the network from multiple
	// goroutines; ev.Members is heap-owned and safe to retain.
	OnReport ReportHook
}

// ReportHook observes a loop report leaving the data plane. The
// emulator's -collector mode installs one that streams events to a
// remote collectord.
type ReportHook func(ev LoopEvent, hop int)

// NewNetwork builds switches over g with identifiers from assign, all
// running the same Unroller configuration.
func NewNetwork(g *topology.Graph, assign *topology.Assignment, cfg core.Config) (*Network, error) {
	u, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Graph:      g,
		Assign:     assign,
		switches:   make([]*Switch, g.N()),
		unroller:   u,
		Controller: NewController(),
	}
	for node := 0; node < g.N(); node++ {
		n.switches[node] = newSwitch(assign.ID(node), node, g.Neighbors(node), u)
	}
	n.indexLinks()
	return n, nil
}

// indexLinks enumerates the undirected links in ascending (u, v) order
// and precomputes the per-port link index every forwarding hop uses, so
// the hop loop does one slice lookup instead of hashing a map key.
func (n *Network) indexLinks() {
	g := n.Graph
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				n.links = append(n.links, [2]int{u, v})
			}
		}
	}
	sort.Slice(n.links, func(i, j int) bool {
		a, b := n.links[i], n.links[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	n.linkIndex = make(map[[2]int]int, len(n.links))
	for i, l := range n.links {
		n.linkIndex[l] = i
	}
	n.linkLoad = make([]atomic.Uint64, len(n.links))
	n.linkUp = make([]bool, len(n.links))
	for i := range n.linkUp {
		n.linkUp[i] = true
	}
	n.portLink = make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		pl := make([]int, len(nbrs))
		for p, v := range nbrs {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			pl[p] = n.linkIndex[[2]int{a, b}]
		}
		n.portLink[u] = pl
	}
}

// Switch returns the switch at a node index.
func (n *Network) Switch(node int) *Switch { return n.switches[node] }

// SwitchByID returns the switch holding id, or nil.
func (n *Network) SwitchByID(id detect.SwitchID) *Switch {
	node := n.Assign.Node(id)
	if node < 0 {
		return nil
	}
	return n.switches[node]
}

// portTo returns u's port leading to neighbour node v.
func (n *Network) portTo(u, v int) (PortID, error) {
	for p, w := range n.Graph.Neighbors(u) {
		if w == v {
			return PortID(p), nil
		}
	}
	return 0, fmt.Errorf("dataplane: node %d has no link to %d", u, v)
}

// PortTo resolves node u's port leading to neighbour node v — the
// lookup scenario builders need to express FIB updates as RouteUpdate
// values.
func (n *Network) PortTo(u, v int) (PortID, error) { return n.portTo(u, v) }

// SetLink sets the physical state of the link {u, v}. A downed link
// drops packets at both endpoints' ports (DropLink) until restored; the
// FIBs are untouched — reconciling them is the control plane's job,
// which is exactly the window where transient loops live. Must not race
// with in-flight sends.
func (n *Network) SetLink(u, v int, up bool) error {
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	li, ok := n.linkIndex[[2]int{a, b}]
	if !ok {
		return fmt.Errorf("dataplane: no link (%d,%d)", u, v)
	}
	n.linkUp[li] = up
	pu, err := n.portTo(u, v)
	if err != nil {
		return err
	}
	pv, err := n.portTo(v, u)
	if err != nil {
		return err
	}
	n.switches[u].portUp[pu] = up
	n.switches[v].portUp[pv] = up
	return nil
}

// LinkIsUp reports the physical state of the link {u, v}; absent links
// are down.
func (n *Network) LinkIsUp(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	li, ok := n.linkIndex[[2]int{u, v}]
	return ok && n.linkUp[li]
}

// SetCorruption installs (or, with prob <= 0, removes) the wire
// corruption model: each hop's frame is flipped one bit with probability
// prob, decided by xrand.Mix3(seed, flow, hop) so the storm replays
// identically from the seed at any worker count. Must not race with
// in-flight sends.
func (n *Network) SetCorruption(prob float64, seed uint64) {
	n.corrupt = newCorruptionModel(prob, seed)
}

// InstallShortestPaths programs every switch's FIB with a next hop
// towards dst along shortest paths (BFS tree from the destination). It
// also installs backup next hops where an alternative shortest-or-equal
// neighbour exists, enabling reroute-on-detect.
func (n *Network) InstallShortestPaths(dst int) error {
	if dst < 0 || dst >= n.Graph.N() {
		return fmt.Errorf("dataplane: destination node %d out of range (graph has %d nodes)", dst, n.Graph.N())
	}
	dist := n.Graph.BFS(dst)
	dstID := n.Assign.ID(dst)
	for u := 0; u < n.Graph.N(); u++ {
		if u == dst {
			continue
		}
		if dist[u] < 0 {
			return fmt.Errorf("dataplane: node %d cannot reach destination %d", u, dst)
		}
		primary, backup := shortestNextHops(n.Graph.Neighbors(u), dist, dist[u])
		if primary < 0 {
			// Degenerate distance labelling (a BFS tree over a
			// consistent undirected graph always has a parent, but a
			// corrupt or hand-built dist can lack one). Without this
			// guard the failure surfaces as portTo's confusing
			// "node N has no link to -1".
			return fmt.Errorf("dataplane: node %d has no shortest-path next hop towards destination %d", u, dst)
		}
		p, err := n.portTo(u, primary)
		if err != nil {
			return err
		}
		if err := n.switches[u].SetRoute(dstID, p); err != nil {
			return err
		}
		if backup >= 0 {
			bp, err := n.portTo(u, backup)
			if err != nil {
				return err
			}
			if err := n.switches[u].SetBackup(dstID, bp); err != nil {
				return err
			}
		}
	}
	return nil
}

// shortestNextHops picks u's primary next hop (a strictly closer
// neighbour on the BFS tree) and a backup (another strictly closer
// neighbour, falling back to an equal-distance detour that still makes
// progress after one extra hop). du is dist[u]. primary is -1 when no
// neighbour is strictly closer — a degenerate labelling the caller must
// reject.
func shortestNextHops(neighbors []int, dist []int, du int) (primary, backup int) {
	primary, backup = -1, -1
	for _, v := range neighbors {
		if dist[v] == du-1 {
			if primary < 0 {
				primary = v
			} else if backup < 0 {
				backup = v
			}
		}
	}
	if backup < 0 {
		for _, v := range neighbors {
			if v != primary && dist[v] == du {
				backup = v
				break
			}
		}
	}
	return primary, backup
}

// InjectLoop misconfigures the FIBs for destination dst along the cycle:
// every switch on the cycle forwards dst-bound traffic to its successor,
// so any dst-bound packet reaching the cycle circulates until its TTL
// expires or Unroller reports. This is how routing loops actually arise —
// stale or inconsistent forwarding state — not from the physical graph.
func (n *Network) InjectLoop(dst int, cycle topology.Cycle) error {
	if err := cycle.Validate(n.Graph); err != nil {
		return err
	}
	dstID := n.Assign.ID(dst)
	for i, u := range cycle {
		v := cycle[(i+1)%cycle.Len()]
		p, err := n.portTo(u, v)
		if err != nil {
			return err
		}
		if err := n.switches[u].SetRoute(dstID, p); err != nil {
			return err
		}
	}
	return nil
}

// TraceHop is one step of a packet's journey.
type TraceHop struct {
	Node     int
	Switch   detect.SwitchID
	Decision Decision
}

// Trace is the full journey of one packet.
type Trace struct {
	Hops  []TraceHop
	Final Disposition
	// Report is the first loop report raised, if any.
	Report *detect.Report
	// Rerouted records whether the packet was deflected at least once.
	Rerouted bool
}

// Flow describes one packet injection at the network edge: a packet of
// flow ID enters at node Src destined to node Dst.
type Flow struct {
	Src, Dst int
	ID       uint32
	TTL      uint8
	// Telemetry attaches the in-band Unroller header; without it the
	// packet is the paper's blind counterfactual (loops burn TTL).
	Telemetry bool
}

// TraceSummary condenses a packet's journey to the quantities bulk
// experiments aggregate, without recording per-hop state — the result
// type of the TrafficEngine's batched injection.
type TraceSummary struct {
	// Flow echoes the injected flow ID.
	Flow uint32
	// Src and Dst echo the injection's edge nodes.
	Src, Dst int
	// Final is the packet's fate.
	Final Disposition
	// Hops is the number of switches the packet visited.
	Hops int
	// Rerouted records whether the packet was deflected at least once.
	Rerouted bool
	// Reports counts loop reports raised along the journey; Reporter
	// identifies the switch that raised the first one and ReportHop is
	// the 1-based hop at which it fired — the quantity Theorem 1 bounds,
	// preserved here so the cross-plane oracle (internal/verify) can
	// check every detection against the bound without per-hop traces.
	Reports   int
	Reporter  detect.SwitchID
	ReportHop int
	// Telemetry echoes whether the flow carried the in-band header; a
	// blind flow can never report, and the oracle classifies its missed
	// loops separately.
	Telemetry bool
}

// sendScratch holds the per-in-flight-packet reusable state of the hop
// loop: two wire buffers (each hop marshals into the buffer the packet
// was not parsed from, so in-place telemetry rewrites never alias the
// marshal destination), a telemetry seed buffer, the packet struct, and
// — for engine workers — a private link-load accumulator.
type sendScratch struct {
	wireA, wireB []byte
	tel          []byte
	pkt          Packet
	// loads, when non-nil, receives link traversals instead of the
	// shared atomic counters; the owner merges it via mergeLoads once
	// its batch completes.
	loads []uint64
	// dedup is the per-flow report-dedup window (see DedupWindow); it is
	// reset at the start of every journey.
	dedup DedupWindow
}

// Send injects a packet at the network edge (node src) destined to node
// dst and emulates its journey hop by hop, re-marshalling the frame
// between switches exactly as wires would. The returned trace records
// every decision; reports are also delivered to the controller. Send is
// safe to call concurrently on a shared network (see the Network
// contract).
func (n *Network) Send(src, dst int, flow uint32, ttl uint8, withTelemetry bool) (*Trace, error) {
	var sc sendScratch
	tr := &Trace{}
	f := Flow{Src: src, Dst: dst, ID: flow, TTL: ttl, Telemetry: withTelemetry}
	if _, err := n.send(&sc, f, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// SendFlow injects one flow and returns only its summary — the
// allocation-lean path TrafficEngine workers use, exposed for callers
// that do not need per-hop traces.
func (n *Network) SendFlow(f Flow) (TraceSummary, error) {
	var sc sendScratch
	return n.send(&sc, f, nil)
}

// send is the hop loop shared by Send (tr != nil: full trace) and the
// traffic engine (tr == nil: summary only). Scratch buffers in sc are
// reused across hops and, for engine workers, across flows: after the
// first few hops warm the two wire buffers, a forwarding hop performs no
// heap allocation in this loop (the telemetry re-encode in
// Switch.Process writes in place via AppendHeader(p.Telemetry[:0])).
func (n *Network) send(sc *sendScratch, f Flow, tr *Trace) (TraceSummary, error) {
	sum := TraceSummary{Flow: f.ID, Src: f.Src, Dst: f.Dst, Telemetry: f.Telemetry}
	if f.Src < 0 || f.Src >= n.Graph.N() || f.Dst < 0 || f.Dst >= n.Graph.N() {
		return sum, fmt.Errorf("dataplane: flow %d endpoints (%d, %d) out of range (graph has %d nodes)", f.ID, f.Src, f.Dst, n.Graph.N())
	}
	p := &sc.pkt
	*p = Packet{
		TTL:  f.TTL,
		Flow: f.ID,
		Src:  n.Assign.ID(f.Src),
		Dst:  n.Assign.ID(f.Dst),
	}
	if f.Telemetry {
		tel, err := n.unroller.NewPacketState().AppendHeader(sc.tel[:0])
		if err != nil {
			return sum, err
		}
		sc.tel = tel
		p.Telemetry = tel
	}
	sc.dedup.Reset()
	cur := f.Src
	// tainted records that an earlier hop's wire corruption struck this
	// packet: any later parse or pipeline failure is then the fault
	// model's doing — an injected drop, not an emulator error.
	tainted := false
	for {
		// Serialise and re-parse: every hop sees real bytes. The
		// packet's slices alias wireB (or the seed buffers) at this
		// point, so wireA is free to receive the frame.
		wire, err := p.MarshalAppend(sc.wireA[:0])
		if err != nil {
			return sum, err
		}
		sc.wireA = wire
		if cm := n.corrupt; cm != nil && cm.strike(f.ID, uint64(sum.Hops), wire) {
			tainted = true
		}
		if err := p.Unmarshal(wire); err != nil {
			if tainted {
				sum.Final = DropCorrupt
				if tr != nil {
					tr.Final = DropCorrupt
				}
				return sum, nil
			}
			return sum, err
		}
		sw := n.switches[cur]
		if n.OnHop != nil {
			n.OnHop(cur, sw.ID, p)
		}
		dec, err := sw.Process(p)
		if err != nil {
			if tainted {
				sum.Final = DropCorrupt
				if tr != nil {
					tr.Final = DropCorrupt
				}
				return sum, nil
			}
			return sum, err
		}
		sum.Hops++
		if tr != nil {
			tr.Hops = append(tr.Hops, TraceHop{Node: cur, Switch: sw.ID, Decision: dec})
		}
		if dec.LoopReport != nil {
			sum.Reports++
			if sum.Reports == 1 {
				sum.Reporter = dec.LoopReport.Reporter
				sum.ReportHop = sum.Hops
			}
			if tr != nil && tr.Report == nil {
				tr.Report = dec.LoopReport
			}
			ev := LoopEvent{
				Report:  *dec.LoopReport,
				Node:    sw.Node,
				Flow:    f.ID,
				Members: dec.Members,
			}
			n.Controller.DeliverFlow(ev, &sc.dedup, sum.Hops)
			if n.OnReport != nil {
				n.OnReport(ev, sum.Hops)
			}
		}
		switch dec.Disposition {
		case Deliver, DropTTL, DropNoRoute, DropLoop, DropLink:
			sum.Final = dec.Disposition
			if tr != nil {
				tr.Final = dec.Disposition
			}
			return sum, nil
		case RerouteLoop:
			sum.Rerouted = true
			if tr != nil {
				tr.Rerouted = true
			}
			fallthrough
		case Forward:
			li := n.portLink[cur][dec.Egress]
			if sc.loads != nil {
				sc.loads[li]++
			} else {
				n.linkLoad[li].Add(1)
			}
			cur = sw.Peer(dec.Egress)
		default:
			return sum, fmt.Errorf("dataplane: unexpected disposition %v", dec.Disposition)
		}
		if sum.Hops > 100000 {
			return sum, fmt.Errorf("dataplane: runaway packet (missing TTL?)")
		}
		// Next hop parses from the buffer just written and marshals
		// into the other one.
		sc.wireA, sc.wireB = sc.wireB, sc.wireA
	}
}

// Unroller exposes the shared detector (e.g. for header inspection in
// tools).
func (n *Network) Unroller() *core.Unroller { return n.unroller }

// SetLoopPolicy applies a loop reaction policy to every switch.
func (n *Network) SetLoopPolicy(a LoopAction) {
	for _, sw := range n.switches {
		sw.LoopPolicy = a
	}
}

// mergeLoads folds a per-worker link-load accumulator into the shared
// counters. uint64 addition commutes, so the merged totals are identical
// regardless of worker scheduling — the determinism the per-worker
// sharding must preserve.
func (n *Network) mergeLoads(loads []uint64) {
	for i, c := range loads {
		if c != 0 {
			n.linkLoad[i].Add(c)
		}
	}
}

// LinkLoad returns how many packet traversals the link {u, v} has
// carried since the last ResetLoad. The counters quantify the intro's
// motivation: packets trapped in loops multiply the load on every link
// the loop uses, degrading innocent traffic that shares them.
func (n *Network) LinkLoad(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	i, ok := n.linkIndex[[2]int{u, v}]
	if !ok {
		return 0
	}
	return n.linkLoad[i].Load()
}

// TotalPacketHops returns the network-wide traversal count — the
// bandwidth-cost currency for comparing loop reactions.
func (n *Network) TotalPacketHops() uint64 {
	var total uint64
	for i := range n.linkLoad {
		total += n.linkLoad[i].Load()
	}
	return total
}

// MaxLinkLoad returns the most loaded link and its traversal count.
// Equal-load ties break towards the smallest (u, v): links are scanned
// in ascending order and only a strictly greater load displaces the
// current maximum, so the result is deterministic (the repo-wide
// invariant the old map iteration violated).
func (n *Network) MaxLinkLoad() (u, v int, load uint64) {
	u, v = -1, -1
	for i := range n.linkLoad {
		if c := n.linkLoad[i].Load(); c > load {
			u, v, load = n.links[i][0], n.links[i][1], c
		}
	}
	return u, v, load
}

// ResetLoad clears the link counters. Like route mutation, it must not
// race with in-flight sends.
func (n *Network) ResetLoad() {
	for i := range n.linkLoad {
		n.linkLoad[i].Store(0)
	}
}
