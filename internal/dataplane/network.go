package dataplane

import (
	"fmt"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/topology"
)

// Network is an emulated data plane: one Switch per topology node,
// destination-based FIBs, and a controller sink for loop reports.
type Network struct {
	Graph  *topology.Graph
	Assign *topology.Assignment

	switches []*Switch
	unroller *core.Unroller
	linkLoad map[[2]int]uint64

	// Controller receives every loop report raised in the data plane.
	Controller *Controller

	// OnHop, when set, observes every packet arrival before the switch
	// pipeline runs — the tap a mirroring/tracing deployment would
	// install (internal/trace records through it). The callback must
	// not retain p.
	OnHop func(node int, sw detect.SwitchID, p *Packet)
}

// NewNetwork builds switches over g with identifiers from assign, all
// running the same Unroller configuration.
func NewNetwork(g *topology.Graph, assign *topology.Assignment, cfg core.Config) (*Network, error) {
	u, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Graph:      g,
		Assign:     assign,
		switches:   make([]*Switch, g.N()),
		unroller:   u,
		linkLoad:   make(map[[2]int]uint64),
		Controller: NewController(),
	}
	for node := 0; node < g.N(); node++ {
		n.switches[node] = newSwitch(assign.ID(node), node, g.Neighbors(node), u)
	}
	return n, nil
}

// Switch returns the switch at a node index.
func (n *Network) Switch(node int) *Switch { return n.switches[node] }

// SwitchByID returns the switch holding id, or nil.
func (n *Network) SwitchByID(id detect.SwitchID) *Switch {
	node := n.Assign.Node(id)
	if node < 0 {
		return nil
	}
	return n.switches[node]
}

// portTo returns u's port leading to neighbour node v.
func (n *Network) portTo(u, v int) (PortID, error) {
	for p, w := range n.Graph.Neighbors(u) {
		if w == v {
			return PortID(p), nil
		}
	}
	return 0, fmt.Errorf("dataplane: node %d has no link to %d", u, v)
}

// InstallShortestPaths programs every switch's FIB with a next hop
// towards dst along shortest paths (BFS tree from the destination). It
// also installs backup next hops where an alternative shortest-or-equal
// neighbour exists, enabling reroute-on-detect.
func (n *Network) InstallShortestPaths(dst int) error {
	dist := n.Graph.BFS(dst)
	dstID := n.Assign.ID(dst)
	for u := 0; u < n.Graph.N(); u++ {
		if u == dst {
			continue
		}
		if dist[u] < 0 {
			return fmt.Errorf("dataplane: node %d cannot reach destination %d", u, dst)
		}
		primary, backup := -1, -1
		for _, v := range n.Graph.Neighbors(u) {
			if dist[v] == dist[u]-1 {
				if primary < 0 {
					primary = v
				} else if backup < 0 {
					backup = v
				}
			}
		}
		// Fall back to an equal-distance neighbour for the backup
		// (a detour that still makes progress after one extra hop).
		if backup < 0 {
			for _, v := range n.Graph.Neighbors(u) {
				if v != primary && dist[v] == dist[u] {
					backup = v
					break
				}
			}
		}
		p, err := n.portTo(u, primary)
		if err != nil {
			return err
		}
		if err := n.switches[u].SetRoute(dstID, p); err != nil {
			return err
		}
		if backup >= 0 {
			bp, err := n.portTo(u, backup)
			if err != nil {
				return err
			}
			if err := n.switches[u].SetBackup(dstID, bp); err != nil {
				return err
			}
		}
	}
	return nil
}

// InjectLoop misconfigures the FIBs for destination dst along the cycle:
// every switch on the cycle forwards dst-bound traffic to its successor,
// so any dst-bound packet reaching the cycle circulates until its TTL
// expires or Unroller reports. This is how routing loops actually arise —
// stale or inconsistent forwarding state — not from the physical graph.
func (n *Network) InjectLoop(dst int, cycle topology.Cycle) error {
	if err := cycle.Validate(n.Graph); err != nil {
		return err
	}
	dstID := n.Assign.ID(dst)
	for i, u := range cycle {
		v := cycle[(i+1)%cycle.Len()]
		p, err := n.portTo(u, v)
		if err != nil {
			return err
		}
		if err := n.switches[u].SetRoute(dstID, p); err != nil {
			return err
		}
	}
	return nil
}

// TraceHop is one step of a packet's journey.
type TraceHop struct {
	Node     int
	Switch   detect.SwitchID
	Decision Decision
}

// Trace is the full journey of one packet.
type Trace struct {
	Hops  []TraceHop
	Final Disposition
	// Report is the first loop report raised, if any.
	Report *detect.Report
	// Rerouted records whether the packet was deflected at least once.
	Rerouted bool
}

// Send injects a packet at the network edge (node src) destined to node
// dst and emulates its journey hop by hop, re-marshalling the frame
// between switches exactly as wires would. The returned trace records
// every decision; reports are also delivered to the controller.
func (n *Network) Send(src, dst int, flow uint32, ttl uint8, withTelemetry bool) (*Trace, error) {
	pkt := &Packet{
		TTL:  ttl,
		Flow: flow,
		Src:  n.Assign.ID(src),
		Dst:  n.Assign.ID(dst),
	}
	if withTelemetry {
		tel, err := n.unroller.NewPacketState().AppendHeader(nil)
		if err != nil {
			return nil, err
		}
		pkt.Telemetry = tel
	}
	tr := &Trace{}
	cur := src
	for {
		// Serialise and re-parse: every hop sees real bytes.
		wire, err := pkt.Marshal()
		if err != nil {
			return nil, err
		}
		var onWire Packet
		if err := onWire.Unmarshal(wire); err != nil {
			return nil, err
		}
		sw := n.switches[cur]
		if n.OnHop != nil {
			n.OnHop(cur, sw.ID, &onWire)
		}
		dec, err := sw.Process(&onWire)
		if err != nil {
			return nil, err
		}
		tr.Hops = append(tr.Hops, TraceHop{Node: cur, Switch: sw.ID, Decision: dec})
		if dec.LoopReport != nil {
			if tr.Report == nil {
				tr.Report = dec.LoopReport
			}
			n.Controller.DeliverEvent(LoopEvent{
				Report:  *dec.LoopReport,
				Node:    sw.Node,
				Members: dec.Members,
			})
		}
		switch dec.Disposition {
		case Deliver, DropTTL, DropNoRoute, DropLoop:
			tr.Final = dec.Disposition
			return tr, nil
		case RerouteLoop:
			tr.Rerouted = true
			fallthrough
		case Forward:
			next := sw.Peer(dec.Egress)
			n.countLink(cur, next)
			pkt = &onWire
			cur = next
		default:
			return nil, fmt.Errorf("dataplane: unexpected disposition %v", dec.Disposition)
		}
		if len(tr.Hops) > 100000 {
			return nil, fmt.Errorf("dataplane: runaway packet (missing TTL?)")
		}
	}
}

// Unroller exposes the shared detector (e.g. for header inspection in
// tools).
func (n *Network) Unroller() *core.Unroller { return n.unroller }

// SetLoopPolicy applies a loop reaction policy to every switch.
func (n *Network) SetLoopPolicy(a LoopAction) {
	for _, sw := range n.switches {
		sw.LoopPolicy = a
	}
}

// countLink accumulates one packet traversal of the link {u, v}. The
// counters quantify the intro's motivation: packets trapped in loops
// multiply the load on every link the loop uses, degrading innocent
// traffic that shares them.
func (n *Network) countLink(u, v int) {
	if u > v {
		u, v = v, u
	}
	n.linkLoad[[2]int{u, v}]++
}

// LinkLoad returns how many packet traversals the link {u, v} has
// carried since the last ResetLoad.
func (n *Network) LinkLoad(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return n.linkLoad[[2]int{u, v}]
}

// TotalPacketHops returns the network-wide traversal count — the
// bandwidth-cost currency for comparing loop reactions.
func (n *Network) TotalPacketHops() uint64 {
	var total uint64
	for _, c := range n.linkLoad {
		total += c
	}
	return total
}

// MaxLinkLoad returns the most loaded link and its traversal count.
func (n *Network) MaxLinkLoad() (u, v int, load uint64) {
	u, v = -1, -1
	for k, c := range n.linkLoad {
		if c > load {
			u, v, load = k[0], k[1], c
		}
	}
	return u, v, load
}

// ResetLoad clears the link counters.
func (n *Network) ResetLoad() { n.linkLoad = make(map[[2]int]uint64) }
