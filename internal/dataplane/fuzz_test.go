package dataplane

import (
	"bytes"
	"errors"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
)

// FuzzPacket feeds arbitrary bytes to the frame parser. The contract the
// corruption-storm scenario leans on: Unmarshal never panics, rejects
// every unparseable input with ErrMalformed (so the send loop can tell
// an injected bit flip from an emulator bug), and any frame it accepts
// re-marshals to exactly the input bytes — the parser and serialiser
// agree on one canonical wire form.
func FuzzPacket(f *testing.F) {
	// Canonical frames as seeds: bare, with payload, with a real
	// Unroller header, and a collection-mode frame.
	bare := &Packet{TTL: 64, Flow: 7, Src: 1, Dst: 2}
	if w, err := bare.Marshal(); err == nil {
		f.Add(w)
	}
	pay := &Packet{TTL: 8, Flow: 9, Src: 3, Dst: 4, Payload: []byte("hello")}
	if w, err := pay.Marshal(); err == nil {
		f.Add(w)
	}
	if u, err := core.New(core.DefaultConfig()); err == nil {
		if tel, err := u.NewPacketState().AppendHeader(nil); err == nil {
			telp := &Packet{TTL: 255, Flow: 1, Src: 5, Dst: 6, Telemetry: tel}
			if w, err := telp.Marshal(); err == nil {
				f.Add(w)
			}
		}
	}
	rec := &collectRecord{Initiator: 42, IDs: []detect.SwitchID{1, 2, 3}}
	if tel, err := rec.marshal(); err == nil {
		cp := &Packet{Flags: FlagCollect, TTL: 16, Flow: 2, Src: 7, Dst: 8, Telemetry: tel}
		if w, err := cp.Marshal(); err == nil {
			f.Add(w)
		}
	}
	// Degenerate inputs the parser must reject cleanly.
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.Unmarshal(data); err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("Unmarshal(%x) = %v, not ErrMalformed", data, err)
			}
			return
		}
		out, err := p.MarshalAppend(nil)
		if err != nil {
			t.Fatalf("re-marshal of accepted frame failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, out)
		}
		var q Packet
		if err := q.Unmarshal(out); err != nil {
			t.Fatalf("re-parse of marshalled frame failed: %v", err)
		}
		if p.Flags != q.Flags || p.TTL != q.TTL || p.Flow != q.Flow ||
			p.Src != q.Src || p.Dst != q.Dst ||
			!bytes.Equal(p.Telemetry, q.Telemetry) || !bytes.Equal(p.Payload, q.Payload) {
			t.Fatalf("fields changed across round trip:\n %+v\n %+v", p, q)
		}
	})
}
