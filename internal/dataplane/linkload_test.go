package dataplane

import (
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// TestLinkLoadAccounting verifies the traversal counters and uses them
// to quantify the paper's introductory claim: a looping packet multiplies
// the load on the loop's links by orders of magnitude versus a detected
// one.
func TestLinkLoadAccounting(t *testing.T) {
	n, cycle, dst := torusWithLoop(t, core.DefaultConfig(), 55)
	n.SetLoopPolicy(ActionDrop)

	// Clean baseline: one delivered packet loads each path link once.
	nClean, _, dstClean := torusWithLoop(t, core.DefaultConfig(), 55)
	nClean.SetLoopPolicy(ActionDrop)
	// Use a source whose path avoids the injected loop region.
	trClean, err := nClean.Send(3, dstClean, 1, 255, false)
	if err != nil {
		t.Fatal(err)
	}
	if trClean.Final == Deliver {
		if got := nClean.TotalPacketHops(); got != uint64(len(trClean.Hops)-1) {
			t.Fatalf("clean delivery: %d traversals for %d hops", got, len(trClean.Hops))
		}
	}

	// Undetected loop: TTL burns 255 traversals.
	trBlind, err := n.Send(5, dst, 1, 255, false)
	if err != nil {
		t.Fatal(err)
	}
	if trBlind.Final != DropTTL {
		t.Fatalf("blind packet: %v", trBlind.Final)
	}
	blindHops := n.TotalPacketHops()
	if blindHops < 250 {
		t.Fatalf("blind loop burned only %d traversals", blindHops)
	}
	// The loop's own links absorb almost all of it.
	loopLoad := uint64(0)
	for i, u := range cycle {
		loopLoad += n.LinkLoad(u, cycle[(i+1)%cycle.Len()])
	}
	if loopLoad < blindHops*9/10 {
		t.Fatalf("loop links carried %d of %d traversals", loopLoad, blindHops)
	}
	_, _, maxLoad := n.MaxLinkLoad()
	if maxLoad < blindHops/8 {
		t.Fatalf("max link load %d implausibly low", maxLoad)
	}

	// Detected loop: an order of magnitude fewer traversals.
	n.ResetLoad()
	if n.TotalPacketHops() != 0 {
		t.Fatal("reset failed")
	}
	trDet, err := n.Send(5, dst, 2, 255, true)
	if err != nil {
		t.Fatal(err)
	}
	if trDet.Final != DropLoop {
		t.Fatalf("detected packet: %v", trDet.Final)
	}
	detHops := n.TotalPacketHops()
	if detHops*10 > blindHops {
		t.Fatalf("detection saved too little: %d vs %d traversals", detHops, blindHops)
	}
}

// TestMaxLinkLoadDeterministicTieBreak: with several links at the same
// maximal load, MaxLinkLoad must return the smallest (u, v) — every run.
// The old map iteration returned whichever equal-load link Go's
// randomised map order visited first, violating the repo's determinism
// invariant.
func TestMaxLinkLoadDeterministicTieBreak(t *testing.T) {
	g, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(g, topology.NewAssignment(g, xrand.New(1)), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		n.ResetLoad()
		// A three-way tie at load 7, with a lighter link mixed in.
		for _, l := range [][2]int{{4, 5}, {1, 2}, {2, 3}} {
			n.linkLoad[n.linkIndex[l]].Store(7)
		}
		n.linkLoad[n.linkIndex[[2]int{0, 1}]].Store(3)
		u, v, load := n.MaxLinkLoad()
		if u != 1 || v != 2 || load != 7 {
			t.Fatalf("trial %d: MaxLinkLoad = {%d,%d}×%d, want the smallest tied link {1,2}×7", trial, u, v, load)
		}
	}
	// Empty network: the sentinel stays (-1, -1).
	n.ResetLoad()
	if u, v, load := n.MaxLinkLoad(); u != -1 || v != -1 || load != 0 {
		t.Fatalf("unloaded network: {%d,%d}×%d", u, v, load)
	}
}
