package dataplane

import (
	"encoding/json"

	"github.com/unroller/unroller/internal/detect"
)

// This file pins the machine-readable schema shared by every surface
// that exports controller state: collectord's /statsz admin endpoint,
// the CLI tools, and any future dashboard all marshal through these
// methods, so a field rename breaks one golden test instead of silently
// forking the formats. Switch identifiers render in their operator form
// ("sw-%08x", matching detect.SwitchID.String) rather than as raw
// integers: the hex form is what appears in every log line, and a
// schema whose IDs grep against the logs is worth four bytes per ID.

// jsonControllerStats is the wire shape of ControllerStats. The field
// set and order are frozen by TestControllerStatsJSONGolden.
type jsonControllerStats struct {
	Delivered   uint64 `json:"delivered"`
	Accepted    uint64 `json:"accepted"`
	Deduped     uint64 `json:"deduped"`
	Quarantined uint64 `json:"quarantined"`
	Evicted     uint64 `json:"evicted"`
	Aged        uint64 `json:"aged"`
	Buffered    int    `json:"buffered"`
	Tick        uint64 `json:"tick"`
}

// MarshalJSON renders the snapshot with stable lower-case keys; the
// admission identity delivered = accepted + deduped + quarantined holds
// over the marshalled fields just as it does over the struct.
func (s ControllerStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonControllerStats{
		Delivered:   s.Delivered,
		Accepted:    s.Accepted,
		Deduped:     s.Deduped,
		Quarantined: s.Quarantined,
		Evicted:     s.Evicted,
		Aged:        s.Aged,
		Buffered:    s.Buffered,
		Tick:        s.Tick,
	})
}

// jsonLoopEvent is the wire shape of LoopEvent. Members is always
// present (empty array for plain detection reports) so consumers can
// index it unconditionally.
type jsonLoopEvent struct {
	Reporter string   `json:"reporter"`
	Hops     int      `json:"hops"`
	Node     int      `json:"node"`
	Flow     uint32   `json:"flow"`
	Members  []string `json:"members"`
}

// MarshalJSON renders the event with switch IDs in their log form.
func (e LoopEvent) MarshalJSON() ([]byte, error) {
	members := make([]string, len(e.Members))
	for i, id := range e.Members {
		members[i] = id.String()
	}
	return json.Marshal(jsonLoopEvent{
		Reporter: e.Reporter.String(),
		Hops:     e.Hops,
		Node:     e.Node,
		Flow:     e.Flow,
		Members:  members,
	})
}

// UnmarshalJSON accepts the schema MarshalJSON emits, so round-tripping
// an event through a JSON pipeline preserves it.
func (e *LoopEvent) UnmarshalJSON(b []byte) error {
	var je jsonLoopEvent
	if err := json.Unmarshal(b, &je); err != nil {
		return err
	}
	reporter, err := parseSwitchID(je.Reporter)
	if err != nil {
		return err
	}
	members := make([]detect.SwitchID, 0, len(je.Members))
	for _, m := range je.Members {
		id, err := parseSwitchID(m)
		if err != nil {
			return err
		}
		members = append(members, id)
	}
	if len(members) == 0 {
		members = nil
	}
	*e = LoopEvent{
		Report: detect.Report{Reporter: reporter, Hops: je.Hops},
		Node:   je.Node,
		Flow:   je.Flow,
	}
	e.Members = members
	return nil
}

// parseSwitchID inverts detect.SwitchID.String ("sw-%08x").
func parseSwitchID(s string) (detect.SwitchID, error) {
	if len(s) != 11 || s[:3] != "sw-" {
		return 0, errBadSwitchID(s)
	}
	var v uint32
	for _, c := range s[3:] {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, errBadSwitchID(s)
		}
		v = v<<4 | d
	}
	return detect.SwitchID(v), nil
}

type errBadSwitchID string

func (e errBadSwitchID) Error() string {
	return "dataplane: malformed switch id " + string(e)
}
