package dataplane

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// TrafficEngine drives many flows through a shared Network concurrently
// — the software counterpart of the line-rate traffic generators data
// plane papers evaluate against. The paper's P4/FPGA prototype is
// validated at hardware rates; the emulator makes the same per-hop-cost
// argument in software by keeping the hop loop allocation-lean and the
// shared state lock-free:
//
//   - each worker owns a sendScratch, so every in-flight packet has its
//     own backing arrays (Switch.Process rewrites telemetry in place via
//     AppendHeader(p.Telemetry[:0]) — sharing a buffer across packets
//     would corrupt headers);
//   - switch counters are atomic (see switchCounters) and link
//     traversals accumulate in per-worker arrays merged into the shared
//     atomic counters when a worker drains its batch, so counters are
//     exact — equal to a single-threaded run — once SendMany returns;
//   - the Controller remains the single shared sink, mutex-guarded.
//
// Flows are claimed from the batch by an atomic cursor, and results land
// at their flow's index, so the returned slice is in input order no
// matter how workers interleave.
type TrafficEngine struct {
	net     *Network
	workers int
}

// NewTrafficEngine returns an engine over n with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewTrafficEngine(n *Network, workers int) *TrafficEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &TrafficEngine{net: n, workers: workers}
}

// Workers returns the engine's worker count.
func (e *TrafficEngine) Workers() int { return e.workers }

// Network returns the engine's underlying network.
func (e *TrafficEngine) Network() *Network { return e.net }

// SendMany injects every flow and returns one summary per flow, in
// input order. Flows are independent packets, so any interleaving is
// valid; because each journey is deterministic, the summaries and the
// post-return network counters are identical to a single-threaded run.
// The returned error is the first failure in flow order (later flows
// still ran); failed flows have a zero Final but their partial hops are
// still counted, exactly as a failed Send counts them.
func (e *TrafficEngine) SendMany(flows []Flow) ([]TraceSummary, error) {
	out := make([]TraceSummary, len(flows))
	errs := make([]error, len(flows))
	workers := e.workers
	if workers > len(flows) {
		workers = len(flows)
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &sendScratch{loads: make([]uint64, len(e.net.links))}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(flows) {
					break
				}
				out[i], errs[i] = e.net.send(sc, flows[i], nil)
			}
			e.net.mergeLoads(sc.loads)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
