package dataplane

import (
	"sync"
	"testing"

	"github.com/unroller/unroller/internal/detect"
)

// TestControllerConcurrentDelivery exercises the controller's documented
// thread-safety: parallel benchmarks share one sink, so concurrent
// Deliver/Count/Events/TopReporters must be race-free (the CI gate runs
// this under -race) and lose no reports.
func TestControllerConcurrentDelivery(t *testing.T) {
	c := NewController()
	const goroutines = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Deliver(detect.Report{Reporter: detect.SwitchID(worker), Hops: i}, worker)
				// Interleave reads with writes to give the race detector
				// something to catch if the locking regresses.
				if i%50 == 0 {
					_ = c.Count()
					_ = c.Events()
					_ = c.TopReporters()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Count(); got != goroutines*perWorker {
		t.Fatalf("Count = %d, want %d (reports lost under concurrency)", got, goroutines*perWorker)
	}
}

// TestControllerTopReportersOrdering pins the ranking contract: by
// report count descending, ties broken by ascending switch ID so the
// ordering is deterministic.
func TestControllerTopReportersOrdering(t *testing.T) {
	c := NewController()
	deliver := func(id detect.SwitchID, n int) {
		for i := 0; i < n; i++ {
			c.Deliver(detect.Report{Reporter: id, Hops: i}, 0)
		}
	}
	deliver(detect.SwitchID(3), 1)
	deliver(detect.SwitchID(1), 5)
	deliver(detect.SwitchID(7), 5)
	deliver(detect.SwitchID(2), 2)

	got := c.TopReporters()
	want := []detect.SwitchID{1, 7, 2, 3} // 5,5 tie → lower ID first
	if len(got) != len(want) {
		t.Fatalf("TopReporters = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopReporters = %v, want %v", got, want)
		}
	}
}

// TestControllerCopySemantics pins that Events and Memberships return
// copies: a caller mutating a returned slice must not corrupt the log.
func TestControllerCopySemantics(t *testing.T) {
	c := NewController()
	c.DeliverEvent(LoopEvent{
		Report:  detect.Report{Reporter: detect.SwitchID(9), Hops: 4},
		Node:    2,
		Members: []detect.SwitchID{9, 10, 11},
	})
	c.Deliver(detect.Report{Reporter: detect.SwitchID(1), Hops: 1}, 0)

	ms := c.Memberships()
	if len(ms) != 1 || len(ms[0]) != 3 {
		t.Fatalf("Memberships = %v, want one 3-member loop", ms)
	}
	ms[0][0] = detect.SwitchID(0xFFFF)
	if again := c.Memberships(); again[0][0] != detect.SwitchID(9) {
		t.Fatal("Memberships returns aliased member slices")
	}

	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("Events = %d entries, want 2", len(evs))
	}
	evs[0].Node = 77
	if c.Events()[0].Node != 2 {
		t.Fatal("Events returns an aliased log slice")
	}
}

// TestControllerReset pins that Reset clears every view of the log.
func TestControllerReset(t *testing.T) {
	c := NewController()
	c.Deliver(detect.Report{Reporter: detect.SwitchID(5), Hops: 3}, 1)
	c.Reset()
	if c.Count() != 0 || len(c.Events()) != 0 || len(c.TopReporters()) != 0 || len(c.Memberships()) != 0 {
		t.Fatal("Reset left state behind")
	}
}
