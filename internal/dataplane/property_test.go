package dataplane

import (
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/sim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// TestTransientLoopBoundProperty checks Theorem 1 against transient
// loops on seeded random scenarios: a loop that persists past the
// worst-case detection bound
//
//	(2L−1) + max(⌈(2bL−1)/(b−1)⌉, bB+1)
//
// MUST be reported — by a switch inside the loop, within the bound —
// while a loop healed right after entry MAY legitimately go unreported
// (the packet just delivers). Healing is driven through OnHop: the
// moment the packet enters the loop (persistent arm: never; transient
// arm: one hop in), the correct pre-injection routes are restored —
// exactly a convergence event closing a micro-loop under a live packet.
func TestTransientLoopBoundProperty(t *testing.T) {
	type gen struct {
		name  string
		build func() (*topology.Graph, error)
	}
	gens := []gen{
		{"torus4x4", func() (*topology.Graph, error) { return topology.Torus(4, 4) }},
		{"torus5x5", func() (*topology.Graph, error) { return topology.Torus(5, 5) }},
		{"torus6x6", func() (*topology.Graph, error) { return topology.Torus(6, 6) }},
		{"fattree4", func() (*topology.Graph, error) { return topology.FatTree(4) }},
	}
	cfg := core.DefaultConfig()
	var detections, earlyHeals, unreportedHeals int
	for _, tc := range gens {
		for seed := uint64(1); seed <= 5; seed++ {
			g, err := tc.build()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			rng := xrand.New(seed)
			// Reject cycles through the destination: dst-bound packets
			// exit such a "loop" by delivering, so nothing persists.
			var sc *sim.Scenario
			for {
				var err error
				sc, err = sim.SampleScenario(g, rng)
				if err != nil {
					t.Fatalf("%s seed %d: %v", tc.name, seed, err)
				}
				if !sc.Cycle.Contains(sc.Dst) {
					break
				}
			}

			onCycle := make(map[int]bool, sc.Cycle.Len())
			for _, node := range sc.Cycle {
				onCycle[node] = true
			}
			build := func() (*Network, map[int]map[detect.SwitchID]PortID) {
				net, err := NewNetwork(g, sc.Assign, cfg)
				if err != nil {
					t.Fatalf("%s seed %d: %v", tc.name, seed, err)
				}
				if err := net.InstallShortestPaths(sc.Dst); err != nil {
					t.Fatalf("%s seed %d: %v", tc.name, seed, err)
				}
				correct := make(map[int]map[detect.SwitchID]PortID, sc.Cycle.Len())
				for _, node := range sc.Cycle {
					correct[node] = net.Switch(node).Routes()
				}
				if err := net.InjectLoop(sc.Dst, sc.Cycle); err != nil {
					t.Fatalf("%s seed %d: %v", tc.name, seed, err)
				}
				net.SetLoopPolicy(ActionDrop)
				return net, correct
			}

			// Persistent arm: the loop never heals, so the report is
			// mandatory. Inject at the loop head so entry is guaranteed.
			net, _ := build()
			tr, err := net.Send(sc.Cycle[0], sc.Dst, uint32(seed), 255, true)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			if tr.Report == nil {
				t.Fatalf("%s seed %d: persistent loop (L=%d) went unreported (final %v after %d hops)",
					tc.name, seed, sc.Cycle.Len(), tr.Final, len(tr.Hops))
			}
			// B: hops before the first cycle switch. Injecting at the
			// loop head makes it 0, but recompute from the trace so the
			// assertion stays honest if injection ever moves off-loop.
			B := 0
			for _, h := range tr.Hops {
				if onCycle[h.Node] {
					break
				}
				B++
			}
			bound := core.WorstCaseBound(cfg.Base, B, sc.Cycle.Len())
			if tr.Report.Hops > bound {
				t.Errorf("%s seed %d: reported at hop %d, Theorem 1 bound is %d (B=%d, L=%d)",
					tc.name, seed, tr.Report.Hops, bound, B, sc.Cycle.Len())
			}
			if !onCycle[sc.Assign.Node(tr.Report.Reporter)] {
				t.Errorf("%s seed %d: reporter %v is not a loop member %v",
					tc.name, seed, tr.Report.Reporter, sc.Cycle)
			}
			detections++

			// Transient arm: heal one hop after loop entry — far inside
			// the bound — by restoring the pre-injection routes from
			// OnHop. The packet must escape and deliver; a report is
			// permitted but not required.
			net2, correct := build()
			healed := false
			hops := 0
			net2.OnHop = func(node int, _ detect.SwitchID, _ *Packet) {
				hops++
				if healed || !onCycle[node] {
					return
				}
				healed = true
				for n, routes := range correct {
					for dst, port := range routes {
						if err := net2.Switch(n).SetRoute(dst, port); err != nil {
							t.Fatalf("%s seed %d: heal: %v", tc.name, seed, err)
						}
					}
				}
			}
			tr2, err := net2.Send(sc.Cycle[0], sc.Dst, uint32(seed), 255, true)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			if tr2.Final != Deliver {
				t.Errorf("%s seed %d: healed loop should deliver, got %v after %d hops",
					tc.name, seed, tr2.Final, len(tr2.Hops))
			}
			earlyHeals++
			if tr2.Report == nil {
				unreportedHeals++
			} else if !onCycle[sc.Assign.Node(tr2.Report.Reporter)] {
				t.Errorf("%s seed %d: healed-run reporter %v is not a loop member",
					tc.name, seed, tr2.Report.Reporter)
			}
		}
	}
	if detections == 0 {
		t.Fatal("no persistent-loop trials ran")
	}
	// The MAY side is only demonstrated if some healed run actually went
	// unreported; with these seeds that is deterministic.
	if unreportedHeals == 0 {
		t.Errorf("all %d healed runs were still reported — transient loops under the bound should sometimes escape detection", earlyHeals)
	}
}
