package detect

import "testing"

// TestSwitchIDString pins the operator-facing format.
func TestSwitchIDString(t *testing.T) {
	if got := SwitchID(0xDEADBEEF).String(); got != "sw-deadbeef" {
		t.Fatalf("String = %q", got)
	}
	if got := SwitchID(1).String(); got != "sw-00000001" {
		t.Fatalf("String = %q (must zero-pad)", got)
	}
}

// TestVerdictValues pins the contract's constants: Continue must be the
// zero value so that zero-initialised verdicts are safe.
func TestVerdictValues(t *testing.T) {
	if Continue != 0 || Loop == Continue {
		t.Fatal("verdict constants changed")
	}
}
