package detect

import "testing"

// TestSwitchIDString pins the operator-facing format.
func TestSwitchIDString(t *testing.T) {
	if got := SwitchID(0xDEADBEEF).String(); got != "sw-deadbeef" {
		t.Fatalf("String = %q", got)
	}
	if got := SwitchID(1).String(); got != "sw-00000001" {
		t.Fatalf("String = %q (must zero-pad)", got)
	}
}

// TestVerdictValues pins the contract's constants: Continue must be the
// zero value so that zero-initialised verdicts are safe.
func TestVerdictValues(t *testing.T) {
	if Continue != 0 || Loop == Continue {
		t.Fatal("verdict constants changed")
	}
}

// TestVerdictString pins the verdict names, including the out-of-range
// fallback a corrupted value would print.
func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{Continue, "continue"},
		{Loop, "loop"},
		{Verdict(7), "Verdict(7)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", uint8(c.v), got, c.want)
		}
	}
}

// TestReportFields pins that a Report is a plain value: copying it must
// not share state with the original.
func TestReportFields(t *testing.T) {
	r := Report{Reporter: SwitchID(0xAB), Hops: 12}
	cp := r
	cp.Hops = 99
	if r.Hops != 12 {
		t.Fatalf("Report is not a value type: original mutated to %d hops", r.Hops)
	}
	if r.Reporter.String() != "sw-000000ab" {
		t.Fatalf("Reporter = %s", r.Reporter)
	}
}
