// Package detect defines the in-band loop-detection contract shared by the
// Unroller algorithm (internal/core), every baseline (internal/baseline),
// the simulation engine (internal/sim), and the data plane
// (internal/dataplane).
//
// A Detector describes an algorithm and its per-packet header cost; a State
// is the mutable header content carried by one packet. The simulation
// engine drives a State hop by hop over a switch sequence; the data plane
// serialises the same state into real packet bytes.
package detect

import "fmt"

// SwitchID identifies a switch in the network. The paper's evaluation uses
// randomly generated 32-bit identifiers; topologies map node indices to
// SwitchIDs via an assignment (see internal/topology).
type SwitchID uint32

// String formats the ID in hexadecimal, the way operators read them.
func (id SwitchID) String() string { return fmt.Sprintf("sw-%08x", uint32(id)) }

// Verdict is the outcome of processing one hop.
type Verdict uint8

const (
	// Continue means no loop was detected at this hop.
	Continue Verdict = iota
	// Loop means the current switch observed its own (hashed) identifier
	// on the packet and reports a routing loop.
	Loop
)

// String names the verdict for logs and test failures.
func (v Verdict) String() string {
	switch v {
	case Continue:
		return "continue"
	case Loop:
		return "loop"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// State is the per-packet detection state carried in the packet header.
// Implementations are single-packet and not safe for concurrent use, which
// mirrors the hardware: a packet is processed by one pipeline at a time.
type State interface {
	// Visit processes the packet's arrival at switch id (one hop) and
	// returns whether this switch reports a loop. After a Loop verdict
	// the state is dead: further Visit calls have unspecified results.
	Visit(id SwitchID) Verdict
}

// Detector is a loop-detection algorithm: a factory for per-packet states
// plus its fixed header cost.
type Detector interface {
	// Name returns a short human-readable algorithm name.
	Name() string
	// BitOverhead returns the number of header bits the algorithm adds to
	// each packet. For path-length-dependent schemes (INT) this is the
	// cost for a packet that has traversed maxHops hops.
	BitOverhead(maxHops int) int
	// NewState returns fresh per-packet state.
	NewState() State
}

// Report describes a detected loop, as delivered to a controller.
type Report struct {
	// Reporter is the switch that observed the loop.
	Reporter SwitchID
	// Hops is the number of hops the packet had traversed when the loop
	// was reported (counting the first hop as 1).
	Hops int
}
