package cluster

import "sort"

// Status is a member's failure-detector state. The order matters: at
// equal incarnation numbers the numerically larger status wins a merge
// (Dead > Suspect > Alive), per the SWIM conflict rules.
type Status uint8

const (
	StatusAlive Status = iota
	StatusSuspect
	StatusDead
)

// String renders the status for /statsz and logs.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Member is one row of the membership view.
type Member struct {
	ID          string `json:"id"`
	ClusterAddr string `json:"cluster"`
	IngestAddr  string `json:"ingest"`
	Status      Status `json:"status"`
	// Inc is the incarnation number: only the member itself raises it
	// (to refute a suspicion), and a higher incarnation outranks any
	// claim at a lower one.
	Inc uint64 `json:"inc"`
}

// table is the local membership view plus its change counter. It is not
// self-locking: the owning Agent serializes all access under its mutex.
type table struct {
	self    string
	rows    map[string]*Member
	version uint64
}

func newTable(self Member) *table {
	row := self
	return &table{
		self:    self.ID,
		rows:    map[string]*Member{self.ID: &row},
		version: 1,
	}
}

// merge folds one remote assertion in, returning whether the view
// changed. Conflict rules (SWIM §4.2): a higher incarnation always
// wins; at equal incarnations the stronger claim wins. A non-alive
// claim about this node itself is refuted on the spot: the local row
// jumps to a fresher incarnation and re-asserts Alive, which outranks
// the rumour everywhere the next gossip reaches.
func (t *table) merge(m Member) bool {
	if m.ID == "" {
		return false
	}
	if m.ID == t.self {
		cur := t.rows[t.self]
		if m.Status != StatusAlive && m.Inc >= cur.Inc {
			cur.Inc = m.Inc + 1
			cur.Status = StatusAlive
			t.version++
			return true
		}
		return false
	}
	cur, ok := t.rows[m.ID]
	if !ok {
		row := m
		t.rows[m.ID] = &row
		t.version++
		return true
	}
	if m.Inc < cur.Inc || (m.Inc == cur.Inc && m.Status <= cur.Status) {
		// Not fresher; still adopt addresses we were missing (a row can
		// be learned status-first from a third party's suspicion).
		changed := false
		if cur.ClusterAddr == "" && m.ClusterAddr != "" {
			cur.ClusterAddr = m.ClusterAddr
			changed = true
		}
		if cur.IngestAddr == "" && m.IngestAddr != "" {
			cur.IngestAddr = m.IngestAddr
			changed = true
		}
		if changed {
			t.version++
		}
		return changed
	}
	cur.Status, cur.Inc = m.Status, m.Inc
	if m.ClusterAddr != "" {
		cur.ClusterAddr = m.ClusterAddr
	}
	if m.IngestAddr != "" {
		cur.IngestAddr = m.IngestAddr
	}
	t.version++
	return true
}

// escalate applies a local failure-detector verdict about id — suspect
// or dead — bound to the incarnation the verdict was formed against. If
// the row has since moved to a newer incarnation (the member refuted)
// or already carries an equal-or-stronger status, the verdict is stale
// and ignored.
func (t *table) escalate(id string, status Status, inc uint64) bool {
	cur, ok := t.rows[id]
	if !ok || id == t.self || cur.Inc != inc || cur.Status >= status {
		return false
	}
	cur.Status = status
	t.version++
	return true
}

// members snapshots the view, ascending by ID.
func (t *table) members() []Member {
	out := make([]Member, 0, len(t.rows))
	for _, row := range t.rows {
		out = append(out, *row)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
