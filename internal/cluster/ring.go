package cluster

import (
	"sort"

	"github.com/unroller/unroller/internal/xhash"
)

// Flow partitioning is two-level. Level one is fixed: a flow maps to
// one of a configured number of partitions by seeded hash, and never
// re-partitions — partitions are the unit of ownership movement, so a
// membership change moves whole partitions (and their contiguous
// per-partition report streams), never individual flows. Level two is
// the consistent-hash ring: each node projects VNodes points onto a
// 64-bit circle and a partition is owned by the successor of its own
// point. The ring is a pure function of (seed, member IDs, vnodes,
// partitions), so every node and every client that agrees on the
// member set computes the identical assignment with no coordination —
// the Aesop discipline: act on seeded, local knowledge.

// Defaults for the partitioning knobs.
const (
	DefaultPartitions = 32
	DefaultVNodes     = 16
)

// PartitionOf maps a flow to its partition. The mix is keyed the same
// way collectorsvc routes flows to shards, so structured flow IDs (the
// scenarios pack epoch/src/k into them) still spread evenly.
func PartitionOf(flow uint32, partitions int) int {
	return int(xhash.Mix32(flow) % uint32(partitions))
}

// golden is the 64-bit golden-ratio increment used to decorrelate the
// per-vnode and per-partition hash points.
const golden = 0x9E3779B97F4A7C15

// hashString folds a node ID into 64 bits (FNV-1a, then finalized by
// Mix64 so short IDs with shared prefixes spread).
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return xhash.Mix64(h)
}

type ringPoint struct {
	hash uint64
	node string
}

// Ring is the deterministic partition→node assignment for one member
// set. Build it with NewRing; it is immutable afterwards.
type Ring struct {
	seed       uint64
	vnodes     int
	partitions int
	points     []ringPoint
	owners     []string // partition index → node ID ("" when no nodes)
}

// NewRing computes the assignment for nodes (ring-eligible member IDs;
// order does not matter). vnodes and partitions must match across every
// party computing the ring — they are configuration, not gossip.
func NewRing(seed uint64, vnodes, partitions int, nodes []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	r := &Ring{
		seed:       seed,
		vnodes:     vnodes,
		partitions: partitions,
		owners:     make([]string, partitions),
	}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for _, id := range nodes {
		base := hashString(id) ^ xhash.Mix64(seed)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: xhash.Mix64(base + uint64(v+1)*golden),
				node: id,
			})
		}
	}
	// Ties (astronomically unlikely but determinism demands a rule)
	// break by node ID.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	for p := 0; p < partitions; p++ {
		r.owners[p] = r.successor(xhash.Mix64(seed ^ uint64(p+1)*golden))
	}
	return r
}

// successor finds the first ring point at or after h, wrapping.
func (r *Ring) successor(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Partitions returns the configured partition count.
func (r *Ring) Partitions() int { return r.partitions }

// Owner returns the node ID owning partition p ("" with no nodes).
func (r *Ring) Owner(p int) string { return r.owners[p] }

// OwnerOfFlow resolves a flow straight to its owning node ID.
func (r *Ring) OwnerOfFlow(flow uint32) string {
	return r.owners[PartitionOf(flow, r.partitions)]
}

// Counts returns partitions owned per node — the balance /statsz shows.
func (r *Ring) Counts() map[string]int {
	out := make(map[string]int)
	for _, id := range r.owners {
		if id != "" {
			out[id]++
		}
	}
	return out
}

// ringNodes selects the ring-eligible IDs from a membership view:
// alive and suspect members carry partitions (a suspicion is a rumour,
// not a verdict — resharding on suspicion would flap ownership on every
// dropped probe); dead members are out.
func ringNodes(members []Member) []string {
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m.Status != StatusDead {
			out = append(out, m.ID)
		}
	}
	return out
}
