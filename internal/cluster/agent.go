package cluster

import (
	"net"
	"sort"
	"sync"
	"time"

	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/xhash"
	"github.com/unroller/unroller/internal/xrand"
)

// AgentConfig tunes one node's membership agent. Zero values select the
// defaults noted per field.
type AgentConfig struct {
	// ID is this node's identity — stable across restarts (a restarted
	// node re-asserts itself by outbidding stale death rumours with a
	// fresher incarnation).
	ID string
	// ClusterAddr is the advertised membership/handoff address (what
	// peers dial); IngestAddr is the advertised report-ingest address
	// carried in gossip so clients can route partitions.
	ClusterAddr string
	IngestAddr  string
	// Peers seeds the join: cluster addresses probed whenever the local
	// view holds no live peer (bootstrap and total-isolation recovery).
	Peers []string
	// ProbeEvery is the failure-detector round interval. <= 0 selects
	// 200ms.
	ProbeEvery time.Duration
	// ProbeTimeout bounds each RPC (dial + write + read). <= 0 selects
	// ProbeEvery.
	ProbeTimeout time.Duration
	// SuspectAfter is how long a member stays suspect before it is
	// declared dead — the refutation window. It also bounds the
	// self-isolation detector (Isolated). <= 0 selects 10×ProbeEvery.
	SuspectAfter time.Duration
	// IndirectK is how many helpers relay an indirect probe when a
	// direct one fails. <= 0 selects 2.
	IndirectK int
	// Seed drives the probe-order permutation and helper choice, so a
	// seeded test replays the exact probe schedule.
	Seed uint64
	// Dial overrides the dialer (chaosnet partition gates inject here);
	// nil uses a ProbeTimeout-bounded TCP dial.
	Dial DialFunc
	// Ranges, when set, serves a rejoining peer's recovery handoff: the
	// accounted sequence ranges this node holds, plus whether the
	// answer is usable (a node mid-recovery must answer false). nil
	// answers false — an agent with no ingest state behind it.
	Ranges func() ([]collectorsvc.ClientRange, bool)
	// OnUpdate, when set, is called (without the agent lock) after any
	// change to the membership view, with the new version.
	OnUpdate func(version uint64)
}

// Agent is the SWIM-style failure detector and gossip endpoint for one
// node. Start it with NewAgent + Start; it serves membership RPCs on
// its listener and probes peers every ProbeEvery.
type Agent struct {
	cfg AgentConfig

	mu          sync.Mutex
	tbl         *table
	suspectAt   map[string]time.Time
	lastContact time.Time
	rng         *xrand.Rand
	order       []string // current probe permutation, consumed from the front
	everPeered  bool     // a peer has ever been in the table or Peers set

	ln       net.Listener
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAgent builds an agent; Start runs it.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 200 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeEvery
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 10 * cfg.ProbeEvery
	}
	if cfg.IndirectK <= 0 {
		cfg.IndirectK = 2
	}
	if cfg.Dial == nil {
		timeout := cfg.ProbeTimeout
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	a := &Agent{
		cfg: cfg,
		tbl: newTable(Member{
			ID:          cfg.ID,
			ClusterAddr: cfg.ClusterAddr,
			IngestAddr:  cfg.IngestAddr,
			Status:      StatusAlive,
			Inc:         1,
		}),
		suspectAt:   make(map[string]time.Time),
		lastContact: time.Now(),
		rng:         xrand.New(xhash.Mix64(cfg.Seed ^ hashString(cfg.ID))),
		everPeered:  len(cfg.Peers) > 0,
		stop:        make(chan struct{}),
	}
	return a
}

// Start serves membership RPCs on ln and begins probing. The agent owns
// ln from here; Stop closes it.
func (a *Agent) Start(ln net.Listener) {
	a.ln = ln
	a.wg.Add(2)
	go func() { defer a.wg.Done(); a.serve(ln) }()
	go func() { defer a.wg.Done(); a.probeLoop() }()
}

// Stop halts probing and serving and waits for both to exit.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() {
		close(a.stop)
		if a.ln != nil {
			a.ln.Close()
		}
	})
	a.wg.Wait()
}

// Members snapshots the membership view, ascending by ID.
func (a *Agent) Members() []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tbl.members()
}

// Version returns the view's change counter — cheap to poll; a ring
// only needs recomputing when it moves.
func (a *Agent) Version() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tbl.version
}

// Isolated reports self-suspicion: peers exist (configured or ever
// seen) but nothing — no successful probe in either direction — has
// been heard from any of them for SuspectAfter. A node that cannot
// reach its cluster must advertise degraded rather than serve a view it
// cannot corroborate.
func (a *Agent) Isolated() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.everPeered {
		return false
	}
	return time.Since(a.lastContact) > a.cfg.SuspectAfter
}

// noteContact records a successful exchange with any peer.
func (a *Agent) noteContact() {
	a.mu.Lock()
	a.lastContact = time.Now()
	a.mu.Unlock()
}

// serve accepts one-shot RPC connections.
func (a *Agent) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer conn.Close()
			m, err := readMsg(conn, a.cfg.ProbeTimeout)
			if err != nil {
				return
			}
			reply := a.handle(m)
			if reply != nil {
				writeMsg(conn, reply, a.cfg.ProbeTimeout)
			}
		}()
	}
}

// handle processes one request. Every request's piggybacked membership
// table is merged first (that IS the gossip), and every reply carries
// this agent's table back.
func (a *Agent) handle(m *wireMsg) *wireMsg {
	changed := a.mergeWire(m.Members)
	switch m.Type {
	case msgPing:
		a.noteContact()
		reply := a.newMsg(msgAck)
		reply.OK = true
		a.notifyIfChanged(changed)
		return reply
	case msgPingReq:
		// Probe the target on the requester's behalf. The RPC runs
		// without the agent lock; only the address lookup takes it.
		a.mu.Lock()
		var addr string
		if row, ok := a.tbl.rows[m.Target]; ok {
			addr = row.ClusterAddr
		}
		a.mu.Unlock()
		reply := a.newMsg(msgAck)
		if addr != "" {
			if ack := a.pingRPC(addr); ack != nil {
				reply.OK = true
			}
		}
		a.notifyIfChanged(changed)
		return reply
	case msgMembers:
		reply := a.newMsg(msgMembers)
		reply.OK = true
		a.notifyIfChanged(changed)
		return reply
	case msgRanges:
		reply := a.newMsg(msgRanges)
		if a.cfg.Ranges != nil {
			if ranges, ok := a.cfg.Ranges(); ok {
				reply.Ranges = ranges
				reply.OK = true
			}
		}
		a.notifyIfChanged(changed)
		return reply
	default:
		return nil
	}
}

// newMsg builds a reply/request carrying the current table.
func (a *Agent) newMsg(typ string) *wireMsg {
	a.mu.Lock()
	members := a.tbl.members()
	a.mu.Unlock()
	wm := make([]wireMember, len(members))
	for i, m := range members {
		wm[i] = wireMember{ID: m.ID, Cluster: m.ClusterAddr, Ingest: m.IngestAddr, Status: uint8(m.Status), Inc: m.Inc}
	}
	return &wireMsg{V: wireVersion, Type: typ, From: a.cfg.ID, Members: wm}
}

// mergeWire folds a received table into the view, reporting change.
// Suspicion timers follow the merge: a row newly suspect starts its
// clock, a row back alive (refuted) clears it.
func (a *Agent) mergeWire(rows []wireMember) bool {
	if len(rows) == 0 {
		return false
	}
	now := time.Now()
	a.mu.Lock()
	changed := false
	for _, r := range rows {
		m := Member{ID: r.ID, ClusterAddr: r.Cluster, IngestAddr: r.Ingest, Status: Status(r.Status), Inc: r.Inc}
		if a.tbl.merge(m) {
			changed = true
		}
		if m.ID == a.cfg.ID {
			continue
		}
		a.everPeered = true
		if row, ok := a.tbl.rows[m.ID]; ok {
			switch row.Status {
			case StatusSuspect:
				if _, have := a.suspectAt[m.ID]; !have {
					a.suspectAt[m.ID] = now
				}
			default:
				delete(a.suspectAt, m.ID)
			}
		}
	}
	a.mu.Unlock()
	return changed
}

func (a *Agent) notifyIfChanged(changed bool) {
	if changed && a.cfg.OnUpdate != nil {
		a.cfg.OnUpdate(a.Version())
	}
}

// probeLoop is the failure-detector round driver.
func (a *Agent) probeLoop() {
	ticker := time.NewTicker(a.cfg.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			a.expireSuspects()
			a.probeOnce()
		}
	}
}

// probeOnce runs one round: direct ping the next target in the seeded
// permutation; on failure, indirect ping-req through up to IndirectK
// helpers; if nothing answers, suspect the target at its current
// incarnation. With no live peer in the table, the round probes the
// configured seed addresses instead (the join path).
func (a *Agent) probeOnce() {
	id, addr, inc, ok := a.nextTarget()
	if !ok {
		a.joinSeeds()
		return
	}
	if ack := a.pingRPC(addr); ack != nil {
		a.noteContact()
		return
	}
	for _, helper := range a.pickHelpers(id) {
		if reply := a.rpc(helper, &wireMsg{Type: msgPingReq, Target: id}); reply != nil {
			a.noteContact()
			if reply.OK {
				return
			}
		}
	}
	changed := false
	now := time.Now()
	a.mu.Lock()
	if a.tbl.escalate(id, StatusSuspect, inc) {
		a.suspectAt[id] = now
		changed = true
	}
	a.mu.Unlock()
	a.notifyIfChanged(changed)
}

// nextTarget pops the next probe target from the seeded permutation of
// non-self, non-dead members, reshuffling when exhausted.
func (a *Agent) nextTarget() (id, addr string, inc uint64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		// Drop permutation entries that died or vanished since shuffle.
		for len(a.order) > 0 {
			row, have := a.tbl.rows[a.order[0]]
			if have && row.Status != StatusDead && row.ClusterAddr != "" {
				id, addr, inc = row.ID, row.ClusterAddr, row.Inc
				a.order = a.order[1:]
				return id, addr, inc, true
			}
			a.order = a.order[1:]
		}
		eligible := make([]string, 0, len(a.tbl.rows))
		for rid, row := range a.tbl.rows {
			if rid != a.cfg.ID && row.Status != StatusDead && row.ClusterAddr != "" {
				eligible = append(eligible, rid)
			}
		}
		if len(eligible) == 0 {
			return "", "", 0, false
		}
		sort.Strings(eligible)
		a.rng.Shuffle(len(eligible), func(i, j int) {
			eligible[i], eligible[j] = eligible[j], eligible[i]
		})
		a.order = eligible
	}
}

// pickHelpers chooses up to IndirectK live peers (excluding the target)
// to relay an indirect probe, by seeded choice.
func (a *Agent) pickHelpers(target string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	cand := make([]string, 0, len(a.tbl.rows))
	for id, row := range a.tbl.rows {
		if id != a.cfg.ID && id != target && row.Status == StatusAlive && row.ClusterAddr != "" {
			cand = append(cand, row.ClusterAddr)
		}
	}
	sort.Strings(cand)
	a.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if len(cand) > a.cfg.IndirectK {
		cand = cand[:a.cfg.IndirectK]
	}
	return cand
}

// joinSeeds pings each configured seed address — the bootstrap path,
// and the way a fully isolated node finds its way back.
func (a *Agent) joinSeeds() {
	for _, addr := range a.cfg.Peers {
		if addr == a.cfg.ClusterAddr {
			continue
		}
		if ack := a.pingRPC(addr); ack != nil {
			a.noteContact()
		}
	}
}

// expireSuspects promotes suspects whose refutation window lapsed to
// dead. Dead rows stay in the table and keep gossiping — agreement on
// who is dead is what keeps every ring computation aligned.
func (a *Agent) expireSuspects() {
	now := time.Now()
	changed := false
	a.mu.Lock()
	for id, since := range a.suspectAt {
		row, ok := a.tbl.rows[id]
		if !ok || row.Status != StatusSuspect {
			delete(a.suspectAt, id)
			continue
		}
		if now.Sub(since) >= a.cfg.SuspectAfter {
			if a.tbl.escalate(id, StatusDead, row.Inc) {
				changed = true
			}
			delete(a.suspectAt, id)
		}
	}
	a.mu.Unlock()
	a.notifyIfChanged(changed)
}

// pingRPC sends a direct ping; nil means no (usable) answer.
func (a *Agent) pingRPC(addr string) *wireMsg {
	return a.rpc(addr, &wireMsg{Type: msgPing})
}

// rpc fills in version/from/table, performs the exchange, and merges
// the reply's table.
func (a *Agent) rpc(addr string, req *wireMsg) *wireMsg {
	full := a.newMsg(req.Type)
	full.Target = req.Target
	reply, err := call(a.cfg.Dial, addr, full, a.cfg.ProbeTimeout)
	if err != nil {
		return nil
	}
	a.notifyIfChanged(a.mergeWire(reply.Members))
	return reply
}
