package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/unroller/unroller/internal/collectorsvc"
)

// NodeConfig assembles one collectord cluster node: a collectorsvc
// ingest server, a membership agent, and (when the server is journaled)
// the recovery handoff that reconciles a restart against the peers that
// took over its partitions. Zero values select the defaults noted per
// field.
type NodeConfig struct {
	// ID is the node's stable identity (survives restarts). Required.
	ID string
	// ClusterListen and IngestListen are listen addresses; "" selects
	// "127.0.0.1:0" (tests) — production passes explicit host:ports. The
	// bound addresses are what gossip advertises.
	ClusterListen string
	IngestListen  string
	// Peers seeds the membership join: the cluster addresses of any
	// subset of the other nodes.
	Peers []string
	// Partitions and VNodes are the ring geometry; they must match
	// across every node and client. <= 0 selects the Default* values.
	Partitions int
	VNodes     int
	// Seed drives the ring layout and the probe schedule. It must match
	// across the cluster for ring agreement.
	Seed uint64
	// Server configures the ingest service. When Server.Journal is set
	// the node starts through staged recovery: replay to the
	// reconciliation point, ask live peers which sequence ranges they
	// already ingested, commit with the overlap discarded (counted in
	// CrossDupes), then rotate the journal so the reconciled cut is the
	// new recovery baseline.
	Server collectorsvc.ServerConfig
	// ProbeEvery / ProbeTimeout / SuspectAfter tune the failure
	// detector (see AgentConfig).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	SuspectAfter time.Duration
	// RecoverySync bounds how long a journaled start waits for every
	// known live peer to answer the ranges handoff before committing
	// with whatever answered. <= 0 selects 5s.
	RecoverySync time.Duration
	// Dial overrides the cluster-plane dialer (chaosnet partition gates
	// inject here). The ingest plane dials are made by clients, not the
	// node.
	Dial DialFunc
}

// Node is one running cluster member.
type Node struct {
	cfg   NodeConfig
	srv   *collectorsvc.Server
	agent *Agent

	clusterLn net.Listener
	ingestLn  net.Listener

	mu          sync.Mutex
	ring        *Ring
	ringVersion uint64
	ringBuilt   bool

	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartNode binds the node's listeners, recovers the ingest server
// (reconciling against live peers when journaled), joins the
// membership layer, and begins serving ingest. The returned node is
// ready: /healthz answers "ready" unless the journal failed or the
// membership layer has the node isolated.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node requires an ID")
	}
	if cfg.ClusterListen == "" {
		cfg.ClusterListen = "127.0.0.1:0"
	}
	if cfg.IngestListen == "" {
		cfg.IngestListen = "127.0.0.1:0"
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.RecoverySync <= 0 {
		cfg.RecoverySync = 5 * time.Second
	}
	clusterLn, err := net.Listen("tcp", cfg.ClusterListen)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.ClusterListen, err)
	}
	// Bind ingest before recovery: clients that already resolved this
	// node queue in the accept backlog instead of bouncing while the
	// journal replays.
	ingestLn, err := net.Listen("tcp", cfg.IngestListen)
	if err != nil {
		clusterLn.Close()
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.IngestListen, err)
	}

	n := &Node{cfg: cfg, clusterLn: clusterLn, ingestLn: ingestLn}

	var staged *collectorsvc.StagedRecovery
	if cfg.Server.Journal != nil {
		staged, err = collectorsvc.NewStagedRecoveredServer(cfg.Server)
		if err != nil {
			clusterLn.Close()
			ingestLn.Close()
			return nil, err
		}
		n.srv = staged.Server()
	} else {
		n.srv = collectorsvc.NewServer(cfg.Server)
	}
	srv := n.srv

	n.agent = NewAgent(AgentConfig{
		ID:           cfg.ID,
		ClusterAddr:  clusterLn.Addr().String(),
		IngestAddr:   ingestLn.Addr().String(),
		Peers:        cfg.Peers,
		ProbeEvery:   cfg.ProbeEvery,
		ProbeTimeout: cfg.ProbeTimeout,
		SuspectAfter: cfg.SuspectAfter,
		Seed:         cfg.Seed,
		Dial:         cfg.Dial,
		// A node mid-recovery answers the handoff unusable: its own
		// spans are incomplete, and letting two simultaneously
		// recovering nodes discount against each other could drop a
		// record both hold. The cluster's failure model is single
		// rejoin at a time; a second one just commits without discount.
		Ranges: func() ([]collectorsvc.ClientRange, bool) {
			if srv.Recovering() {
				return nil, false
			}
			return srv.ClientRanges(), true
		},
	})
	n.agent.Start(clusterLn)

	if staged != nil {
		if err := n.reconcile(staged); err != nil {
			n.agent.Stop()
			ingestLn.Close()
			return nil, err
		}
	}

	// Overlay the membership verdict on the health surface: a node that
	// cannot corroborate its view (suspect-of-self by isolation) must
	// answer degraded, because the partitions it thinks it owns may
	// already have moved.
	agent := n.agent
	srv.SetHealthOverlay(func(h collectorsvc.Health) collectorsvc.Health {
		if h == collectorsvc.HealthReady && agent.Isolated() {
			return collectorsvc.HealthDegraded
		}
		return h
	})

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		srv.Serve(ingestLn)
	}()
	return n, nil
}

// reconcile runs the recovery handoff: collect accounted ranges from
// every live peer (bounded by RecoverySync), commit the staged records
// with the peer-covered overlap discarded, and rotate the journal so
// the reconciled cut is the new baseline.
func (n *Node) reconcile(staged *collectorsvc.StagedRecovery) error {
	var covered map[uint64][]collectorsvc.SeqSpan
	if staged.Staged() > 0 {
		// An empty window (fresh journal, or a clean shutdown that
		// rotated at the end) has nothing to discount — skip the peer
		// poll so a simultaneous cold start of every node doesn't have
		// them all waiting RecoverySync on each other's recovery.
		covered = n.collectPeerRanges()
	}
	var discard func(clientID, seq uint64) bool
	if len(covered) > 0 {
		discard = func(clientID, seq uint64) bool {
			return spanCovers(covered[clientID], seq)
		}
	}
	srv, _, err := staged.Commit(discard)
	if err != nil {
		return err
	}
	srv.ForceRotate()
	return nil
}

// collectPeerRanges polls every known live peer's accounted sequence
// spans until all have answered or the RecoverySync deadline lapses.
// Peers the membership table marks dead are excluded; an answer that
// arrives is final (ranges only grow, and anything a peer accounts
// after answering has a sequence number beyond the staged window).
func (n *Node) collectPeerRanges() map[uint64][]collectorsvc.SeqSpan {
	deadline := time.Now().Add(n.cfg.RecoverySync)
	answered := make(map[string]bool)
	covered := make(map[uint64][]collectorsvc.SeqSpan)
	for {
		pending := 0
		for _, addr := range n.handoffCandidates() {
			if answered[addr] {
				continue
			}
			reply := n.agent.rpc(addr, &wireMsg{Type: msgRanges})
			if reply == nil || !reply.OK {
				pending++
				continue
			}
			answered[addr] = true
			for _, cr := range reply.Ranges {
				covered[cr.ID] = mergeSpans(covered[cr.ID], cr.Spans)
			}
		}
		if pending == 0 || time.Now().After(deadline) {
			return covered
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// handoffCandidates lists the cluster addresses worth asking for
// ranges: the configured seeds plus every live member row, minus this
// node and minus anyone the table already declared dead.
func (n *Node) handoffCandidates() []string {
	set := make(map[string]bool)
	self := n.clusterLn.Addr().String()
	for _, p := range n.cfg.Peers {
		if p != self {
			set[p] = true
		}
	}
	for _, m := range n.agent.Members() {
		if m.ID == n.cfg.ID || m.ClusterAddr == "" {
			continue
		}
		if m.Status == StatusDead {
			delete(set, m.ClusterAddr)
			continue
		}
		set[m.ClusterAddr] = true
	}
	out := make([]string, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// ClusterAddr returns the bound membership/handoff address.
func (n *Node) ClusterAddr() string { return n.clusterLn.Addr().String() }

// IngestAddr returns the bound report-ingest address.
func (n *Node) IngestAddr() string { return n.ingestLn.Addr().String() }

// Server exposes the underlying ingest server (stats, health).
func (n *Node) Server() *collectorsvc.Server { return n.srv }

// Agent exposes the membership agent (view, version, isolation).
func (n *Node) Agent() *Agent { return n.agent }

// Ring returns the current partition assignment, recomputed only when
// the membership view has changed since the last call.
func (n *Node) Ring() *Ring {
	v := n.agent.Version()
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.ringBuilt || n.ringVersion != v {
		n.ring = NewRing(n.cfg.Seed, n.cfg.VNodes, n.cfg.Partitions, ringNodes(n.agent.Members()))
		n.ringVersion = v
		n.ringBuilt = true
	}
	return n.ring
}

// Stop leaves the cluster and drains the ingest server. The caller
// closes the journal (it opened it).
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		n.agent.Stop()
		n.ingestLn.Close()
		n.srv.Shutdown()
	})
	n.wg.Wait()
}

// ClusterInfo is the cluster stanza a node adds to /statsz.
type ClusterInfo struct {
	ID          string   `json:"id"`
	ClusterAddr string   `json:"cluster_addr"`
	IngestAddr  string   `json:"ingest_addr"`
	Version     uint64   `json:"version"`
	Isolated    bool     `json:"isolated"`
	Partitions  int      `json:"partitions"`
	Owned       int      `json:"owned_partitions"`
	Members     []Member `json:"members"`
}

// Info assembles the cluster stanza.
func (n *Node) Info() ClusterInfo {
	ring := n.Ring()
	return ClusterInfo{
		ID:          n.cfg.ID,
		ClusterAddr: n.ClusterAddr(),
		IngestAddr:  n.IngestAddr(),
		Version:     n.agent.Version(),
		Isolated:    n.agent.Isolated(),
		Partitions:  ring.Partitions(),
		Owned:       ring.Counts()[n.cfg.ID],
		Members:     n.agent.Members(),
	}
}

// nodeStats is the JSON /statsz shape: the single-node snapshot plus
// the cluster stanza.
type nodeStats struct {
	collectorsvc.AdminStats
	Cluster ClusterInfo `json:"cluster"`
}

// AdminHandler returns the node's admin mux: /healthz (three-state,
// membership-aware via the health overlay) and /statsz (the
// collectorsvc snapshot plus a cluster stanza, text and JSON).
func (n *Node) AdminHandler() http.Handler {
	inner := n.srv.AdminHandler()
	mux := http.NewServeMux()
	mux.Handle("/healthz", inner)
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		snap := nodeStats{AdminStats: n.srv.AdminSnapshot(), Cluster: n.Info()}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.AdminStats.RenderText())
		ci := snap.Cluster
		fmt.Fprintf(w, "cluster: id=%s version=%d isolated=%v partitions=%d owned=%d\n",
			ci.ID, ci.Version, ci.Isolated, ci.Partitions, ci.Owned)
		for _, m := range ci.Members {
			fmt.Fprintf(w, "member %s: status=%s inc=%d cluster=%s ingest=%s\n",
				m.ID, m.Status, m.Inc, m.ClusterAddr, m.IngestAddr)
		}
	})
	return mux
}

// mergeSpans folds b into a, returning a normalized (sorted,
// non-overlapping, non-adjacent) span list.
func mergeSpans(a, b []collectorsvc.SeqSpan) []collectorsvc.SeqSpan {
	all := make([]collectorsvc.SeqSpan, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	if len(all) < 2 {
		return all
	}
	sort.Slice(all, func(i, j int) bool { return all[i].First < all[j].First })
	out := all[:1]
	for _, s := range all[1:] {
		last := &out[len(out)-1]
		if s.First <= last.Last+1 {
			if s.Last > last.Last {
				last.Last = s.Last
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// spanCovers reports whether seq falls inside any span.
func spanCovers(spans []collectorsvc.SeqSpan, seq uint64) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Last >= seq })
	return i < len(spans) && spans[i].First <= seq
}
