// Package cluster joins N collectords into one logical collector: a
// seeded SWIM-style membership layer (ping / indirect ping-req /
// suspect / dead with incarnation refutation) over chaosnet-injectable
// connections, a seeded consistent-hash ring assigning flow partitions
// to nodes, a cluster client that re-resolves partition owners on
// membership change and replays unacknowledged reports to the new
// owner, and a journal-recovery handoff that discounts cross-node
// replay overlap — so the exactly-once accounting identity
// (sent = ingested + dropped) holds cluster-wide, not per node.
// DESIGN §13 documents the protocol and its invariants.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/unroller/unroller/internal/collectorsvc"
)

// DialFunc matches the dial hooks chaosnet and collectorsvc expose.
type DialFunc func(addr string) (net.Conn, error)

// Membership and handoff wire protocol: length-prefixed JSON, one
// request and one reply per connection. Control-plane rates are tiny (a
// handful of messages per probe interval per node), so the codec
// favours inspectability over bytes; the data-plane ingest path keeps
// collectorsvc's binary frame protocol.
const (
	msgPing    = "ping"     // direct probe; reply is an ack
	msgAck     = "ack"      // probe answer
	msgPingReq = "ping-req" // indirect probe: "ping Target for me"
	msgMembers = "members"  // membership snapshot request (clients join here)
	msgRanges  = "ranges"   // recovery handoff: accounted client ranges
)

const (
	wireVersion = 1
	// maxWireMsg bounds a message body. Membership tables are O(nodes)
	// and range tables O(clients × ownership stints); 1 MiB is orders of
	// magnitude above both while still refusing absurd frames.
	maxWireMsg = 1 << 20
)

// wireMember is one membership table row in flight.
type wireMember struct {
	ID      string `json:"id"`
	Cluster string `json:"cluster"`
	Ingest  string `json:"ingest"`
	Status  uint8  `json:"status"`
	Inc     uint64 `json:"inc"`
}

// wireMsg is every message's shape; Type selects which fields matter.
// Every message carries the sender's full membership table — the
// full-state gossip that disseminates joins, suspicions, refutations,
// and deaths as a side effect of the probe traffic.
type wireMsg struct {
	V       int          `json:"v"`
	Type    string       `json:"type"`
	From    string       `json:"from"`
	Target  string       `json:"target,omitempty"` // ping-req: the node ID to probe
	Members []wireMember `json:"members,omitempty"`
	// Ranges answers a msgRanges request: the responder's accounted
	// sequence spans per client. OK reports whether the responder's
	// answer is usable (a probe succeeded, a ranges responder is not
	// itself mid-recovery).
	Ranges []collectorsvc.ClientRange `json:"ranges,omitempty"`
	OK     bool                       `json:"ok,omitempty"`
}

// writeMsg sends one length-prefixed message, deadline-armed.
func writeMsg(conn net.Conn, m *wireMsg, timeout time.Duration) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", m.Type, err)
	}
	if len(body) > maxWireMsg {
		return fmt.Errorf("cluster: %s message of %d bytes exceeds cap %d", m.Type, len(body), maxWireMsg)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("cluster: write %s: %w", m.Type, err)
	}
	return nil
}

// readMsg reads one length-prefixed message, deadline-armed per read.
func readMsg(conn net.Conn, timeout time.Duration) (*wireMsg, error) {
	var hdr [4]byte
	conn.SetReadDeadline(time.Now().Add(timeout))
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("cluster: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxWireMsg {
		return nil, fmt.Errorf("cluster: message length %d out of range", n)
	}
	body := make([]byte, n)
	conn.SetReadDeadline(time.Now().Add(timeout))
	if _, err := io.ReadFull(conn, body); err != nil {
		return nil, fmt.Errorf("cluster: read body: %w", err)
	}
	var m wireMsg
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("cluster: decode message: %w", err)
	}
	if m.V != wireVersion {
		return nil, fmt.Errorf("cluster: unknown wire version %d", m.V)
	}
	return &m, nil
}

// call is the one-shot RPC every cluster exchange uses: dial, send req,
// read one reply, close. timeout bounds each stage independently.
func call(dial DialFunc, addr string, req *wireMsg, timeout time.Duration) (*wireMsg, error) {
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := writeMsg(conn, req, timeout); err != nil {
		return nil, err
	}
	return readMsg(conn, timeout)
}
