package cluster

import (
	"reflect"
	"testing"

	"github.com/unroller/unroller/internal/collectorsvc"
)

// The ring is a pure function of (seed, member set, geometry): two
// parties that agree on those inputs must compute identical ownership
// with no coordination — the property client routing and node-side
// handoff both stand on.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	a := NewRing(42, 16, 32, nodes)
	b := NewRing(42, 16, 32, []string{"n3", "n1", "n2"}) // order must not matter
	for p := 0; p < 32; p++ {
		if a.Owner(p) != b.Owner(p) {
			t.Fatalf("partition %d: owner %q vs %q for permuted input", p, a.Owner(p), b.Owner(p))
		}
	}
	c := NewRing(43, 16, 32, nodes)
	same := true
	for p := 0; p < 32; p++ {
		if a.Owner(p) != c.Owner(p) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing the seed left every assignment identical")
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(7, DefaultVNodes, DefaultPartitions, nodes)
	counts := r.Counts()
	total := 0
	for _, id := range nodes {
		n := counts[id]
		total += n
		if n == 0 {
			t.Fatalf("node %s owns nothing: %v", id, counts)
		}
	}
	if total != DefaultPartitions {
		t.Fatalf("owned %d partitions, want %d: %v", total, DefaultPartitions, counts)
	}
}

// Removing one node must only move the partitions it owned — every
// partition owned by a surviving node keeps its owner. This is the
// consistent-hashing property that bounds how much resharding a node
// kill causes.
func TestRingStabilityUnderMemberLoss(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	before := NewRing(42, 16, 64, nodes)
	after := NewRing(42, 16, 64, []string{"n1", "n3"})
	moved := 0
	for p := 0; p < 64; p++ {
		was, is := before.Owner(p), after.Owner(p)
		if was == "n2" {
			if is == "n2" {
				t.Fatalf("partition %d still owned by removed node", p)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("partition %d moved %s→%s though %s survived", p, was, is, was)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned nothing; test proves nothing")
	}
}

func TestPartitionOfSpreads(t *testing.T) {
	const parts = 16
	var hit [parts]int
	for f := uint32(0); f < 4096; f++ {
		p := PartitionOf(f, parts)
		if p < 0 || p >= parts {
			t.Fatalf("flow %d: partition %d out of range", f, p)
		}
		hit[p]++
	}
	for p, n := range hit {
		if n == 0 {
			t.Fatalf("partition %d never hit over 4096 flows", p)
		}
	}
}

func TestRingNodesExcludesOnlyDead(t *testing.T) {
	members := []Member{
		{ID: "a", Status: StatusAlive},
		{ID: "b", Status: StatusSuspect},
		{ID: "c", Status: StatusDead},
	}
	got := ringNodes(members)
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ringNodes = %v, want %v (suspects carry partitions, dead do not)", got, want)
	}
}

func TestMergeSpans(t *testing.T) {
	a := []collectorsvc.SeqSpan{{First: 1, Last: 5}, {First: 10, Last: 12}}
	b := []collectorsvc.SeqSpan{{First: 6, Last: 9}, {First: 20, Last: 20}}
	got := mergeSpans(a, b)
	want := []collectorsvc.SeqSpan{{First: 1, Last: 12}, {First: 20, Last: 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeSpans = %v, want %v", got, want)
	}
	for _, tc := range []struct {
		seq  uint64
		want bool
	}{{0, false}, {1, true}, {12, true}, {13, false}, {20, true}, {21, false}} {
		if spanCovers(got, tc.seq) != tc.want {
			t.Fatalf("spanCovers(%d) = %v, want %v", tc.seq, !tc.want, tc.want)
		}
	}
}
