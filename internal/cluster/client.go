package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/xhash"
)

// ClientConfig tunes the cluster-routing report sender. Zero values
// select the defaults noted per field.
type ClientConfig struct {
	// Seeds are cluster addresses of any subset of the nodes — where
	// membership is resolved from. At least one must answer within
	// ResolveTimeout at NewClient.
	Seeds []string
	// ID is the base client identity; each partition sender derives its
	// own wire ID from it, so the per-(client, partition) sequence
	// spaces stay disjoint and survive owner changes. 0 derives an
	// instance-unique base from the wall clock and Seed.
	ID uint64
	// Partitions and VNodes are the ring geometry; they must match the
	// nodes'. <= 0 selects the Default* values.
	Partitions int
	VNodes     int
	// Seed must match the cluster's for ring agreement; it also seeds
	// each sender's reconnect jitter (mixed with the sender's wire ID,
	// so the fleet spreads its redials).
	Seed uint64
	// RefreshEvery is the membership poll interval — the reaction time
	// to a reshard, alongside the push a dying connection gives the
	// affected senders. <= 0 selects 200ms.
	RefreshEvery time.Duration
	// RPCTimeout bounds each membership RPC. <= 0 selects 1s.
	RPCTimeout time.Duration
	// ResolveTimeout bounds the synchronous first resolve in NewClient.
	// <= 0 selects 5s.
	ResolveTimeout time.Duration

	// Per-sender knobs, passed through to each partition's
	// collectorsvc.Client (zero values select that package's defaults).
	Buffer, Batch, Window  int
	MinBackoff, MaxBackoff time.Duration
	FlushTimeout           time.Duration
	HeartbeatEvery         time.Duration
	StaleTimeout           time.Duration
	WriteTimeout           time.Duration

	// DialIngest overrides the data-plane dialer, DialCluster the
	// membership-plane dialer (chaosnet injects here); nil selects
	// timeout-bounded TCP dials.
	DialIngest  func(addr string) (net.Conn, error)
	DialCluster DialFunc
}

// ClientStats sums the accounting across every partition sender, plus
// the routing layer's own counters. Once Close returns, the
// exactly-once identity holds cluster-wide:
// Enqueued = Acked + Dropped.
type ClientStats struct {
	collectorsvc.ClientStats
	// Resolves counts successful membership refreshes; Rebinds counts
	// partition senders retargeted to a new owner.
	Resolves uint64 `json:"resolves"`
	Rebinds  uint64 `json:"rebinds"`
}

// Client routes loop reports to the collectord cluster: a flow hashes
// to a partition, the seeded ring maps the partition to its owning
// node, and a per-partition collectorsvc.Client delivers with
// exactly-once accounting. A background loop re-resolves membership;
// when a partition's owner changes, its sender drains in-flight frames
// to the old owner (when still reachable), cuts over, and replays
// anything unacknowledged to the new one. Safe for concurrent use.
type Client struct {
	cfg     ClientConfig
	baseID  uint64
	senders []*collectorsvc.Client // one per partition, fixed at NewClient

	mu       sync.Mutex
	tbl      *table
	lastVer  uint64
	targets  []string // current ingest addr per partition
	resolves uint64
	rebinds  uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewClient resolves the membership view from the seeds (synchronously,
// bounded by ResolveTimeout), builds one sender per partition aimed at
// that partition's owner, and starts the refresh loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("cluster: client requires at least one seed address")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 200 * time.Millisecond
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = time.Second
	}
	if cfg.ResolveTimeout <= 0 {
		cfg.ResolveTimeout = 5 * time.Second
	}
	if cfg.DialCluster == nil {
		timeout := cfg.RPCTimeout
		cfg.DialCluster = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.ID == 0 {
		// Instance-unique, exactly like collectorsvc's derivation: the
		// wire sequence spaces are keyed by the derived per-partition
		// IDs, so two identically configured clients must not collide.
		cfg.ID = xhash.Mix64(uint64(time.Now().UnixNano()) ^ xhash.Mix64(cfg.Seed))
	}
	c := &Client{
		cfg:    cfg,
		baseID: cfg.ID,
		// The table's self slot is unused — a client observes
		// membership, it is not a member.
		tbl:     &table{rows: make(map[string]*Member)},
		targets: make([]string, cfg.Partitions),
		stop:    make(chan struct{}),
	}
	if err := c.resolveBlocking(); err != nil {
		return nil, err
	}
	ring := NewRing(cfg.Seed, cfg.VNodes, cfg.Partitions, ringNodes(c.tbl.members()))
	c.senders = make([]*collectorsvc.Client, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		addr := c.ingestAddrOf(ring.Owner(p))
		if addr == "" {
			return nil, fmt.Errorf("cluster: partition %d has no resolvable owner", p)
		}
		c.targets[p] = addr
		sender, err := collectorsvc.NewClient(collectorsvc.ClientConfig{
			Addr:           addr,
			ID:             partitionID(c.baseID, p),
			Buffer:         cfg.Buffer,
			Batch:          cfg.Batch,
			Window:         cfg.Window,
			MinBackoff:     cfg.MinBackoff,
			MaxBackoff:     cfg.MaxBackoff,
			FlushTimeout:   cfg.FlushTimeout,
			HeartbeatEvery: cfg.HeartbeatEvery,
			StaleTimeout:   cfg.StaleTimeout,
			WriteTimeout:   cfg.WriteTimeout,
			Seed:           cfg.Seed,
			Dial:           c.dialIngest(),
		})
		if err != nil {
			for _, s := range c.senders[:p] {
				s.Close()
			}
			return nil, err
		}
		c.senders[p] = sender
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.refreshLoop()
	}()
	return c, nil
}

// partitionID derives partition p's wire identity from the base ID.
// The mix keeps the per-partition sequence spaces disjoint while a
// fixed base keeps them stable across owner changes — the property the
// cross-node dedup handoff keys on.
func partitionID(base uint64, p int) uint64 {
	return xhash.Mix64(base ^ uint64(p+1)*golden)
}

func (c *Client) dialIngest() func(addr string) (net.Conn, error) {
	if c.cfg.DialIngest != nil {
		return c.cfg.DialIngest
	}
	return func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	}
}

// Send routes one loop report to its partition's sender. Never blocks
// on the network.
func (c *Client) Send(ev dataplane.LoopEvent, hop int) {
	p := PartitionOf(ev.Flow, c.cfg.Partitions)
	c.senders[p].Send(ev, hop)
}

// Tick delivers one epoch-boundary tick per current owner node (via
// the lowest partition each owns), so every node's controllers advance
// once per epoch regardless of how many partitions it holds. Ownership
// can move between ticks; a node may then see an epoch twice or not at
// all — ticks are an aging heartbeat, and the dedup windows tolerate
// that slack.
func (c *Client) Tick() {
	c.mu.Lock()
	ticked := make(map[string]bool)
	for p := 0; p < c.cfg.Partitions; p++ {
		addr := c.targets[p]
		if ticked[addr] {
			continue
		}
		ticked[addr] = true
		c.senders[p].Tick()
	}
	c.mu.Unlock()
}

// Pending sums the events not yet acknowledged across all senders.
func (c *Client) Pending() int {
	total := 0
	for _, s := range c.senders {
		total += s.Pending()
	}
	return total
}

// Stats sums the per-sender accounting and adds the routing counters.
func (c *Client) Stats() ClientStats {
	var out ClientStats
	for _, s := range c.senders {
		st := s.Stats()
		out.Redirects += st.Redirects
		out.Enqueued += st.Enqueued
		out.Acked += st.Acked
		out.Dropped += st.Dropped
		out.Retransmits += st.Retransmits
		out.Connects += st.Connects
		out.DialFailures += st.DialFailures
	}
	c.mu.Lock()
	out.Resolves = c.resolves
	out.Rebinds = c.rebinds
	c.mu.Unlock()
	return out
}

// Close drains every sender (bounded by their FlushTimeout) and stops
// the refresh loop. The loop keeps running during the drain so a
// reshard mid-close still retargets senders flushing to a dead owner.
func (c *Client) Close() error {
	var wg sync.WaitGroup
	for _, s := range c.senders {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	return nil
}

// resolveBlocking performs the synchronous first resolve: sweep the
// seeds until one answers, bounded by ResolveTimeout.
func (c *Client) resolveBlocking() error {
	deadline := time.Now().Add(c.cfg.ResolveTimeout)
	for {
		if c.refreshOnce() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: no seed answered within %v", c.cfg.ResolveTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// refreshLoop re-resolves membership every RefreshEvery and retargets
// senders when the ring moved.
func (c *Client) refreshLoop() {
	ticker := time.NewTicker(c.cfg.RefreshEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			if c.refreshOnce() {
				c.rebind()
			}
		}
	}
}

// refreshOnce polls candidates (configured seeds plus live member
// addresses) and merges the first answer's table. Any live node's
// table is complete — gossip is full-state — so one answer per round
// suffices.
func (c *Client) refreshOnce() bool {
	for _, addr := range c.resolveCandidates() {
		req := &wireMsg{V: wireVersion, Type: msgMembers, From: "client"}
		reply, err := call(c.cfg.DialCluster, addr, req, c.cfg.RPCTimeout)
		if err != nil || reply.Type != msgMembers {
			continue
		}
		c.mu.Lock()
		for _, r := range reply.Members {
			c.tbl.merge(Member{ID: r.ID, ClusterAddr: r.Cluster, IngestAddr: r.Ingest, Status: Status(r.Status), Inc: r.Inc})
		}
		c.resolves++
		c.mu.Unlock()
		return true
	}
	return false
}

// resolveCandidates lists membership poll targets: live member rows
// first (freshest view), then any configured seeds not already listed.
func (c *Client) resolveCandidates() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool)
	out := make([]string, 0, len(c.tbl.rows)+len(c.cfg.Seeds))
	for _, m := range c.tbl.members() {
		if m.Status != StatusDead && m.ClusterAddr != "" && !seen[m.ClusterAddr] {
			seen[m.ClusterAddr] = true
			out = append(out, m.ClusterAddr)
		}
	}
	for _, s := range c.cfg.Seeds {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ingestAddrOf resolves a node ID to its advertised ingest address
// (caller holds no lock; the table is read under c.mu).
func (c *Client) ingestAddrOf(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if row, ok := c.tbl.rows[id]; ok {
		return row.IngestAddr
	}
	return ""
}

// rebind recomputes the ring when the view changed and redirects every
// sender whose partition's owner moved. The sender drains its
// in-flight frames to the old owner first when it still answers, or
// replays them to the new one when it does not — either way each frame
// is acknowledged exactly once somewhere, and the recovery handoff
// discounts any journaled-but-replayed overlap.
func (c *Client) rebind() {
	c.mu.Lock()
	if c.tbl.version == c.lastVer {
		c.mu.Unlock()
		return
	}
	c.lastVer = c.tbl.version
	ring := NewRing(c.cfg.Seed, c.cfg.VNodes, c.cfg.Partitions, ringNodes(c.tbl.members()))
	type move struct {
		p    int
		addr string
	}
	var moves []move
	for p := 0; p < c.cfg.Partitions; p++ {
		addr := ""
		if row, ok := c.tbl.rows[ring.Owner(p)]; ok {
			addr = row.IngestAddr
		}
		if addr == "" || addr == c.targets[p] {
			continue
		}
		c.targets[p] = addr
		c.rebinds++
		moves = append(moves, move{p, addr})
	}
	c.mu.Unlock()
	// Redirect outside c.mu: it takes each sender's own lock and pokes
	// its run loop.
	for _, m := range moves {
		c.senders[m.p].Redirect(m.addr)
	}
}
