package cluster

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/chaosnet"
	"github.com/unroller/unroller/internal/collectorsvc"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// testNode bundles one node with its journal so a kill/restart cycle
// can reuse the directory.
type testNode struct {
	node    *Node
	journal *collectorsvc.Journal
	dir     string
}

func (tn *testNode) stop(t *testing.T) {
	t.Helper()
	tn.node.Stop()
	if err := tn.journal.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
}

// startTestNode launches a journaled node named id over the partition
// gate. peers lists other nodes' cluster addresses.
func startTestNode(t *testing.T, gate *chaosnet.Net, id, dir string, peers []string) *testNode {
	t.Helper()
	// A large segment keeps the whole run inside one dedup window: the
	// cross-node discount can only judge records journaled since the
	// last snapshot, so a rotation mid-overlap would fold replayable
	// frames into the baseline (DESIGN §13's sizing rule).
	j, err := collectorsvc.OpenJournal(collectorsvc.JournalConfig{Dir: dir, SegmentBytes: 64 << 20})
	if err != nil {
		t.Fatalf("opening journal for %s: %v", id, err)
	}
	n, err := StartNode(NodeConfig{
		ID:         id,
		Peers:      peers,
		Partitions: 16,
		VNodes:     8,
		Seed:       42,
		Server: collectorsvc.ServerConfig{
			Shards:     2,
			QueueDepth: 1 << 14, // deep enough that nothing sheds; the identity check assumes QueueDropped = 0
			Journal:    j,
		},
		ProbeEvery:   40 * time.Millisecond,
		ProbeTimeout: 120 * time.Millisecond,
		SuspectAfter: 400 * time.Millisecond,
		RecoverySync: 1500 * time.Millisecond,
		Dial:         DialFunc(gate.Dialer(id, nil)),
	})
	if err != nil {
		j.Close()
		t.Fatalf("starting node %s: %v", id, err)
	}
	return &testNode{node: n, journal: j, dir: dir}
}

// waitCluster polls until cond holds, failing at the deadline.
func waitCluster(t *testing.T, within time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s did not hold within %v", desc, within)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterKillReshardExactlyOnce is the cluster robustness e2e the
// CI gate runs under -race: three journaled nodes, a streaming cluster
// client, one node killed mid-stream, a 2s asymmetric cluster-plane
// partition between the survivors, and the killed node restarted from
// its journal. At the end the exactly-once accounting identity must
// hold cluster-wide and exactly:
//
//	client Enqueued = Acked + Dropped
//	client Acked    = Σ over nodes (Ingested + Ticks)
//
// The second line is what cross-node dedup buys: the killed node's
// journal replays frames its takeover peers also ingested (the client
// re-sent whatever the kill left unacknowledged), and the recovery
// handoff discards exactly that overlap (counted in CrossDupes) so no
// loop report is double-counted anywhere.
func TestClusterKillReshardExactlyOnce(t *testing.T) {
	gate := chaosnet.NewNet()
	base := t.TempDir()

	n1 := startTestNode(t, gate, "n1", filepath.Join(base, "n1"), nil)
	defer n1.stop(t)
	n2 := startTestNode(t, gate, "n2", filepath.Join(base, "n2"), []string{n1.node.ClusterAddr()})
	n3 := startTestNode(t, gate, "n3", filepath.Join(base, "n3"), []string{n1.node.ClusterAddr()})
	defer n3.stop(t)

	waitCluster(t, 5*time.Second, "membership convergence", func() bool {
		return allAlive(3)(n1.node.Agent().Members()) &&
			allAlive(3)(n2.node.Agent().Members()) &&
			allAlive(3)(n3.node.Agent().Members())
	})

	cl, err := NewClient(ClientConfig{
		Seeds:          []string{n1.node.ClusterAddr(), n2.node.ClusterAddr(), n3.node.ClusterAddr()},
		ID:             0xC0FFEE,
		Partitions:     16,
		VNodes:         8,
		Seed:           42,
		RefreshEvery:   50 * time.Millisecond,
		RPCTimeout:     500 * time.Millisecond,
		Buffer:         1 << 13,
		MinBackoff:     10 * time.Millisecond,
		MaxBackoff:     200 * time.Millisecond,
		FlushTimeout:   15 * time.Second,
		HeartbeatEvery: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("starting cluster client: %v", err)
	}

	// Paced producer: W workers, each its own flow population. Pacing
	// keeps Pending under the buffer so nothing is dropped client-side
	// while a partition's owner is mid-failover.
	const (
		workers      = 4
		perWorker    = 3000
		totalReports = workers * perWorker
	)
	var wg sync.WaitGroup
	phase2 := make(chan struct{}) // closed once the kill+partition chaos is injected
	produce := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			for cl.Pending() > 1<<12 {
				time.Sleep(200 * time.Microsecond)
			}
			flow := uint32(w)<<20 | uint32(i)
			cl.Send(dataplane.LoopEvent{
				Report: detect.Report{Reporter: detect.SwitchID(w + 1), Hops: 3},
				Flow:   flow,
			}, 3)
			if i%500 == 0 {
				cl.Tick()
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			produce(w, 0, perWorker/3)
			<-phase2 // hold the rest of the stream until the chaos is in
			produce(w, perWorker/3, perWorker)
		}(w)
	}

	// Let the first third stream, then kill n2 mid-stream and open a 2s
	// asymmetric cluster-plane partition n1→n3 (n1 cannot probe n3; n3
	// still reaches n1). The indirect path through n2 is gone — dead
	// nodes can't relay — so this stresses suspicion refutation while
	// the ring is already resharding around the kill.
	waitCluster(t, 20*time.Second, "first third acked", func() bool {
		return cl.Stats().Acked > totalReports/6
	})
	n2.stop(t)
	gate.Block("n1", n3.node.ClusterAddr())
	close(phase2)

	time.Sleep(2 * time.Second)
	gate.Heal("n1", n3.node.ClusterAddr())

	// The survivors must agree n2 is dead and must never have killed
	// each other across the asymmetric break.
	waitCluster(t, 5*time.Second, "n2 declared dead", func() bool {
		for _, n := range []*Node{n1.node, n3.node} {
			st, ok := statusOf(n.Agent().Members(), "n2")
			if !ok || st != StatusDead {
				return false
			}
		}
		return true
	})
	for _, n := range []*Node{n1.node, n3.node} {
		for _, id := range []string{"n1", "n3"} {
			if st, ok := statusOf(n.Agent().Members(), id); !ok || st == StatusDead {
				t.Fatalf("%s sees survivor %s dead after asymmetric partition", n.ID(), id)
			}
		}
	}

	// Restart n2 from its journal mid-stream. Its staged recovery asks
	// the survivors which sequence ranges they already own and discards
	// the overlap the client replayed to them after the kill.
	n2 = startTestNode(t, gate, "n2", n2.dir, []string{n1.node.ClusterAddr(), n3.node.ClusterAddr()})
	defer n2.stop(t)
	waitCluster(t, 10*time.Second, "n2 rejoined everywhere", func() bool {
		return allAlive(3)(n1.node.Agent().Members()) &&
			allAlive(3)(n2.node.Agent().Members()) &&
			allAlive(3)(n3.node.Agent().Members())
	})

	wg.Wait()
	if err := cl.Close(); err != nil {
		t.Fatalf("closing client: %v", err)
	}

	cst := cl.Stats()
	if cst.Enqueued != cst.Acked+cst.Dropped {
		t.Fatalf("client identity broken: enqueued %d != acked %d + dropped %d", cst.Enqueued, cst.Acked, cst.Dropped)
	}
	if cst.Dropped != 0 {
		t.Fatalf("paced producer dropped %d events; pacing or failover replay is broken", cst.Dropped)
	}
	if cst.Rebinds == 0 {
		t.Fatal("no partition ever rebound; the kill/restart never resharded")
	}

	var sumIngested, sumTicks, sumDupes, sumCross, sumQueueDropped uint64
	for _, tn := range []*testNode{n1, n2, n3} {
		st := tn.node.Server().Stats()
		sumIngested += st.Ingested
		sumTicks += st.Ticks
		sumDupes += st.Dupes
		sumCross += st.CrossDupes
		sumQueueDropped += st.QueueDropped
		t.Logf("%s: ingested=%d ticks=%d dupes=%d cross_dupes=%d", tn.node.ID(), st.Ingested, st.Ticks, st.Dupes, st.CrossDupes)
	}
	t.Logf("client: enqueued=%d acked=%d retransmits=%d redirects=%d rebinds=%d resolves=%d",
		cst.Enqueued, cst.Acked, cst.Retransmits, cst.Redirects, cst.Rebinds, cst.Resolves)
	if sumQueueDropped != 0 {
		t.Fatalf("shard queues dropped %d events; deepen QueueDepth", sumQueueDropped)
	}
	if got := sumIngested + sumTicks; got != cst.Acked {
		t.Fatalf("cluster-wide identity broken: Σ(ingested+ticks) = %d, client acked = %d (cross_dupes=%d dupes=%d)",
			got, cst.Acked, sumCross, sumDupes)
	}
}

// TestClusterHealthzAndStatsz drives the node admin surface: /healthz
// answers ready on a healthy member and degraded once the node is
// isolated from every peer (suspect-of-self), and /statsz carries the
// cluster stanza.
func TestClusterHealthzDegradedOnIsolation(t *testing.T) {
	gate := chaosnet.NewNet()
	base := t.TempDir()
	n1 := startTestNode(t, gate, "n1", filepath.Join(base, "n1"), nil)
	defer n1.stop(t)
	n2 := startTestNode(t, gate, "n2", filepath.Join(base, "n2"), []string{n1.node.ClusterAddr()})
	defer n2.stop(t)

	waitCluster(t, 5*time.Second, "membership convergence", func() bool {
		return allAlive(2)(n1.node.Agent().Members()) && allAlive(2)(n2.node.Agent().Members())
	})
	if h := n1.node.Server().Health(); h != collectorsvc.HealthReady {
		t.Fatalf("healthy member reports %v, want ready", h)
	}

	// Cut n1 off in both directions; its health must degrade once no
	// peer has been heard from for the suspect window.
	gate.Block("n1", n2.node.ClusterAddr())
	gate.Block("n2", n1.node.ClusterAddr())
	waitCluster(t, 5*time.Second, "isolation degrades health", func() bool {
		return n1.node.Server().Health() == collectorsvc.HealthDegraded
	})

	gate.Heal("n1", n2.node.ClusterAddr())
	gate.Heal("n2", n1.node.ClusterAddr())
	// Health recovers as soon as n1 hears any peer again, but the
	// ownership check below also needs n2's incarnation-bump refutation
	// to land (the partition may have escalated it all the way to dead),
	// so wait for full membership too.
	waitCluster(t, 10*time.Second, "health and membership recover after heal", func() bool {
		return n1.node.Server().Health() == collectorsvc.HealthReady &&
			allAlive(2)(n1.node.Agent().Members()) &&
			allAlive(2)(n2.node.Agent().Members())
	})

	info := n1.node.Info()
	if info.ID != "n1" || info.Partitions != 16 || len(info.Members) != 2 {
		t.Fatalf("cluster info malformed: %+v", info)
	}
	if info.Owned == 0 || info.Owned == info.Partitions {
		t.Fatalf("ownership not balanced across 2 nodes: %+v", info)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := StartNode(NodeConfig{}); err == nil {
		t.Fatal("StartNode without an ID must fail")
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("NewClient without seeds must fail")
	}
	if _, err := NewClient(ClientConfig{
		Seeds:          []string{"127.0.0.1:1"},
		ResolveTimeout: 200 * time.Millisecond,
	}); err == nil {
		t.Fatal("NewClient with no answering seed must fail")
	}
}

// TestClusterRecoveryDiscountsPeerOverlap manufactures a deterministic
// cross-node replay overlap and checks the handoff discounts exactly
// it. Node A journals 100 frames from client X and dies; node B then
// ingests frames 1..50 of the same sequence space (the takeover
// replay); A's restart must discard exactly those 50 (CrossDupes),
// commit the other 50, and — because the post-commit rotation rebases
// the journal — a second restart must change nothing.
func TestClusterRecoveryDiscountsPeerOverlap(t *testing.T) {
	gate := chaosnet.NewNet()
	base := t.TempDir()
	const clientID = 0xBEEF

	feed := func(addr string, count int) {
		t.Helper()
		c, err := collectorsvc.NewClient(collectorsvc.ClientConfig{Addr: addr, ID: clientID, Seed: 7})
		if err != nil {
			t.Fatalf("feed client: %v", err)
		}
		for i := 0; i < count; i++ {
			c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 1, Hops: 2}, Flow: uint32(i)}, 2)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("closing feed client: %v", err)
		}
		st := c.Stats()
		if st.Acked != uint64(count) {
			t.Fatalf("feed acked %d of %d", st.Acked, count)
		}
	}

	// Phase 1: A alone journals 100 frames, then dies.
	a := startTestNode(t, gate, "a", filepath.Join(base, "a"), nil)
	feed(a.node.IngestAddr(), 100)
	a.stop(t)

	// Phase 2: B (the takeover owner) ingests the first 50 sequence
	// numbers of the same client space — the frames a failover client
	// would have replayed.
	b := startTestNode(t, gate, "b", filepath.Join(base, "b"), nil)
	defer b.stop(t)
	feed(b.node.IngestAddr(), 50)

	// Phase 3: A restarts against B; its 100 staged records overlap B's
	// spans on 1..50 exactly.
	a = startTestNode(t, gate, "a", a.dir, []string{b.node.ClusterAddr()})
	rec := a.node.Server().Recovery()
	if rec.CrossDupes != 50 {
		t.Fatalf("recovery discounted %d frames, want 50 (%+v)", rec.CrossDupes, rec)
	}
	st := a.node.Server().Stats()
	if st.Ingested != 50 || st.CrossDupes != 50 {
		t.Fatalf("restarted stats: ingested=%d cross_dupes=%d, want 50/50", st.Ingested, st.CrossDupes)
	}

	// Phase 4: the post-commit rotation made the reconciled cut the new
	// baseline — a second restart re-judges nothing.
	a.stop(t)
	a = startTestNode(t, gate, "a", a.dir, []string{b.node.ClusterAddr()})
	defer a.stop(t)
	st = a.node.Server().Stats()
	if st.Ingested != 50 || st.CrossDupes != 50 {
		t.Fatalf("second restart drifted: ingested=%d cross_dupes=%d, want 50/50", st.Ingested, st.CrossDupes)
	}
	// RecoveryStats carries the cumulative baseline forward; re-judging
	// the same 50 records would double it to 100.
	if rec := a.node.Server().Recovery(); rec.CrossDupes != 50 {
		t.Fatalf("second restart reports cross_dupes=%d, want the unchanged baseline 50", rec.CrossDupes)
	}
}
