package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/chaosnet"
)

// Fast failure-detector timings for tests: suspicion expires in 300ms,
// so a convergence wait of a few seconds has ample slack without the
// suite crawling.
const (
	testProbeEvery   = 25 * time.Millisecond
	testProbeTimeout = 100 * time.Millisecond
	testSuspectAfter = 300 * time.Millisecond
)

// startAgents launches n agents wired through one chaosnet partition
// gate. Agent i is named fmt.Sprintf("n%d", i+1); every agent seeds off
// agent 0's address.
func startAgents(t *testing.T, gate *chaosnet.Net, n int) []*Agent {
	t.Helper()
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
	}
	agents := make([]*Agent, n)
	for i := range agents {
		id := fmt.Sprintf("n%d", i+1)
		var peers []string
		if i != 0 {
			peers = []string{lns[0].Addr().String()}
		} else if n > 1 {
			peers = []string{lns[1].Addr().String()}
		}
		agents[i] = NewAgent(AgentConfig{
			ID:           id,
			ClusterAddr:  lns[i].Addr().String(),
			IngestAddr:   "ingest-" + id, // advertised only; not dialed here
			Peers:        peers,
			ProbeEvery:   testProbeEvery,
			ProbeTimeout: testProbeTimeout,
			SuspectAfter: testSuspectAfter,
			Seed:         42,
			Dial:         DialFunc(gate.Dialer(id, nil)),
		})
		agents[i].Start(lns[i])
		t.Cleanup(agents[i].Stop)
	}
	return agents
}

// waitForViews polls until every agent's view satisfies check, failing
// the test at the deadline with each agent's current table.
func waitForViews(t *testing.T, agents []*Agent, within time.Duration, desc string, check func(view []Member) bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		allOK := true
		for _, a := range agents {
			if !check(a.Members()) {
				allOK = false
				break
			}
		}
		if allOK {
			return
		}
		if time.Now().After(deadline) {
			for _, a := range agents {
				t.Logf("agent %s view: %+v", a.cfg.ID, a.Members())
			}
			t.Fatalf("views did not reach %q within %v", desc, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func allAlive(n int) func(view []Member) bool {
	return func(view []Member) bool {
		if len(view) != n {
			return false
		}
		for _, m := range view {
			if m.Status != StatusAlive {
				return false
			}
		}
		return true
	}
}

func statusOf(view []Member, id string) (Status, bool) {
	for _, m := range view {
		if m.ID == id {
			return m.Status, true
		}
	}
	return 0, false
}

func TestAgentsConvergeFromSeeds(t *testing.T) {
	agents := startAgents(t, chaosnet.NewNet(), 3)
	waitForViews(t, agents, 5*time.Second, "all alive", allAlive(3))
}

// An asymmetric partition — n1 can no longer reach n2, but n2 still
// reaches n1, and both still reach n3 — must NOT kill anyone: n1's
// failed direct probes fall back to indirect ping-reqs through n3,
// which still completes the round trip. Both sides of the break hold
// the same all-alive view throughout a window longer than the suspect
// timeout. This is the regime a naive ping-only detector misreads as a
// dead peer.
func TestAsymmetricPartitionConverges(t *testing.T) {
	gate := chaosnet.NewNet()
	agents := startAgents(t, gate, 3)
	waitForViews(t, agents, 5*time.Second, "all alive", allAlive(3))

	gate.Block("n1", agents[1].cfg.ClusterAddr)
	defer gate.Heal("n1", agents[1].cfg.ClusterAddr)

	// Hold the break for several suspect windows; nobody may go dead,
	// and by the end every view must agree all-alive again (a transient
	// suspicion is allowed, but it must refute well inside the window).
	hold := 4 * testSuspectAfter
	end := time.Now().Add(hold)
	for time.Now().Before(end) {
		for _, a := range agents {
			for _, m := range a.Members() {
				if m.Status == StatusDead {
					t.Fatalf("agent %s declared %s dead during an asymmetric partition", a.cfg.ID, m.ID)
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitForViews(t, agents, 2*testSuspectAfter, "all alive on both sides", allAlive(3))

	gate.Heal("n1", agents[1].cfg.ClusterAddr)
	waitForViews(t, agents, 5*time.Second, "all alive after heal", allAlive(3))
}

// A full isolation of one node must converge both ways: the majority
// declares it dead within the suspect timeout, and the isolated node —
// hearing from nobody — reports Isolated (the suspect-of-self signal
// /healthz surfaces as degraded). Healing brings it back: the death
// rumour reaches it, it refutes with a fresher incarnation, and every
// view returns to all-alive.
func TestFullPartitionKillsAndRejoins(t *testing.T) {
	gate := chaosnet.NewNet()
	agents := startAgents(t, gate, 3)
	waitForViews(t, agents, 5*time.Second, "all alive", allAlive(3))

	// Cut n1 off in both directions from both peers.
	addr1 := agents[0].cfg.ClusterAddr
	for _, other := range []int{1, 2} {
		gate.Block("n1", agents[other].cfg.ClusterAddr)
		gate.Block(agents[other].cfg.ID, addr1)
	}

	majority := []*Agent{agents[1], agents[2]}
	waitForViews(t, majority, 5*time.Second, "n1 dead at the majority", func(view []Member) bool {
		st, ok := statusOf(view, "n1")
		return ok && st == StatusDead
	})
	deadline := time.Now().Add(5 * time.Second)
	for !agents[0].Isolated() {
		if time.Now().After(deadline) {
			t.Fatal("isolated node never noticed its own isolation")
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, other := range []int{1, 2} {
		gate.Heal("n1", agents[other].cfg.ClusterAddr)
		gate.Heal(agents[other].cfg.ID, addr1)
	}
	waitForViews(t, agents, 10*time.Second, "all alive after rejoin", allAlive(3))
	if agents[0].Isolated() {
		t.Fatal("rejoined node still reports isolation")
	}
}

// Membership merge conflict rules, exercised directly on the table.
func TestTableMergeRules(t *testing.T) {
	tbl := newTable(Member{ID: "self", Status: StatusAlive, Inc: 1})

	// New row adopts; equal-incarnation stronger status wins; weaker loses.
	tbl.merge(Member{ID: "x", Status: StatusAlive, Inc: 3})
	if tbl.merge(Member{ID: "x", Status: StatusAlive, Inc: 3}) {
		t.Fatal("identical claim reported as a change")
	}
	if !tbl.merge(Member{ID: "x", Status: StatusSuspect, Inc: 3}) || tbl.rows["x"].Status != StatusSuspect {
		t.Fatal("equal-inc stronger status must win")
	}
	if tbl.merge(Member{ID: "x", Status: StatusAlive, Inc: 3}) {
		t.Fatal("equal-inc weaker status must lose")
	}
	// Higher incarnation outranks anything.
	if !tbl.merge(Member{ID: "x", Status: StatusAlive, Inc: 4}) || tbl.rows["x"].Status != StatusAlive {
		t.Fatal("higher incarnation must win")
	}
	// A non-alive claim about self refutes: fresher incarnation, alive.
	if !tbl.merge(Member{ID: "self", Status: StatusDead, Inc: 7}) {
		t.Fatal("self death rumour must trigger a refutation")
	}
	if row := tbl.rows["self"]; row.Status != StatusAlive || row.Inc != 8 {
		t.Fatalf("refutation row = %+v, want alive at inc 8", row)
	}
	// escalate is bound to the incarnation the verdict was formed at.
	if tbl.escalate("x", StatusSuspect, 3) {
		t.Fatal("stale-incarnation escalation must be ignored")
	}
	if !tbl.escalate("x", StatusSuspect, 4) || tbl.rows["x"].Status != StatusSuspect {
		t.Fatal("current-incarnation escalation must apply")
	}
}
