package topology

import (
	"fmt"

	"github.com/unroller/unroller/internal/xrand"
)

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite distance from u. It panics if
// the graph is disconnected from u's component's perspective only in the
// sense that unreachable nodes are ignored.
func (g *Graph) Eccentricity(u int) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the longest shortest path in hops (0 for graphs with
// fewer than two nodes). Disconnected pairs are ignored; call Connected
// first when that matters. O(N·(N+M)) — fine at Topology Zoo scale.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		if e := g.Eccentricity(u); e > diam {
			diam = e
		}
	}
	return diam
}

// ShortestPath returns one uniformly random shortest path from src to dst
// (inclusive of both), drawn by walking the shortest-path DAG backwards
// with per-step uniform predecessor choice. Returns an error if dst is
// unreachable.
//
// Random tie-breaking matters for the Table 5 experiment: the paper picks
// "a shortest path" between random node pairs, and deterministic
// tie-breaking would bias which switches appear on paths.
func (g *Graph) ShortestPath(src, dst int, rng *xrand.Rand) ([]int, error) {
	if src < 0 || dst < 0 || src >= g.N() || dst >= g.N() {
		return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
	}
	dist := g.BFS(src)
	if dist[dst] < 0 {
		return nil, fmt.Errorf("topology: %s: node %d unreachable from %d", g.Name, dst, src)
	}
	// Walk back from dst choosing uniformly among predecessors on
	// shortest paths. This samples paths with a bias towards balanced
	// DAGs rather than exactly uniformly over all shortest paths, which
	// is the standard and sufficient randomisation for this experiment.
	path := []int{dst}
	cur := dst
	for cur != src {
		var preds []int
		for _, w := range g.adj[cur] {
			if dist[w] == dist[cur]-1 {
				preds = append(preds, w)
			}
		}
		cur = preds[rng.Intn(len(preds))]
		path = append(path, cur)
	}
	// Reverse into src→dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// RandomPair returns two distinct uniform random nodes. It panics on
// graphs with fewer than two nodes.
func (g *Graph) RandomPair(rng *xrand.Rand) (int, int) {
	if g.N() < 2 {
		panic("topology: RandomPair needs at least two nodes")
	}
	u := rng.Intn(g.N())
	v := rng.Intn(g.N() - 1)
	if v >= u {
		v++
	}
	return u, v
}
