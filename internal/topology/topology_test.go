package topology

import (
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/xrand"
)

// TestGraphBasics covers construction and accessors.
func TestGraphBasics(t *testing.T) {
	g := NewGraph("t", 4)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("")
	if g.N() != 3 {
		t.Fatalf("n = %d", g.N())
	}
	if g.Label(c) != "n2" {
		t.Fatalf("auto label %q", g.Label(c))
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(b, a); err == nil {
		t.Fatal("reversed duplicate accepted")
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("out of range accepted")
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) || g.HasEdge(a, c) {
		t.Fatal("HasEdge wrong")
	}
	if g.M() != 1 || g.Degree(a) != 1 || g.Degree(c) != 0 {
		t.Fatal("counts wrong")
	}
	if g.NodeByLabel("b") != b || g.NodeByLabel("zz") != -1 {
		t.Fatal("NodeByLabel wrong")
	}
	if !strings.Contains(g.String(), "n=3") {
		t.Fatalf("String: %s", g.String())
	}
}

// TestBFSAndDiameter on a known shape: a 6-cycle has diameter 3.
func TestBFSAndDiameter(t *testing.T) {
	g, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, d := range want {
		if dist[i] != d {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], d)
		}
	}
	if g.Diameter() != 3 {
		t.Fatalf("ring6 diameter %d", g.Diameter())
	}
	if !g.Connected() {
		t.Fatal("ring disconnected?")
	}
	// Disconnected detection.
	h := NewGraph("d", 2)
	h.AddNode("")
	h.AddNode("")
	if h.Connected() {
		t.Fatal("two isolated nodes reported connected")
	}
}

// TestShortestPathValid: endpoints, adjacency, length, randomised
// tie-breaking actually varies.
func TestShortestPathValid(t *testing.T) {
	g, _ := Torus(4, 4)
	rng := xrand.New(1)
	dist := g.BFS(0)
	variants := map[string]bool{}
	for trial := 0; trial < 50; trial++ {
		p, err := g.ShortestPath(0, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != 0 || p[len(p)-1] != 10 {
			t.Fatalf("endpoints wrong: %v", p)
		}
		if len(p)-1 != dist[10] {
			t.Fatalf("path length %d, shortest %d", len(p)-1, dist[10])
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("non-edge step in %v", p)
			}
		}
		key := ""
		for _, u := range p {
			key += string(rune(u)) // structural fingerprint
		}
		variants[key] = true
	}
	if len(variants) < 2 {
		t.Error("tie-breaking never varied on a torus (suspicious)")
	}
	if _, err := g.ShortestPath(-1, 0, rng); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

// TestRandomPairDistinct.
func TestRandomPairDistinct(t *testing.T) {
	g, _ := Ring(5)
	rng := xrand.New(2)
	for i := 0; i < 200; i++ {
		u, v := g.RandomPair(rng)
		if u == v || u < 0 || v < 0 || u >= 5 || v >= 5 {
			t.Fatalf("bad pair (%d,%d)", u, v)
		}
	}
}

// TestFatTreeShape: the paper's FatTree4 is 20 switches, diameter 4, and
// the layer map is consistent.
func TestFatTreeShape(t *testing.T) {
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("FatTree4 has %d nodes, want 20", g.N())
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("FatTree4 diameter %d, want 4", d)
	}
	if !g.Connected() {
		t.Fatal("fat tree disconnected")
	}
	// k=4: 8 edge, 8 agg, 4 core; edges: 8 edge×2 agg... check counts.
	if g.M() != 8*2+8*2 {
		t.Fatalf("FatTree4 has %d links, want 32", g.M())
	}
	rng := xrand.New(3)
	a := NewAssignment(g, rng)
	layers := FatTreeLayers(4, a)
	if len(layers) != 20 {
		t.Fatalf("layer map size %d", len(layers))
	}
	counts := map[int]int{}
	for _, l := range layers {
		counts[l]++
	}
	if counts[0] != 8 || counts[1] != 8 || counts[2] != 4 {
		t.Fatalf("layer counts %v", counts)
	}
	// Links only connect adjacent layers.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			lu, lv := layers[a.ID(u)], layers[a.ID(v)]
			if lu == lv || lu-lv > 1 || lv-lu > 1 {
				t.Fatalf("link between layers %d and %d", lu, lv)
			}
		}
	}
	if _, err := FatTree(3); err == nil {
		t.Fatal("odd arity accepted")
	}
}

// TestVL2Shape.
func TestVL2Shape(t *testing.T) {
	g, err := VL2(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 14 || !g.Connected() {
		t.Fatalf("VL2 n=%d connected=%v", g.N(), g.Connected())
	}
	rng := xrand.New(4)
	a := NewAssignment(g, rng)
	layers := VL2Layers(8, 4, 2, a)
	counts := map[int]int{}
	for _, l := range layers {
		counts[l]++
	}
	if counts[0] != 8 || counts[1] != 4 || counts[2] != 2 {
		t.Fatalf("VL2 layer counts %v", counts)
	}
	if _, err := VL2(0, 4, 2); err == nil {
		t.Fatal("invalid VL2 accepted")
	}
}

// TestGenerators shape checks.
func TestGenerators(t *testing.T) {
	if g, _ := Chain(10); g.Diameter() != 9 || g.M() != 9 {
		t.Error("chain shape")
	}
	if g, _ := Torus(4, 5); g.N() != 20 || g.M() != 40 || !g.Connected() {
		t.Error("torus shape")
	}
	rng := xrand.New(5)
	g, err := ErdosRenyi(30, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() || g.N() != 30 || g.M() < 29 {
		t.Errorf("ER: n=%d m=%d connected=%v", g.N(), g.M(), g.Connected())
	}
	wax, err := Waxman(40, 0.6, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if wax.N() != 40 || !wax.Connected() || wax.M() < 39 {
		t.Errorf("waxman shape: n=%d m=%d connected=%v", wax.N(), wax.M(), wax.Connected())
	}
	if _, err := Waxman(1, 0.5, 0.5, rng); err == nil {
		t.Error("waxman n=1 accepted")
	}
	if _, err := Waxman(5, 0, 0.5, rng); err == nil {
		t.Error("waxman alpha=0 accepted")
	}
	if _, err := Waxman(5, 0.5, 1.5, rng); err == nil {
		t.Error("waxman beta>1 accepted")
	}
	jf, err := Jellyfish(30, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if jf.N() != 30 || jf.M() != 60 || !jf.Connected() {
		t.Errorf("jellyfish shape: n=%d m=%d", jf.N(), jf.M())
	}
	for u := 0; u < jf.N(); u++ {
		if jf.Degree(u) != 4 {
			t.Fatalf("jellyfish node %d has degree %d, want 4", u, jf.Degree(u))
		}
	}
	for _, bad := range []func() error{
		func() error { _, err := Ring(2); return err },
		func() error { _, err := Jellyfish(4, 5, rng); return err },
		func() error { _, err := Jellyfish(5, 3, rng); return err }, // odd n·r
		func() error { _, err := Chain(0); return err },
		func() error { _, err := Torus(2, 3); return err },
		func() error { _, err := ErdosRenyi(1, 0.5, rng); return err },
		func() error { _, err := ErdosRenyi(5, 1.5, rng); return err },
	} {
		if bad() == nil {
			t.Error("invalid generator input accepted")
		}
	}
}

// TestZooStandIns: every Table 5 stand-in matches the paper's node count
// and diameter exactly, is connected, and contains cycles through many of
// its nodes.
func TestZooStandIns(t *testing.T) {
	rng := xrand.New(6)
	for _, spec := range TableFiveSpecs() {
		g, err := ZooGraph(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.N() != spec.Nodes {
			t.Errorf("%s: %d nodes, want %d", spec.Name, g.N(), spec.Nodes)
		}
		if d := g.Diameter(); d != spec.Diameter {
			t.Errorf("%s: diameter %d, want %d", spec.Name, d, spec.Diameter)
		}
		if !g.Connected() {
			t.Errorf("%s disconnected", spec.Name)
		}
		// Loops must be samplable through a healthy fraction of nodes.
		withCycle := 0
		for u := 0; u < g.N(); u++ {
			if c := RandomCycleThrough(g, u, 2, 12, rng); c != nil {
				withCycle++
			}
		}
		if withCycle < g.N()*9/10 {
			t.Errorf("%s: only %d/%d nodes admit loops", spec.Name, withCycle, g.N())
		}
	}
}

// TestSyntheticValidation.
func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic("x", 3, 1); err == nil {
		t.Error("diameter 1 accepted")
	}
	if _, err := Synthetic("x", 3, 5); err == nil {
		t.Error("too few nodes accepted")
	}
	// Boundary: exactly d+1 nodes is a pure path.
	g, err := Synthetic("p", 6, 5)
	if err != nil || g.Diameter() != 5 || g.M() != 5 {
		t.Errorf("pure path synthetic: %v, %v", g, err)
	}
}

// TestAssignment: distinct ids, reserved value avoided, reverse lookup.
func TestAssignment(t *testing.T) {
	g, _ := Synthetic("a", 50, 5)
	rng := xrand.New(7)
	a := NewAssignment(g, rng)
	seen := map[uint32]bool{}
	for u := 0; u < g.N(); u++ {
		id := uint32(a.ID(u))
		if id == 0xFFFFFFFF {
			t.Fatal("reserved id assigned")
		}
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
		if a.Node(a.ID(u)) != u {
			t.Fatal("reverse lookup broken")
		}
	}
	if a.Node(0xFFFFFFFF) != -1 {
		t.Fatal("unknown id should map to -1")
	}
	ids := a.IDs([]int{0, 1, 2})
	if len(ids) != 3 || ids[1] != a.ID(1) {
		t.Fatal("IDs translation")
	}
}

// TestSortAdjacency makes iteration deterministic.
func TestSortAdjacency(t *testing.T) {
	g := NewGraph("s", 3)
	g.AddNode("")
	g.AddNode("")
	g.AddNode("")
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	g.SortAdjacency()
	n := g.Neighbors(0)
	if n[0] != 1 || n[1] != 2 {
		t.Fatalf("adjacency not sorted: %v", n)
	}
}
