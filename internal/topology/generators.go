package topology

import (
	"fmt"
	"math"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// FatTree builds the switch-level k-ary fat-tree fabric (k even, k ≥ 2):
// k pods of k/2 edge and k/2 aggregation switches plus (k/2)² cores.
// FatTree(4) is the paper's "FatTree4": 20 switches, diameter 4.
// Node order: edges, then aggregations, then cores.
func FatTree(k int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and ≥ 2, got %d", k)
	}
	half := k / 2
	g := NewGraph(fmt.Sprintf("FatTree%d", k), k*k+half*half)
	edge := make([][]int, k) // [pod][i]
	agg := make([][]int, k)
	for p := 0; p < k; p++ {
		edge[p] = make([]int, half)
		for i := range edge[p] {
			edge[p][i] = g.AddNode(fmt.Sprintf("edge-p%d-%d", p, i))
		}
	}
	for p := 0; p < k; p++ {
		agg[p] = make([]int, half)
		for i := range agg[p] {
			agg[p][i] = g.AddNode(fmt.Sprintf("agg-p%d-%d", p, i))
		}
	}
	cores := make([]int, half*half)
	for i := range cores {
		cores[i] = g.AddNode(fmt.Sprintf("core-%d", i))
	}
	for p := 0; p < k; p++ {
		for _, e := range edge[p] {
			for _, a := range agg[p] {
				g.mustEdge(e, a)
			}
		}
		for j, a := range agg[p] {
			for c := 0; c < half; c++ {
				g.mustEdge(a, cores[j*half+c])
			}
		}
	}
	return g, nil
}

// FatTreeLayers returns the tier of each FatTree(k) node (0 = edge,
// 1 = aggregation, 2 = core), keyed by assigned switch identifier — the
// layer map PathDump requires.
func FatTreeLayers(k int, a *Assignment) map[detect.SwitchID]int {
	half := k / 2
	nEdge := k * half
	nAgg := k * half
	layers := make(map[detect.SwitchID]int, nEdge+nAgg+half*half)
	for u := 0; u < nEdge; u++ {
		layers[a.ID(u)] = 0
	}
	for u := nEdge; u < nEdge+nAgg; u++ {
		layers[a.ID(u)] = 1
	}
	for u := nEdge + nAgg; u < nEdge+nAgg+half*half; u++ {
		layers[a.ID(u)] = 2
	}
	return layers
}

// VL2 builds the VL2 fabric of Greenberg et al.: nt top-of-rack switches,
// each dual-homed to two of na aggregation switches, and na aggregations
// each connected to all ni intermediates. Node order: ToRs, aggs,
// intermediates.
func VL2(nt, na, ni int) (*Graph, error) {
	if nt < 1 || na < 2 || ni < 1 {
		return nil, fmt.Errorf("topology: VL2 needs nt ≥ 1, na ≥ 2, ni ≥ 1; got %d/%d/%d", nt, na, ni)
	}
	g := NewGraph(fmt.Sprintf("VL2-%d-%d-%d", nt, na, ni), nt+na+ni)
	tors := make([]int, nt)
	for i := range tors {
		tors[i] = g.AddNode(fmt.Sprintf("tor-%d", i))
	}
	aggs := make([]int, na)
	for i := range aggs {
		aggs[i] = g.AddNode(fmt.Sprintf("agg-%d", i))
	}
	ints := make([]int, ni)
	for i := range ints {
		ints[i] = g.AddNode(fmt.Sprintf("int-%d", i))
	}
	for i, t := range tors {
		g.mustEdge(t, aggs[(2*i)%na])
		g.mustEdge(t, aggs[(2*i+1)%na])
	}
	for _, a := range aggs {
		for _, x := range ints {
			g.mustEdge(a, x)
		}
	}
	return g, nil
}

// VL2Layers returns the PathDump layer map for a VL2 graph built by VL2.
func VL2Layers(nt, na, ni int, a *Assignment) map[detect.SwitchID]int {
	layers := make(map[detect.SwitchID]int, nt+na+ni)
	for u := 0; u < nt; u++ {
		layers[a.ID(u)] = 0
	}
	for u := nt; u < nt+na; u++ {
		layers[a.ID(u)] = 1
	}
	for u := nt + na; u < nt+na+ni; u++ {
		layers[a.ID(u)] = 2
	}
	return layers
}

// Ring builds the n-cycle (n ≥ 3).
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n ≥ 3, got %d", n)
	}
	g := NewGraph(fmt.Sprintf("Ring%d", n), n)
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for i := 0; i < n; i++ {
		g.mustEdge(i, (i+1)%n)
	}
	return g, nil
}

// Chain builds the n-node path graph (n ≥ 1).
func Chain(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: chain needs n ≥ 1, got %d", n)
	}
	g := NewGraph(fmt.Sprintf("Chain%d", n), n)
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for i := 0; i+1 < n; i++ {
		g.mustEdge(i, i+1)
	}
	return g, nil
}

// Torus builds the w×h wraparound grid (w, h ≥ 3), a common NoC/DC shape
// with abundant cycles.
func Torus(w, h int) (*Graph, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("topology: torus needs w,h ≥ 3, got %dx%d", w, h)
	}
	g := NewGraph(fmt.Sprintf("Torus%dx%d", w, h), w*h)
	for i := 0; i < w*h; i++ {
		g.AddNode("")
	}
	at := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.mustEdge(at(x, y), at((x+1)%w, y))
			g.mustEdge(at(x, y), at(x, (y+1)%h))
		}
	}
	return g, nil
}

// Waxman builds the classic Waxman random WAN: n nodes scattered
// uniformly on the unit square, each pair linked with probability
// alpha·exp(−d/(beta·L)) where d is Euclidean distance and L = √2 the
// maximal distance. A random spanning tree guarantees connectivity.
// Waxman graphs are the standard synthetic stand-in for ISP topologies
// and complement the diameter-matched Zoo stand-ins.
func Waxman(n int, alpha, beta float64, rng *xrand.Rand) (*Graph, error) {
	if n < 2 || alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: waxman needs n ≥ 2 and alpha, beta ∈ (0,1]; got n=%d a=%v b=%v", n, alpha, beta)
	}
	g := NewGraph(fmt.Sprintf("Waxman%d", n), n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		g.AddNode("")
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.mustEdge(perm[i], perm[rng.Intn(i)])
	}
	const maxDist = 1.4142135623730951 // √2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			d := math.Sqrt(dx*dx + dy*dy)
			if rng.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
				g.mustEdge(u, v)
			}
		}
	}
	return g, nil
}

// Jellyfish builds an n-node random r-regular graph (the Jellyfish
// data-center fabric of Singla et al.): switches wired uniformly at
// random with equal degree. Construction uses the pairing model with
// retry-and-patch: random stub matching, then local edge swaps to clear
// self-loops and duplicates. Requires n·r even, r ≥ 2, n > r.
func Jellyfish(n, r int, rng *xrand.Rand) (*Graph, error) {
	if r < 2 || n <= r || n*r%2 != 0 {
		return nil, fmt.Errorf("topology: jellyfish needs r ≥ 2, n > r, n·r even; got n=%d r=%d", n, r)
	}
	const attempts = 200
	for a := 0; a < attempts; a++ {
		g := NewGraph(fmt.Sprintf("Jellyfish%d-%d", n, r), n)
		for i := 0; i < n; i++ {
			g.AddNode("")
		}
		// Stub list: node i appears r times; pair a random matching.
		stubs := make([]int, 0, n*r)
		for i := 0; i < n; i++ {
			for j := 0; j < r; j++ {
				stubs = append(stubs, i)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.mustEdge(u, v)
		}
		if ok && g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: jellyfish sampling failed for n=%d r=%d (parameters too tight)", n, r)
}

// ErdosRenyi builds G(n, p) conditioned on connectivity: edges are drawn
// independently and a spanning tree over a random permutation is added
// first so the result is always connected.
func ErdosRenyi(n int, p float64, rng *xrand.Rand) (*Graph, error) {
	if n < 2 || p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: ER needs n ≥ 2 and p ∈ [0,1], got n=%d p=%v", n, p)
	}
	g := NewGraph(fmt.Sprintf("ER%d", n), n)
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.mustEdge(perm[i], perm[rng.Intn(i)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.mustEdge(u, v)
			}
		}
	}
	return g, nil
}
