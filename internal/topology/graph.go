// Package topology provides the network-graph substrate for the
// evaluation: an undirected multigraph-free graph model, shortest-path
// and diameter machinery, simple-cycle sampling (how loops intersecting a
// path are drawn in Table 5), deterministic generators for data-center
// fabrics (FatTree, VL2) and synthetic stand-ins for the Internet
// Topology Zoo WANs the paper uses, plus a GraphML parser so the original
// Zoo files can be loaded when available.
package topology

import (
	"fmt"
	"sort"

	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// Graph is an undirected simple graph over nodes 0..N-1. The zero value
// is an empty graph; grow it with AddNode/AddEdge or use a generator.
type Graph struct {
	// Name labels the topology in tables and logs.
	Name string

	names []string
	adj   [][]int
	edges int
}

// NewGraph returns an empty named graph with capacity hints for n nodes.
func NewGraph(name string, n int) *Graph {
	return &Graph{
		Name:  name,
		names: make([]string, 0, n),
		adj:   make([][]int, 0, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// AddNode appends a node with the given label and returns its index.
func (g *Graph) AddNode(label string) int {
	if label == "" {
		label = fmt.Sprintf("n%d", len(g.adj))
	}
	g.names = append(g.names, label)
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected: routing loops in this model come from forwarding
// state, not from the physical graph.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return fmt.Errorf("topology: edge (%d,%d) out of range, n=%d", u, v, g.N())
	}
	if u == v {
		return fmt.Errorf("topology: self-loop at node %d rejected", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return nil
}

// mustEdge is AddEdge for generators whose constructions are valid by
// design.
func (g *Graph) mustEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Label returns node u's label.
func (g *Graph) Label(u int) string { return g.names[u] }

// NodeByLabel returns the index of the node with the given label, or -1.
func (g *Graph) NodeByLabel(label string) int {
	for i, n := range g.names {
		if n == label {
			return i
		}
	}
	return -1
}

// Connected reports whether the graph is connected (vacuously true when
// empty).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// SortAdjacency orders every adjacency list ascending, making iteration
// order deterministic regardless of construction order.
func (g *Graph) SortAdjacency() {
	for _, nbrs := range g.adj {
		sort.Ints(nbrs)
	}
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d}", g.Name, g.N(), g.M())
}

// Assignment maps graph nodes to the 32-bit switch identifiers carried in
// packets. The paper's evaluation draws identifiers uniformly at random;
// uniqueness keeps the uncompressed detector exact, and 0xFFFFFFFF is
// avoided because the Unroller header reserves the all-ones pattern as
// the empty-slot marker.
type Assignment struct {
	ids  []detect.SwitchID
	node map[detect.SwitchID]int
}

// NewAssignment draws a fresh random identifier per node.
func NewAssignment(g *Graph, rng *xrand.Rand) *Assignment {
	a := &Assignment{
		ids:  make([]detect.SwitchID, g.N()),
		node: make(map[detect.SwitchID]int, g.N()),
	}
	for i := range a.ids {
		for {
			id := detect.SwitchID(rng.Uint32())
			if id == 0xFFFFFFFF {
				continue
			}
			if _, dup := a.node[id]; dup {
				continue
			}
			a.ids[i] = id
			a.node[id] = i
			break
		}
	}
	return a
}

// ID returns the identifier of node u.
func (a *Assignment) ID(u int) detect.SwitchID { return a.ids[u] }

// Node returns the node holding id, or -1.
func (a *Assignment) Node(id detect.SwitchID) int {
	if n, ok := a.node[id]; ok {
		return n
	}
	return -1
}

// IDs translates a node sequence into switch identifiers.
func (a *Assignment) IDs(nodes []int) []detect.SwitchID {
	out := make([]detect.SwitchID, len(nodes))
	for i, u := range nodes {
		out[i] = a.ids[u]
	}
	return out
}
