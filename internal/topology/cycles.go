package topology

import (
	"fmt"

	"github.com/unroller/unroller/internal/xrand"
)

// Cycle is a simple cycle given as the node sequence visited once around;
// the walk returns from the last node to the first. A length-2 cycle is a
// ping-pong loop over a single link — the shortest forwarding loop that
// can exist (two switches pointing default routes at each other).
type Cycle []int

// Len returns the number of switches in the loop (the paper's L).
func (c Cycle) Len() int { return len(c) }

// Contains reports whether node u lies on the cycle.
func (c Cycle) Contains(u int) bool {
	for _, v := range c {
		if v == u {
			return true
		}
	}
	return false
}

// Rotate returns the cycle rotated so it starts at its k'th element.
func (c Cycle) Rotate(k int) Cycle {
	out := make(Cycle, len(c))
	for i := range c {
		out[i] = c[(k+i)%len(c)]
	}
	return out
}

// Validate checks that consecutive cycle nodes (wrapping) are adjacent in
// g and that no node repeats.
func (c Cycle) Validate(g *Graph) error {
	if len(c) < 2 {
		return fmt.Errorf("topology: cycle too short: %v", c)
	}
	seen := make(map[int]bool, len(c))
	for i, u := range c {
		if seen[u] {
			return fmt.Errorf("topology: cycle repeats node %d", u)
		}
		seen[u] = true
		v := c[(i+1)%len(c)]
		if !g.HasEdge(u, v) {
			return fmt.Errorf("topology: cycle step (%d,%d) is not an edge", u, v)
		}
	}
	return nil
}

// RandomCycleThrough samples a simple cycle through node v of length at
// most maxLen, via randomised depth-first walks that try to close back on
// v. It returns nil if no cycle was found within the attempt budget
// (e.g. v is a leaf in a tree-like region and even ping-pong is excluded
// by minLen). minLen ≥ 2; a result of length 2 is the ping-pong loop over
// one of v's links.
//
// The sampler is not exactly uniform over all simple cycles (counting
// those is #P-hard); the Table 5 experiment needs a well-spread draw over
// loop lengths and memberships, which randomised walk starts provide.
func RandomCycleThrough(g *Graph, v int, minLen, maxLen int, rng *xrand.Rand) Cycle {
	if minLen < 2 {
		minLen = 2
	}
	if g.Degree(v) == 0 {
		return nil
	}
	const attempts = 64
	for a := 0; a < attempts; a++ {
		if c := randomWalkCycle(g, v, minLen, maxLen, rng); c != nil {
			return c
		}
	}
	// Fall back to the shortest option if random walks kept dead-ending.
	if minLen <= 2 {
		nbr := g.adj[v][rng.Intn(g.Degree(v))]
		return Cycle{v, nbr}
	}
	return nil
}

// randomWalkCycle performs one randomised self-avoiding walk from v,
// closing the cycle as soon as v reappears among a step's candidates and
// the length constraint is met.
func randomWalkCycle(g *Graph, v, minLen, maxLen int, rng *xrand.Rand) Cycle {
	onPath := map[int]bool{v: true}
	walk := []int{v}
	cur := v
	for len(walk) < maxLen {
		// Candidate next steps: unvisited neighbours; additionally v
		// itself once the walk is long enough to close a valid cycle.
		var cands []int
		canClose := false
		for _, w := range g.adj[cur] {
			if w == v && len(walk) >= minLen && len(walk) >= 3 {
				canClose = true
				continue
			}
			if !onPath[w] {
				cands = append(cands, w)
			}
		}
		// Prefer closing with probability growing in walk length, so
		// short and long cycles both get sampled.
		if canClose && (len(cands) == 0 || rng.Float64() < 0.4) {
			return Cycle(walk)
		}
		if len(cands) == 0 {
			// Dead end. A 2-cycle (ping-pong) is still closable
			// from the first step.
			if len(walk) == 2 && minLen <= 2 {
				return Cycle(walk)
			}
			return nil
		}
		next := cands[rng.Intn(len(cands))]
		onPath[next] = true
		walk = append(walk, next)
		cur = next
		if len(walk) == 2 && minLen <= 2 && rng.Float64() < 0.15 {
			// Occasionally emit the ping-pong loop over the first
			// link, so L=2 loops appear in the mix.
			return Cycle(walk)
		}
	}
	return nil
}

// RandomLoopOnPath picks a uniform random node of path and samples a
// cycle through it. It returns the index on the path where the loop
// attaches (the paper's B is that index) and the cycle, or an error if
// the budgeted sampling found no cycle anywhere on the path.
func RandomLoopOnPath(g *Graph, path []int, maxLen int, rng *xrand.Rand) (attach int, c Cycle, err error) {
	if len(path) == 0 {
		return 0, nil, fmt.Errorf("topology: empty path")
	}
	// Try path positions in random order until one yields a cycle.
	for _, idx := range rng.Perm(len(path)) {
		if c := RandomCycleThrough(g, path[idx], 2, maxLen, rng); c != nil {
			// Rotate the cycle to start at the attachment node so
			// walk construction is straightforward.
			for k, u := range c {
				if u == path[idx] {
					return idx, c.Rotate(k), nil
				}
			}
		}
	}
	return 0, nil, fmt.Errorf("topology: %s: no cycle found intersecting path", g.Name)
}
