package topology

import "fmt"

// This file provides the built-in stand-ins for the Internet Topology Zoo
// WANs used in Table 5 of the paper. The original GraphML files are not
// redistributed here; Synthetic builds deterministic graphs that match the
// exact node count and diameter the paper reports for each topology —
// the two properties that govern the experiment (they set the
// distribution of path lengths B and available loop lengths L). Real Zoo
// files can be loaded with LoadGraphML instead and flow through the same
// experiment code.

// ZooSpec describes one Table 5 topology.
type ZooSpec struct {
	// Name is the topology's name as printed in the table.
	Name string
	// Nodes is the switch count reported by the paper.
	Nodes int
	// Diameter is the hop diameter reported by the paper.
	Diameter int
	// Layered reports whether PathDump applies (FatTree/VL2 only).
	Layered bool
}

// TableFiveSpecs lists the six topologies of Table 5 with the node counts
// and diameters the paper reports.
func TableFiveSpecs() []ZooSpec {
	return []ZooSpec{
		{Name: "Stanford", Nodes: 16, Diameter: 2},
		{Name: "BellSouth", Nodes: 51, Diameter: 7},
		{Name: "GEANT", Nodes: 40, Diameter: 8},
		{Name: "ATT-NA", Nodes: 25, Diameter: 5},
		{Name: "UsCarrier", Nodes: 158, Diameter: 35},
		{Name: "FatTree4", Nodes: 20, Diameter: 4, Layered: true},
	}
}

// Synthetic builds a deterministic connected graph with exactly n nodes
// and hop diameter exactly d (n ≥ d+1 ≥ 3).
//
// Construction: a backbone path v0…vd realises the diameter; the
// remaining n−d−1 nodes are attached round-robin across consecutive
// backbone pairs (v_i, v_{i+1}), each extra adjacent to both ends of its
// pair, and extras sharing a pair are chained together. Every attachment
// forms triangles and longer cycles (so forwarding loops of many lengths
// exist) without creating any backbone shortcut, and every non-backbone
// node stays within distance d of everything — both properties are
// verified by the package tests.
func Synthetic(name string, n, d int) (*Graph, error) {
	if d < 2 {
		return nil, fmt.Errorf("topology: synthetic diameter must be ≥ 2, got %d", d)
	}
	if n < d+1 {
		return nil, fmt.Errorf("topology: need ≥ %d nodes for diameter %d, got %d", d+1, d, n)
	}
	g := NewGraph(name, n)
	for i := 0; i <= d; i++ {
		g.AddNode(fmt.Sprintf("bb-%d", i))
	}
	for i := 0; i < d; i++ {
		g.mustEdge(i, i+1)
	}
	extras := n - (d + 1)
	lastAtPair := make([]int, d) // previous extra attached to pair i, for chaining
	for i := range lastAtPair {
		lastAtPair[i] = -1
	}
	for e := 0; e < extras; e++ {
		pair := e % d
		u := g.AddNode(fmt.Sprintf("ext-%d-%d", pair, e/d))
		g.mustEdge(u, pair)   // v_pair
		g.mustEdge(u, pair+1) // v_pair+1
		if prev := lastAtPair[pair]; prev >= 0 {
			g.mustEdge(u, prev)
		}
		lastAtPair[pair] = u
	}
	return g, nil
}

// ZooGraph builds the stand-in graph for a Table 5 spec. FatTree4 is
// exact by construction; the WANs use Synthetic.
func ZooGraph(spec ZooSpec) (*Graph, error) {
	if spec.Name == "FatTree4" {
		return FatTree(4)
	}
	return Synthetic(spec.Name, spec.Nodes, spec.Diameter)
}
