package topology

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d0"/>
  <key attr.name="LinkSpeed" attr.type="string" for="edge" id="d1"/>
  <graph edgedefault="undirected">
    <node id="0"><data key="d0">Vienna</data></node>
    <node id="1"><data key="d0">Prague</data></node>
    <node id="2"><data key="d0">Berlin</data></node>
    <node id="3"/>
    <edge source="0" target="1"><data key="d1">10G</data></edge>
    <edge source="1" target="2"/>
    <edge source="2" target="0"/>
    <edge source="2" target="3"/>
    <edge source="3" target="2"/>
    <edge source="3" target="3"/>
  </graph>
</graphml>`

// TestParseGraphML covers the Topology Zoo dialect: labels via data keys,
// duplicate and self edges dropped.
func TestParseGraphML(t *testing.T) {
	g, err := ParseGraphML(strings.NewReader(sampleGraphML), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() != 4 { // duplicate 3-2 and self 3-3 dropped
		t.Fatalf("m = %d, want 4", g.M())
	}
	if g.NodeByLabel("Vienna") == -1 || g.NodeByLabel("Prague") == -1 {
		t.Fatal("labels lost")
	}
	if g.NodeByLabel("3") == -1 {
		t.Fatal("unlabelled node should fall back to its id")
	}
	if !g.Connected() || g.Diameter() != 2 {
		t.Fatalf("shape wrong: connected=%v diam=%d", g.Connected(), g.Diameter())
	}
}

// TestParseGraphMLErrors.
func TestParseGraphMLErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":     "garbage",
		"no graph":    `<graphml></graphml>`,
		"dup node":    `<graphml><graph><node id="a"/><node id="a"/></graph></graphml>`,
		"unknown src": `<graphml><graph><node id="a"/><edge source="zz" target="a"/></graph></graphml>`,
		"unknown dst": `<graphml><graph><node id="a"/><edge source="a" target="zz"/></graph></graphml>`,
	}
	for name, doc := range cases {
		if _, err := ParseGraphML(strings.NewReader(doc), name); err == nil {
			t.Errorf("%s: parse accepted", name)
		}
	}
}

// TestLoadGraphML exercises the file path, including naming from the
// base name.
func TestLoadGraphML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "Geant2012.graphml")
	if err := os.WriteFile(path, []byte(sampleGraphML), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraphML(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "Geant2012" {
		t.Fatalf("name %q", g.Name)
	}
	if _, err := LoadGraphML(filepath.Join(dir, "missing.graphml")); err == nil {
		t.Fatal("missing file accepted")
	}
}
