package topology_test

import (
	"fmt"

	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// ExampleFatTree builds the paper's FatTree4 evaluation fabric.
func ExampleFatTree() {
	g, _ := topology.FatTree(4)
	fmt.Printf("%s: %d switches, %d links, diameter %d\n", g.Name, g.N(), g.M(), g.Diameter())
	// Output:
	// FatTree4: 20 switches, 32 links, diameter 4
}

// ExampleSynthetic builds a Table 5 WAN stand-in: exact node count and
// diameter, guaranteed loop-rich.
func ExampleSynthetic() {
	g, _ := topology.Synthetic("GEANT", 40, 8)
	fmt.Printf("%s: n=%d diameter=%d connected=%v\n", g.Name, g.N(), g.Diameter(), g.Connected())
	// Output:
	// GEANT: n=40 diameter=8 connected=true
}

// ExampleRandomCycleThrough samples a forwarding-loop candidate through
// a given switch.
func ExampleRandomCycleThrough() {
	g, _ := topology.Torus(4, 4)
	c := topology.RandomCycleThrough(g, 5, 2, 8, xrand.New(1))
	fmt.Printf("loop through 5: length %d, valid %v, anchored %v\n",
		c.Len(), c.Validate(g) == nil, c.Contains(5))
	// Output:
	// loop through 5: length 2, valid true, anchored true
}
