package topology

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
)

// This file parses the GraphML dialect used by the Internet Topology Zoo
// (http://topology-zoo.org), whose files drive Table 5 of the paper. Only
// the structural subset is consumed: node ids with optional label data
// keys, and edges. Directed graphs are flattened to undirected, matching
// how the paper treats physical WAN links; duplicate links and self-loops
// in the data are dropped.

type xmlGraphML struct {
	XMLName xml.Name   `xml:"graphml"`
	Keys    []xmlKey   `xml:"key"`
	Graphs  []xmlGraph `xml:"graph"`
}

type xmlKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
}

type xmlGraph struct {
	EdgeDefault string    `xml:"edgedefault,attr"`
	Nodes       []xmlNode `xml:"node"`
	Edges       []xmlEdge `xml:"edge"`
}

type xmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []xmlData `xml:"data"`
}

type xmlEdge struct {
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

type xmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// ParseGraphML reads one GraphML document and returns its first graph.
// Node labels come from the data key named "label" when present (the Zoo
// convention), otherwise the node id.
func ParseGraphML(r io.Reader, name string) (*Graph, error) {
	var doc xmlGraphML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topology: parsing graphml: %w", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("topology: graphml document has no <graph>")
	}
	labelKey := ""
	for _, k := range doc.Keys {
		if k.For == "node" && k.AttrName == "label" {
			labelKey = k.ID
			break
		}
	}
	src := doc.Graphs[0]
	g := NewGraph(name, len(src.Nodes))
	index := make(map[string]int, len(src.Nodes))
	for _, n := range src.Nodes {
		if _, dup := index[n.ID]; dup {
			return nil, fmt.Errorf("topology: graphml repeats node id %q", n.ID)
		}
		label := n.ID
		for _, d := range n.Data {
			if d.Key == labelKey && d.Value != "" {
				label = d.Value
			}
		}
		index[n.ID] = g.AddNode(label)
	}
	for _, e := range src.Edges {
		u, ok := index[e.Source]
		if !ok {
			return nil, fmt.Errorf("topology: graphml edge references unknown node %q", e.Source)
		}
		v, ok := index[e.Target]
		if !ok {
			return nil, fmt.Errorf("topology: graphml edge references unknown node %q", e.Target)
		}
		if u == v || g.HasEdge(u, v) {
			continue // Zoo files carry the odd duplicate/self link
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// LoadGraphML parses the GraphML file at path; the graph is named after
// the file.
func LoadGraphML(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	return ParseGraphML(f, trimExt(pathBase(path)))
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func trimExt(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '.' {
			return p[:i]
		}
	}
	return p
}
