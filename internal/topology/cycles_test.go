package topology

import (
	"testing"

	"github.com/unroller/unroller/internal/xrand"
)

// TestCycleValidate covers the validator.
func TestCycleValidate(t *testing.T) {
	g, _ := Ring(5)
	good := Cycle{0, 1, 2, 3, 4}
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid cycle rejected: %v", err)
	}
	if err := (Cycle{0, 2, 4}).Validate(g); err == nil {
		t.Fatal("non-adjacent cycle accepted")
	}
	if err := (Cycle{0}).Validate(g); err == nil {
		t.Fatal("length-1 cycle accepted")
	}
	if err := (Cycle{0, 1, 0, 1}).Validate(g); err == nil {
		t.Fatal("repeating cycle accepted")
	}
	// Ping-pong over an edge is a valid length-2 loop.
	if err := (Cycle{0, 1}).Validate(g); err != nil {
		t.Fatalf("ping-pong rejected: %v", err)
	}
}

// TestCycleHelpers.
func TestCycleHelpers(t *testing.T) {
	c := Cycle{3, 5, 7}
	if c.Len() != 3 || !c.Contains(5) || c.Contains(9) {
		t.Fatal("helpers wrong")
	}
	r := c.Rotate(1)
	if r[0] != 5 || r[1] != 7 || r[2] != 3 {
		t.Fatalf("rotate: %v", r)
	}
	if c[0] != 3 {
		t.Fatal("rotate mutated the original")
	}
}

// TestRandomCycleThroughValid: every sampled cycle passes validation,
// goes through the requested node, and respects the length cap.
func TestRandomCycleThroughValid(t *testing.T) {
	rng := xrand.New(10)
	graphs := []*Graph{}
	if g, err := Torus(4, 4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := FatTree(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := Synthetic("z", 40, 8); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		lengths := map[int]int{}
		for trial := 0; trial < 300; trial++ {
			v := rng.Intn(g.N())
			c := RandomCycleThrough(g, v, 2, 10, rng)
			if c == nil {
				continue
			}
			if len(c) > 10 {
				t.Fatalf("%s: cycle too long: %v", g.Name, c)
			}
			if !c.Contains(v) {
				t.Fatalf("%s: cycle misses anchor %d: %v", g.Name, v, c)
			}
			if len(c) > 2 {
				if err := c.Validate(g); err != nil {
					t.Fatalf("%s: %v", g.Name, err)
				}
			} else if !g.HasEdge(c[0], c[1]) {
				t.Fatalf("%s: ping-pong over non-edge %v", g.Name, c)
			}
			lengths[len(c)]++
		}
		if len(lengths) < 2 {
			t.Errorf("%s: cycle sampler produced only lengths %v", g.Name, lengths)
		}
	}
}

// TestRandomCycleThroughLeaf: a leaf in a tree has only the ping-pong
// loop; with minLen 3 nothing is found.
func TestRandomCycleThroughLeaf(t *testing.T) {
	g, _ := Chain(5)
	rng := xrand.New(11)
	c := RandomCycleThrough(g, 0, 2, 10, rng)
	if c == nil || c.Len() != 2 {
		t.Fatalf("leaf should yield a ping-pong, got %v", c)
	}
	if c := RandomCycleThrough(g, 0, 3, 10, rng); c != nil {
		t.Fatalf("chain admits no simple cycle ≥ 3, got %v", c)
	}
	// Isolated node: no loop at all.
	iso := NewGraph("iso", 1)
	iso.AddNode("")
	if c := RandomCycleThrough(iso, 0, 2, 10, rng); c != nil {
		t.Fatalf("isolated node yielded %v", c)
	}
}

// TestRandomLoopOnPath: attach index on the path, cycle rotated to start
// at the attachment.
func TestRandomLoopOnPath(t *testing.T) {
	g, _ := Torus(5, 5)
	rng := xrand.New(12)
	path, err := g.ShortestPath(0, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		attach, c, err := RandomLoopOnPath(g, path, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		if attach < 0 || attach >= len(path) {
			t.Fatalf("attach %d outside path", attach)
		}
		if c[0] != path[attach] {
			t.Fatalf("cycle %v does not start at path[%d]=%d", c, attach, path[attach])
		}
	}
	if _, _, err := RandomLoopOnPath(g, nil, 12, rng); err == nil {
		t.Fatal("empty path accepted")
	}
}
