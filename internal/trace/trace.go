// Package trace implements offline packet-trace recording and analysis —
// the classical way routing loops were found before in-band detection
// (Hengartner et al., the paper's [14]: "Detection and Analysis of
// Routing Loops in Packet Traces"). Switch-observation records are
// written to a compact binary format; an offline analyzer then scans for
// packets that visited the same switch twice.
//
// The point of carrying this substrate in the repository is the
// comparison it enables: the offline pipeline needs every observation
// shipped to a collector and only answers after the fact, while
// Unroller's answer is available at the looping switch while the packet
// is still alive. The emulator can produce both from the same run (hook
// a Recorder into dataplane.Network.OnHop), and the tests check that the
// two agree on which flows looped.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/unroller/unroller/internal/detect"
)

// Record is one switch observation: packet pkt of flow was seen at
// switch sw (topology node) at the seq'th observation overall.
type Record struct {
	// Seq is the global observation sequence number (collector arrival
	// order).
	Seq uint64
	// Node is the observing topology node.
	Node uint32
	// Switch is the observing switch's identifier.
	Switch detect.SwitchID
	// Flow identifies the flow.
	Flow uint32
	// Packet identifies the packet within the flow.
	Packet uint64
}

const (
	magic      = "UTRC"
	version    = 1
	recordSize = 8 + 4 + 4 + 4 + 8
)

// ErrBadHeader is returned when a trace file does not start with the
// expected magic and version.
var ErrBadHeader = errors.New("trace: bad header")

// Writer streams records to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	seq     uint64
	started bool
}

// NewWriter returns a trace writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Append writes one observation, assigning the next sequence number,
// and returns it.
func (t *Writer) Append(node int, sw detect.SwitchID, flow uint32, packet uint64) (uint64, error) {
	if !t.started {
		if _, err := t.w.WriteString(magic); err != nil {
			return 0, err
		}
		if err := t.w.WriteByte(version); err != nil {
			return 0, err
		}
		t.started = true
	}
	var buf [recordSize]byte
	binary.BigEndian.PutUint64(buf[0:], t.seq)
	binary.BigEndian.PutUint32(buf[8:], uint32(node))
	binary.BigEndian.PutUint32(buf[12:], uint32(sw))
	binary.BigEndian.PutUint32(buf[16:], flow)
	binary.BigEndian.PutUint64(buf[20:], packet)
	if _, err := t.w.Write(buf[:]); err != nil {
		return 0, err
	}
	seq := t.seq
	t.seq++
	return seq, nil
}

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if !t.started {
		// An empty trace still carries a valid header.
		if _, err := t.w.WriteString(magic); err != nil {
			return err
		}
		if err := t.w.WriteByte(version); err != nil {
			return err
		}
		t.started = true
	}
	return t.w.Flush()
}

// Count returns the number of records appended.
func (t *Writer) Count() uint64 { return t.seq }

// Reader streams records back from an io.Reader.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader returns a trace reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next record, or io.EOF at the end of the trace.
func (t *Reader) Next() (Record, error) {
	if !t.header {
		var hdr [5]byte
		if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
			return Record{}, fmt.Errorf("%w: %v", ErrBadHeader, err)
		}
		if string(hdr[:4]) != magic || hdr[4] != version {
			return Record{}, fmt.Errorf("%w: magic %q version %d", ErrBadHeader, hdr[:4], hdr[4])
		}
		t.header = true
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	return Record{
		Seq:    binary.BigEndian.Uint64(buf[0:]),
		Node:   binary.BigEndian.Uint32(buf[8:]),
		Switch: detect.SwitchID(binary.BigEndian.Uint32(buf[12:])),
		Flow:   binary.BigEndian.Uint32(buf[16:]),
		Packet: binary.BigEndian.Uint64(buf[20:]),
	}, nil
}

// ReadAll drains the trace into memory.
func (t *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := t.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
