package trace

import (
	"fmt"
	"sort"

	"github.com/unroller/unroller/internal/detect"
)

// Finding is one loop detected by offline analysis: a packet observed at
// the same switch twice, with the loop membership between the two
// observations.
type Finding struct {
	// Flow and Packet identify the trapped packet.
	Flow   uint32
	Packet uint64
	// Reporter is the switch observed twice.
	Reporter detect.SwitchID
	// FirstSeq and SecondSeq are the two observations' sequence
	// numbers.
	FirstSeq, SecondSeq uint64
	// Members lists the distinct switches visited between the repeat
	// (inclusive) — the loop's membership, in first-visit order.
	Members []detect.SwitchID
	// HopsObserved is the packet's total observation count up to
	// detection — what a collector must ingest before it can answer.
	HopsObserved int
}

// Analyze scans records (any order; they are re-sorted by sequence) and
// returns one finding per trapped packet: the first repeat visit, as a
// real-time detector would have flagged it. Records after a packet's
// first repeat do not produce further findings for that packet.
func Analyze(records []Record) []Finding {
	sorted := append([]Record(nil), records...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	type pktKey struct {
		flow uint32
		pkt  uint64
	}
	type pktState struct {
		firstSeen map[detect.SwitchID]uint64
		order     []detect.SwitchID
		hops      int
		done      bool
	}
	states := make(map[pktKey]*pktState)
	var findings []Finding
	for _, rec := range sorted {
		k := pktKey{rec.Flow, rec.Packet}
		st, ok := states[k]
		if !ok {
			st = &pktState{firstSeen: make(map[detect.SwitchID]uint64, 8)}
			states[k] = st
		}
		if st.done {
			continue
		}
		st.hops++
		if first, seen := st.firstSeen[rec.Switch]; seen {
			// Loop closed: members are the switches from the first
			// occurrence of the reporter onwards.
			var members []detect.SwitchID
			started := false
			for _, sw := range st.order {
				if sw == rec.Switch {
					started = true
				}
				if started {
					members = append(members, sw)
				}
			}
			findings = append(findings, Finding{
				Flow:         rec.Flow,
				Packet:       rec.Packet,
				Reporter:     rec.Switch,
				FirstSeq:     first,
				SecondSeq:    rec.Seq,
				Members:      members,
				HopsObserved: st.hops,
			})
			st.done = true
			continue
		}
		st.firstSeen[rec.Switch] = rec.Seq
		st.order = append(st.order, rec.Switch)
	}
	return findings
}

// Summary aggregates findings per flow for reporting.
type Summary struct {
	// Flows maps flow → number of trapped packets.
	Flows map[uint32]int
	// Records is the total observation count analysed.
	Records int
	// Findings is the total number of trapped packets.
	Findings int
}

// Summarize builds the per-flow roll-up.
func Summarize(records []Record, findings []Finding) Summary {
	s := Summary{Flows: make(map[uint32]int), Records: len(records), Findings: len(findings)}
	for _, f := range findings {
		s.Flows[f.Flow]++
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("trace: %d records, %d trapped packets across %d flows",
		s.Records, s.Findings, len(s.Flows))
}
