package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// TestWriterReaderRoundTrip: records survive the binary format exactly.
func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []struct {
		node int
		sw   detect.SwitchID
		flow uint32
		pkt  uint64
	}{
		{0, 0xAABB, 1, 0},
		{7, 0x1, 1, 1},
		{255, 0xFFFFFFFE, 9, 1 << 40},
	}
	for i, rec := range want {
		seq, err := w.Append(rec.node, rec.sw, rec.flow, rec.pkt)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq %d, want %d", seq, i)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i, rec := range got {
		if rec.Seq != uint64(i) || int(rec.Node) != want[i].node ||
			rec.Switch != want[i].sw || rec.Flow != want[i].flow || rec.Packet != want[i].pkt {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
}

// TestEmptyTrace: header-only files parse to zero records.
func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("%v, %d records", err, len(recs))
	}
}

// TestBadHeaderAndTruncation.
func TestBadHeaderAndTruncation(t *testing.T) {
	if _, err := NewReader(strings.NewReader("JUNKJUNKJUNK")).Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("")).Next(); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Valid header, torn record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(1, 2, 3, 4)
	w.Flush()
	torn := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(torn))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("torn record: err = %v", err)
	}
}

// TestAnalyzeFindsLoops: hand-built observation streams.
func TestAnalyzeFindsLoops(t *testing.T) {
	// Packet 1 of flow 7: path a b c d b — loop {b, c, d}.
	recs := []Record{
		{Seq: 0, Switch: 0xA, Flow: 7, Packet: 1},
		{Seq: 1, Switch: 0xB, Flow: 7, Packet: 1},
		{Seq: 2, Switch: 0xC, Flow: 7, Packet: 1},
		{Seq: 3, Switch: 0xD, Flow: 7, Packet: 1},
		{Seq: 4, Switch: 0xB, Flow: 7, Packet: 1},
		// Packet 2 of flow 7: clean path.
		{Seq: 5, Switch: 0xA, Flow: 7, Packet: 2},
		{Seq: 6, Switch: 0xB, Flow: 7, Packet: 2},
	}
	findings := Analyze(recs)
	if len(findings) != 1 {
		t.Fatalf("%d findings", len(findings))
	}
	f := findings[0]
	if f.Reporter != 0xB || f.FirstSeq != 1 || f.SecondSeq != 4 || f.HopsObserved != 5 {
		t.Fatalf("finding %+v", f)
	}
	if len(f.Members) != 3 || f.Members[0] != 0xB || f.Members[1] != 0xC || f.Members[2] != 0xD {
		t.Fatalf("members %v", f.Members)
	}
	sum := Summarize(recs, findings)
	if sum.Findings != 1 || sum.Flows[7] != 1 || sum.Records != 7 {
		t.Fatalf("summary %+v", sum)
	}
	if !strings.Contains(sum.String(), "1 trapped") {
		t.Fatalf("summary string %q", sum.String())
	}
}

// TestAnalyzeOrderIndependent: shuffled input yields the same findings.
func TestAnalyzeOrderIndependent(t *testing.T) {
	recs := []Record{
		{Seq: 0, Switch: 1, Flow: 1, Packet: 1},
		{Seq: 1, Switch: 2, Flow: 1, Packet: 1},
		{Seq: 2, Switch: 1, Flow: 1, Packet: 1},
	}
	shuffled := []Record{recs[2], recs[0], recs[1]}
	a, b := Analyze(recs), Analyze(shuffled)
	if len(a) != 1 || len(b) != 1 || a[0].Reporter != b[0].Reporter ||
		a[0].FirstSeq != b[0].FirstSeq || a[0].SecondSeq != b[0].SecondSeq {
		t.Fatalf("order dependence: %+v vs %+v", a, b)
	}
}

// TestOfflineMatchesInBand: record an emulated loop run through the
// OnHop tap and verify the offline analyzer names the same reporter at
// the same hop as the in-band Unroller report — while having had to
// collect every observation to do it.
func TestOfflineMatchesInBand(t *testing.T) {
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign := topology.NewAssignment(g, xrand.New(9))
	net, err := dataplane.NewNetwork(g, assign, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.SetLoopPolicy(dataplane.ActionDrop)
	dst := 15
	if err := net.InstallShortestPaths(dst); err != nil {
		t.Fatal(err)
	}
	if err := net.InjectLoop(dst, topology.Cycle{5, 6, 10, 9}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	pktID := uint64(1)
	net.OnHop = func(node int, sw detect.SwitchID, p *dataplane.Packet) {
		if _, err := w.Append(node, sw, p.Flow, pktID); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := net.Send(5, dst, 42, 255, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Report == nil {
		t.Fatal("in-band detection missing")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze(recs)
	if len(findings) != 1 {
		t.Fatalf("%d offline findings", len(findings))
	}
	f := findings[0]
	// The offline analyzer flags the first revisited switch; Unroller
	// flags the loop's minimum-ID switch. Both must be members of the
	// same loop: the in-band reporter appears in the offline finding's
	// membership.
	inBandSeen := false
	for _, sw := range f.Members {
		if sw == tr.Report.Reporter {
			inBandSeen = true
			break
		}
	}
	if !inBandSeen {
		t.Fatalf("in-band reporter %v not in offline membership %v", tr.Report.Reporter, f.Members)
	}
	// The offline analyzer sees the repeat at X+1 observations; the
	// in-band detector pays the Unroller delay but needed no
	// collection. Both facts are part of the paper's trade-off table.
	if f.HopsObserved > tr.Report.Hops {
		t.Fatalf("offline needed %d observations, more than in-band's %d hops", f.HopsObserved, tr.Report.Hops)
	}
	if len(recs) != tr.Report.Hops {
		t.Fatalf("collector ingested %d records for a %d-hop packet", len(recs), tr.Report.Hops)
	}
}
