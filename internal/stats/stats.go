// Package stats provides the summary statistics used by the evaluation
// harness: streaming mean/variance, percentiles, confidence intervals, rate
// estimators for rare events (false positives), and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations with O(1) memory using
// Welford's online algorithm. The zero value is an empty summary.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds other into s. It is used to combine per-worker summaries.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// StderrMean returns the standard error of the mean.
func (s *Summary) StderrMean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StderrMean() }

// String formats the summary for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]", s.n, s.mean, s.CI95(), s.min, s.max)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified. It panics on an
// empty slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RateEstimator tracks the empirical rate of a rare event (e.g. a false
// positive per run) together with a confidence bound.
type RateEstimator struct {
	events uint64
	trials uint64
}

// Record adds one trial with the given outcome.
func (r *RateEstimator) Record(event bool) {
	r.trials++
	if event {
		r.events++
	}
}

// Add merges counts directly.
func (r *RateEstimator) Add(events, trials uint64) {
	r.events += events
	r.trials += trials
}

// Events returns the number of positive trials.
func (r *RateEstimator) Events() uint64 { return r.events }

// Trials returns the total trial count.
func (r *RateEstimator) Trials() uint64 { return r.trials }

// Rate returns the empirical event rate, or 0 with no trials.
func (r *RateEstimator) Rate() float64 {
	if r.trials == 0 {
		return 0
	}
	return float64(r.events) / float64(r.trials)
}

// UpperBound95 returns an upper 95% confidence bound on the true rate.
// With zero observed events it uses the rule of three (3/n), which is the
// right tool for "no false positives were reported" claims.
func (r *RateEstimator) UpperBound95() float64 {
	if r.trials == 0 {
		return 1
	}
	if r.events == 0 {
		return 3 / float64(r.trials)
	}
	p := r.Rate()
	return p + 1.96*math.Sqrt(p*(1-p)/float64(r.trials))
}

// Histogram counts observations into fixed-width buckets over [lo, hi).
// Observations outside the range are clamped into the first or last bucket
// and counted in Under/Over as well.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	Under   uint64
	Over    uint64
	width   float64
}

// NewHistogram returns a histogram with n buckets spanning [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / h.width)
	switch {
	case x < h.Lo:
		h.Under++
		idx = 0
	case idx >= len(h.Buckets):
		h.Over++
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Mode returns the midpoint of the fullest bucket.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, b := range h.Buckets {
		if b > h.Buckets[best] {
			best = i
		}
	}
	return h.Lo + (float64(best)+0.5)*h.width
}
