package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/unroller/unroller/internal/xrand"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestSummaryKnown checks mean/variance against hand-computed values.
func TestSummaryKnown(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want 32/7", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

// TestSummaryEmptyAndSingle cover degenerate sizes.
func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should be zeroes")
	}
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single observation")
	}
}

// TestSummaryMergeEquivalence: merging partials must equal one big
// summary, the property the parallel Monte Carlo engine relies on.
func TestSummaryMergeEquivalence(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		rng := xrand.New(seed)
		n := 500
		k := int(split)%n + 1
		var whole, a, b Summary
		for i := 0; i < n; i++ {
			x := rng.Float64()*100 - 50
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.Variance(), whole.Variance(), 1e-7) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMergeEmpty edge cases.
func TestMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var c Summary
	c.Merge(a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

// TestPercentile known values and interpolation.
func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {90, 46},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Error("single-element percentile")
	}
	// Input must not be mutated.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
	for _, bad := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("P%v should panic", bad)
				}
			}()
			Percentile(xs, bad)
		}()
	}
}

// TestRateEstimator counting and bounds.
func TestRateEstimator(t *testing.T) {
	var r RateEstimator
	if r.UpperBound95() != 1 {
		t.Error("no trials: bound must be vacuous")
	}
	for i := 0; i < 1000; i++ {
		r.Record(i%100 == 0)
	}
	if r.Trials() != 1000 || r.Events() != 10 {
		t.Fatalf("counts %d/%d", r.Events(), r.Trials())
	}
	if !almost(r.Rate(), 0.01, 1e-12) {
		t.Fatalf("rate %v", r.Rate())
	}
	if ub := r.UpperBound95(); ub <= r.Rate() || ub > 0.02 {
		t.Fatalf("upper bound %v", ub)
	}
	// Rule of three for zero events.
	var z RateEstimator
	z.Add(0, 3_000_000)
	if !almost(z.UpperBound95(), 1e-6, 1e-9) {
		t.Fatalf("rule of three: %v", z.UpperBound95())
	}
}

// TestHistogram bucketing, clamping, and mode.
func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over %d/%d", h.Under, h.Over)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	// Buckets: [0,2):0,1.9,-3 → 3; [2,4):2 → 1; [4,6):5.5 → 1;
	// [6,8): 0; [8,10): 9.99, 42 → 2.
	want := []uint64{3, 1, 1, 0, 2}
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Buckets[i], w, h.Buckets)
		}
	}
	if h.Mode() != 1 { // midpoint of [0,2)
		t.Fatalf("mode %v", h.Mode())
	}
	for _, bad := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram should panic")
				}
			}()
			bad()
		}()
	}
}

// TestCI95ShrinksWithN: more data, tighter interval.
func TestCI95ShrinksWithN(t *testing.T) {
	rng := xrand.New(77)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}
