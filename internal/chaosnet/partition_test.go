package chaosnet

import (
	"net"
	"testing"
	"time"
)

// echoListener accepts connections and echoes bytes back until closed.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

func TestNetBlockedDialFailsFast(t *testing.T) {
	ln := echoListener(t)
	addr := ln.Addr().String()
	gate := NewNet()
	dial := gate.Dialer("a", nil)

	gate.Block("a", addr)
	start := time.Now()
	if _, err := dial(addr); err == nil {
		t.Fatal("dial into a blocked edge succeeded")
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("blocked dial error = %v, want a timeout net.Error", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("blocked dial took %v, want fast failure", d)
	}

	// The rule is directional: another endpoint dialing the same address
	// is unaffected.
	conn, err := gate.Dialer("b", nil)(addr)
	if err != nil {
		t.Fatalf("unrelated endpoint blocked too: %v", err)
	}
	conn.Close()

	gate.Heal("a", addr)
	conn, err = dial(addr)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

// A partition landing mid-connection parks established traffic and
// releases it on heal, rather than surfacing a connection error.
func TestNetGatesEstablishedConn(t *testing.T) {
	ln := echoListener(t)
	addr := ln.Addr().String()
	gate := NewNet()
	conn, err := gate.Dialer("a", nil)(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write before block: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read before block: %v", err)
	}

	gate.Block("a", addr)
	released := make(chan error, 1)
	go func() {
		_, err := conn.Write([]byte("y"))
		released <- err
	}()
	select {
	case err := <-released:
		t.Fatalf("write completed through a blocked edge (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	gate.Heal("a", addr)
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked write never released after heal")
	}
	if _, err := conn.Read(buf); err != nil || buf[0] != 'y' {
		t.Fatalf("read after heal = (%q, %v), want y", buf[0], err)
	}
}

// A parked operation must still honour its deadline — otherwise every
// timeout-driven retry loop above the gate would hang for the duration
// of the partition.
func TestNetParkedOpHonoursDeadline(t *testing.T) {
	ln := echoListener(t)
	addr := ln.Addr().String()
	gate := NewNet()
	conn, err := gate.Dialer("a", nil)(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	gate.Block("a", addr)
	defer gate.Heal("a", addr)
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("parked read returned data through a blocked edge")
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("parked read error = %v, want timeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline honoured after %v, want ~50ms", d)
	}

	// Close must release a parked operation too.
	conn2, err := gate.Dialer("a", nil)(addr)
	if err == nil {
		t.Fatal("dial succeeded while edge blocked")
	}
	_ = conn2
	gate.Heal("a", addr)
	conn2, err = gate.Dialer("a", nil)(addr)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	gate.Block("a", addr)
	parked := make(chan error, 1)
	go func() {
		_, err := conn2.Read(make([]byte, 1))
		parked <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn2.Close()
	select {
	case err := <-parked:
		if err != net.ErrClosed {
			t.Fatalf("parked read after Close = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the parked read")
	}
}
