// Package chaosnet is a seeded fault-injection wrapper around net.Conn
// and net.Listener: the transport-level counterpart of the churn
// harness's in-network fault plans (internal/dataplane FaultPlan). The
// collector pipeline promises exact accounting across "TCP, partial
// writes, connection kills, slow consumers" (DESIGN §8) — chaosnet makes
// every one of those failure modes injectable on purpose, with a seed,
// instead of hoping a loopback test happens to hit them.
//
// Fault model (per I/O operation, decided by a seeded generator):
//
//   - latency: sleep a bounded, seeded duration before the operation;
//   - chunked writes: deliver a write as several small underlying writes
//     (the TCP partial-write behaviour bufio hides), exercising the
//     peer's frame reassembly;
//   - mid-frame reset: deliver a strict prefix of a write, then close
//     the underlying connection and fail the operation — tearing
//     whatever frame was in flight;
//   - corruption: flip one byte of a write before it reaches the wire;
//   - half-open blackhole: the connection stays up but the peer stops
//     participating — reads and writes block until the deadline set via
//     SetReadDeadline/SetWriteDeadline expires (or Close), which is
//     exactly the failure that unarmed deadlines turn into a goroutine
//     leak.
//
// Determinism: every Conn carries two generators (one per direction),
// derived from (Chaos seed, connection index). A fault schedule is
// therefore a pure function of the seed and that direction's operation
// sequence — concurrent readers and writers cannot perturb each other's
// schedules, and a seeded test replays the same faults every run.
package chaosnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unroller/unroller/internal/xhash"
	"github.com/unroller/unroller/internal/xrand"
)

// Config tunes the fault mix. Probabilities are in parts per 65536 per
// operation (0 = never, 65536 = every operation); the zero value injects
// nothing and passes every call through.
type Config struct {
	// Seed derives every per-connection generator. Two Chaos instances
	// with the same seed and config produce identical fault schedules
	// for identical operation sequences.
	Seed uint64
	// LatencyProb delays an operation by a seeded duration drawn from
	// [LatencyMin, LatencyMax].
	LatencyProb            uint32
	LatencyMin, LatencyMax time.Duration
	// ChunkProb splits a write into several underlying writes (TCP
	// partial-write fragmentation). The full buffer is still delivered.
	ChunkProb uint32
	// ResetProb tears the connection mid-operation: a strict prefix of
	// the buffer is delivered, the underlying connection is closed, and
	// the operation fails.
	ResetProb uint32
	// CorruptProb flips one byte of a written buffer.
	CorruptProb uint32
	// BlackholeProb turns the connection half-open before an operation:
	// from then on reads and writes block until their deadline (or
	// Close). Writes already half-done are unaffected.
	BlackholeProb uint32
	// FaultFreeOps exempts the first N operations in each direction, so
	// a session can always get past its handshake before chaos begins.
	FaultFreeOps int
}

// Stats counts injected faults across every connection of one Chaos.
type Stats struct {
	Conns       uint64 `json:"conns"`
	Delays      uint64 `json:"delays"`
	Chunks      uint64 `json:"chunks"`
	Resets      uint64 `json:"resets"`
	Corruptions uint64 `json:"corruptions"`
	Blackholes  uint64 `json:"blackholes"`
}

// Chaos derives deterministic per-connection fault injectors. Safe for
// concurrent use.
type Chaos struct {
	cfg   Config
	conns atomic.Uint64

	delays      atomic.Uint64
	chunks      atomic.Uint64
	resets      atomic.Uint64
	corruptions atomic.Uint64
	blackholes  atomic.Uint64
}

// New returns a Chaos injecting cfg's fault mix.
func New(cfg Config) *Chaos { return &Chaos{cfg: cfg} }

// Stats snapshots the injected-fault counters.
func (c *Chaos) Stats() Stats {
	return Stats{
		Conns:       c.conns.Load(),
		Delays:      c.delays.Load(),
		Chunks:      c.chunks.Load(),
		Resets:      c.resets.Load(),
		Corruptions: c.corruptions.Load(),
		Blackholes:  c.blackholes.Load(),
	}
}

// Wrap wraps conn with the next connection index's fault schedule.
func (c *Chaos) Wrap(conn net.Conn) *Conn {
	idx := c.conns.Add(1)
	return &Conn{
		Conn:  conn,
		chaos: c,
		rd:    faultState{rng: xrand.New(xhash.Mix64(c.cfg.Seed ^ 2*idx))},
		wr:    faultState{rng: xrand.New(xhash.Mix64(c.cfg.Seed ^ (2*idx + 1)))},
	}
}

// Dialer wraps dial so every connection it returns carries a chaos
// schedule. Plugs straight into collectorsvc's ClientConfig.Dial hook.
func (c *Chaos) Dialer(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return c.Wrap(conn), nil
	}
}

// Listener wraps ln so every accepted connection carries a chaos
// schedule (server-side injection).
func (c *Chaos) Listener(ln net.Listener) net.Listener { return &listener{Listener: ln, chaos: c} }

type listener struct {
	net.Listener
	chaos *Chaos
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.chaos.Wrap(conn), nil
}

// faultState is one direction's seeded schedule. Guarded by mu so a
// stray concurrent call cannot corrupt the generator, but the schedule
// itself depends only on this direction's operation count.
type faultState struct {
	mu  sync.Mutex
	rng *xrand.Rand
	ops int
}

// Conn is a fault-injecting net.Conn. Reads and writes consult their
// direction's schedule; deadlines are honoured even while blackholed.
type Conn struct {
	net.Conn
	chaos *Chaos
	rd    faultState
	wr    faultState

	mu            sync.Mutex
	blackholed    bool
	closed        chan struct{}
	closeOnce     sync.Once
	readDeadline  time.Time
	writeDeadline time.Time
}

// timeoutError is the net.Error returned when a blackholed operation's
// deadline expires — indistinguishable, to the caller, from a real
// kernel timeout.
type timeoutError struct{}

func (timeoutError) Error() string   { return "chaosnet: i/o timeout (blackholed)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// plan is one operation's fault decision.
type plan struct {
	delay     time.Duration
	chunk     bool
	reset     bool
	corrupt   bool
	blackhole bool
}

// next draws the fault plan for the next operation in this direction.
func (c *Conn) next(fs *faultState) plan {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ops++
	if fs.ops <= c.chaos.cfg.FaultFreeOps {
		return plan{}
	}
	cfg := &c.chaos.cfg
	var p plan
	roll := func(prob uint32) bool {
		if prob == 0 {
			return false
		}
		return uint32(fs.rng.Uint64n(1<<16)&0xFFFF) < prob
	}
	if roll(cfg.LatencyProb) {
		span := cfg.LatencyMax - cfg.LatencyMin
		p.delay = cfg.LatencyMin
		if span > 0 {
			p.delay += time.Duration(fs.rng.Uint64n(uint64(span) + 1))
		}
	}
	p.chunk = roll(cfg.ChunkProb)
	p.reset = roll(cfg.ResetProb)
	p.corrupt = roll(cfg.CorruptProb)
	p.blackhole = roll(cfg.BlackholeProb)
	return p
}

// enterBlackhole flips the connection half-open.
func (c *Conn) enterBlackhole() {
	c.mu.Lock()
	if !c.blackholed {
		c.blackholed = true
		if c.closed == nil {
			c.closed = make(chan struct{})
		}
		c.chaos.blackholes.Add(1)
	}
	c.mu.Unlock()
}

// blockUntil parks a blackholed operation until its deadline or Close.
// It polls the deadline (which SetReadDeadline/SetWriteDeadline may move
// at any time) rather than arming a timer against a snapshot of it.
func (c *Conn) blockUntil(read bool) error {
	for {
		c.mu.Lock()
		d := c.writeDeadline
		if read {
			d = c.readDeadline
		}
		closed := c.closed
		c.mu.Unlock()
		if !d.IsZero() && !time.Now().Before(d) {
			return timeoutError{}
		}
		wait := 500 * time.Microsecond
		if closed != nil {
			select {
			case <-closed:
				return net.ErrClosed
			case <-time.After(wait):
			}
		} else {
			time.Sleep(wait)
		}
	}
}

// isBlackholed reports whether the half-open fault has triggered.
func (c *Conn) isBlackholed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blackholed
}

func (c *Conn) Read(p []byte) (int, error) {
	pl := c.next(&c.rd)
	if pl.delay > 0 {
		c.chaos.delays.Add(1)
		time.Sleep(pl.delay)
	}
	if pl.blackhole {
		c.enterBlackhole()
	}
	if c.isBlackholed() {
		return 0, c.blockUntil(true)
	}
	if pl.reset {
		c.chaos.resets.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("chaosnet: injected read reset")
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	pl := c.next(&c.wr)
	if pl.delay > 0 {
		c.chaos.delays.Add(1)
		time.Sleep(pl.delay)
	}
	if pl.blackhole {
		c.enterBlackhole()
	}
	if c.isBlackholed() {
		return 0, c.blockUntil(false)
	}
	buf := p
	if pl.corrupt && len(p) > 0 {
		c.chaos.corruptions.Add(1)
		buf = append([]byte(nil), p...)
		fs := &c.wr
		fs.mu.Lock()
		pos := int(fs.rng.Uint64n(uint64(len(buf))))
		flip := byte(fs.rng.Uint64n(255)) + 1 // never a zero XOR
		fs.mu.Unlock()
		buf[pos] ^= flip
	}
	if pl.reset {
		c.chaos.resets.Add(1)
		n := 0
		if len(buf) > 1 {
			c.wr.mu.Lock()
			n = int(c.wr.rng.Uint64n(uint64(len(buf)))) // strict prefix
			c.wr.mu.Unlock()
		}
		if n > 0 {
			c.Conn.Write(buf[:n])
		}
		c.Conn.Close()
		return n, fmt.Errorf("chaosnet: injected reset after %d of %d bytes", n, len(p))
	}
	if pl.chunk && len(buf) > 1 {
		c.chaos.chunks.Add(1)
		c.wr.mu.Lock()
		pieces := 2 + int(c.wr.rng.Uint64n(3))
		c.wr.mu.Unlock()
		size := len(buf)/pieces + 1
		for off := 0; off < len(buf); off += size {
			end := off + size
			if end > len(buf) {
				end = len(buf)
			}
			if _, err := c.Conn.Write(buf[off:end]); err != nil {
				return off, err
			}
		}
		return len(p), nil
	}
	n, err := c.Conn.Write(buf)
	return n, err
}

func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		if c.closed == nil {
			c.closed = make(chan struct{})
		}
		close(c.closed)
		c.mu.Unlock()
	})
	return c.Conn.Close()
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}
