package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair over loopback (net.Pipe has no
// deadline-free buffering, so real sockets keep the tests honest).
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// TestPassthroughWhenQuiet: the zero config injects nothing — bytes flow
// unmodified in both directions.
func TestPassthroughWhenQuiet(t *testing.T) {
	a, b := pipePair(t)
	ch := New(Config{Seed: 1})
	wrapped := ch.Wrap(a)
	msg := []byte("the quick brown packet jumps over the lazy switch")
	if _, err := wrapped.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload mutated: %q", got)
	}
	st := ch.Stats()
	if st.Resets+st.Corruptions+st.Chunks+st.Delays+st.Blackholes != 0 {
		t.Errorf("quiet config injected faults: %+v", st)
	}
}

// TestDeterministicSchedule: two Chaos instances with the same seed
// produce the identical per-operation fault plan sequence.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		Seed:          42,
		ChunkProb:     1 << 14,
		ResetProb:     1 << 13,
		CorruptProb:   1 << 12,
		BlackholeProb: 1 << 10,
	}
	drawPlans := func() []plan {
		c := New(cfg).Wrap(nil) // next() never touches the inner conn
		out := make([]plan, 0, 200)
		for i := 0; i < 200; i++ {
			out = append(out, c.next(&c.wr))
		}
		return out
	}
	a, b := drawPlans(), drawPlans()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: schedules diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must actually change the schedule.
	cfg.Seed = 43
	c := New(cfg).Wrap(nil)
	same := true
	for i := 0; i < 200; i++ {
		if c.next(&c.wr) != a[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestChunkedWriteDeliversEverything: fragmentation changes the syscall
// pattern, never the bytes.
func TestChunkedWriteDeliversEverything(t *testing.T) {
	a, b := pipePair(t)
	ch := New(Config{Seed: 3, ChunkProb: 1 << 16})
	wrapped := ch.Wrap(a)
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(i % 251)
	}
	done := make(chan error, 1)
	go func() {
		_, err := wrapped.Write(msg)
		done <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chunked write corrupted the payload")
	}
	if ch.Stats().Chunks == 0 {
		t.Error("chunk fault never fired at probability 1")
	}
}

// TestResetTearsMidWrite: a reset delivers a strict prefix and then
// fails both this write and the connection.
func TestResetTearsMidWrite(t *testing.T) {
	a, b := pipePair(t)
	ch := New(Config{Seed: 5, ResetProb: 1 << 16})
	wrapped := ch.Wrap(a)
	msg := make([]byte, 1024)
	n, err := wrapped.Write(msg)
	if err == nil {
		t.Fatal("reset write succeeded")
	}
	if n >= len(msg) {
		t.Fatalf("reset delivered %d of %d bytes (not a strict prefix)", n, len(msg))
	}
	// The peer sees the prefix then EOF/reset — never the full message.
	got, _ := io.ReadAll(b)
	if len(got) >= len(msg) {
		t.Fatalf("peer received %d bytes after a reset of a %d-byte write", len(got), len(msg))
	}
	if ch.Stats().Resets == 0 {
		t.Error("reset not counted")
	}
	if _, err := wrapped.Write(msg); err == nil {
		t.Error("write after reset succeeded")
	}
}

// TestCorruptionFlipsExactlyOneByte at probability 1 with no other
// faults, the payload arrives with a single byte changed.
func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	a, b := pipePair(t)
	ch := New(Config{Seed: 7, CorruptProb: 1 << 16})
	wrapped := ch.Wrap(a)
	msg := make([]byte, 256)
	if _, err := wrapped.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	// The caller's buffer must never be mutated.
	for i := range msg {
		if msg[i] != 0 {
			t.Fatal("corruption mutated the caller's buffer")
		}
	}
}

// TestBlackholeHonoursDeadline: a half-open connection blocks reads
// until the read deadline expires with a net.Error timeout — the
// behaviour deadline-armed servers rely on to reap dead peers.
func TestBlackholeHonoursDeadline(t *testing.T) {
	a, _ := pipePair(t)
	ch := New(Config{Seed: 9, BlackholeProb: 1 << 16})
	wrapped := ch.Wrap(a)
	wrapped.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := wrapped.Read(make([]byte, 16))
	elapsed := time.Since(start)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("blackholed read returned %v, want a net.Error timeout", err)
	}
	if elapsed < 40*time.Millisecond || elapsed > 5*time.Second {
		t.Errorf("deadline fired after %v, want ~50ms", elapsed)
	}
	if ch.Stats().Blackholes == 0 {
		t.Error("blackhole not counted")
	}
}

// TestBlackholeUnblocksOnClose: Close releases a parked operation even
// with no deadline armed.
func TestBlackholeUnblocksOnClose(t *testing.T) {
	a, _ := pipePair(t)
	ch := New(Config{Seed: 11, BlackholeProb: 1 << 16})
	wrapped := ch.Wrap(a)
	done := make(chan error, 1)
	go func() {
		_, err := wrapped.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wrapped.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("blackholed read succeeded after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed read never returned after Close")
	}
}

// TestFaultFreeOps: the handshake exemption passes the first N
// operations through untouched even at probability 1.
func TestFaultFreeOps(t *testing.T) {
	a, b := pipePair(t)
	ch := New(Config{Seed: 13, ResetProb: 1 << 16, FaultFreeOps: 2})
	wrapped := ch.Wrap(a)
	for i := 0; i < 2; i++ {
		if _, err := wrapped.Write([]byte("ok")); err != nil {
			t.Fatalf("exempt write %d failed: %v", i, err)
		}
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write([]byte("boom")); err == nil {
		t.Error("op 3 should reset at probability 1")
	}
}

// TestDialerAndListenerWrap: both entry points hand out fault-injecting
// connections and count them.
func TestDialerAndListenerWrap(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := New(Config{Seed: 17})
	wl := ch.Listener(ln)
	defer wl.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := wl.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dial := ch.Dialer(func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) })
	conn, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Errorf("dialer returned %T, want *chaosnet.Conn", conn)
	}
	sc := <-accepted
	defer sc.Close()
	if _, ok := sc.(*Conn); !ok {
		t.Errorf("listener accepted %T, want *chaosnet.Conn", sc)
	}
	if got := ch.Stats().Conns; got != 2 {
		t.Errorf("%d connections counted, want 2", got)
	}
}
