package chaosnet

// Directional partition gates: the transport-level model of a network
// partition. Where Chaos injects per-connection fault schedules, a Net
// gates whole directions between named endpoints — A can lose its path
// to B while B still reaches A (an asymmetric partition), which is the
// exact regime a SWIM-style failure detector must not misread as a dead
// peer (the cluster membership tests drive this). A blocked direction
// fails new dials fast and parks I/O on established connections
// half-open (deadline-honouring) until the edge heals.

import (
	"net"
	"sync"
	"time"
)

// DialFunc matches the dial hooks collectorsvc and cluster expose.
type DialFunc func(addr string) (net.Conn, error)

// edge is one gated direction: the dialing endpoint's name → the
// address it dials.
type edge struct {
	from, to string
}

// Net is a set of directional blackhole rules. Endpoints are named at
// Dialer time (the test's node names); rules key on (name, dialed
// address). Connections already established when a rule lands are gated
// too: every subsequent Read/Write on them blocks while the edge is
// blocked and proceeds once healed.
type Net struct {
	mu      sync.Mutex
	blocked map[edge]bool
}

// NewNet returns a gate with every direction open.
func NewNet() *Net {
	return &Net{blocked: make(map[edge]bool)}
}

// Block blackholes the from→to direction (to is the dialed address).
func (n *Net) Block(from, to string) { n.set(from, to, true) }

// Heal reopens the from→to direction.
func (n *Net) Heal(from, to string) { n.set(from, to, false) }

func (n *Net) set(from, to string, v bool) {
	n.mu.Lock()
	if v {
		n.blocked[edge{from, to}] = true
	} else {
		delete(n.blocked, edge{from, to})
	}
	n.mu.Unlock()
}

func (n *Net) isBlocked(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[edge{from, to}]
}

// Dialer names an endpoint and returns its gated dialer. A dial into a
// blocked edge fails immediately with a timeout error (the caller's
// backoff machinery treats it like any unreachable peer); a dial into
// an open edge succeeds and returns a connection that re-checks the
// edge on every operation, so a partition that starts mid-connection
// parks the established traffic too. dial nil selects a 5s-timeout TCP
// dial.
func (n *Net) Dialer(from string, dial DialFunc) DialFunc {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return func(addr string) (net.Conn, error) {
		if n.isBlocked(from, addr) {
			return nil, timeoutError{}
		}
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return &gatedConn{Conn: conn, net: n, from: from, to: addr, closed: make(chan struct{})}, nil
	}
}

// gatedConn wraps a connection with the per-operation edge check.
// Deadlines are tracked locally (in addition to being passed through)
// so a parked operation still honours them, exactly like chaosnet's
// half-open blackhole.
type gatedConn struct {
	net.Conn
	net      *Net
	from, to string

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
	closeOnce     sync.Once
	closed        chan struct{}
}

// waitOpen parks while the edge is blocked, returning a timeout error
// when the tracked deadline expires first or net.ErrClosed on Close.
// nil means the edge is open and the operation may proceed. The 500µs
// poll mirrors Conn.blockUntil: deadlines can be moved concurrently, so
// the loop re-reads them instead of arming a timer against a snapshot.
func (c *gatedConn) waitOpen(read bool) error {
	for {
		if !c.net.isBlocked(c.from, c.to) {
			return nil
		}
		c.mu.Lock()
		d := c.writeDeadline
		if read {
			d = c.readDeadline
		}
		c.mu.Unlock()
		if !d.IsZero() && !time.Now().Before(d) {
			return timeoutError{}
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		case <-time.After(500 * time.Microsecond):
		}
	}
}

func (c *gatedConn) Read(p []byte) (int, error) {
	if err := c.waitOpen(true); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *gatedConn) Write(p []byte) (int, error) {
	if err := c.waitOpen(false); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *gatedConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *gatedConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *gatedConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *gatedConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}
