package collectorsvc

import (
	"testing"
	"time"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/scenario"
)

// microloopController mirrors the microloop scenario's controller
// configuration (internal/scenario): the collector's shards must share
// the in-process DedupWindow for the admission replay to be exact.
var microloopController = dataplane.ControllerConfig{
	MaxEvents: 1024, DedupWindow: 8, MaxAgeTicks: 4,
}

// TestCollectorEndToEnd is the acceptance test: a churn scenario
// streamed through collectord over loopback by 16 concurrent clients
// (partitioned by flow) must reproduce the in-process controller's
// admission totals exactly, with every frame accounted for.
//
// The scenario is quarantine-free on purpose: per-reporter quarantine
// is a per-shard property under flow sharding (one reporter's events
// scatter across shards), so exact equality is only promised for
// quarantine-free configurations — see DESIGN.md §8.
func TestCollectorEndToEnd(t *testing.T) {
	srv := NewServer(ServerConfig{
		Shards:     4,
		QueueDepth: 1 << 15, // deep enough that backpressure never drops
		Controller: microloopController,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	const numClients = 16
	clients := make([]*Client, numClients)
	for i := range clients {
		clients[i], err = NewClient(ClientConfig{
			Addr: addr.String(),
			ID:   uint64(i) + 1,
			Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Stream the scenario: the hook fires concurrently from 8 engine
	// workers; each flow's reports stay in hop order because one journey
	// runs on one worker and flow-partitioning pins it to one client.
	res, err := scenario.RunStreamed("microloop", 7, 8, func(ev dataplane.LoopEvent, hop int) {
		clients[int(ev.Flow)%numClients].Send(ev, hop)
	})
	if err != nil {
		t.Fatal(err)
	}

	var enqueued, acked, dropped uint64
	for i, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Enqueued != st.Acked+st.Dropped {
			t.Errorf("client %d: Enqueued %d != Acked %d + Dropped %d", i, st.Enqueued, st.Acked, st.Dropped)
		}
		enqueued += st.Enqueued
		acked += st.Acked
		dropped += st.Dropped
	}
	srv.Shutdown()

	want := res.Churn.Controller
	if enqueued != uint64(want.Delivered) {
		t.Errorf("clients enqueued %d reports, in-process controller delivered %d", enqueued, want.Delivered)
	}
	if dropped != 0 {
		t.Fatalf("clients dropped %d reports (buffers undersized for this test?)", dropped)
	}

	st := srv.Stats()
	if st.Ingested != acked {
		t.Errorf("server ingested %d, clients got %d acks", st.Ingested, acked)
	}
	if st.QueueDropped != 0 {
		t.Fatalf("server dropped %d from shard queues (depth undersized for this test?)", st.QueueDropped)
	}
	if st.BadFrames != 0 {
		t.Errorf("server counted %d bad frames on a clean stream", st.BadFrames)
	}

	// The acceptance criterion: same accepted/deduped/quarantined as the
	// in-process controller for the same (scenario, seed).
	got := srv.ControllerStats()
	if got.Accepted != want.Accepted || got.Deduped != want.Deduped || got.Quarantined != want.Quarantined {
		t.Errorf("admission totals diverged:\nstreamed  accepted=%d deduped=%d quarantined=%d\nin-process accepted=%d deduped=%d quarantined=%d",
			got.Accepted, got.Deduped, got.Quarantined, want.Accepted, want.Deduped, want.Quarantined)
	}
	if got.Delivered != got.Accepted+got.Deduped+got.Quarantined {
		t.Errorf("merged stats broke the delivery identity: %+v", got)
	}
	// Exact loss accounting, the other acceptance criterion:
	// sent = ingested + client-dropped + server-dropped.
	if enqueued != st.Ingested+dropped+st.QueueDropped {
		t.Errorf("loss accounting: enqueued %d != ingested %d + client-dropped %d + queue-dropped %d",
			enqueued, st.Ingested, dropped, st.QueueDropped)
	}
}

// TestCollectorSurvivesConnectionKills: every active connection is
// killed mid-stream — twice — and the reconnect/retransmit/sequence
// machinery still lands every report exactly once.
func TestCollectorSurvivesConnectionKills(t *testing.T) {
	srv := NewServer(ServerConfig{Shards: 3, QueueDepth: 1 << 14})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	const numClients = 4
	clients := make([]*Client, numClients)
	for i := range clients {
		clients[i], err = NewClient(ClientConfig{
			Addr:         addr.String(),
			ID:           100 + uint64(i),
			Seed:         uint64(i),
			MinBackoff:   time.Millisecond,
			MaxBackoff:   8 * time.Millisecond,
			FlushTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitActive := func(n int) {
		deadline := time.Now().Add(10 * time.Second)
		for srv.Stats().ActiveConns < n {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d active connections (have %d)", n, srv.Stats().ActiveConns)
			}
			time.Sleep(time.Millisecond)
		}
	}

	const perClient = 600
	send := func(base int) {
		for i := 0; i < perClient; i++ {
			for ci, c := range clients {
				ev := dataplane.LoopEvent{
					Report: detect.Report{Reporter: detect.SwitchID(ci + 1), Hops: 3},
					Flow:   uint32(base + i*numClients + ci),
				}
				c.Send(ev, 3)
			}
		}
	}

	waitActive(numClients)
	send(0)
	srv.DisconnectAll()
	send(1 << 20)
	waitActive(numClients) // all reconnected
	srv.DisconnectAll()
	send(1 << 21)

	var enqueued, acked, dropped uint64
	for i, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Enqueued != st.Acked+st.Dropped {
			t.Errorf("client %d: Enqueued %d != Acked %d + Dropped %d", i, st.Enqueued, st.Acked, st.Dropped)
		}
		if st.Connects < 2 {
			t.Errorf("client %d: %d connects, expected a reconnect after the kill", i, st.Connects)
		}
		enqueued += st.Enqueued
		acked += st.Acked
		dropped += st.Dropped
	}
	srv.Shutdown()

	if want := uint64(3 * perClient * numClients); enqueued != want {
		t.Fatalf("enqueued %d, want %d", enqueued, want)
	}
	if dropped != 0 {
		t.Fatalf("clients dropped %d with the server up and a 30s drain budget", dropped)
	}
	st := srv.Stats()
	// Exactly-once: the kills force retransmissions (counted as Dupes
	// when the overlap arrives), but every unique report is ingested
	// once, and the full loss-accounting identity holds.
	if st.Ingested != acked {
		t.Errorf("server ingested %d, clients got %d acks", st.Ingested, acked)
	}
	if enqueued != st.Ingested+dropped+st.QueueDropped {
		t.Errorf("loss accounting: enqueued %d != ingested %d + client-dropped %d + queue-dropped %d",
			enqueued, st.Ingested, dropped, st.QueueDropped)
	}
	agg := srv.ControllerStats()
	if uint64(agg.Delivered)+st.QueueDropped != st.Ingested {
		t.Errorf("drain accounting: delivered %d + queue-dropped %d != ingested %d",
			agg.Delivered, st.QueueDropped, st.Ingested)
	}
}

// TestCollectorBackpressureDropsAreCounted: a one-slot shard queue with
// a stalled worker must shed load via drop-oldest and count every
// eviction, never blocking the reader.
func TestCollectorBackpressureDropsAreCounted(t *testing.T) {
	sh := newShard(dataplane.ControllerConfig{}, 4, DefaultMaxFlows)
	// No worker goroutine: the queue can only shed by dropping.
	const n = 100
	for i := 0; i < n; i++ {
		sh.push(shardItem{ev: dataplane.LoopEvent{Flow: uint32(i)}})
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.n != 4 {
		t.Errorf("queue holds %d, want 4", sh.n)
	}
	if sh.dropped != n-4 {
		t.Errorf("dropped %d, want %d", sh.dropped, n-4)
	}
	// The survivors are the newest four, in order.
	for i := 0; i < sh.n; i++ {
		got := sh.ring[(sh.head+i)%len(sh.ring)].ev.Flow
		if want := uint32(n - 4 + i); got != want {
			t.Errorf("slot %d: flow %d, want %d", i, got, want)
		}
	}
}

// TestServerTickPropagation: a tick frame advances every shard's
// logical clock exactly once, and duplicate ticks (retransmits) do not.
func TestServerTickPropagation(t *testing.T) {
	srv := NewServer(ServerConfig{Shards: 3})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 9})
	if err != nil {
		t.Fatal(err)
	}
	c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 1, Hops: 2}, Flow: 5}, 2)
	c.Tick()
	c.Tick()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()

	st := srv.Stats()
	if st.Ticks != 2 || st.Ingested != 1 {
		t.Fatalf("ticks=%d ingested=%d, want 2/1", st.Ticks, st.Ingested)
	}
	for i, cs := range srv.ShardStats() {
		if cs.Tick != 2 {
			t.Errorf("shard %d at tick %d, want 2", i, cs.Tick)
		}
	}
}
