package collectorsvc

// The write-ahead journal: what makes collectord's exactly-once promise
// survive a SIGKILL of the *process*, not just a kill of a connection.
//
// Layout: a directory of fixed-prefix segment files
// (journal-00000001.wal, journal-00000002.wal, ...). Every record is
//
//	[payload len u32][crc32(payload) u32][payload]
//
// big-endian, CRC-32 (IEEE) over the payload bytes. Payloads are typed:
//
//	jrecReport   [type u8][client u64][seq u64][hop u32][flow u32]
//	             [reporter u32][hops u32][node u32][count u16][members u32×n]
//	jrecTick     [type u8][client u64][seq u64]
//	jrecSnapshot [type u8][ver u8][server counters][controller baseline]
//	             [client seq table][per-flow dedup windows]
//
// Every segment *starts* with a snapshot record, so any suffix of the
// segment list is self-contained: replay applies the oldest retained
// segment's head snapshot and then re-delivers every record after it.
// That is what makes bounded retention safe — dropping the oldest
// segments never orphans the records that remain.
//
// Torn tails: a crash can leave a half-written record at the end of the
// last segment. Replay stops at the first record whose length prefix
// overruns the file or whose CRC mismatches, and Open truncates the file
// back to the last valid boundary before appending. A tear anywhere but
// the final segment means the journal was corrupted at rest (not by a
// crash mid-append) and is surfaced as an error instead of silently
// skipped.
//
// Durability model: records are buffered in userspace and always flushed
// to the OS before the server acknowledges a frame (Commit), so a
// process kill — SIGKILL included — loses nothing that was acked. What
// fsync policy buys is *machine*-crash durability: FsyncAlways syncs
// before every ack, FsyncInterval (default) syncs on a timer, FsyncNever
// leaves it to the OS entirely.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy selects when the journal calls File.Sync.
type FsyncPolicy int

const (
	// FsyncInterval syncs on a background timer (FsyncEvery): bounded
	// data-at-risk on machine crash, near-zero per-ack latency. The
	// default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs before every acknowledgement: no acked record is
	// ever lost, even to a power cut, at the cost of one fsync per ack
	// batch.
	FsyncAlways
	// FsyncNever never syncs explicitly: process kills still lose
	// nothing (the OS has every acked byte), machine crashes may.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("collectorsvc: unknown fsync policy %q (want always, interval, or never)", s)
}

// String renders the policy as its flag value.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// JournalConfig tunes the write-ahead journal. Zero values select the
// defaults noted per field.
type JournalConfig struct {
	// Dir is the journal directory, created if absent. Required.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Rotation writes a fresh snapshot, so larger segments mean longer
	// replays and smaller ones mean more frequent snapshot barriers.
	// <= 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// MaxSegments bounds retention: after a rotation, only the newest
	// MaxSegments segments (including the new active one) are kept.
	// Every segment starts with a snapshot, so dropping old segments
	// never loses accounting — it only trims how far back the replayable
	// event history reaches. <= 0 selects DefaultMaxSegments.
	MaxSegments int
	// Fsync selects the sync policy (see FsyncPolicy).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval timer period. <= 0 selects
	// DefaultFsyncEvery.
	FsyncEvery time.Duration
}

// Defaults for JournalConfig's knobs.
const (
	DefaultSegmentBytes = 8 << 20
	DefaultMaxSegments  = 8
	DefaultFsyncEvery   = 100 * time.Millisecond
)

// Journal record types.
const (
	jrecSnapshot = 1
	jrecReport   = 2
	jrecTick     = 3
)

// journalRecHeader is [len u32][crc u32].
const journalRecHeader = 8

// snapshotVersion versions the snapshot payload layout. v2 widened the
// client table from a single high-water mark per client to the full
// accounted span list (plus the CrossDupes baseline) — the state the
// cluster recovery handoff serves to rejoining peers.
const snapshotVersion = 2

// ErrJournalCorrupt marks a tear or CRC failure outside the final
// segment's tail — corruption at rest, which recovery refuses to paper
// over.
var ErrJournalCorrupt = errors.New("collectorsvc: journal corrupt")

// JournalStats is a snapshot of the journal gauges served on /statsz.
type JournalStats struct {
	// Segments and Bytes size the on-disk journal right now.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// LastFsyncMS is the age of the last fsync in milliseconds (-1
	// before the first).
	LastFsyncMS int64 `json:"last_fsync_ms"`
	// Appends counts records written; AppendErrors counts failed writes
	// (durability degraded, never in-process delivery).
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	// Rotations counts segment rotations (each writes a snapshot).
	Rotations uint64 `json:"rotations"`
	// RecoveredRecords / RecoveredSnapshots count what Replay applied;
	// TruncatedBytes is the torn tail discarded at open.
	RecoveredRecords   uint64 `json:"recovered_records"`
	RecoveredSnapshots uint64 `json:"recovered_snapshots"`
	TruncatedBytes     int64  `json:"truncated_bytes"`
}

// Journal is a segmented, CRC-checksummed write-ahead log. The zero
// value is not usable; OpenJournal both creates and recovers one.
//
// Locking: mu serializes appends, rotation, and sync. The server's
// ingest path holds mu across its account-append-enqueue sequence so a
// rotation snapshot always sees a consistent cut (see Server.handle).
type Journal struct {
	cfg JournalConfig

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	segIndex uint64   // active segment number
	segSize  int64    // bytes in the active segment
	segs     []uint64 // live segment numbers, ascending (includes active)
	dirty    bool     // bytes flushed to OS since the last sync
	failed   bool     // an append or sync failed; durability degraded
	scratch  []byte   // reusable record-encode buffer for batch appends

	lastSync     time.Time
	appends      uint64
	appendErrs   uint64
	rotations    uint64
	replayedRecs uint64
	replayedSnap uint64
	truncated    int64

	closeOnce sync.Once
	stopSync  chan struct{}
	syncDone  chan struct{}
}

// segName renders a segment file name; indices are 1-based.
func segName(idx uint64) string { return fmt.Sprintf("journal-%08d.wal", idx) }

// OpenJournal opens (creating if needed) the journal in cfg.Dir and
// positions it for appending: existing segments are scanned, the final
// segment's torn tail (if any) is truncated to the last valid record
// boundary, and the background fsync timer starts for FsyncInterval.
// The caller replays history with Replay before appending new records.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, errors.New("collectorsvc: journal dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = DefaultMaxSegments
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = DefaultFsyncEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("collectorsvc: journal dir: %w", err)
	}
	j := &Journal{cfg: cfg, stopSync: make(chan struct{}), syncDone: make(chan struct{})}
	if err := j.scanSegments(); err != nil {
		return nil, err
	}
	if len(j.segs) == 0 {
		// Genesis: segment 1 opens with an empty-state snapshot so the
		// self-contained-suffix invariant holds from the first byte.
		if err := j.openSegmentLocked(1, encodeSnapshot(nil, emptySnapshot())); err != nil {
			return nil, err
		}
	} else {
		last := j.segs[len(j.segs)-1]
		valid, total, err := validPrefixLen(filepath.Join(cfg.Dir, segName(last)))
		if err != nil {
			return nil, err
		}
		if valid < total {
			if err := os.Truncate(filepath.Join(cfg.Dir, segName(last)), valid); err != nil {
				return nil, fmt.Errorf("collectorsvc: truncating torn journal tail: %w", err)
			}
			j.truncated = total - valid
		}
		f, err := os.OpenFile(filepath.Join(cfg.Dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("collectorsvc: reopening journal segment: %w", err)
		}
		j.f = f
		j.bw = bufio.NewWriterSize(f, 1<<16)
		j.segIndex = last
		j.segSize = valid
	}
	go j.syncLoop()
	return j, nil
}

// scanSegments lists the live segment numbers in ascending order.
func (j *Journal) scanSegments() error {
	entries, err := os.ReadDir(j.cfg.Dir)
	if err != nil {
		return fmt.Errorf("collectorsvc: scanning journal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var idx uint64
		if _, err := fmt.Sscanf(name, "journal-%d.wal", &idx); err != nil || idx == 0 {
			continue
		}
		j.segs = append(j.segs, idx)
	}
	sort.Slice(j.segs, func(a, b int) bool { return j.segs[a] < j.segs[b] })
	return nil
}

// validPrefixLen scans one segment and returns the byte length of its
// valid record prefix and the file's total length.
func validPrefixLen(path string) (valid, total int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("collectorsvc: reading journal segment: %w", err)
	}
	n := int64(scanRecords(data, nil))
	return n, int64(len(data)), nil
}

// scanRecords walks buf record by record, calling fn (when non-nil) with
// each valid payload, and returns the byte offset of the first invalid
// record (== len(buf) when every byte parses).
func scanRecords(buf []byte, fn func(payload []byte)) int {
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < journalRecHeader {
			return off
		}
		n := int(binary.BigEndian.Uint32(rest))
		if n < 1 || n > len(rest)-journalRecHeader {
			return off
		}
		payload := rest[journalRecHeader : journalRecHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:]) {
			return off
		}
		if fn != nil {
			fn(payload)
		}
		off += journalRecHeader + n
	}
}

// openSegmentLocked creates segment idx, writes head (the snapshot
// record) into it, and makes it the active segment.
func (j *Journal) openSegmentLocked(idx uint64, headSnapshot []byte) error {
	path := filepath.Join(j.cfg.Dir, segName(idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("collectorsvc: creating journal segment: %w", err)
	}
	j.f = f
	j.bw = bufio.NewWriterSize(f, 1<<16)
	j.segIndex = idx
	j.segSize = 0
	j.segs = append(j.segs, idx)
	j.appendLocked(headSnapshot)
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("collectorsvc: writing segment snapshot: %w", err)
	}
	return nil
}

// appendLocked writes one record (header + payload). Errors mark the
// journal failed and are counted, not returned: a disk failure degrades
// durability but must never block in-process delivery (the caller still
// enqueues the event; /healthz turns unready).
func (j *Journal) appendLocked(payload []byte) {
	var hdr [journalRecHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	j.appends++
	if _, err := j.bw.Write(hdr[:]); err != nil {
		j.appendErrs++
		j.failed = true
		return
	}
	if _, err := j.bw.Write(payload); err != nil {
		j.appendErrs++
		j.failed = true
		return
	}
	j.segSize += int64(journalRecHeader + len(payload))
	j.dirty = true
}

// appendReportLocked encodes and appends one report record through the
// journal's reusable scratch buffer — the batch-append API: the
// server's ingest loop calls it once per new frame while holding mu
// across the whole batch, so a batch costs zero encode allocations and
// one Commit (one flush, and under FsyncAlways one fsync) covers every
// record in it.
func (j *Journal) appendReportLocked(clientID, seq uint64, ev LoopEventRecord, hop int) {
	j.scratch = appendJournalReport(j.scratch[:0], clientID, seq, ev, hop)
	j.appendLocked(j.scratch)
}

// appendTickLocked encodes and appends one tick record through the
// shared scratch; see appendReportLocked.
func (j *Journal) appendTickLocked(clientID, seq uint64) {
	j.scratch = appendJournalTick(j.scratch[:0], clientID, seq)
	j.appendLocked(j.scratch)
}

// needsRotateLocked reports whether the active segment is over size.
func (j *Journal) needsRotateLocked() bool {
	return j.segSize >= j.cfg.SegmentBytes
}

// rotateLocked finishes the active segment, opens the next one with
// snapshot at its head, and enforces retention. The caller (the server's
// ingest path) is responsible for quiescing the shards so snapshot is a
// consistent cut.
func (j *Journal) rotateLocked(snapshot []byte) {
	if err := j.bw.Flush(); err != nil {
		j.failed = true
	}
	if j.cfg.Fsync != FsyncNever {
		if err := j.f.Sync(); err != nil {
			j.failed = true
		}
		j.lastSync = time.Now()
	}
	j.f.Close()
	if err := j.openSegmentLocked(j.segIndex+1, snapshot); err != nil {
		j.failed = true
		j.appendErrs++
		return
	}
	j.rotations++
	j.dirty = false
	// Retention: every segment starts with a snapshot, so the newest
	// MaxSegments are always self-contained.
	for len(j.segs) > j.cfg.MaxSegments {
		os.Remove(filepath.Join(j.cfg.Dir, segName(j.segs[0])))
		j.segs = j.segs[1:]
	}
}

// commitLocked makes everything appended so far crash-safe per policy:
// flush to the OS always, fsync when the policy says so. Called before
// each acknowledgement batch.
func (j *Journal) commitLocked() {
	if !j.dirty {
		return
	}
	if err := j.bw.Flush(); err != nil {
		j.failed = true
		j.appendErrs++
		return
	}
	if j.cfg.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.failed = true
			return
		}
		j.lastSync = time.Now()
	}
	j.dirty = false
}

// Commit makes everything appended so far crash-safe per policy — the
// server calls it before flushing an acknowledgement batch. It is the
// commit step of the commit-before-ack protocol (DESIGN §9): the
// commitorder analyzer requires a call to it on every path that reaches
// the ack write.
//
//unroller:commitpoint
func (j *Journal) Commit() {
	j.mu.Lock()
	j.commitLocked()
	j.mu.Unlock()
}

// syncLoop is the FsyncInterval timer: flush + sync whenever appends
// happened since the last pass.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	if j.cfg.Fsync != FsyncInterval {
		<-j.stopSync
		return
	}
	t := time.NewTicker(j.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-t.C:
			j.mu.Lock()
			if j.bw != nil {
				if err := j.bw.Flush(); err != nil {
					j.failed = true
					//unroller:allow lockscope -- interval fsync must serialize with appends; j.mu is the append lock and ingest tolerates the pause (FsyncInterval trades it for batched durability)
				} else if err := j.f.Sync(); err != nil {
					j.failed = true
				} else {
					j.lastSync = time.Now()
				}
			}
			j.mu.Unlock()
		}
	}
}

// journalRecord is one replayed record, decoded.
type journalRecord struct {
	kind     uint8
	clientID uint64
	seq      uint64
	hop      int
	ev       LoopEventRecord
	snap     *journalSnapshot
}

// LoopEventRecord mirrors dataplane.LoopEvent's journaled fields.
// (Defined locally so the journal codec is self-contained for fuzzing.)
type LoopEventRecord struct {
	Flow     uint32
	Reporter uint32
	Hops     int
	Node     int
	Members  []uint32
}

// Replay iterates every retained segment in order, decoding each record
// and passing it to apply. A decode failure mid-history (any segment but
// the last, or before the last segment's final record run) returns
// ErrJournalCorrupt; the torn tail of the final segment was already
// truncated at open.
func (j *Journal) Replay(apply func(rec *journalRecord) error) error {
	j.mu.Lock()
	segs := append([]uint64(nil), j.segs...)
	j.mu.Unlock()
	for i, idx := range segs {
		path := filepath.Join(j.cfg.Dir, segName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("collectorsvc: replaying journal: %w", err)
		}
		var applyErr error
		end := scanRecords(data, func(payload []byte) {
			if applyErr != nil {
				return
			}
			rec, err := decodeJournalPayload(payload)
			if err != nil {
				applyErr = err
				return
			}
			j.mu.Lock()
			j.replayedRecs++
			if rec.kind == jrecSnapshot {
				j.replayedSnap++
			}
			j.mu.Unlock()
			applyErr = apply(rec)
		})
		if applyErr != nil {
			return applyErr
		}
		if end != len(data) && i != len(segs)-1 {
			return fmt.Errorf("%w: segment %s torn at byte %d of %d", ErrJournalCorrupt, segName(idx), end, len(data))
		}
	}
	return nil
}

// Close flushes, syncs, and stops the background timer. Idempotent;
// the journal is unusable afterwards.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() { close(j.stopSync) })
	<-j.syncDone
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.bw != nil {
		err = j.bw.Flush()
		if j.cfg.Fsync != FsyncNever {
			//unroller:allow lockscope -- shutdown-only final sync; the sync loop has already stopped and no ingest path can contend for j.mu after closeOnce fires
			if serr := j.f.Sync(); err == nil {
				err = serr
			}
		}
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.bw, j.f = nil, nil
	}
	if err != nil {
		return fmt.Errorf("collectorsvc: closing journal: %w", err)
	}
	return nil
}

// Failed reports whether an append or sync has failed (durability
// degraded); /healthz turns unready on it.
func (j *Journal) Failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Stats snapshots the journal gauges.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Segments:           len(j.segs),
		Appends:            j.appends,
		AppendErrors:       j.appendErrs,
		Rotations:          j.rotations,
		RecoveredRecords:   j.replayedRecs,
		RecoveredSnapshots: j.replayedSnap,
		TruncatedBytes:     j.truncated,
		LastFsyncMS:        -1,
	}
	if !j.lastSync.IsZero() {
		st.LastFsyncMS = time.Since(j.lastSync).Milliseconds()
	}
	// The active segment size is tracked exactly; closed segments
	// rotated at ~SegmentBytes, so the gauge avoids a stat() per scrape.
	if n := len(j.segs); n > 0 {
		st.Bytes = int64(n-1)*j.cfg.SegmentBytes + j.segSize
	}
	return st
}

// --- record payload codecs ---

// appendJournalReport encodes a report record payload.
func appendJournalReport(dst []byte, clientID, seq uint64, ev LoopEventRecord, hop int) []byte {
	dst = append(dst, jrecReport)
	dst = binary.BigEndian.AppendUint64(dst, clientID)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(hop))
	dst = binary.BigEndian.AppendUint32(dst, ev.Flow)
	dst = binary.BigEndian.AppendUint32(dst, ev.Reporter)
	dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Hops))
	dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Node))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ev.Members)))
	for _, m := range ev.Members {
		dst = binary.BigEndian.AppendUint32(dst, m)
	}
	return dst
}

// appendJournalTick encodes a tick record payload.
func appendJournalTick(dst []byte, clientID, seq uint64) []byte {
	dst = append(dst, jrecTick)
	dst = binary.BigEndian.AppendUint64(dst, clientID)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return dst
}

// journalSnapshot is the decoded snapshot payload: the consistent cut a
// recovery resumes from. Counter baselines are cumulative totals at the
// cut; client seqs are the exactly-once high-water marks; dedup windows
// are the per-flow admission context, stored flat (flow-keyed) so the
// snapshot is valid for any shard count.
type journalSnapshot struct {
	// Server counter baselines, in ServerStats order.
	Conns, Frames, BadFrames, Dupes uint64
	CrossDupes                      uint64
	Ingested, Ticks                 uint64
	QueueDropped, FlowEvictions     uint64
	// Aggregate controller baseline. Buffered is always folded into
	// Evicted at capture (a crash discards the buffered ring, so the
	// snapshot accounts those events as evicted-by-recovery).
	Delivered, Accepted, Deduped         uint64
	Quarantined, Evicted, Aged, CtrlTick uint64
	// Client exactly-once state, ascending by ID: the full accounted
	// span list per client (the high-water mark is the last span's
	// Last).
	Clients []clientSeqEntry
	// Per-flow dedup windows, ascending by flow.
	Flows []flowWindowEntry
}

type clientSeqEntry struct {
	ID    uint64
	Spans []SeqSpan
}

type flowWindowEntry struct {
	Flow    uint32
	Entries []windowEntry
}

type windowEntry struct {
	Reporter uint32
	Hop      uint32
}

// emptySnapshot is the genesis state.
func emptySnapshot() *journalSnapshot { return &journalSnapshot{} }

// encodeSnapshot appends the snapshot record payload.
func encodeSnapshot(dst []byte, s *journalSnapshot) []byte {
	dst = append(dst, jrecSnapshot, snapshotVersion)
	for _, v := range []uint64{
		s.Conns, s.Frames, s.BadFrames, s.Dupes, s.CrossDupes,
		s.Ingested, s.Ticks,
		s.QueueDropped, s.FlowEvictions,
		s.Delivered, s.Accepted, s.Deduped, s.Quarantined, s.Evicted,
		s.Aged, s.CtrlTick,
	} {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Clients)))
	for _, c := range s.Clients {
		dst = binary.BigEndian.AppendUint64(dst, c.ID)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(c.Spans)))
		for _, sp := range c.Spans {
			dst = binary.BigEndian.AppendUint64(dst, sp.First)
			dst = binary.BigEndian.AppendUint64(dst, sp.Last)
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Flows)))
	for _, f := range s.Flows {
		dst = binary.BigEndian.AppendUint32(dst, f.Flow)
		dst = append(dst, byte(len(f.Entries)))
		for _, e := range f.Entries {
			dst = binary.BigEndian.AppendUint32(dst, e.Reporter)
			dst = binary.BigEndian.AppendUint32(dst, e.Hop)
		}
	}
	return dst
}

// errBadJournalRecord mirrors ErrBadFrame for the journal codec.
var errBadJournalRecord = errors.New("collectorsvc: malformed journal record")

// decodeJournalPayload parses one record payload (CRC already checked).
func decodeJournalPayload(p []byte) (*journalRecord, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("%w: empty payload", errBadJournalRecord)
	}
	rec := &journalRecord{kind: p[0]}
	body := p[1:]
	switch rec.kind {
	case jrecReport:
		const fixed = 8 + 8 + 4 + 4 + 4 + 4 + 4 + 2
		if len(body) < fixed {
			return nil, fmt.Errorf("%w: report record of %d bytes, want at least %d", errBadJournalRecord, len(body), fixed)
		}
		rec.clientID = binary.BigEndian.Uint64(body)
		rec.seq = binary.BigEndian.Uint64(body[8:])
		rec.hop = int(binary.BigEndian.Uint32(body[16:]))
		rec.ev.Flow = binary.BigEndian.Uint32(body[20:])
		rec.ev.Reporter = binary.BigEndian.Uint32(body[24:])
		rec.ev.Hops = int(binary.BigEndian.Uint32(body[28:]))
		rec.ev.Node = int(binary.BigEndian.Uint32(body[32:]))
		count := int(binary.BigEndian.Uint16(body[36:]))
		if count > MaxMembers {
			return nil, fmt.Errorf("%w: %d members exceeds cap %d", errBadJournalRecord, count, MaxMembers)
		}
		if len(body) != fixed+4*count {
			return nil, fmt.Errorf("%w: report record of %d bytes for %d members", errBadJournalRecord, len(body), count)
		}
		if count > 0 {
			rec.ev.Members = make([]uint32, count)
			for i := range rec.ev.Members {
				rec.ev.Members[i] = binary.BigEndian.Uint32(body[fixed+4*i:])
			}
		}
	case jrecTick:
		if len(body) != 16 {
			return nil, fmt.Errorf("%w: tick record of %d bytes, want 16", errBadJournalRecord, len(body))
		}
		rec.clientID = binary.BigEndian.Uint64(body)
		rec.seq = binary.BigEndian.Uint64(body[8:])
	case jrecSnapshot:
		snap, err := decodeSnapshot(body)
		if err != nil {
			return nil, err
		}
		rec.snap = snap
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", errBadJournalRecord, rec.kind)
	}
	return rec, nil
}

// decodeSnapshot parses a snapshot payload body (after the type byte).
func decodeSnapshot(body []byte) (*journalSnapshot, error) {
	if len(body) < 1 || body[0] != snapshotVersion {
		return nil, fmt.Errorf("%w: unknown snapshot version", errBadJournalRecord)
	}
	body = body[1:]
	const counters = 16
	if len(body) < counters*8+8 {
		return nil, fmt.Errorf("%w: snapshot of %d bytes too short", errBadJournalRecord, len(body))
	}
	s := &journalSnapshot{}
	for i, dst := range []*uint64{
		&s.Conns, &s.Frames, &s.BadFrames, &s.Dupes, &s.CrossDupes,
		&s.Ingested, &s.Ticks,
		&s.QueueDropped, &s.FlowEvictions,
		&s.Delivered, &s.Accepted, &s.Deduped, &s.Quarantined, &s.Evicted,
		&s.Aged, &s.CtrlTick,
	} {
		*dst = binary.BigEndian.Uint64(body[8*i:])
	}
	body = body[counters*8:]
	nClients := int(binary.BigEndian.Uint32(body))
	body = body[4:]
	if nClients > 0 {
		s.Clients = make([]clientSeqEntry, 0, min(nClients, 1<<16))
		for i := 0; i < nClients; i++ {
			if len(body) < 12 {
				return nil, fmt.Errorf("%w: snapshot client table overruns payload", errBadJournalRecord)
			}
			ce := clientSeqEntry{ID: binary.BigEndian.Uint64(body)}
			nSpans := int(binary.BigEndian.Uint32(body[8:]))
			body = body[12:]
			if len(body) < nSpans*16 {
				return nil, fmt.Errorf("%w: snapshot span list overruns payload", errBadJournalRecord)
			}
			if nSpans > 0 {
				ce.Spans = make([]SeqSpan, nSpans)
				for k := range ce.Spans {
					ce.Spans[k].First = binary.BigEndian.Uint64(body[16*k:])
					ce.Spans[k].Last = binary.BigEndian.Uint64(body[16*k+8:])
				}
			}
			body = body[nSpans*16:]
			s.Clients = append(s.Clients, ce)
		}
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: snapshot flow table missing", errBadJournalRecord)
	}
	nFlows := int(binary.BigEndian.Uint32(body))
	body = body[4:]
	if nFlows > 0 {
		s.Flows = make([]flowWindowEntry, 0, min(nFlows, 1<<16))
		for i := 0; i < nFlows; i++ {
			if len(body) < 5 {
				return nil, fmt.Errorf("%w: snapshot flow entry overruns payload", errBadJournalRecord)
			}
			fe := flowWindowEntry{Flow: binary.BigEndian.Uint32(body)}
			n := int(body[4])
			body = body[5:]
			if len(body) < n*8 {
				return nil, fmt.Errorf("%w: snapshot window overruns payload", errBadJournalRecord)
			}
			if n > 0 {
				fe.Entries = make([]windowEntry, n)
				for k := range fe.Entries {
					fe.Entries[k].Reporter = binary.BigEndian.Uint32(body[8*k:])
					fe.Entries[k].Hop = binary.BigEndian.Uint32(body[8*k+4:])
				}
			}
			body = body[n*8:]
			s.Flows = append(s.Flows, fe)
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", errBadJournalRecord, len(body))
	}
	return s, nil
}

// appendJournalRecord encodes a full record (header + payload) into
// dst — the framing appendLocked writes, exposed for tests and fuzzing.
func appendJournalRecord(dst, payload []byte) []byte {
	var hdr [journalRecHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}
