package collectorsvc

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openTestJournal opens a journal in a fresh temp dir with small
// segments so rotation is easy to trigger.
func openTestJournal(t *testing.T, cfg JournalConfig) *Journal {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	j, err := OpenJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// appendReport appends one report record and commits it, the way the
// server's ingest path does.
func appendReport(j *Journal, clientID, seq uint64, flow uint32, hop int) {
	ev := LoopEventRecord{Flow: flow, Reporter: flow + 1, Hops: 3, Node: 7, Members: []uint32{1, 2, 3}}
	j.mu.Lock()
	j.appendLocked(appendJournalReport(nil, clientID, seq, ev, hop))
	j.commitLocked()
	j.mu.Unlock()
}

// replayAll collects every replayed record.
func replayAll(t *testing.T, j *Journal) []*journalRecord {
	t.Helper()
	var out []*journalRecord
	if err := j.Replay(func(rec *journalRecord) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestJournalRoundTrip: records appended before a close replay intact
// after a reopen, in order, behind the genesis snapshot.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	appendReport(j, 10, 1, 0xAABB, 4)
	appendReport(j, 10, 2, 0xAABC, 5)
	j.mu.Lock()
	j.appendLocked(appendJournalTick(nil, 10, 3))
	j.commitLocked()
	j.mu.Unlock()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	recs := replayAll(t, j2)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (snapshot + 2 reports + tick)", len(recs))
	}
	if recs[0].kind != jrecSnapshot || recs[0].snap == nil {
		t.Fatalf("first record is kind %d, want genesis snapshot", recs[0].kind)
	}
	r := recs[1]
	if r.kind != jrecReport || r.clientID != 10 || r.seq != 1 || r.ev.Flow != 0xAABB || r.hop != 4 {
		t.Errorf("report 1 decoded as %+v", r)
	}
	if len(r.ev.Members) != 3 || r.ev.Members[2] != 3 {
		t.Errorf("report members decoded as %v", r.ev.Members)
	}
	if recs[3].kind != jrecTick || recs[3].seq != 3 {
		t.Errorf("tick decoded as %+v", recs[3])
	}
	if st := j2.Stats(); st.RecoveredRecords != 4 || st.RecoveredSnapshots != 1 {
		t.Errorf("stats after replay: %+v", st)
	}
}

// TestJournalRotationAndRetention: small segments rotate, every segment
// starts with a snapshot, and retention bounds the segment count while a
// reopened journal still replays cleanly from the oldest survivor.
func TestJournalRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, JournalConfig{Dir: dir, SegmentBytes: 512, MaxSegments: 3, Fsync: FsyncNever})
	snap := &journalSnapshot{Ingested: 0}
	for i := 0; i < 100; i++ {
		appendReport(j, 1, uint64(i+1), uint32(i), i%6)
		j.mu.Lock()
		if j.needsRotateLocked() {
			snap.Ingested = uint64(i + 1)
			j.rotateLocked(encodeSnapshot(nil, snap))
		}
		j.mu.Unlock()
	}
	st := j.Stats()
	if st.Rotations == 0 {
		t.Fatal("512-byte segments never rotated across 100 reports")
	}
	if st.Segments > 3 {
		t.Errorf("%d segments retained, want <= 3", st.Segments)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != st.Segments {
		t.Errorf("%d files on disk, stats say %d segments", len(entries), st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The oldest retained segment must be self-contained: replay begins
	// at its head snapshot, which carries the pre-truncation baseline.
	j2 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	recs := replayAll(t, j2)
	if len(recs) == 0 || recs[0].kind != jrecSnapshot {
		t.Fatal("replay of retained suffix does not start with a snapshot")
	}
	if recs[0].snap.Ingested == 0 {
		t.Error("oldest retained snapshot has a zero baseline; retention lost the cut state")
	}
	// Records after the snapshot must continue the sequence the baseline
	// accounts for.
	var first uint64
	for _, r := range recs[1:] {
		if r.kind == jrecReport {
			first = r.seq
			break
		}
	}
	if first != recs[0].snap.Ingested+1 {
		t.Errorf("first replayed seq %d does not follow snapshot baseline %d", first, recs[0].snap.Ingested)
	}
}

// TestJournalTornTailTruncated: a partial record at the end of the last
// segment (the SIGKILL case) is truncated at open and replay sees only
// the valid prefix.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	appendReport(j, 7, 1, 100, 2)
	appendReport(j, 7, 2, 101, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: append half a record to the segment.
	path := filepath.Join(dir, segName(1))
	torn := appendJournalRecord(nil, appendJournalTick(nil, 7, 3))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	if st := j2.Stats(); st.TruncatedBytes != int64(len(torn)-5) {
		t.Errorf("truncated %d bytes, want %d", st.TruncatedBytes, len(torn)-5)
	}
	recs := replayAll(t, j2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}
	// And the reopened journal must still append correctly at the cut.
	appendReport(j2, 7, 3, 102, 4)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	recs = replayAll(t, j3)
	if len(recs) != 4 || recs[3].seq != 3 {
		t.Fatalf("append after truncation not replayable: %d records", len(recs))
	}
}

// TestJournalMidHistoryCorruptionFails: a CRC failure in any segment but
// the last is corruption at rest — Replay must refuse, not skip.
func TestJournalMidHistoryCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, JournalConfig{Dir: dir, SegmentBytes: 256, Fsync: FsyncNever})
	for i := 0; i < 20; i++ {
		appendReport(j, 1, uint64(i+1), uint32(i), 0)
		j.mu.Lock()
		if j.needsRotateLocked() {
			j.rotateLocked(encodeSnapshot(nil, emptySnapshot()))
		}
		j.mu.Unlock()
	}
	if j.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment, past its head snapshot.
	first := filepath.Join(dir, segName(jfirstSeg(t, dir)))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncNever})
	err = j2.Replay(func(*journalRecord) error { return nil })
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("replay of corrupt mid-history returned %v, want ErrJournalCorrupt", err)
	}
}

// jfirstSeg returns the lowest live segment index in dir.
func jfirstSeg(t *testing.T, dir string) uint64 {
	t.Helper()
	j := &Journal{cfg: JournalConfig{Dir: dir}}
	if err := j.scanSegments(); err != nil || len(j.segs) == 0 {
		t.Fatalf("scan: %v (%d segs)", err, len(j.segs))
	}
	return j.segs[0]
}

// TestJournalSnapshotRoundTrip: encode/decode is the identity on a
// populated snapshot.
func TestJournalSnapshotRoundTrip(t *testing.T) {
	s := &journalSnapshot{
		Conns: 3, Frames: 100, BadFrames: 1, Dupes: 2,
		Ingested: 90, Ticks: 8, QueueDropped: 4, FlowEvictions: 5,
		Delivered: 86, Accepted: 60, Deduped: 20, Quarantined: 6,
		Evicted: 7, Aged: 1, CtrlTick: 42,
		Clients: []clientSeqEntry{
			{ID: 1, Spans: []SeqSpan{{First: 1, Last: 30}, {First: 44, Last: 50}}},
			{ID: 9, Spans: []SeqSpan{{First: 1, Last: 40}}},
		},
		Flows: []flowWindowEntry{
			{Flow: 0xDEAD, Entries: []windowEntry{{Reporter: 4, Hop: 2}, {Reporter: 5, Hop: 3}}},
			{Flow: 0xBEEF},
		},
	}
	payload := encodeSnapshot(nil, s)
	rec, err := decodeJournalPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	got := rec.snap
	if got == nil {
		t.Fatal("decoded record has no snapshot")
	}
	round := encodeSnapshot(nil, got)
	if !bytes.Equal(round, payload) {
		t.Fatal("snapshot encode/decode is not a fixed point")
	}
	if got.Ingested != 90 || got.CtrlTick != 42 || len(got.Clients) != 2 {
		t.Errorf("snapshot decoded as %+v", got)
	}
	if len(got.Clients[0].Spans) != 2 || got.Clients[0].Spans[1] != (SeqSpan{First: 44, Last: 50}) ||
		len(got.Clients[1].Spans) != 1 || got.Clients[1].Spans[0].Last != 40 {
		t.Errorf("client spans decoded as %+v", got.Clients)
	}
	if len(got.Flows) != 2 || len(got.Flows[0].Entries) != 2 || got.Flows[0].Entries[1].Hop != 3 {
		t.Errorf("flow windows decoded as %+v", got.Flows)
	}
}

// TestJournalFsyncModes: all three policies accept appends and survive a
// close/reopen; interval mode's timer records a sync.
func TestJournalFsyncModes(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			j := openTestJournal(t, JournalConfig{Dir: dir, Fsync: p, FsyncEvery: 5 * time.Millisecond})
			appendReport(j, 1, 1, 1, 1)
			if p == FsyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for j.Stats().LastFsyncMS < 0 && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
				if j.Stats().LastFsyncMS < 0 {
					t.Error("interval policy never synced")
				}
			}
			if p == FsyncAlways && j.Stats().LastFsyncMS < 0 {
				t.Error("always policy did not sync on commit")
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: p})
			if recs := replayAll(t, j2); len(recs) != 2 {
				t.Fatalf("replayed %d records, want 2", len(recs))
			}
		})
	}
}

// TestParseFsyncPolicy covers the flag surface.
func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "": FsyncInterval,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// FuzzJournalSegment: for arbitrary bytes, scanning a segment must not
// panic; every record the scanner accepts must decode; decoded records
// must re-encode to the identical payload (fixed point); and truncating
// the buffer anywhere must only ever shrink the valid record prefix
// (torn-tail tolerance).
func FuzzJournalSegment(f *testing.F) {
	f.Add(appendJournalRecord(nil, encodeSnapshot(nil, emptySnapshot())))
	f.Add(appendJournalRecord(nil, appendJournalTick(nil, 1, 2)))
	rep := appendJournalRecord(nil, appendJournalReport(nil, 3, 4, LoopEventRecord{Flow: 5, Reporter: 6, Hops: 2, Node: 1, Members: []uint32{8, 9}}, 1))
	f.Add(rep)
	f.Add(append(append([]byte(nil), rep...), rep[:7]...)) // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		end := scanRecords(data, func(p []byte) {
			payloads = append(payloads, append([]byte(nil), p...))
		})
		if end > len(data) {
			t.Fatalf("scan ran past the buffer: %d > %d", end, len(data))
		}
		for _, p := range payloads {
			rec, err := decodeJournalPayload(p)
			if err != nil {
				continue // CRC-valid but semantically malformed is a decode error, not a panic
			}
			var round []byte
			switch rec.kind {
			case jrecReport:
				round = appendJournalReport(nil, rec.clientID, rec.seq, rec.ev, rec.hop)
			case jrecTick:
				round = appendJournalTick(nil, rec.clientID, rec.seq)
			case jrecSnapshot:
				round = encodeSnapshot(nil, rec.snap)
			}
			if !bytes.Equal(round, p) {
				t.Fatalf("decode/re-encode not a fixed point for kind %d", rec.kind)
			}
		}
		// Torn-tail property: any truncation yields a prefix of the
		// original record sequence, never new or different records.
		if len(data) > 0 {
			cut := data[:len(data)-1]
			n := 0
			scanRecords(cut, func(p []byte) { n++ })
			if n > len(payloads) {
				t.Fatalf("truncated buffer parsed %d records, original only %d", n, len(payloads))
			}
		}
	})
}

// BenchmarkJournalAppend measures the per-record cost of the journaled
// ack path: encode a report record, append it under the journal lock,
// and commit (flush to the OS) — exactly what each accepted frame pays
// before its acknowledgement when ingest is journaled with the default
// (non-fsync-per-record) policy.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := OpenJournal(JournalConfig{Dir: b.TempDir(), SegmentBytes: 1 << 30, Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	ev := LoopEventRecord{Flow: 7, Reporter: 3, Hops: 12, Node: 2, Members: []uint32{1, 2, 3, 4}}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendJournalReport(buf[:0], 1, uint64(i)+1, ev, 12)
		j.mu.Lock()
		j.appendLocked(buf)
		j.commitLocked()
		j.mu.Unlock()
	}
	b.StopTimer()
	b.SetBytes(int64(len(buf)) + journalRecHeader)
	if j.Failed() {
		b.Fatalf("journal failed during benchmark: %+v", j.Stats())
	}
}
