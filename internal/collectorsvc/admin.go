package collectorsvc

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"

	"github.com/unroller/unroller/internal/dataplane"
)

// The admin surface is a plaintext HTTP listener in the /statsz
// tradition: GET /statsz renders the service counters, the aggregate
// controller snapshot, and every shard's snapshot as stable text;
// /statsz?format=json emits the same data in the machine-readable
// schema pinned by internal/dataplane's MarshalJSON golden test, so the
// endpoint and the CLI share one schema.

// AdminStats is the JSON shape of the admin snapshot. Journal is nil
// (omitted) when ingest is not journaled. Exported so a wrapping admin
// surface (the cluster node's /statsz) can embed it next to its own
// stanza.
type AdminStats struct {
	Server    ServerStats                 `json:"server"`
	Aggregate dataplane.ControllerStats   `json:"aggregate"`
	Shards    []dataplane.ControllerStats `json:"shards"`
	Queues    []ShardQueueStats           `json:"queues"`
	Journal   *JournalStats               `json:"journal,omitempty"`
}

// AdminSnapshot assembles the full /statsz data set.
func (s *Server) AdminSnapshot() AdminStats {
	snap := AdminStats{
		Server:    s.Stats(),
		Aggregate: s.ControllerStats(),
		Shards:    s.ShardStats(),
		Queues:    s.QueueStats(),
	}
	if j := s.Journal(); j != nil {
		jst := j.Stats()
		snap.Journal = &jst
	}
	return snap
}

// RenderText renders the snapshot as the stable /statsz plaintext.
func (snap AdminStats) RenderText() string { return renderStatsText(snap) }

// writeHealth renders the three-state readiness body: 200 "ready", or
// 503 with "recovering"/"degraded" — so a poller distinguishes a node
// still reconciling its journal from one that lost durability or is
// suspected by the membership layer.
func writeHealth(w http.ResponseWriter, h Health) {
	if h == HealthReady {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, h)
}

// AdminHandler returns the admin mux: /statsz (text and JSON) and
// /healthz (three-state readiness, for probes).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeHealth(w, s.Health())
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		snap := s.AdminSnapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderStatsText(snap))
	})
	return mux
}

// renderStatsText renders the snapshot as stable plaintext, one counter
// group per stanza.
func renderStatsText(snap AdminStats) string {
	var b strings.Builder
	sv := snap.Server
	fmt.Fprintf(&b, "server: conns=%d active=%d frames=%d bad=%d dupes=%d cross_dupes=%d ingested=%d ticks=%d queue_dropped=%d flow_evictions=%d\n",
		sv.Conns, sv.ActiveConns, sv.Frames, sv.BadFrames, sv.Dupes, sv.CrossDupes, sv.Ingested, sv.Ticks, sv.QueueDropped, sv.FlowEvictions)
	fmt.Fprintf(&b, "aggregate: %s tick=%d\n", snap.Aggregate, snap.Aggregate.Tick)
	for i, sh := range snap.Shards {
		fmt.Fprintf(&b, "shard %d: %s tick=%d\n", i, sh, sh.Tick)
	}
	for i, q := range snap.Queues {
		fmt.Fprintf(&b, "queue %d: depth=%d dropped=%d shedded_ticks=%d\n", i, q.Depth, q.Dropped, q.SheddedTicks)
	}
	if j := snap.Journal; j != nil {
		fmt.Fprintf(&b, "journal: segments=%d bytes=%d last_fsync_ms=%d appends=%d append_errors=%d rotations=%d\n",
			j.Segments, j.Bytes, j.LastFsyncMS, j.Appends, j.AppendErrors, j.Rotations)
	}
	return b.String()
}

// ServeAdmin serves the admin handler on l until the listener closes.
func (s *Server) ServeAdmin(l net.Listener) error {
	err := http.Serve(l, s.AdminHandler())
	if err != nil && !isClosedErr(err) {
		return fmt.Errorf("collectorsvc: admin: %w", err)
	}
	return nil
}

// isClosedErr reports the benign listener-closed error.
func isClosedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}
