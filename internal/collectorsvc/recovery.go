package collectorsvc

// Snapshot capture and journal replay: the two halves of crash
// recovery. Capture runs at segment rotation and freezes a consistent
// cut of the server (counters, per-client sequence high-water marks,
// per-flow dedup windows, aggregate controller totals); replay rebuilds
// that cut at boot and then re-delivers every record journaled after
// it. Both sides are deliberately single-threaded and shard-count
// agnostic: the snapshot keys dedup state by flow, not by shard, and
// replay re-routes each flow through shardFor, so a recovered server
// may run a different -shards value than the one that crashed.

import (
	"errors"
	"fmt"
	"sort"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// eventToRecord converts a live event to its journal representation.
func eventToRecord(ev dataplane.LoopEvent) LoopEventRecord {
	rec := LoopEventRecord{
		Flow:     ev.Flow,
		Reporter: uint32(ev.Reporter),
		Hops:     ev.Hops,
		Node:     ev.Node,
	}
	if len(ev.Members) > 0 {
		rec.Members = make([]uint32, len(ev.Members))
		for i, m := range ev.Members {
			rec.Members[i] = uint32(m)
		}
	}
	return rec
}

// recordToEvent is the inverse of eventToRecord.
func recordToEvent(rec LoopEventRecord) dataplane.LoopEvent {
	var ev dataplane.LoopEvent
	ev.Flow = rec.Flow
	ev.Reporter = detect.SwitchID(rec.Reporter)
	ev.Hops = rec.Hops
	ev.Node = rec.Node
	if len(rec.Members) > 0 {
		ev.Members = make([]detect.SwitchID, len(rec.Members))
		for i, m := range rec.Members {
			ev.Members[i] = detect.SwitchID(m)
		}
	}
	return ev
}

// rotateWithSnapshotLocked rotates the journal segment with a
// consistent snapshot at the new segment's head. Called from the ingest
// path with j.mu held, which blocks every other account/append/enqueue;
// it then quiesces the shard workers with barrier items so the queues
// drain and the flow maps and controller stats stop moving. Lock order
// is j.mu → s.mu → sh.mu, the same everywhere.
func (s *Server) rotateWithSnapshotLocked(j *Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Shutdown sets closed before it stops the workers, but it cannot
	// stop them until this connection's reader returns (connWG), so the
	// barrier below is always drained. The closed check only skips
	// pointless rotations once shutdown has begun.
	if s.closed {
		return
	}
	b := &shardBarrier{
		reached: make(chan struct{}, len(s.shards)),
		resume:  make(chan struct{}),
	}
	for _, sh := range s.shards {
		sh.push(shardItem{barrier: b})
	}
	for range s.shards {
		//unroller:allow lockscope -- the barrier receive under s.mu IS the quiescence protocol: workers always drain it (Shutdown cannot stop them before this reader returns), and holding s.mu is what freezes the snapshot
		<-b.reached
	}
	snap := s.captureSnapshotLocked()
	j.rotateLocked(encodeSnapshot(nil, snap))
	close(b.resume)
}

// captureSnapshotLocked freezes the server state. Preconditions: j.mu
// and s.mu held, every shard worker parked on a barrier (so sh.flows
// and sh.ctrl are quiescent).
func (s *Server) captureSnapshotLocked() *journalSnapshot {
	snap := &journalSnapshot{
		Conns:         s.conns64.Load(),
		Frames:        s.frames.Load(),
		BadFrames:     s.badFrames.Load(),
		Dupes:         s.dupes.Load(),
		Ingested:      s.ingested.Load(),
		Ticks:         s.ticks.Load(),
		QueueDropped:  s.queueDropBase,
		FlowEvictions: s.flowEvictBase,
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		snap.QueueDropped += sh.dropped
		sh.mu.Unlock()
		snap.FlowEvictions += sh.evictions.Load()
	}
	// Aggregate controller totals, cumulative across prior recoveries.
	// Buffered folds into Evicted: a crash discards the in-memory event
	// rings, so the snapshot accounts their contents as evicted — the
	// admission identity (accepted = buffered + evicted + aged) then
	// holds exactly in the recovered process.
	agg := dataplane.MergeControllerStats(s.ShardStats()...)
	snap.Delivered = s.ctrlBase.Delivered + agg.Delivered
	snap.Accepted = s.ctrlBase.Accepted + agg.Accepted
	snap.Deduped = s.ctrlBase.Deduped + agg.Deduped
	snap.Quarantined = s.ctrlBase.Quarantined + agg.Quarantined
	snap.Evicted = s.ctrlBase.Evicted + agg.Evicted + uint64(agg.Buffered)
	snap.Aged = s.ctrlBase.Aged + agg.Aged
	snap.CtrlTick = s.ctrlBase.Tick + agg.Tick

	snap.CrossDupes = s.crossDupes.Load()
	snap.Clients = make([]clientSeqEntry, 0, len(s.clients))
	for id, cs := range s.clients {
		snap.Clients = append(snap.Clients, clientSeqEntry{ID: id, Spans: cs.snapshotSpans()})
	}
	sort.Slice(snap.Clients, func(a, b int) bool { return snap.Clients[a].ID < snap.Clients[b].ID })

	for _, sh := range s.shards {
		for flow, w := range sh.flows {
			entries := w.Entries()
			fe := flowWindowEntry{Flow: flow}
			if len(entries) > 0 {
				fe.Entries = make([]windowEntry, len(entries))
				for i, e := range entries {
					fe.Entries[i] = windowEntry{Reporter: uint32(e.Reporter), Hop: uint32(e.Hop)}
				}
			}
			snap.Flows = append(snap.Flows, fe)
		}
	}
	sort.Slice(snap.Flows, func(a, b int) bool { return snap.Flows[a].Flow < snap.Flows[b].Flow })
	return snap
}

// stagedRecord is one post-snapshot journal record parked between
// replay and commit.
type stagedRecord struct {
	clientID uint64
	seq      uint64
	ev       dataplane.LoopEvent
	hop      int
	tick     bool
}

// StagedRecovery is a journal replay paused at the reconciliation
// point: the latest snapshot's cut is applied to the server, every
// record journaled after it is staged in order, and nothing has reached
// a controller or advanced a sequence mark yet. The cluster recovery
// path asks its live peers which sequence ranges they already ingested
// (Server.ClientRanges over the membership port) and then Commits with
// a discard predicate covering that overlap — the cross-node dedup that
// keeps the cluster-wide exactly-once identity exact after a failover
// replayed this node's committed-but-unacked frames to a takeover
// owner. The dedup window is everything journaled since the last
// snapshot: records a rotation has folded into the snapshot's counters
// can no longer be discarded record-by-record (see DESIGN §13 for the
// sizing rule this implies).
type StagedRecovery struct {
	srv    *Server
	staged []stagedRecord
}

// NewStagedRecoveredServer builds a server, applies the journal's
// snapshot cut, and stages the post-snapshot records for Commit.
// cfg.Journal must be set.
func NewStagedRecoveredServer(cfg ServerConfig) (*StagedRecovery, error) {
	if cfg.Journal == nil {
		return nil, errors.New("collectorsvc: staged recovery requires a journal")
	}
	s := buildServer(cfg)
	s.recovering = true
	st := &StagedRecovery{srv: s}
	err := cfg.Journal.Replay(func(rec *journalRecord) error {
		switch rec.kind {
		case jrecSnapshot:
			s.applySnapshot(rec.snap)
			// The snapshot's cut supersedes everything staged before it.
			st.staged = st.staged[:0]
		case jrecReport:
			st.staged = append(st.staged, stagedRecord{
				clientID: rec.clientID, seq: rec.seq,
				ev: recordToEvent(rec.ev), hop: rec.hop,
			})
		case jrecTick:
			st.staged = append(st.staged, stagedRecord{clientID: rec.clientID, seq: rec.seq, tick: true})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Server exposes the recovering server's admin/health surface (it
// reports HealthRecovering until Commit). Do not serve ingest on it
// before Commit returns.
func (st *StagedRecovery) Server() *Server { return st.srv }

// Staged returns the number of records parked for Commit — the size of
// this recovery's cross-node dedup window.
func (st *StagedRecovery) Staged() int { return len(st.staged) }

// Commit finishes the recovery. Every staged record either commits —
// accounted, counted, and delivered single-threaded in journal order
// through the same per-flow dedup path as live ingest — or, when
// discard reports a peer already ingested it, is dropped and counted in
// CrossDupes. A discarded record's sequence number deliberately stays
// un-accounted (neither the high-water mark nor the span list moves),
// so this node's own ClientRanges never claim frames a peer ingested;
// that is safe because a failover overlap is always a contiguous
// per-client suffix of the journal tail, and the client's next
// sequence numbers are beyond it. discard may be nil (no peers — the
// single-node path commits everything). Workers start and the server
// leaves the recovering health state before returning.
func (st *StagedRecovery) Commit(discard func(clientID, seq uint64) bool) (*Server, RecoveryStats, error) {
	s := st.srv
	for i := range st.staged {
		rec := &st.staged[i]
		if discard != nil && discard(rec.clientID, rec.seq) {
			s.crossDupes.Add(1)
			continue
		}
		cs := s.clientState(rec.clientID)
		if !cs.account(rec.seq) {
			// Records are only appended for newly accounted frames, so a
			// replayed duplicate means the journal and the snapshot
			// disagree — refuse rather than double-count.
			return nil, RecoveryStats{}, fmt.Errorf("%w: replayed seq %d for client %d at or below high-water mark", ErrJournalCorrupt, rec.seq, rec.clientID)
		}
		if rec.tick {
			s.ticks.Add(1)
			for _, sh := range s.shards {
				sh.ctrl.Tick()
			}
			continue
		}
		s.ingested.Add(1)
		s.shardFor(rec.ev.Flow).deliver(rec.ev, rec.hop)
	}
	st.staged = nil
	jst := s.journal.Stats()
	s.recoveryReport = RecoveryStats{
		Records:        jst.RecoveredRecords,
		Snapshots:      jst.RecoveredSnapshots,
		TruncatedBytes: jst.TruncatedBytes,
		Clients:        len(s.clients),
		Ingested:       s.ingested.Load(),
		Ticks:          s.ticks.Load(),
		CrossDupes:     s.crossDupes.Load(),
	}
	for _, sh := range s.shards {
		s.recoveryReport.Flows += len(sh.flows)
	}
	s.mu.Lock()
	s.recovering = false
	s.mu.Unlock()
	s.startWorkers()
	return s, s.recoveryReport, nil
}

// ClientRanges snapshots every known client's accounted sequence spans,
// ascending by client ID (clients with nothing accounted are skipped).
// This is what a node serves to a rejoining peer's recovery handoff.
func (s *Server) ClientRanges() []ClientRange {
	s.mu.Lock()
	clients := make(map[uint64]*clientSeq, len(s.clients))
	for id, cs := range s.clients {
		clients[id] = cs
	}
	s.mu.Unlock()
	out := make([]ClientRange, 0, len(clients))
	for id, cs := range clients {
		spans := cs.snapshotSpans()
		if len(spans) == 0 {
			continue
		}
		out = append(out, ClientRange{ID: id, Spans: spans})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ForceRotate rotates the journal segment with a fresh snapshot now.
// The cluster recovery path calls it right after a staged Commit so the
// reconciled cut — with the discounted overlap excluded — becomes the
// new segment-head snapshot: a second crash re-recovers from that
// snapshot instead of re-staging (and re-judging) the same records.
func (s *Server) ForceRotate() {
	j := s.journal
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	s.rotateWithSnapshotLocked(j)
}

// applySnapshot resets the server to a snapshot's cut. Each snapshot in
// the replay stream supersedes everything before it (its baselines are
// cumulative), so state rebuilt from earlier records is discarded:
// shard controllers restart fresh and the snapshot's aggregate totals
// become the baseline.
func (s *Server) applySnapshot(snap *journalSnapshot) {
	s.conns64.Store(snap.Conns)
	s.frames.Store(snap.Frames)
	s.badFrames.Store(snap.BadFrames)
	s.dupes.Store(snap.Dupes)
	s.ingested.Store(snap.Ingested)
	s.ticks.Store(snap.Ticks)
	s.queueDropBase = snap.QueueDropped
	s.flowEvictBase = snap.FlowEvictions
	s.ctrlBase = dataplane.ControllerStats{
		Delivered:   snap.Delivered,
		Accepted:    snap.Accepted,
		Deduped:     snap.Deduped,
		Quarantined: snap.Quarantined,
		Evicted:     snap.Evicted,
		Aged:        snap.Aged,
		Tick:        snap.CtrlTick,
	}
	s.crossDupes.Store(snap.CrossDupes)
	s.clients = make(map[uint64]*clientSeq, len(snap.Clients))
	for _, c := range snap.Clients {
		cs := &clientSeq{}
		cs.restoreSpans(c.Spans)
		s.clients[c.ID] = cs
	}
	for _, sh := range s.shards {
		sh.ctrl = dataplane.NewControllerWithConfig(s.cfg.Controller)
		sh.flows = make(map[uint32]*dataplane.DedupWindow)
		sh.evictions.Store(0)
	}
	for _, fe := range snap.Flows {
		entries := make([]dataplane.DedupEntry, len(fe.Entries))
		for i, e := range fe.Entries {
			entries[i] = dataplane.DedupEntry{Reporter: detect.SwitchID(e.Reporter), Hop: int(e.Hop)}
		}
		w := &dataplane.DedupWindow{}
		w.Restore(entries)
		s.shardFor(fe.Flow).flows[fe.Flow] = w
	}
}
