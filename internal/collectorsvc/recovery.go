package collectorsvc

// Snapshot capture and journal replay: the two halves of crash
// recovery. Capture runs at segment rotation and freezes a consistent
// cut of the server (counters, per-client sequence high-water marks,
// per-flow dedup windows, aggregate controller totals); replay rebuilds
// that cut at boot and then re-delivers every record journaled after
// it. Both sides are deliberately single-threaded and shard-count
// agnostic: the snapshot keys dedup state by flow, not by shard, and
// replay re-routes each flow through shardFor, so a recovered server
// may run a different -shards value than the one that crashed.

import (
	"fmt"
	"sort"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// eventToRecord converts a live event to its journal representation.
func eventToRecord(ev dataplane.LoopEvent) LoopEventRecord {
	rec := LoopEventRecord{
		Flow:     ev.Flow,
		Reporter: uint32(ev.Reporter),
		Hops:     ev.Hops,
		Node:     ev.Node,
	}
	if len(ev.Members) > 0 {
		rec.Members = make([]uint32, len(ev.Members))
		for i, m := range ev.Members {
			rec.Members[i] = uint32(m)
		}
	}
	return rec
}

// recordToEvent is the inverse of eventToRecord.
func recordToEvent(rec LoopEventRecord) dataplane.LoopEvent {
	var ev dataplane.LoopEvent
	ev.Flow = rec.Flow
	ev.Reporter = detect.SwitchID(rec.Reporter)
	ev.Hops = rec.Hops
	ev.Node = rec.Node
	if len(rec.Members) > 0 {
		ev.Members = make([]detect.SwitchID, len(rec.Members))
		for i, m := range rec.Members {
			ev.Members[i] = detect.SwitchID(m)
		}
	}
	return ev
}

// rotateWithSnapshotLocked rotates the journal segment with a
// consistent snapshot at the new segment's head. Called from the ingest
// path with j.mu held, which blocks every other account/append/enqueue;
// it then quiesces the shard workers with barrier items so the queues
// drain and the flow maps and controller stats stop moving. Lock order
// is j.mu → s.mu → sh.mu, the same everywhere.
func (s *Server) rotateWithSnapshotLocked(j *Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Shutdown sets closed before it stops the workers, but it cannot
	// stop them until this connection's reader returns (connWG), so the
	// barrier below is always drained. The closed check only skips
	// pointless rotations once shutdown has begun.
	if s.closed {
		return
	}
	b := &shardBarrier{
		reached: make(chan struct{}, len(s.shards)),
		resume:  make(chan struct{}),
	}
	for _, sh := range s.shards {
		sh.push(shardItem{barrier: b})
	}
	for range s.shards {
		//unroller:allow lockscope -- the barrier receive under s.mu IS the quiescence protocol: workers always drain it (Shutdown cannot stop them before this reader returns), and holding s.mu is what freezes the snapshot
		<-b.reached
	}
	snap := s.captureSnapshotLocked()
	j.rotateLocked(encodeSnapshot(nil, snap))
	close(b.resume)
}

// captureSnapshotLocked freezes the server state. Preconditions: j.mu
// and s.mu held, every shard worker parked on a barrier (so sh.flows
// and sh.ctrl are quiescent).
func (s *Server) captureSnapshotLocked() *journalSnapshot {
	snap := &journalSnapshot{
		Conns:         s.conns64.Load(),
		Frames:        s.frames.Load(),
		BadFrames:     s.badFrames.Load(),
		Dupes:         s.dupes.Load(),
		Ingested:      s.ingested.Load(),
		Ticks:         s.ticks.Load(),
		QueueDropped:  s.queueDropBase,
		FlowEvictions: s.flowEvictBase,
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		snap.QueueDropped += sh.dropped
		sh.mu.Unlock()
		snap.FlowEvictions += sh.evictions.Load()
	}
	// Aggregate controller totals, cumulative across prior recoveries.
	// Buffered folds into Evicted: a crash discards the in-memory event
	// rings, so the snapshot accounts their contents as evicted — the
	// admission identity (accepted = buffered + evicted + aged) then
	// holds exactly in the recovered process.
	agg := dataplane.MergeControllerStats(s.ShardStats()...)
	snap.Delivered = s.ctrlBase.Delivered + agg.Delivered
	snap.Accepted = s.ctrlBase.Accepted + agg.Accepted
	snap.Deduped = s.ctrlBase.Deduped + agg.Deduped
	snap.Quarantined = s.ctrlBase.Quarantined + agg.Quarantined
	snap.Evicted = s.ctrlBase.Evicted + agg.Evicted + uint64(agg.Buffered)
	snap.Aged = s.ctrlBase.Aged + agg.Aged
	snap.CtrlTick = s.ctrlBase.Tick + agg.Tick

	snap.Clients = make([]clientSeqEntry, 0, len(s.clients))
	for id, cs := range s.clients {
		snap.Clients = append(snap.Clients, clientSeqEntry{ID: id, Seq: cs.last.Load()})
	}
	sort.Slice(snap.Clients, func(a, b int) bool { return snap.Clients[a].ID < snap.Clients[b].ID })

	for _, sh := range s.shards {
		for flow, w := range sh.flows {
			entries := w.Entries()
			fe := flowWindowEntry{Flow: flow}
			if len(entries) > 0 {
				fe.Entries = make([]windowEntry, len(entries))
				for i, e := range entries {
					fe.Entries[i] = windowEntry{Reporter: uint32(e.Reporter), Hop: uint32(e.Hop)}
				}
			}
			snap.Flows = append(snap.Flows, fe)
		}
	}
	sort.Slice(snap.Flows, func(a, b int) bool { return snap.Flows[a].Flow < snap.Flows[b].Flow })
	return snap
}

// recoverFromJournal replays the journal into a freshly built server.
// Runs before startWorkers, so everything here is single-threaded:
// records apply in journal order regardless of the shard count, which
// is what makes recovery deterministic and worker-count invariant.
func (s *Server) recoverFromJournal() error {
	j := s.journal
	err := j.Replay(func(rec *journalRecord) error {
		switch rec.kind {
		case jrecSnapshot:
			s.applySnapshot(rec.snap)
		case jrecReport:
			cs := s.clientState(rec.clientID)
			if !cs.account(rec.seq) {
				// Records are only appended for newly accounted frames,
				// so a replayed duplicate means the journal and the
				// snapshot disagree — refuse rather than double-count.
				return fmt.Errorf("%w: replayed report seq %d for client %d at or below high-water mark", ErrJournalCorrupt, rec.seq, rec.clientID)
			}
			s.ingested.Add(1)
			ev := recordToEvent(rec.ev)
			s.shardFor(ev.Flow).deliver(ev, rec.hop)
		case jrecTick:
			cs := s.clientState(rec.clientID)
			if !cs.account(rec.seq) {
				return fmt.Errorf("%w: replayed tick seq %d for client %d at or below high-water mark", ErrJournalCorrupt, rec.seq, rec.clientID)
			}
			s.ticks.Add(1)
			for _, sh := range s.shards {
				sh.ctrl.Tick()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	jst := j.Stats()
	s.recoveryReport = RecoveryStats{
		Records:        jst.RecoveredRecords,
		Snapshots:      jst.RecoveredSnapshots,
		TruncatedBytes: jst.TruncatedBytes,
		Clients:        len(s.clients),
		Ingested:       s.ingested.Load(),
		Ticks:          s.ticks.Load(),
	}
	for _, sh := range s.shards {
		s.recoveryReport.Flows += len(sh.flows)
	}
	return nil
}

// applySnapshot resets the server to a snapshot's cut. Each snapshot in
// the replay stream supersedes everything before it (its baselines are
// cumulative), so state rebuilt from earlier records is discarded:
// shard controllers restart fresh and the snapshot's aggregate totals
// become the baseline.
func (s *Server) applySnapshot(snap *journalSnapshot) {
	s.conns64.Store(snap.Conns)
	s.frames.Store(snap.Frames)
	s.badFrames.Store(snap.BadFrames)
	s.dupes.Store(snap.Dupes)
	s.ingested.Store(snap.Ingested)
	s.ticks.Store(snap.Ticks)
	s.queueDropBase = snap.QueueDropped
	s.flowEvictBase = snap.FlowEvictions
	s.ctrlBase = dataplane.ControllerStats{
		Delivered:   snap.Delivered,
		Accepted:    snap.Accepted,
		Deduped:     snap.Deduped,
		Quarantined: snap.Quarantined,
		Evicted:     snap.Evicted,
		Aged:        snap.Aged,
		Tick:        snap.CtrlTick,
	}
	s.clients = make(map[uint64]*clientSeq, len(snap.Clients))
	for _, c := range snap.Clients {
		cs := &clientSeq{}
		cs.last.Store(c.Seq)
		s.clients[c.ID] = cs
	}
	for _, sh := range s.shards {
		sh.ctrl = dataplane.NewControllerWithConfig(s.cfg.Controller)
		sh.flows = make(map[uint32]*dataplane.DedupWindow)
		sh.evictions.Store(0)
	}
	for _, fe := range snap.Flows {
		entries := make([]dataplane.DedupEntry, len(fe.Entries))
		for i, e := range fe.Entries {
			entries[i] = dataplane.DedupEntry{Reporter: detect.SwitchID(e.Reporter), Hop: int(e.Hop)}
		}
		w := &dataplane.DedupWindow{}
		w.Restore(entries)
		s.shardFor(fe.Flow).flows[fe.Flow] = w
	}
}
