package collectorsvc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// TestFrameRoundTrip encodes every frame type and decodes it back, both
// through DecodeFrame (buffer) and ReadFrame (stream).
func TestFrameRoundTrip(t *testing.T) {
	ev := dataplane.LoopEvent{
		Report:  detect.Report{Reporter: 0xDEADBEEF, Hops: 17},
		Node:    42,
		Flow:    0x01020304,
		Members: []detect.SwitchID{1, 2, 0xFFFFFFFF},
	}
	report, err := AppendReport(nil, 7, ev, 23)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		AppendHello(nil, 0xCAFEBABE12345678),
		report,
		AppendTick(nil, 99),
		AppendAck(nil, 100),
	}
	want := []Frame{
		{Type: FrameHello, ClientID: 0xCAFEBABE12345678},
		{Type: FrameReport, Seq: 7, Hop: 23, Event: ev},
		{Type: FrameTick, Seq: 99},
		{Type: FrameAck, Seq: 100},
	}

	var stream []byte
	for i, buf := range frames {
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("frame %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !reflect.DeepEqual(f, want[i]) {
			t.Errorf("frame %d: got %+v want %+v", i, f, want[i])
		}
		stream = append(stream, buf...)
	}

	// The same four frames back to back through the stream reader,
	// sharing one scratch buffer.
	br := bufio.NewReader(bytes.NewReader(stream))
	var scratch []byte
	for i := range want {
		var f Frame
		f, scratch, err = ReadFrame(br, scratch)
		if err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(f, want[i]) {
			t.Errorf("stream frame %d: got %+v want %+v", i, f, want[i])
		}
	}
	if _, _, err := ReadFrame(br, scratch); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream: got %v, want io.EOF", err)
	}
}

// TestDecodeFrameErrors feeds the decoder structurally broken input and
// checks each failure maps to the right sentinel error.
func TestDecodeFrameErrors(t *testing.T) {
	good, err := AppendReport(nil, 1, dataplane.LoopEvent{
		Report: detect.Report{Reporter: 5, Hops: 3},
		Flow:   9,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	oversize := binary.BigEndian.AppendUint32(nil, MaxFrameBody+1)
	badVersion := append([]byte(nil), good...)
	badVersion[lenPrefixSize] = WireVersion + 1
	badType := append([]byte(nil), good...)
	badType[lenPrefixSize+1] = 200
	// A report frame whose member count promises more members than the
	// body carries.
	badCount := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badCount[lenPrefixSize+frameOverhead+28:], 3)
	hugeCount := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(hugeCount[lenPrefixSize+frameOverhead+28:], MaxMembers+1)
	// A length prefix smaller than version+type.
	tiny := binary.BigEndian.AppendUint32(nil, 1)
	tiny = append(tiny, WireVersion)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"short prefix", good[:3], ErrShortFrame},
		{"truncated body", good[:len(good)-2], ErrShortFrame},
		{"oversize prefix", oversize, ErrOversizeFrame},
		{"sub-header prefix", tiny, ErrBadFrame},
		{"unknown version", badVersion, ErrBadVersion},
		{"unknown type", badType, ErrBadFrame},
		{"member count overruns body", badCount, ErrBadFrame},
		{"member count over cap", hugeCount, ErrBadFrame},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestReadFrameTruncation: a stream that dies mid-frame is
// io.ErrUnexpectedEOF (transport), not a wire-format error — the server
// must not count a connection kill as a bad frame.
func TestReadFrameTruncation(t *testing.T) {
	buf := AppendTick(nil, 4)
	for cut := 1; cut < len(buf); cut++ {
		br := bufio.NewReader(bytes.NewReader(buf[:cut]))
		_, _, err := ReadFrame(br, nil)
		if err == nil {
			t.Fatalf("cut %d: decoded a truncated frame", cut)
		}
		if isWireError(err) {
			t.Errorf("cut %d: truncation classified as wire error: %v", cut, err)
		}
	}
}

// TestReadFrameOversizeNoAlloc: a hostile length prefix is rejected
// before the body buffer is grown.
func TestReadFrameOversizeNoAlloc(t *testing.T) {
	in := binary.BigEndian.AppendUint32(nil, 1<<30)
	in = append(in, make([]byte, 64)...)
	_, scratch, err := ReadFrame(bufio.NewReader(bytes.NewReader(in)), nil)
	if !errors.Is(err, ErrOversizeFrame) {
		t.Fatalf("got %v, want ErrOversizeFrame", err)
	}
	if cap(scratch) > MaxFrameBody {
		t.Errorf("scratch grew to %d for a rejected frame", cap(scratch))
	}
}

// TestAppendReportRejectsBadEvents: events the wire format cannot carry
// are refused at encode time, not mangled.
func TestAppendReportRejectsBadEvents(t *testing.T) {
	tooMany := dataplane.LoopEvent{Members: make([]detect.SwitchID, MaxMembers+1)}
	if _, err := AppendReport(nil, 1, tooMany, 0); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized membership: got %v, want ErrBadFrame", err)
	}
	if _, err := AppendReport(nil, 1, dataplane.LoopEvent{}, -1); !errors.Is(err, ErrBadFrame) {
		t.Errorf("negative hop: got %v, want ErrBadFrame", err)
	}
	negNode := dataplane.LoopEvent{Node: -3}
	if _, err := AppendReport(nil, 1, negNode, 0); !errors.Is(err, ErrBadFrame) {
		t.Errorf("negative node: got %v, want ErrBadFrame", err)
	}
}
