package collectorsvc

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/xhash"
	"github.com/unroller/unroller/internal/xrand"
)

// ClientConfig tunes the reconnecting sender. Zero values select the
// defaults noted per field.
type ClientConfig struct {
	// Addr is the collectord address (host:port). Validated at NewClient
	// so a typo fails fast instead of spinning in the dialer.
	Addr string
	// ID is the client identity for exactly-once ingest. It must be
	// unique per client *instance*: reusing an ID resumes its sequence
	// space, so a fresh instance with a reused ID would see its frames
	// discarded as duplicates. 0 derives an instance-unique ID from the
	// wall clock and Seed.
	ID uint64
	// Buffer bounds the local queue of events not yet written to a
	// connection. When full, the oldest unsent event is dropped and
	// counted (ClientStats.Dropped) — the sender never blocks the data
	// plane. <= 0 selects DefaultClientBuffer.
	Buffer int
	// Batch caps the frames encoded per socket write. <= 0 selects
	// DefaultClientBatch.
	Batch int
	// Window caps the sent-but-unacknowledged frames in flight. A full
	// window pauses sending (the local buffer absorbs, then drops) until
	// acks arrive. <= 0 selects DefaultClientWindow.
	Window int
	// MinBackoff and MaxBackoff bound the capped exponential reconnect
	// backoff. Each retry waits min(MaxBackoff, MinBackoff<<attempt)
	// jittered to [d/2, d] by the seeded generator, so tests replay the
	// exact schedule. Zero values select 50ms and 5s.
	MinBackoff, MaxBackoff time.Duration
	// FlushTimeout bounds how long Close waits for the buffer and
	// in-flight window to drain; whatever remains is counted as dropped.
	// <= 0 selects DefaultFlushTimeout.
	FlushTimeout time.Duration
	// HeartbeatEvery is the keep-alive interval on an otherwise idle
	// connection; each heartbeat elicits an ack, so both the server's
	// idle reaper and this client's staleness detector see traffic on a
	// healthy session. <= 0 selects DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// StaleTimeout bounds the silence from the server (no acks, no
	// bytes) before the connection is declared stale and torn down for
	// a reconnect — the half-open-peer detector. It must exceed
	// HeartbeatEvery; a value at or below it is raised to three
	// heartbeat intervals. <= 0 selects DefaultStaleTimeout.
	StaleTimeout time.Duration
	// WriteTimeout bounds each socket write, so a peer that stops
	// reading cannot park the sender mid-flush. <= 0 selects
	// DefaultClientWriteTimeout.
	WriteTimeout time.Duration
	// Seed seeds the backoff jitter (and the derived ID when ID is 0).
	// The jitter stream is derived from Seed mixed with the client ID,
	// so a fleet of clients sharing one configured seed still spreads
	// its reconnects instead of redialing a freshly promoted owner in
	// lockstep.
	Seed uint64
	// Dial overrides the dialer (tests inject failing or proxied
	// connections); nil uses a 5s-timeout TCP dial.
	Dial func(addr string) (net.Conn, error)
}

// Defaults for ClientConfig's knobs.
const (
	DefaultClientBuffer       = 4096
	DefaultClientBatch        = 128
	DefaultClientWindow       = 1024
	DefaultMinBackoff         = 50 * time.Millisecond
	DefaultMaxBackoff         = 5 * time.Second
	DefaultFlushTimeout       = 5 * time.Second
	DefaultHeartbeatEvery     = 5 * time.Second
	DefaultStaleTimeout       = 15 * time.Second
	DefaultClientWriteTimeout = 10 * time.Second
	defaultDialTimeout        = 5 * time.Second
)

// ClientStats snapshots the sender's accounting. Once Close returns,
// Enqueued = Acked + Dropped exactly: every event the data plane handed
// over was either acknowledged by the server or counted as dropped
// (buffer overflow or unflushed at close) — never silently lost.
type ClientStats struct {
	// Redirects counts Redirect calls that actually retargeted the
	// sender (cluster failover and resharding cutovers).
	Redirects uint64 `json:"redirects"`
	// Enqueued counts events accepted by Send (plus ticks by Tick).
	Enqueued uint64 `json:"enqueued"`
	// Acked counts frames the server acknowledged as accounted.
	Acked uint64 `json:"acked"`
	// Dropped counts events lost locally: buffer overflow (drop-oldest)
	// plus whatever Close abandoned at its deadline.
	Dropped uint64 `json:"dropped"`
	// Retransmits counts frames re-sent after a reconnect; duplicates
	// among them are absorbed server-side by sequence accounting.
	Retransmits uint64 `json:"retransmits"`
	// Connects counts successful dials; DialFailures failed ones.
	Connects     uint64 `json:"connects"`
	DialFailures uint64 `json:"dial_failures"`
}

// clientItem is one queued frame-to-be: a report or a tick. seq is
// assigned when the item first reaches the wire and kept across
// retransmissions.
type clientItem struct {
	ev   dataplane.LoopEvent
	hop  int
	tick bool
	seq  uint64
}

// Client is a reconnecting, batching sender of loop reports. Send never
// blocks on the network; a background goroutine owns the connection
// lifecycle. Safe for concurrent use.
type Client struct {
	cfg ClientConfig

	mu          sync.Mutex
	cond        *sync.Cond
	unsent      []clientItem // bounded ring semantics via head index
	inflight    []clientItem // sent, awaiting ack; FIFO by seq
	nextSeq     uint64
	stats       ClientStats
	rng         *xrand.Rand
	addr        string // current dial target (cfg.Addr until redirected)
	pendingAddr string // Redirect target awaiting cutover
	cutover     bool   // drain in-flight, then adopt pendingAddr
	closing     bool   // Close called: drain, then stop
	aborted     bool   // drain deadline hit: count pending as dropped, stop
	broken      bool   // current connection died (reader noticed first)
	hbDue       bool   // heartbeat timer fired; stream owes a keep-alive

	wake chan struct{} // poked by Close/abort to interrupt backoff sleeps
	done chan struct{} // run goroutine exited
}

// NewClient validates cfg and starts the sender. The returned client is
// usable immediately; connection establishment happens in the
// background with backoff.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		if _, _, err := net.SplitHostPort(cfg.Addr); err != nil {
			return nil, fmt.Errorf("collectorsvc: bad collector address %q: %w", cfg.Addr, err)
		}
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, defaultDialTimeout)
		}
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultClientBuffer
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultClientBatch
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultClientWindow
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = DefaultMinBackoff
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = DefaultFlushTimeout
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.StaleTimeout <= 0 {
		cfg.StaleTimeout = DefaultStaleTimeout
	}
	if cfg.StaleTimeout <= cfg.HeartbeatEvery {
		cfg.StaleTimeout = 3 * cfg.HeartbeatEvery
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultClientWriteTimeout
	}
	if cfg.ID == 0 {
		// Instance-unique: wall clock mixed with the seed. The wire
		// protocol's exactly-once state is keyed by this, so two
		// instances must not collide even when configured identically.
		cfg.ID = xhash.Mix64(uint64(time.Now().UnixNano()) ^ xhash.Mix64(cfg.Seed))
	}
	c := &Client{
		cfg:  cfg,
		addr: cfg.Addr,
		rng:  xrand.New(xhash.Mix64(cfg.Seed ^ xhash.Mix64(cfg.ID))),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c, nil
}

// Send enqueues one loop report (hop is the reporting packet's journey
// hop count — the dedup context). Never blocks on the network: a full
// buffer drops the oldest unsent event, counted.
func (c *Client) Send(ev dataplane.LoopEvent, hop int) {
	c.enqueue(clientItem{ev: ev, hop: hop})
}

// Tick enqueues an epoch-boundary tick, ordered with the reports around
// it. Meaningful only when this client is the collector's single feeder.
func (c *Client) Tick() {
	c.enqueue(clientItem{tick: true})
}

func (c *Client) enqueue(it clientItem) {
	c.mu.Lock()
	if c.closing || c.aborted {
		// Late events after Close are dropped and counted, preserving
		// the accounting identity.
		c.stats.Enqueued++
		c.stats.Dropped++
		c.mu.Unlock()
		return
	}
	c.stats.Enqueued++
	if len(c.unsent) >= c.cfg.Buffer {
		c.unsent = c.unsent[1:]
		c.stats.Dropped++
	}
	c.unsent = append(c.unsent, it)
	c.mu.Unlock()
	c.cond.Signal()
}

// Stats snapshots the client's accounting counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pending returns the events not yet acknowledged (unsent + in flight).
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.unsent) + len(c.inflight)
}

// Close drains the sender: it keeps (re)connecting and sending until
// everything enqueued is acknowledged or FlushTimeout elapses, counts
// whatever remains as dropped, and stops the background goroutine.
// A backoff sleep in progress is interrupted immediately, so Close
// never waits out a reconnect timer: with nothing pending it returns at
// once, and with pending work the drain redial starts now instead of
// when the backoff would have expired.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closing = true
	c.mu.Unlock()
	c.cond.Broadcast()
	c.poke()

	select {
	case <-c.done:
	case <-time.After(c.cfg.FlushTimeout):
		c.mu.Lock()
		c.aborted = true
		c.stats.Dropped += uint64(len(c.unsent) + len(c.inflight))
		c.unsent, c.inflight = nil, nil
		c.mu.Unlock()
		c.cond.Broadcast()
		c.poke()
		<-c.done
	}
	return nil
}

// Redirect retargets the sender at addr — the failover surface the
// cluster client drives when a flow partition's owner moves. With a
// live connection the move is a drain cutover: no new frames go out,
// the in-flight window drains at the old owner (every frame acked there
// exactly once), and only then does the stream reopen at addr — a
// planned reshard moves ownership without duplicating a single report.
// If the connection is down or dies mid-drain (the owner crashed), the
// sender adopts addr immediately and retransmits the unacknowledged
// window there; the journal-recovery handoff discounts whatever the
// dead owner had already committed. Redirecting back to the current
// address cancels a pending cutover.
func (c *Client) Redirect(addr string) {
	c.mu.Lock()
	switch {
	case c.cutover && addr == c.pendingAddr, !c.cutover && addr == c.addr:
		c.mu.Unlock()
		return
	case c.cutover && addr == c.addr:
		c.cutover = false
		c.pendingAddr = ""
		c.mu.Unlock()
		return
	}
	c.pendingAddr = addr
	c.cutover = true
	c.stats.Redirects++
	c.mu.Unlock()
	c.cond.Broadcast()
	c.poke()
}

// poke nudges the run loop out of a backoff sleep (non-blocking; the
// buffered slot coalesces pokes).
func (c *Client) poke() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// finished reports whether the run loop should exit: draining is done
// (or abandoned) and no work remains.
func (c *Client) finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted || (c.closing && len(c.unsent) == 0 && len(c.inflight) == 0)
}

// run owns the connection lifecycle: dial with backoff, stream until
// the connection breaks, repeat until drained.
func (c *Client) run() {
	defer close(c.done)
	attempt := 0
	for {
		if c.finished() {
			return
		}
		c.mu.Lock()
		if c.cutover {
			// No live connection at the top of the loop, so a pending
			// cutover is adopted here: drained streams, crash moves (the
			// conn died mid-drain), and idle moves all land on the new
			// owner for the next dial. Backoff restarts: the new target
			// is presumed healthy.
			c.addr, c.pendingAddr = c.pendingAddr, ""
			c.cutover = false
			attempt = 0
		}
		addr := c.addr
		c.mu.Unlock()
		conn, err := c.cfg.Dial(addr)
		if err != nil {
			c.mu.Lock()
			c.stats.DialFailures++
			d := backoffDelay(c.rng, attempt, c.cfg.MinBackoff, c.cfg.MaxBackoff)
			c.mu.Unlock()
			attempt++
			if c.sleep(d) {
				return
			}
			continue
		}
		attempt = 0
		c.mu.Lock()
		c.stats.Connects++
		c.broken = false
		c.mu.Unlock()
		c.stream(conn)
		conn.Close()
	}
}

// sleep waits d, returning early when poked: true means stop (aborted),
// false with an early return means Close began and the drain should
// redial immediately instead of waiting out the backoff.
func (c *Client) sleep(d time.Duration) bool {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		select {
		case <-deadline.C:
			return c.isAborted()
		case <-c.wake:
			c.mu.Lock()
			aborted, redial := c.aborted, c.closing || c.cutover
			c.mu.Unlock()
			if aborted {
				return true
			}
			// Close drains and Redirect retargets; either way the next
			// dial should happen now, not when this backoff expires.
			if redial {
				return false
			}
		}
	}
}

func (c *Client) isAborted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted
}

// stream runs one connection: hello, retransmit the in-flight window,
// then batch unsent items until the connection breaks or draining
// completes. A reader goroutine consumes acks concurrently; its read
// deadline is the staleness detector (a healthy session always has ack
// traffic within StaleTimeout, because an idle stream sends heartbeats
// and every heartbeat elicits an ack). All writes are deadline-armed.
func (c *Client) stream(conn net.Conn) {
	bw := bufio.NewWriterSize(conn, 1<<15)
	buf := make([]byte, 0, 1<<12)

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		br := bufio.NewReaderSize(conn, 1<<10)
		var scratch []byte
		for {
			conn.SetReadDeadline(time.Now().Add(c.cfg.StaleTimeout))
			f, sc, err := ReadFrame(br, scratch)
			if err != nil {
				break
			}
			scratch = sc
			if f.Type == FrameAck {
				c.ack(f.Seq)
			}
		}
		c.mu.Lock()
		c.broken = true
		c.mu.Unlock()
		c.cond.Broadcast()
	}()
	defer func() {
		conn.Close() // unblocks the reader
		<-readerDone
	}()

	// The heartbeat timer wakes the batch loop instead of writing
	// itself: one goroutine owns all writes, so frames never interleave
	// mid-buffer. It re-arms after every flush — heartbeats fill write
	// silence, they don't add to a busy stream.
	hbTimer := time.AfterFunc(c.cfg.HeartbeatEvery, func() {
		c.mu.Lock()
		c.hbDue = true
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer hbTimer.Stop()
	c.mu.Lock()
	c.hbDue = false
	c.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	buf = AppendHello(buf[:0], c.cfg.ID)
	if _, err := bw.Write(buf); err != nil {
		return
	}

	// Retransmit the in-flight window (frames sent on the previous
	// connection whose acks never arrived). The server discards the
	// already-accounted prefix by sequence number. The whole window is
	// encoded into one buffer and written in one deadline-armed call —
	// the same coalescing the batch loop below uses.
	c.mu.Lock()
	resend := append([]clientItem(nil), c.inflight...)
	c.stats.Retransmits += uint64(len(resend))
	c.mu.Unlock()
	var err error
	buf = buf[:0]
	for _, it := range resend {
		if buf, err = appendItem(buf, it); err != nil {
			return
		}
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if _, err = bw.Write(buf); err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if err = bw.Flush(); err != nil {
		return
	}
	hbTimer.Reset(c.cfg.HeartbeatEvery)

	batch := make([]clientItem, 0, c.cfg.Batch)
	for {
		batch = batch[:0]
		heartbeat := false
		c.mu.Lock()
		for {
			if c.aborted || c.broken {
				c.mu.Unlock()
				return
			}
			if c.cutover && len(c.inflight) == 0 {
				// Drain cutover complete: every sent frame is acked at
				// this owner, so the stream can move with zero overlap.
				// The run loop's top adopts the pending address.
				c.mu.Unlock()
				return
			}
			if c.hbDue {
				c.hbDue = false
				heartbeat = true
				break
			}
			if len(c.unsent) > 0 && len(c.inflight) < c.cfg.Window && !c.cutover {
				break
			}
			if c.closing && len(c.unsent) == 0 && len(c.inflight) == 0 {
				c.mu.Unlock()
				conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
				if err := bw.Flush(); err != nil {
					// Surface the failure like every other flush site: mark
					// the connection broken and return to the run loop (the
					// reconnect path) instead of pretending the buffered
					// bytes went out. Everything enqueued is already
					// acknowledged here, so the loop exits once it confirms
					// that — but it must not exit *believing* a write
					// succeeded that didn't.
					c.mu.Lock()
					c.broken = true
					c.mu.Unlock()
				}
				return
			}
			// Idle, window-full, or drain-waiting-for-acks: sleep until
			// enqueue/ack/heartbeat/close wakes us.
			c.cond.Wait()
		}
		if !heartbeat {
			for len(c.unsent) > 0 && len(batch) < c.cfg.Batch && len(c.inflight) < c.cfg.Window {
				it := c.unsent[0]
				c.unsent = c.unsent[1:]
				c.nextSeq++
				it.seq = c.nextSeq
				c.inflight = append(c.inflight, it)
				batch = append(batch, it)
			}
		}
		seq := c.nextSeq
		c.mu.Unlock()

		if heartbeat {
			conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
			buf = AppendHeartbeat(buf[:0], seq)
			if _, err = bw.Write(buf); err != nil {
				return
			}
			if err = bw.Flush(); err != nil {
				return
			}
			hbTimer.Reset(c.cfg.HeartbeatEvery)
			continue
		}
		// Encode the whole batch into one buffer and write it with one
		// deadline arm: the connection's write-path syscalls and deadline
		// churn scale with batches, not frames.
		buf = buf[:0]
		for _, it := range batch {
			if buf, err = appendItem(buf, it); err != nil {
				return
			}
		}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		if _, err = bw.Write(buf); err != nil {
			return
		}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		if err = bw.Flush(); err != nil {
			return
		}
		hbTimer.Reset(c.cfg.HeartbeatEvery)
	}
}

// appendItem encodes one queued item as its wire frame.
func appendItem(dst []byte, it clientItem) ([]byte, error) {
	if it.tick {
		return AppendTick(dst, it.seq), nil
	}
	return AppendReport(dst, it.seq, it.ev, it.hop)
}

// ack releases the in-flight prefix up to seq.
func (c *Client) ack(seq uint64) {
	c.mu.Lock()
	n := 0
	for n < len(c.inflight) && c.inflight[n].seq <= seq {
		n++
	}
	if n > 0 {
		c.inflight = c.inflight[n:]
		c.stats.Acked += uint64(n)
	}
	c.mu.Unlock()
	if n > 0 {
		c.cond.Broadcast()
	}
}

// backoffDelay computes the attempt-th reconnect delay: capped
// exponential growth from min, jittered into [d/2, d] by rng. Pure
// function of (rng state, attempt), so a seeded client replays its
// exact schedule — the property the determinism tests pin.
func backoffDelay(rng *xrand.Rand, attempt int, min, max time.Duration) time.Duration {
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Uint64n(uint64(half)+1))
}
