// Regression tests for the batched-ingest protocol hardening: ack
// fencing on journal failure, per-client ack state across an in-stream
// hello rebind, and the exactly-once identity with group commit under
// FsyncAlways.
package collectorsvc

import (
	"bufio"
	"net"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// readAcks consumes acknowledgement frames from conn until read fails
// (server hang-up or deadline), returning the Seq of each in order.
func readAcks(t *testing.T, conn net.Conn, timeout time.Duration) []uint64 {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(timeout))
	br := bufio.NewReader(conn)
	var scratch []byte
	var acks []uint64
	for {
		var f Frame
		var err error
		f, scratch, err = ReadFrame(br, scratch)
		if err != nil {
			return acks
		}
		if f.Type != FrameAck {
			t.Fatalf("unexpected frame type %d from server", f.Type)
		}
		acks = append(acks, f.Seq)
	}
}

// TestJournalFailureFencesAck is the regression test for the ignored
// Commit failure: once the journal has failed, the server must withhold
// the ack (the client's licence to forget) and kill the connection, and
// /healthz must report unready. Acking past a failed commit would let
// the client forget frames that never became durable.
func TestJournalFailureFencesAck(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s, _, err := NewRecoveredServer(ServerConfig{Shards: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	buf := AppendHello(nil, 7)
	ev := dataplane.LoopEvent{Report: detect.Report{Reporter: 1, Hops: 3}, Flow: 11}
	if buf, err = AppendReport(buf, 1, ev, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	// The healthy path must ack seq 1 before we inject the failure, so
	// the fence below is attributable to the failure, not to AckEvery.
	acks := readAcks(t, conn, 2*time.Second)
	if len(acks) == 0 || acks[len(acks)-1] != 1 {
		t.Fatalf("no ack for seq 1 on the healthy path: %v", acks)
	}
	if !s.Healthy() {
		t.Fatal("server unhealthy before the injected failure")
	}

	// Inject a durability failure the way a dying disk would surface it:
	// the sticky failed flag that every append/sync error sets.
	j.mu.Lock()
	j.failed = true
	j.mu.Unlock()

	buf = buf[:0]
	if buf, err = AppendReport(buf, 2, ev, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	// The server must hang up without acknowledging seq 2.
	for _, seq := range readAcks(t, conn, 5*time.Second) {
		if seq >= 2 {
			t.Fatalf("server acked seq %d past a failed journal commit", seq)
		}
	}
	if s.Healthy() {
		t.Error("Healthy() still true after journal failure")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ActiveConns != 0 {
		if time.Now().After(deadline) {
			t.Fatal("fenced connection not closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHelloRebindResetsAckState is the regression test for the rebind
// leak: a repeated hello with a *different* ClientID used to swap the
// sequence accounting but keep lastSeen/lastAcked/pending, so the next
// ack could acknowledge sequences the new client never sent. The old
// client's frames must be ingested and acked at the rebind boundary,
// and the new client's ack high-water mark must start from its own
// sequences.
func TestHelloRebindResetsAckState(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 1})
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ev := dataplane.LoopEvent{Report: detect.Report{Reporter: 2, Hops: 4}, Flow: 9}
	buf := AppendHello(nil, 100)
	for seq := uint64(1); seq <= 3; seq++ {
		if buf, err = AppendReport(buf, seq, ev, 4); err != nil {
			t.Fatal(err)
		}
	}
	buf = AppendHello(buf, 200)
	if buf, err = AppendReport(buf, 1, ev, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	acks := readAcks(t, conn, 2*time.Second)
	if len(acks) < 2 {
		t.Fatalf("want acks for both clients, got %v", acks)
	}
	// The rebind boundary flushes client 100 at its own high-water mark.
	if acks[0] != 3 {
		t.Fatalf("rebind flush acked seq %d for client 100, want 3", acks[0])
	}
	// Every later ack belongs to client 200, whose only sequence is 1 —
	// an ack above that is client 100's state leaking across the rebind.
	for _, seq := range acks[1:] {
		if seq != 1 {
			t.Fatalf("ack %d for client 200, want 1 (acks: %v)", seq, acks)
		}
	}
	if got := s.clientState(100).last.Load(); got != 3 {
		t.Errorf("client 100 high-water mark = %d, want 3", got)
	}
	if got := s.clientState(200).last.Load(); got != 1 {
		t.Errorf("client 200 high-water mark = %d, want 1", got)
	}
}

// TestBatchedIngestFsyncAlways pins the exactly-once identity with
// group commit under the strictest durability policy: one fsync covers
// an entire ack batch, and sent = ingested + dropped still balances.
func TestBatchedIngestFsyncAlways(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s, _, err := NewRecoveredServer(ServerConfig{Shards: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 1, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const reports = 1000
	for i := 0; i < reports; i++ {
		c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 1, Hops: 2}, Flow: uint32(i)}, 2)
		if i%100 == 99 {
			c.Tick()
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	cst := c.Stats()
	st := s.Stats()
	if cst.Enqueued != cst.Acked+cst.Dropped {
		t.Fatalf("client identity broken: enqueued=%d acked=%d dropped=%d", cst.Enqueued, cst.Acked, cst.Dropped)
	}
	// Acks cover reports and ticks; retransmitted overlap lands in Dupes
	// without being ingested twice, so the identity is exact.
	if st.Ingested+st.Ticks != cst.Acked {
		t.Fatalf("server accounting: ingested=%d ticks=%d vs acked=%d", st.Ingested, st.Ticks, cst.Acked)
	}
	if st.Ingested == 0 {
		t.Fatal("nothing ingested")
	}
	if jst := j.Stats(); jst.AppendErrors != 0 {
		t.Fatalf("journal append errors under FsyncAlways: %+v", jst)
	}
}
