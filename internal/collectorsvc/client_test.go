package collectorsvc

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// TestBackoffDelayDeterministic: two generators with the same seed
// replay the identical backoff schedule, and every delay respects the
// [min/2 (shifted), max] envelope with exponential growth capped at max.
func TestBackoffDelayDeterministic(t *testing.T) {
	const minB, maxB = 50 * time.Millisecond, 5 * time.Second
	a, b := xrand.New(42), xrand.New(42)
	for attempt := 0; attempt < 20; attempt++ {
		da := backoffDelay(a, attempt, minB, maxB)
		db := backoffDelay(b, attempt, minB, maxB)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		uncapped := minB << uint(attempt)
		ceil := uncapped
		if attempt > 10 || ceil > maxB || ceil <= 0 {
			ceil = maxB
		}
		if da > ceil || da < ceil/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, da, ceil/2, ceil)
		}
	}
	if d := backoffDelay(xrand.New(1), 500, minB, maxB); d > maxB || d < maxB/2 {
		t.Errorf("huge attempt: delay %v outside [%v, %v]", d, maxB/2, maxB)
	}
}

// TestNewClientRejectsBadAddress: an unparsable host:port fails fast at
// construction instead of spinning in the dialer forever.
func TestNewClientRejectsBadAddress(t *testing.T) {
	for _, addr := range []string{"", "no-port", "host:port:extra"} {
		if _, err := NewClient(ClientConfig{Addr: addr}); err == nil {
			t.Errorf("address %q accepted", addr)
		}
	}
}

// TestClientBufferOverflowCounted: with no server to drain it, a tiny
// buffer drops the oldest events — every one of them counted, and the
// Enqueued = Acked + Dropped identity holds after Close.
func TestClientBufferOverflowCounted(t *testing.T) {
	dialErr := errors.New("collectorsvc: test dialer is offline")
	c, err := NewClient(ClientConfig{
		Addr:         "127.0.0.1:1",
		ID:           1,
		Buffer:       8,
		MinBackoff:   time.Hour, // park the dialer after the first failure
		MaxBackoff:   time.Hour,
		FlushTimeout: 50 * time.Millisecond,
		Dial:         func(string) (net.Conn, error) { return nil, dialErr },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	ev := dataplane.LoopEvent{Report: detect.Report{Reporter: 7, Hops: 2}, Flow: 1}
	for i := 0; i < n; i++ {
		c.Send(ev, 2)
	}
	// Wait for the first dial attempt so the failure count below is
	// deterministic (the run goroutine parks in its hour-long backoff
	// right after it).
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().DialFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dialer never attempted")
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.Enqueued != n {
		t.Errorf("enqueued %d, want %d", st.Enqueued, n)
	}
	if st.Dropped != n-8 {
		t.Errorf("dropped %d, want %d (buffer of 8)", st.Dropped, n-8)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Acked != 0 || st.Enqueued != st.Acked+st.Dropped {
		t.Errorf("identity broken after close: %+v", st)
	}
	if st.DialFailures == 0 {
		t.Error("dial failures not counted")
	}
	// Late sends after Close are absorbed into the identity, not lost.
	c.Send(ev, 2)
	st = c.Stats()
	if st.Enqueued != st.Acked+st.Dropped {
		t.Errorf("identity broken by post-close send: %+v", st)
	}
}

// TestClientReconnectsWithBackoff: a dialer that fails a few times and
// then succeeds sees its events delivered; the failures are counted.
func TestClientReconnectsWithBackoff(t *testing.T) {
	srv := NewServer(ServerConfig{Shards: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	fails := 3
	c, err := NewClient(ClientConfig{
		Addr:       addr.String(),
		ID:         2,
		Seed:       7,
		MinBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Dial: func(a string) (net.Conn, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("collectorsvc: test dial refused")
			}
			return net.DialTimeout("tcp", a, time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 3, Hops: 4}, Flow: uint32(i)}, 4)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Acked != n || st.Dropped != 0 {
		t.Fatalf("acked=%d dropped=%d, want %d/0 (stats %+v)", st.Acked, st.Dropped, n, st)
	}
	if st.DialFailures != 3 || st.Connects == 0 {
		t.Errorf("dial accounting: %+v", st)
	}
	srv.Shutdown()
	if got := srv.Stats().Ingested; got != n {
		t.Errorf("server ingested %d, want %d", got, n)
	}
}
