package collectorsvc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/xhash"
)

// ServerConfig tunes the collector service. Zero values select the
// defaults noted per field.
type ServerConfig struct {
	// Shards is the number of independent ingest shards, each with its
	// own queue, lock, dataplane.Controller, dedup state, and quarantine
	// state. Events are routed by flow hash, so one flow's reports always
	// land on one shard and its dedup window sees the complete, ordered
	// hop history. <= 0 selects DefaultShards.
	Shards int
	// QueueDepth bounds each shard's ingest queue. When a queue is full,
	// pushing a new event drops the oldest queued one (counted in
	// ServerStats.QueueDropped) rather than blocking the connection
	// reader — backpressure never stalls the accept loop or a socket.
	// <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// Controller configures each shard's controller. The per-shard
	// configs are identical, so merged stats preserve the admission
	// identities exactly.
	Controller dataplane.ControllerConfig
	// MaxFlows bounds each shard's per-flow dedup map. When the bound is
	// hit the map is cleared (counted in ServerStats.FlowEvictions): a
	// report for an evicted flow may then be accepted where a single
	// unbounded controller would have deduplicated it — bounded memory
	// is bought with (counted) duplicate admissions, never with loss.
	// <= 0 selects DefaultMaxFlows.
	MaxFlows int
	// AckEvery acknowledges after this many accounted frames even if the
	// connection stays busy; an ack is always flushed when the reader
	// goes idle at a batch boundary. <= 0 selects DefaultAckEvery.
	AckEvery int
}

// Defaults for ServerConfig's knobs.
const (
	DefaultShards     = 4
	DefaultQueueDepth = 1024
	DefaultMaxFlows   = 1 << 16
	DefaultAckEvery   = 64
)

// ServerStats is a snapshot of the service-level counters (the
// controller-level counters live in the per-shard ControllerStats).
// Accounting identity, once queues are drained: Ingested = sum over
// shards of controller Delivered + QueueDropped.
type ServerStats struct {
	// Conns counts connections accepted over the server's lifetime;
	// ActiveConns is the current count.
	Conns       uint64 `json:"conns"`
	ActiveConns int    `json:"active_conns"`
	// Frames counts every well-formed frame read; BadFrames counts
	// decode failures (each kills its connection).
	Frames    uint64 `json:"frames"`
	BadFrames uint64 `json:"bad_frames"`
	// Dupes counts transport duplicates: frames whose sequence number
	// was already accounted for this client (retransmissions after a
	// connection kill). They are acknowledged but not re-ingested.
	Dupes uint64 `json:"dupes"`
	// Ingested counts unique report frames accepted into shard queues;
	// Ticks counts unique tick frames applied.
	Ingested uint64 `json:"ingested"`
	Ticks    uint64 `json:"ticks"`
	// QueueDropped counts events evicted from full shard queues
	// (drop-oldest), FlowEvictions the dedup-map clears.
	QueueDropped  uint64 `json:"queue_dropped"`
	FlowEvictions uint64 `json:"flow_evictions"`
}

// Server is the collector service: an accept loop, one reader goroutine
// per connection, and one worker goroutine per shard draining that
// shard's queue into its controller.
type Server struct {
	cfg ServerConfig

	shards []*shard

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	clients map[uint64]*clientSeq
	closed  bool

	connWG  sync.WaitGroup
	shardWG sync.WaitGroup

	conns64    atomic.Uint64
	frames     atomic.Uint64
	badFrames  atomic.Uint64
	dupes      atomic.Uint64
	ingested   atomic.Uint64
	ticks      atomic.Uint64
	serveErr   error
	serveEnded chan struct{}
}

// clientSeq is the per-client exactly-once high-water mark. It survives
// reconnects (keyed by the hello's client id) and is atomic because a
// killed connection's reader can linger briefly while the replacement
// connection is already streaming.
type clientSeq struct {
	last atomic.Uint64
}

// account returns whether seq is new for this client, advancing the
// high-water mark when it is.
func (cs *clientSeq) account(seq uint64) bool {
	for {
		cur := cs.last.Load()
		if seq <= cur {
			return false
		}
		if cs.last.CompareAndSwap(cur, seq) {
			return true
		}
	}
}

// shardItem is one queued unit of work: a report (with its dedup hop)
// or an epoch tick.
type shardItem struct {
	ev   dataplane.LoopEvent
	hop  int
	tick bool
}

// shard is one independent ingest lane: bounded ring queue, controller,
// and per-flow dedup windows. The queue is guarded by mu; the dedup map
// is touched only by the shard's worker goroutine.
type shard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ring    []shardItem
	head, n int
	dropped uint64
	closed  bool

	ctrl      *dataplane.Controller
	flows     map[uint32]*dataplane.DedupWindow
	maxFlows  int
	evictions atomic.Uint64
}

func newShard(ctrlCfg dataplane.ControllerConfig, depth, maxFlows int) *shard {
	sh := &shard{
		ring:     make([]shardItem, depth),
		ctrl:     dataplane.NewControllerWithConfig(ctrlCfg),
		flows:    make(map[uint32]*dataplane.DedupWindow),
		maxFlows: maxFlows,
	}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// push enqueues it, evicting the oldest queued item when full. It never
// blocks: the connection reader must keep draining its socket no matter
// how far behind the shard worker is.
func (sh *shard) push(it shardItem) {
	sh.mu.Lock()
	if sh.n == len(sh.ring) {
		sh.ring[sh.head] = it // overwrite the oldest
		sh.head = (sh.head + 1) % len(sh.ring)
		sh.dropped++
	} else {
		sh.ring[(sh.head+sh.n)%len(sh.ring)] = it
		sh.n++
	}
	sh.mu.Unlock()
	sh.cond.Signal()
}

// pop dequeues the oldest item, blocking until one arrives or the shard
// is closed and drained (ok=false).
func (sh *shard) pop() (shardItem, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.n == 0 {
		if sh.closed {
			return shardItem{}, false
		}
		sh.cond.Wait()
	}
	it := sh.ring[sh.head]
	sh.ring[sh.head] = shardItem{}
	sh.head = (sh.head + 1) % len(sh.ring)
	sh.n--
	return it, true
}

// run is the shard worker: it drains the queue into the controller,
// replaying each report through the same per-flow dedup path the
// in-process data plane uses, so the admission totals match a single
// local controller exactly (for quarantine-free configs; see DESIGN §8
// for why per-reporter quarantine is a per-shard property).
func (sh *shard) run() {
	for {
		it, ok := sh.pop()
		if !ok {
			return
		}
		if it.tick {
			sh.ctrl.Tick()
			continue
		}
		w := sh.flows[it.ev.Flow]
		if w == nil {
			if len(sh.flows) >= sh.maxFlows {
				sh.flows = make(map[uint32]*dataplane.DedupWindow)
				sh.evictions.Add(1)
			}
			w = &dataplane.DedupWindow{}
			sh.flows[it.ev.Flow] = w
		}
		sh.ctrl.DeliverFlow(it.ev, w, it.hop)
	}
}

// NewServer returns an idle server; call Serve or Start to run it.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = DefaultMaxFlows
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = DefaultAckEvery
	}
	s := &Server{
		cfg:        cfg,
		conns:      make(map[net.Conn]struct{}),
		clients:    make(map[uint64]*clientSeq),
		serveEnded: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(cfg.Controller, cfg.QueueDepth, cfg.MaxFlows))
	}
	for _, sh := range s.shards {
		sh := sh
		s.shardWG.Add(1)
		go func() { defer s.shardWG.Done(); sh.run() }()
	}
	return s
}

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collectorsvc: listen %s: %w", addr, err)
	}
	go s.serve(ln)
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown (or a fatal listener
// error) and blocks until the accept loop ends. Shard draining is
// completed by Shutdown, not Serve.
func (s *Server) Serve(ln net.Listener) error {
	s.serve(ln)
	return s.serveErr
}

func (s *Server) serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		close(s.serveEnded)
		return
	}
	s.ln = ln
	s.mu.Unlock()
	defer close(s.serveEnded)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.serveErr = fmt.Errorf("collectorsvc: accept: %w", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.conns64.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
		}()
	}
}

// shardFor routes a flow to its shard. The hash is keyed so that flow
// IDs with structure (the scenarios pack epoch/src/k into them) still
// spread evenly.
func (s *Server) shardFor(flow uint32) *shard {
	return s.shards[int(xhash.Mix32(flow)%uint32(len(s.shards)))]
}

// handle is the per-connection reader: hello, then a stream of report
// and tick frames, acknowledged in batches. Any decode error kills the
// connection (the client reconnects and retransmits unacknowledged
// frames; sequence accounting absorbs the overlap).
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<15)
	bw := bufio.NewWriterSize(conn, 1<<10)
	scratch := make([]byte, 0, 256)
	ackBuf := make([]byte, 0, lenPrefixSize+frameOverhead+seqBodyLen)

	f, scratch, err := ReadFrame(br, scratch)
	if err != nil || f.Type != FrameHello {
		s.badFrames.Add(1)
		return
	}
	cs := s.clientState(f.ClientID)

	var lastSeen, lastAcked uint64
	pending := 0
	flushAck := func() bool {
		if pending == 0 && lastSeen == lastAcked {
			return true
		}
		ackBuf = AppendAck(ackBuf[:0], lastSeen)
		if _, err := bw.Write(ackBuf); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		lastAcked = lastSeen
		pending = 0
		return true
	}

	for {
		f, scratch, err = ReadFrame(br, scratch)
		if err != nil {
			if isWireError(err) {
				s.badFrames.Add(1)
			}
			flushAck()
			return
		}
		s.frames.Add(1)
		switch f.Type {
		case FrameReport:
			if f.Seq > lastSeen {
				lastSeen = f.Seq
			}
			if !cs.account(f.Seq) {
				s.dupes.Add(1)
			} else {
				s.ingested.Add(1)
				s.shardFor(f.Event.Flow).push(shardItem{ev: f.Event, hop: f.Hop})
			}
			pending++
		case FrameTick:
			if f.Seq > lastSeen {
				lastSeen = f.Seq
			}
			if !cs.account(f.Seq) {
				s.dupes.Add(1)
			} else {
				s.ticks.Add(1)
				for _, sh := range s.shards {
					sh.push(shardItem{tick: true})
				}
			}
			pending++
		case FrameHello:
			// A repeated hello rebinds the connection (harmless).
			cs = s.clientState(f.ClientID)
		default:
			s.badFrames.Add(1)
			flushAck()
			return
		}
		// Acknowledge at batch boundaries (socket idle) or every
		// AckEvery frames, whichever comes first.
		if pending >= s.cfg.AckEvery || br.Buffered() == 0 {
			if !flushAck() {
				return
			}
		}
	}
}

// isWireError reports whether err is a frame-format error (as opposed
// to a transport error like EOF or a closed socket).
func isWireError(err error) bool {
	return errors.Is(err, ErrBadFrame) || errors.Is(err, ErrBadVersion) || errors.Is(err, ErrOversizeFrame)
}

// clientState returns (creating on first sight) the exactly-once state
// for a client identity.
func (s *Server) clientState(id uint64) *clientSeq {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.clients[id]
	if cs == nil {
		cs = &clientSeq{}
		s.clients[id] = cs
	}
	return cs
}

// DisconnectAll closes every active connection — the fault-injection
// surface the reconnect tests (and chaos drills) use. Clients are
// expected to reconnect and retransmit; sequence accounting keeps the
// ingest exactly-once across the kill.
func (s *Server) DisconnectAll() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Shutdown drains the server gracefully: stop accepting, close active
// connections, wait for their readers, then flush every shard queue
// into its controller and stop the workers. After Shutdown returns, the
// stats are final and the accounting identities hold exactly.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.serveEnded
		s.connWG.Wait()
		s.shardWG.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
		<-s.serveEnded
	}
	s.DisconnectAll()
	s.connWG.Wait()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
		sh.cond.Broadcast()
	}
	s.shardWG.Wait()
}

// Stats snapshots the service-level counters.
func (s *Server) Stats() ServerStats {
	var st ServerStats
	st.Conns = s.conns64.Load()
	st.Frames = s.frames.Load()
	st.BadFrames = s.badFrames.Load()
	st.Dupes = s.dupes.Load()
	st.Ingested = s.ingested.Load()
	st.Ticks = s.ticks.Load()
	s.mu.Lock()
	st.ActiveConns = len(s.conns)
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.QueueDropped += sh.dropped
		sh.mu.Unlock()
		st.FlowEvictions += sh.evictions.Load()
	}
	return st
}

// ShardStats snapshots each shard controller, in shard order.
func (s *Server) ShardStats() []dataplane.ControllerStats {
	out := make([]dataplane.ControllerStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.ctrl.Stats()
	}
	return out
}

// ControllerStats merges the shard controllers into one aggregate
// snapshot; the admission identities survive the merge exactly (see
// dataplane.MergeControllerStats).
func (s *Server) ControllerStats() dataplane.ControllerStats {
	return dataplane.MergeControllerStats(s.ShardStats()...)
}

// Events returns the buffered events of every shard, shard order then
// ring order — the admin endpoint's recent-events view. (There is
// deliberately no merged TopReporters: sharding is by flow, so one
// reporter's accept counts scatter across shards and a global ranking
// would need cross-shard count merging the buffered rings can't
// support; rank the aggregate from Events or a downstream store.)
func (s *Server) Events() []dataplane.LoopEvent {
	var out []dataplane.LoopEvent
	for _, sh := range s.shards {
		out = append(out, sh.ctrl.Events()...)
	}
	return out
}
