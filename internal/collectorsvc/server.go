package collectorsvc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/xhash"
)

// ServerConfig tunes the collector service. Zero values select the
// defaults noted per field.
type ServerConfig struct {
	// Shards is the number of independent ingest shards, each with its
	// own queue, lock, dataplane.Controller, dedup state, and quarantine
	// state. Events are routed by flow hash, so one flow's reports always
	// land on one shard and its dedup window sees the complete, ordered
	// hop history. <= 0 selects DefaultShards.
	Shards int
	// QueueDepth bounds each shard's ingest queue. When a queue is full,
	// pushing a new event drops the oldest queued one (counted in
	// ServerStats.QueueDropped) rather than blocking the connection
	// reader — backpressure never stalls the accept loop or a socket.
	// <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// Controller configures each shard's controller. The per-shard
	// configs are identical, so merged stats preserve the admission
	// identities exactly.
	Controller dataplane.ControllerConfig
	// MaxFlows bounds each shard's per-flow dedup map. When the bound is
	// hit the map is cleared (counted in ServerStats.FlowEvictions): a
	// report for an evicted flow may then be accepted where a single
	// unbounded controller would have deduplicated it — bounded memory
	// is bought with (counted) duplicate admissions, never with loss.
	// <= 0 selects DefaultMaxFlows.
	MaxFlows int
	// AckEvery acknowledges after this many accounted frames even if the
	// connection stays busy; an ack is always flushed when the reader
	// goes idle at a batch boundary. <= 0 selects DefaultAckEvery.
	AckEvery int
	// Batch caps the frames a connection reader ingests as one unit: one
	// read coalesces every complete frame already buffered on the socket
	// (up to this cap), and the whole batch is accounted, journaled, and
	// handed to the shard queues under a single journal-lock acquisition
	// with one queue push per touched shard. Larger batches amortize
	// locks and syscalls; smaller ones bound ack latency under sustained
	// load. <= 0 selects DefaultBatch.
	Batch int
	// Journal, when non-nil, makes ingest crash-safe: every accounted
	// frame is appended (and flushed to the OS before it is
	// acknowledged), and segment rotation writes a consistent snapshot
	// of the sequence/dedup state. Open the journal with OpenJournal and
	// build the server with NewRecoveredServer so prior history replays;
	// the caller closes the journal after Shutdown.
	Journal *Journal
	// ReadTimeout bounds the silence between frames on a connection.
	// A peer that sends nothing — not even a heartbeat — for this long
	// is reaped, which is both dead-peer detection and idle-connection
	// reaping (healthy idle clients heartbeat well inside it). <= 0
	// selects DefaultReadTimeout.
	ReadTimeout time.Duration
	// WriteTimeout bounds each acknowledgement flush; a peer that stops
	// reading cannot park the reader goroutine forever. <= 0 selects
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// MaxConns caps concurrent connections. Per-connection buffers are
	// bounded (read 32 KiB, write 1 KiB, frame bodies MaxFrameBody), so
	// this cap bounds total connection memory. Excess connections are
	// closed at accept and counted. <= 0 selects DefaultMaxConns.
	MaxConns int
}

// Defaults for ServerConfig's knobs.
const (
	DefaultShards       = 4
	DefaultQueueDepth   = 1024
	DefaultMaxFlows     = 1 << 16
	DefaultAckEvery     = 64
	DefaultBatch        = 256
	DefaultReadTimeout  = 30 * time.Second
	DefaultWriteTimeout = 10 * time.Second
	DefaultMaxConns     = 256
)

// ServerStats is a snapshot of the service-level counters (the
// controller-level counters live in the per-shard ControllerStats).
// Accounting identity, once queues are drained: Ingested = sum over
// shards of controller Delivered + QueueDropped.
type ServerStats struct {
	// Conns counts connections accepted over the server's lifetime;
	// ActiveConns is the current count.
	Conns       uint64 `json:"conns"`
	ActiveConns int    `json:"active_conns"`
	// Frames counts every well-formed frame read; BadFrames counts
	// protocol violations — malformed or oversize frames, wrong
	// versions, unexpected frame types (each kills its connection).
	// Peers that vanish mid-frame or before their hello are connection
	// failures, not violations, and are not counted here.
	Frames    uint64 `json:"frames"`
	BadFrames uint64 `json:"bad_frames"`
	// Dupes counts transport duplicates: frames whose sequence number
	// was already accounted for this client (retransmissions after a
	// connection kill). They are acknowledged but not re-ingested.
	Dupes uint64 `json:"dupes"`
	// Ingested counts unique report frames accepted into shard queues;
	// Ticks counts unique tick frames applied.
	Ingested uint64 `json:"ingested"`
	Ticks    uint64 `json:"ticks"`
	// CrossDupes counts journal records discarded during a staged
	// recovery because a cluster peer's accounted ranges showed another
	// node had already ingested them — the cross-node analogue of Dupes.
	// It only moves on the recovery path, never during live ingest.
	CrossDupes uint64 `json:"cross_dupes"`
	// QueueDropped counts events evicted from full shard queues,
	// FlowEvictions the dedup-map clears. Overload shedding prefers
	// evicting queued ticks over loop reports; SheddedTicks counts the
	// QueueDropped subset that were ticks.
	QueueDropped  uint64 `json:"queue_dropped"`
	SheddedTicks  uint64 `json:"shedded_ticks"`
	FlowEvictions uint64 `json:"flow_evictions"`
	// ConnsRejected counts connections closed at accept because
	// MaxConns was reached.
	ConnsRejected uint64 `json:"conns_rejected"`
}

// Server is the collector service: an accept loop, one reader goroutine
// per connection, and one worker goroutine per shard draining that
// shard's queue into its controller.
type Server struct {
	cfg ServerConfig

	shards []*shard

	mu            sync.Mutex
	ln            net.Listener
	conns         map[net.Conn]struct{}
	clients       map[uint64]*clientSeq
	closed        bool
	recovering    bool // staged recovery not yet committed
	healthOverlay func(Health) Health

	connWG  sync.WaitGroup
	shardWG sync.WaitGroup

	conns64       atomic.Uint64
	connsRejected atomic.Uint64
	crossDupes    atomic.Uint64
	frames        atomic.Uint64
	badFrames     atomic.Uint64
	dupes         atomic.Uint64
	ingested      atomic.Uint64
	ticks         atomic.Uint64
	serveErr      error
	serveEnded    chan struct{}

	// Recovery baselines: cumulative totals carried over from the last
	// journal snapshot for the counters that live in shard state (which
	// is rebuilt fresh on recovery). The service counters above are
	// Store()d directly from the snapshot instead.
	journal        *Journal
	queueDropBase  uint64
	flowEvictBase  uint64
	ctrlBase       dataplane.ControllerStats
	recoveryReport RecoveryStats
}

// RecoveryStats summarizes what a journal replay restored — what
// collectord prints at boot after a crash.
type RecoveryStats struct {
	// Records and Snapshots are the journal records applied.
	Records   uint64 `json:"records"`
	Snapshots uint64 `json:"snapshots"`
	// TruncatedBytes is the torn tail discarded from the final segment.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Clients and Flows size the restored exactly-once and dedup state.
	Clients int `json:"clients"`
	Flows   int `json:"flows"`
	// Ingested and Ticks are the recovered cumulative totals.
	Ingested uint64 `json:"ingested"`
	Ticks    uint64 `json:"ticks"`
	// CrossDupes counts staged records discarded at Commit because a
	// cluster peer's accounted ranges already covered them.
	CrossDupes uint64 `json:"cross_dupes"`
}

// SeqSpan is one contiguous run of accounted sequence numbers,
// inclusive on both ends.
type SeqSpan struct {
	First uint64 `json:"first"`
	Last  uint64 `json:"last"`
}

// ClientRange is one client identity's accounted sequence ranges — what
// this node's exactly-once state actually covers, span by span. The
// cluster recovery handoff exchanges these so a rejoining node can
// discount journal records a live peer already ingested.
type ClientRange struct {
	ID    uint64    `json:"id"`
	Spans []SeqSpan `json:"spans"`
}

// clientSeq is the per-client exactly-once state. The high-water mark
// survives reconnects (keyed by the hello's client id) and is atomic
// because a killed connection's reader can linger briefly while the
// replacement connection is already streaming. Alongside it, spans
// records exactly which sequence numbers were accounted: a live stream
// is consecutive, so the list stays at one span per ownership stint and
// only fragments when a stream resumes past a gap — frames the client
// streamed to another cluster node in between, precisely the ranges a
// recovery handoff must not claim as this node's.
type clientSeq struct {
	last atomic.Uint64

	mu    sync.Mutex
	spans []SeqSpan
}

// account returns whether seq is new for this client, advancing the
// high-water mark (and the span list) when it is.
func (cs *clientSeq) account(seq uint64) bool {
	for {
		cur := cs.last.Load()
		if seq <= cur {
			return false
		}
		if cs.last.CompareAndSwap(cur, seq) {
			cs.noteSpan(seq)
			return true
		}
	}
}

// noteSpan folds one accounted sequence number into the sorted,
// non-adjacent span list. Concurrent winners of the account CAS can
// arrive here out of order, so the fold is a general sorted insert with
// neighbour merging rather than a tail append.
func (cs *clientSeq) noteSpan(seq uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	spans := cs.spans
	// Walk from the tail: seq is almost always the new maximum.
	i := len(spans)
	for i > 0 && spans[i-1].First > seq {
		i--
	}
	if i > 0 && seq <= spans[i-1].Last {
		return // already covered
	}
	left := i > 0 && spans[i-1].Last+1 == seq
	right := i < len(spans) && spans[i].First == seq+1
	switch {
	case left && right:
		spans[i-1].Last = spans[i].Last
		cs.spans = append(spans[:i], spans[i+1:]...)
	case left:
		spans[i-1].Last = seq
	case right:
		spans[i].First = seq
	default:
		cs.spans = append(spans, SeqSpan{})
		copy(cs.spans[i+1:], cs.spans[i:])
		cs.spans[i] = SeqSpan{First: seq, Last: seq}
	}
}

// snapshotSpans copies the span list for a ranges reply or a journal
// snapshot.
func (cs *clientSeq) snapshotSpans() []SeqSpan {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return append([]SeqSpan(nil), cs.spans...)
}

// restoreSpans installs a recovered span list wholesale (replay is
// single-threaded; no concurrent accounts exist yet).
func (cs *clientSeq) restoreSpans(spans []SeqSpan) {
	cs.mu.Lock()
	cs.spans = append(cs.spans[:0], spans...)
	if n := len(cs.spans); n > 0 {
		cs.last.Store(cs.spans[n-1].Last)
	} else {
		cs.last.Store(0)
	}
	cs.mu.Unlock()
}

// shardItem is one queued unit of work: a report (with its dedup hop),
// an epoch tick, or a snapshot barrier.
type shardItem struct {
	ev      dataplane.LoopEvent
	hop     int
	tick    bool
	barrier *shardBarrier
}

// shardBarrier quiesces the shard workers for a snapshot: each worker
// acks on reached when it dequeues the barrier (its queue prefix fully
// delivered) and then parks until resume closes. While every worker is
// parked, shard flows maps and controller stats are a consistent cut.
// Barriers are only pushed while the journal mutex serializes all
// ingest, so no later push can race one out of the queue.
type shardBarrier struct {
	reached chan struct{}
	resume  chan struct{}
}

// shard is one independent ingest lane: bounded ring queue, controller,
// and per-flow dedup windows. The queue is guarded by mu; the dedup map
// is touched only by the shard's worker goroutine.
type shard struct {
	mu           sync.Mutex
	cond         *sync.Cond
	ring         []shardItem
	head, n      int
	dropped      uint64
	sheddedTicks uint64
	closed       bool

	ctrl      *dataplane.Controller
	flows     map[uint32]*dataplane.DedupWindow
	maxFlows  int
	evictions atomic.Uint64
}

func newShard(ctrlCfg dataplane.ControllerConfig, depth, maxFlows int) *shard {
	sh := &shard{
		ring:     make([]shardItem, depth),
		ctrl:     dataplane.NewControllerWithConfig(ctrlCfg),
		flows:    make(map[uint32]*dataplane.DedupWindow),
		maxFlows: maxFlows,
	}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// push enqueues it, evicting a queued item when full. It never blocks:
// the connection reader must keep draining its socket no matter how far
// behind the shard worker is. Overload shedding prefers evicting a
// queued tick (the controller clock advancing late is recoverable;
// a lost loop report is the one thing the paper's pipeline exists to
// deliver); only when no tick is queued does it drop the oldest report.
func (sh *shard) push(it shardItem) {
	sh.mu.Lock()
	sh.pushLocked(it)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// pushBatch enqueues a slice of items with one lock acquisition and one
// worker wakeup — the batched hand-off the connection readers use so
// queue-lock traffic scales with batches, not frames. Eviction
// semantics per item are identical to push.
func (sh *shard) pushBatch(items []shardItem) {
	if len(items) == 0 {
		return
	}
	sh.mu.Lock()
	for _, it := range items {
		sh.pushLocked(it)
	}
	sh.mu.Unlock()
	sh.cond.Signal()
}

func (sh *shard) pushLocked(it shardItem) {
	if sh.n == len(sh.ring) {
		if !sh.shedTickLocked() {
			sh.ring[sh.head] = shardItem{} // drop the oldest
			sh.head = (sh.head + 1) % len(sh.ring)
			sh.n--
			sh.dropped++
		}
	}
	sh.ring[(sh.head+sh.n)%len(sh.ring)] = it
	sh.n++
}

// shedTickLocked evicts the oldest queued tick, preserving the order of
// everything else, and reports whether one was found. O(n) in the queue
// depth, but only on overflow and only while a tick is actually queued.
func (sh *shard) shedTickLocked() bool {
	at := -1
	for i := 0; i < sh.n; i++ {
		idx := (sh.head + i) % len(sh.ring)
		if sh.ring[idx].tick {
			at = i
			break
		}
	}
	if at < 0 {
		return false
	}
	for i := at; i < sh.n-1; i++ {
		sh.ring[(sh.head+i)%len(sh.ring)] = sh.ring[(sh.head+i+1)%len(sh.ring)]
	}
	sh.ring[(sh.head+sh.n-1)%len(sh.ring)] = shardItem{}
	sh.n--
	sh.dropped++
	sh.sheddedTicks++
	return true
}

// popBatch dequeues up to cap(dst)-len(dst) items into dst with one
// lock acquisition, blocking until at least one arrives or the shard is
// closed and drained (ok=false).
func (sh *shard) popBatch(dst []shardItem) ([]shardItem, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.n == 0 {
		if sh.closed {
			return dst, false
		}
		sh.cond.Wait()
	}
	for len(dst) < cap(dst) && sh.n > 0 {
		dst = append(dst, sh.ring[sh.head])
		sh.ring[sh.head] = shardItem{}
		sh.head = (sh.head + 1) % len(sh.ring)
		sh.n--
	}
	return dst, true
}

// shardDrainBatch caps the items a worker drains per queue-lock
// acquisition (and per controller-lock acquisition for a report run).
const shardDrainBatch = 256

// run is the shard worker: it drains the queue into the controller,
// replaying each report through the same per-flow dedup path the
// in-process data plane uses, so the admission totals match a single
// local controller exactly (for quarantine-free configs; see DESIGN §8
// for why per-reporter quarantine is a per-shard property). Draining is
// batched end to end: one queue-lock acquisition pops up to
// shardDrainBatch items, and each run of consecutive reports between
// ticks/barriers is delivered under one controller-lock acquisition.
// Delivery order — and therefore every admission decision — is
// identical to popping one item at a time.
func (sh *shard) run() {
	buf := make([]shardItem, 0, shardDrainBatch)
	fds := make([]dataplane.FlowDelivery, 0, shardDrainBatch)
	for {
		var ok bool
		buf, ok = sh.popBatch(buf[:0])
		if !ok {
			return
		}
		fds = fds[:0]
		flush := func() {
			if len(fds) > 0 {
				sh.ctrl.DeliverFlowBatch(fds)
				fds = fds[:0]
			}
		}
		for i := range buf {
			it := &buf[i]
			if it.barrier != nil {
				flush()
				it.barrier.reached <- struct{}{}
				<-it.barrier.resume
				continue
			}
			if it.tick {
				flush()
				sh.ctrl.Tick()
				continue
			}
			fds = append(fds, dataplane.FlowDelivery{Ev: it.ev, W: sh.window(it.ev.Flow), Hop: it.hop})
			buf[i] = shardItem{} // release the event's member slice
		}
		flush()
	}
}

// window returns (creating if needed) the flow's dedup window, applying
// the bounded-map eviction policy.
func (sh *shard) window(flow uint32) *dataplane.DedupWindow {
	w := sh.flows[flow]
	if w == nil {
		if len(sh.flows) >= sh.maxFlows {
			sh.flows = make(map[uint32]*dataplane.DedupWindow)
			sh.evictions.Add(1)
		}
		w = &dataplane.DedupWindow{}
		sh.flows[flow] = w
	}
	return w
}

// deliver runs one report through the per-flow dedup path into the
// controller — called directly (and single-threaded) by journal replay
// so recovery is worker-count invariant: replay resolves windows and
// delivers in exactly the order the live batched worker would.
func (sh *shard) deliver(ev dataplane.LoopEvent, hop int) {
	sh.ctrl.DeliverFlow(ev, sh.window(ev.Flow), hop)
}

// NewServer returns an idle server; call Serve or Start to run it.
// When cfg.Journal is set, new ingest is journaled but prior history is
// NOT replayed — use NewRecoveredServer for crash recovery.
func NewServer(cfg ServerConfig) *Server {
	s := buildServer(cfg)
	s.startWorkers()
	return s
}

// NewRecoveredServer builds a server and replays cfg.Journal into it
// before any worker or connection exists, so recovery is deterministic
// and worker-count invariant: records apply single-threaded, in journal
// order, through the same per-flow dedup path as live delivery. It
// returns what was restored; cfg.Journal must be set. It is the
// single-node form of NewStagedRecoveredServer: stage, then commit with
// no cross-node discard.
func NewRecoveredServer(cfg ServerConfig) (*Server, RecoveryStats, error) {
	st, err := NewStagedRecoveredServer(cfg)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	return st.Commit(nil)
}

func buildServer(cfg ServerConfig) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = DefaultMaxFlows
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = DefaultAckEvery
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	s := &Server{
		cfg:        cfg,
		journal:    cfg.Journal,
		conns:      make(map[net.Conn]struct{}),
		clients:    make(map[uint64]*clientSeq),
		serveEnded: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(cfg.Controller, cfg.QueueDepth, cfg.MaxFlows))
	}
	return s
}

func (s *Server) startWorkers() {
	for _, sh := range s.shards {
		sh := sh
		s.shardWG.Add(1)
		go func() { defer s.shardWG.Done(); sh.run() }()
	}
}

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collectorsvc: listen %s: %w", addr, err)
	}
	go s.serve(ln)
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown (or a fatal listener
// error) and blocks until the accept loop ends. Shard draining is
// completed by Shutdown, not Serve.
func (s *Server) Serve(ln net.Listener) error {
	s.serve(ln)
	return s.serveErr
}

func (s *Server) serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		close(s.serveEnded)
		return
	}
	s.ln = ln
	s.mu.Unlock()
	defer close(s.serveEnded)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.serveErr = fmt.Errorf("collectorsvc: accept: %w", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			conn.Close()
			s.connsRejected.Add(1)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.conns64.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
		}()
	}
}

// shardIndex routes a flow to its shard index. The hash is keyed so
// that flow IDs with structure (the scenarios pack epoch/src/k into
// them) still spread evenly.
func (s *Server) shardIndex(flow uint32) int {
	return int(xhash.Mix32(flow) % uint32(len(s.shards)))
}

// shardFor routes a flow to its shard.
func (s *Server) shardFor(flow uint32) *shard {
	return s.shards[s.shardIndex(flow)]
}

// batchItem is one decoded report or tick frame parked in a
// connection's ingest batch between the coalesced read and the batched
// account/journal/enqueue step.
type batchItem struct {
	seq  uint64
	ev   dataplane.LoopEvent
	hop  int
	tick bool
}

// handle is the per-connection reader: hello, then a stream of report
// and tick frames, acknowledged in batches. Any decode error kills the
// connection (the client reconnects and retransmits unacknowledged
// frames; sequence accounting absorbs the overlap). Every read and
// write is deadline-armed: a peer that goes silent for ReadTimeout or
// stops reading acks for WriteTimeout is reaped instead of parking this
// goroutine and its buffers forever.
//
// Reads are coalesced: one blocking read is followed by a drain of
// every complete frame the socket already delivered (frames are decoded
// in place from the 32 KiB read buffer, never copied out), so the
// syscall count scales with batches. The decoded batch is then
// accounted, journaled, and handed to the shard queues as one unit by
// ingestBatch, and one ack — covered by one journal Commit — closes it.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<15)
	bw := bufio.NewWriterSize(conn, 1<<10)
	ackBuf := make([]byte, 0, lenPrefixSize+frameOverhead+seqBodyLen)

	// A peer that connects and disappears before its hello is read —
	// a port probe, a half-open casualty, or a clean client racing
	// Shutdown — is not a protocol violation; only malformed bytes or
	// a well-formed non-hello frame count against badFrames, the same
	// policy the mid-stream loop applies.
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	f, err := ReadFrameBuffered(br)
	if err != nil {
		if isWireError(err) {
			s.badFrames.Add(1)
		}
		return
	}
	if f.Type != FrameHello {
		s.badFrames.Add(1)
		return
	}
	cs := s.clientState(f.ClientID)
	clientID := f.ClientID

	var lastSeen, lastAcked uint64
	pending := 0
	force := false
	flushAck := func() bool {
		if pending == 0 && lastSeen == lastAcked && !force {
			return true
		}
		// Nothing is acknowledged before the journal has flushed it to
		// the OS (and synced it, under FsyncAlways) — the ack is the
		// client's licence to forget, so it must not outrun durability.
		if s.journal != nil {
			s.journal.Commit()
			if s.journal.Failed() {
				// The commit could not make the batch durable: withhold
				// the ack and kill the connection, so the client keeps
				// retransmitting instead of forgetting frames that never
				// reached the journal. /healthz turns unready on the same
				// flag (Server.Healthy), which is the operator's signal.
				return false
			}
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		var err error
		if ackBuf, err = writeAck(bw, ackBuf, lastSeen); err != nil {
			return false
		}
		lastAcked = lastSeen
		pending = 0
		force = false
		return true
	}

	batch := make([]batchItem, 0, s.cfg.Batch)
	groups := make([][]shardItem, len(s.shards))
	ingest := func() {
		if len(batch) > 0 {
			s.ingestBatch(cs, clientID, batch, groups)
			batch = batch[:0]
		}
	}

	for {
		// The deadline re-arms per blocking read, so it bounds
		// inter-frame silence, not connection lifetime; the drained
		// frames below are already buffered and never touch the socket.
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		f, err = ReadFrameBuffered(br)
		if err != nil {
			if isWireError(err) {
				s.badFrames.Add(1)
			}
			flushAck()
			return
		}
		frames := uint64(1)
	drain:
		for {
			switch f.Type {
			case FrameReport:
				if f.Seq > lastSeen {
					lastSeen = f.Seq
				}
				batch = append(batch, batchItem{seq: f.Seq, ev: f.Event, hop: f.Hop})
				pending++
			case FrameTick:
				if f.Seq > lastSeen {
					lastSeen = f.Seq
				}
				batch = append(batch, batchItem{seq: f.Seq, tick: true})
				pending++
			case FrameHeartbeat:
				// Not sequence-accounted; answer with the current
				// high-water mark so an idle session has ack traffic
				// inside the client's staleness window.
				force = true
			case FrameHello:
				// A repeated hello with the same identity is a harmless
				// keep of the binding. A *different* identity rebinds the
				// connection: the old client's frames are ingested and
				// acknowledged first, then the ack state resets — lastSeen
				// and lastAcked are per-client sequence numbers, and
				// carrying them across the rebind would acknowledge
				// sequences the new client never sent.
				if f.ClientID != clientID {
					ingest()
					if !flushAck() {
						s.frames.Add(frames)
						return
					}
					cs = s.clientState(f.ClientID)
					clientID = f.ClientID
					lastSeen, lastAcked, pending = 0, 0, 0
				}
			default:
				s.badFrames.Add(1)
				s.frames.Add(frames)
				ingest()
				flushAck()
				return
			}
			if len(batch) >= s.cfg.Batch || !frameBuffered(br) {
				break drain
			}
			if f, err = ReadFrameBuffered(br); err != nil {
				// The frame was fully buffered, so this is a frame-format
				// error, not a transport one.
				s.badFrames.Add(1)
				s.frames.Add(frames)
				ingest()
				flushAck()
				return
			}
			frames++
		}
		s.frames.Add(frames)
		ingest()
		// Acknowledge at batch boundaries (socket idle) or once at least
		// AckEvery frames are pending, whichever comes first.
		if pending >= s.cfg.AckEvery || br.Buffered() == 0 {
			if !flushAck() {
				return
			}
		}
	}
}

// writeAck flushes one acknowledgement frame for seq to the peer. The
// ack is the client's licence to forget the acknowledged frames, so the
// commit-before-ack rule (DESIGN §9) requires a Journal.Commit on every
// path into this function — the commitorder analyzer enforces that
// statically at each call site.
//
//unroller:ackpoint
func writeAck(bw *bufio.Writer, ackBuf []byte, seq uint64) ([]byte, error) {
	ackBuf = AppendAck(ackBuf[:0], seq)
	if _, err := bw.Write(ackBuf); err != nil {
		return ackBuf, err
	}
	return ackBuf, bw.Flush()
}

// ingestBatch accounts a batch of report/tick frames and, for the new
// ones, journals them and hands them to the shard queues. With a
// journal, the whole batch's account+append+enqueue runs under one
// journal-mutex acquisition: a rotation snapshot therefore always sees
// either none or all three effects of each frame (the §9 consistent-cut
// argument, now at batch grain — rotation is checked once per batch, so
// a segment may overshoot SegmentBytes by at most one batch of
// records). Journal records are encoded through the journal's shared
// scratch, so a batch appends without per-report allocations, and the
// caller's single Commit (in flushAck) makes all of them durable at
// once.
//
// groups is the caller's reusable per-shard staging area: new reports
// are bucketed by shard and pushed as one slice per shard, so queue
// locks and worker wakeups are per batch, not per report. Ticks fan out
// to every shard and act as sub-batch boundaries — grouped reports are
// flushed first, so each shard's queue sees reports and ticks in
// arrival order, and a journal replay (which applies records one at a
// time, in order) reproduces the exact same delivery sequence.
func (s *Server) ingestBatch(cs *clientSeq, clientID uint64, batch []batchItem, groups [][]shardItem) {
	j := s.journal
	if j != nil {
		j.mu.Lock()
		defer j.mu.Unlock()
	}
	var ingested, ticks, dupes uint64
	for i := range batch {
		it := &batch[i]
		if !cs.account(it.seq) {
			dupes++
			continue
		}
		if it.tick {
			ticks++
			if j != nil {
				j.appendTickLocked(clientID, it.seq)
			}
			flushShardGroups(s.shards, groups)
			for _, sh := range s.shards {
				sh.push(shardItem{tick: true})
			}
			continue
		}
		ingested++
		if j != nil {
			j.appendReportLocked(clientID, it.seq, eventToRecord(it.ev), it.hop)
		}
		idx := s.shardIndex(it.ev.Flow)
		groups[idx] = append(groups[idx], shardItem{ev: it.ev, hop: it.hop})
	}
	flushShardGroups(s.shards, groups)
	if dupes > 0 {
		s.dupes.Add(dupes)
	}
	if ingested > 0 {
		s.ingested.Add(ingested)
	}
	if ticks > 0 {
		s.ticks.Add(ticks)
	}
	if j != nil && j.needsRotateLocked() {
		s.rotateWithSnapshotLocked(j)
	}
}

// flushShardGroups pushes each shard's staged report slice and resets
// the groups for reuse (pushBatch copies items into the ring, so the
// backing arrays are safe to recycle).
func flushShardGroups(shards []*shard, groups [][]shardItem) {
	for i, g := range groups {
		if len(g) > 0 {
			shards[i].pushBatch(g)
			groups[i] = g[:0]
		}
	}
}

// isWireError reports whether err is a frame-format error (as opposed
// to a transport error like EOF or a closed socket).
func isWireError(err error) bool {
	return errors.Is(err, ErrBadFrame) || errors.Is(err, ErrBadVersion) || errors.Is(err, ErrOversizeFrame)
}

// clientState returns (creating on first sight) the exactly-once state
// for a client identity.
func (s *Server) clientState(id uint64) *clientSeq {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.clients[id]
	if cs == nil {
		cs = &clientSeq{}
		s.clients[id] = cs
	}
	return cs
}

// DisconnectAll closes every active connection — the fault-injection
// surface the reconnect tests (and chaos drills) use. Clients are
// expected to reconnect and retransmit; sequence accounting keeps the
// ingest exactly-once across the kill.
func (s *Server) DisconnectAll() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Shutdown drains the server gracefully: stop accepting, close active
// connections, wait for their readers, then flush every shard queue
// into its controller and stop the workers. After Shutdown returns, the
// stats are final and the accounting identities hold exactly.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.serveEnded
		s.connWG.Wait()
		s.shardWG.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
		<-s.serveEnded
	}
	s.DisconnectAll()
	s.connWG.Wait()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
		sh.cond.Broadcast()
	}
	s.shardWG.Wait()
}

// Stats snapshots the service-level counters. After a recovery, the
// shard-resident counters (queue drops, flow evictions) include the
// baselines carried over from the journal snapshot.
func (s *Server) Stats() ServerStats {
	var st ServerStats
	st.Conns = s.conns64.Load()
	st.ConnsRejected = s.connsRejected.Load()
	st.Frames = s.frames.Load()
	st.BadFrames = s.badFrames.Load()
	st.Dupes = s.dupes.Load()
	st.CrossDupes = s.crossDupes.Load()
	st.Ingested = s.ingested.Load()
	st.Ticks = s.ticks.Load()
	s.mu.Lock()
	st.ActiveConns = len(s.conns)
	st.QueueDropped = s.queueDropBase
	st.FlowEvictions = s.flowEvictBase
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.QueueDropped += sh.dropped
		st.SheddedTicks += sh.sheddedTicks
		sh.mu.Unlock()
		st.FlowEvictions += sh.evictions.Load()
	}
	return st
}

// ShardQueueStats is one shard's live queue gauge set for /statsz.
type ShardQueueStats struct {
	Depth        int    `json:"depth"`
	Dropped      uint64 `json:"dropped"`
	SheddedTicks uint64 `json:"shedded_ticks"`
}

// QueueStats snapshots each shard's queue gauges, in shard order.
func (s *Server) QueueStats() []ShardQueueStats {
	out := make([]ShardQueueStats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = ShardQueueStats{Depth: sh.n, Dropped: sh.dropped, SheddedTicks: sh.sheddedTicks}
		sh.mu.Unlock()
	}
	return out
}

// Health is the three-state /healthz readiness value.
type Health int

const (
	// HealthReady: accepting, and (when journaled) durability intact.
	HealthReady Health = iota
	// HealthRecovering: a staged journal replay has not yet committed —
	// the cluster handoff (peer range reconciliation) is still running
	// and nothing has reached a controller.
	HealthRecovering
	// HealthDegraded: shut down, durability lost (a journal append or
	// sync failed), or the installed overlay reports the node impaired
	// (the cluster node folds membership suspect-of-self in here).
	HealthDegraded
)

// String renders the /healthz body for each state.
func (h Health) String() string {
	switch h {
	case HealthReady:
		return "ready"
	case HealthRecovering:
		return "recovering"
	default:
		return "degraded"
	}
}

// SetHealthOverlay installs fn over the server's own health value; the
// cluster node uses it to fold membership state (self-suspicion while
// isolated) into /healthz. fn must be safe for concurrent use and
// should only escalate (ready → degraded), never mask a degraded or
// recovering server.
func (s *Server) SetHealthOverlay(fn func(Health) Health) {
	s.mu.Lock()
	s.healthOverlay = fn
	s.mu.Unlock()
}

// Health returns the three-state readiness: recovering until a staged
// recovery commits, degraded once closed or durability is lost, ready
// otherwise — filtered through the overlay when one is installed.
// Degraded outranks recovering: a node that lost its journal mid-replay
// must not advertise the transient state.
func (s *Server) Health() Health {
	s.mu.Lock()
	closed, recovering, overlay := s.closed, s.recovering, s.healthOverlay
	s.mu.Unlock()
	h := HealthReady
	if recovering {
		h = HealthRecovering
	}
	if closed || (s.journal != nil && s.journal.Failed()) {
		h = HealthDegraded
	}
	if overlay != nil {
		h = overlay(h)
	}
	return h
}

// Healthy is the binary readiness predicate: Health is HealthReady.
func (s *Server) Healthy() bool {
	return s.Health() == HealthReady
}

// Recovering reports whether a staged recovery has yet to commit. The
// cluster handoff checks this (not Health, which an overlay may have
// escalated) before serving its accounted ranges to a rejoining peer:
// a node that has not committed must answer "not ready" so two
// simultaneous recoveries never discount against each other's staged,
// uncommitted state.
func (s *Server) Recovering() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovering
}

// Journal returns the attached journal (nil when ingest is not
// journaled) — the admin endpoint reads its gauges from here.
func (s *Server) Journal() *Journal { return s.journal }

// Recovery returns what the journal replay restored (zero without one).
func (s *Server) Recovery() RecoveryStats { return s.recoveryReport }

// ShardStats snapshots each shard controller, in shard order.
func (s *Server) ShardStats() []dataplane.ControllerStats {
	out := make([]dataplane.ControllerStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.ctrl.Stats()
	}
	return out
}

// ControllerStats merges the shard controllers into one aggregate
// snapshot; the admission identities survive the merge exactly (see
// dataplane.MergeControllerStats). After a recovery it includes the
// aggregate baseline from the journal snapshot: live shard controllers
// restart from zero, and the baseline restores the cumulative totals
// (with the crash-discarded buffered ring folded into Evicted, and
// Tick as baseline + live since replay re-ticks from zero).
func (s *Server) ControllerStats() dataplane.ControllerStats {
	m := dataplane.MergeControllerStats(s.ShardStats()...)
	s.mu.Lock()
	base := s.ctrlBase
	s.mu.Unlock()
	m.Delivered += base.Delivered
	m.Accepted += base.Accepted
	m.Deduped += base.Deduped
	m.Quarantined += base.Quarantined
	m.Evicted += base.Evicted
	m.Aged += base.Aged
	m.Tick += base.Tick
	return m
}

// Events returns the buffered events of every shard, shard order then
// ring order — the admin endpoint's recent-events view. (There is
// deliberately no merged TopReporters: sharding is by flow, so one
// reporter's accept counts scatter across shards and a global ranking
// would need cross-shard count merging the buffered rings can't
// support; rank the aggregate from Events or a downstream store.)
func (s *Server) Events() []dataplane.LoopEvent {
	var out []dataplane.LoopEvent
	for _, sh := range s.shards {
		out = append(out, sh.ctrl.Events()...)
	}
	return out
}
