// Package collectorsvc is the networked loop-report collector: the
// paper's prototype streams detections from the data plane to a
// control-plane collector in real time (§5), and this package models
// that switch→collector channel as a real, lossy, concurrent transport
// instead of an in-process method call.
//
// The pieces:
//
//   - wire.go: a versioned, length-prefixed binary frame format carrying
//     loop reports (dataplane.LoopEvent + the reporting hop), client
//     hellos, epoch ticks, and acknowledgements;
//   - server.go: a TCP service that ingests frames, shards events by
//     flow hash across N independent dataplane.Controller instances,
//     and absorbs bursts in bounded per-shard queues with counted
//     drop-oldest backpressure;
//   - client.go: a reconnecting sender with capped exponential backoff
//     plus seeded jitter, a bounded local buffer with its own drop
//     accounting, batched writes, and sequence-numbered exactly-once
//     delivery across reconnects;
//   - admin.go: a plaintext /statsz admin listener exposing per-shard
//     and aggregate counters (text and the JSON schema pinned in
//     internal/dataplane).
//
// Accounting is exact end to end: every event a client enqueues is
// eventually delivered to a shard controller, counted as dropped by the
// client, or counted as dropped by a shard queue — never silently lost,
// even across connection kills (see the package's end-to-end tests).
package collectorsvc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// Wire format. Every frame is length-prefixed so a reader can delimit
// the stream without understanding the body:
//
//	offset  size  field
//	0       4     length of the rest of the frame (version..body), BE
//	4       1     wire version (currently 1)
//	5       1     frame type
//	6       n     body, by type:
//
//	FrameHello   client id (8)
//	FrameReport  seq (8) | flow (4) | reporter (4) | report hops (4) |
//	             node (4) | journey hop (4) | member count (2) |
//	             members (4 each)
//	FrameTick    seq (8)
//	FrameAck     seq (8)
//	FrameHeartbeat  seq (8, the client's highest sent seq; informational)
//
// Field encodings reuse the conventions of internal/frames and the
// emulator frame: big-endian fixed-width integers, switch IDs as their
// raw 32 bits. Sequence numbers are per-client and strictly increasing;
// the server acknowledges the highest sequence it has accounted for and
// treats anything at or below a client's high-water mark as a transport
// duplicate, which is what turns at-least-once retransmission into
// exactly-once ingest.
const (
	// WireVersion is the frame format version; decoders reject others.
	WireVersion = 1

	// MaxFrameBody caps the post-prefix frame size. Readers validate the
	// length prefix against it before allocating, so a corrupt or
	// hostile 4-byte prefix cannot force a huge allocation.
	MaxFrameBody = 4096

	// MaxMembers caps the loop membership list in one report frame
	// (double the data plane's collection cap, leaving headroom).
	MaxMembers = 64

	lenPrefixSize  = 4
	frameOverhead  = 2 // version + type
	helloBodyLen   = 8
	seqBodyLen     = 8
	reportFixedLen = 30 // seq 8 + flow 4 + reporter 4 + hops 4 + node 4 + hop 4 + count 2
)

// Frame types.
const (
	// FrameHello opens a connection: it binds the connection to a client
	// identity so sequence state survives reconnects.
	FrameHello = 1
	// FrameReport carries one loop report.
	FrameReport = 2
	// FrameTick marks a collector epoch boundary: the server advances
	// every shard controller's logical clock. Meaningful only in
	// single-feeder deployments (concurrent tickers would multiply the
	// clock rate).
	FrameTick = 3
	// FrameAck is the server→client acknowledgement of the highest
	// accounted sequence number.
	FrameAck = 4
	// FrameHeartbeat is a client keep-alive. It is not sequence-accounted
	// (the seq field is informational); the server answers with an ack of
	// its current high-water mark, so an idle but healthy session always
	// has traffic inside both sides' timeout windows.
	FrameHeartbeat = 5
)

// Errors returned by the decoders.
var (
	// ErrShortFrame means the buffer ends before the frame does.
	ErrShortFrame = errors.New("collectorsvc: short frame")
	// ErrOversizeFrame means the length prefix exceeds MaxFrameBody.
	ErrOversizeFrame = errors.New("collectorsvc: oversize frame")
	// ErrBadVersion means an unknown wire version.
	ErrBadVersion = errors.New("collectorsvc: unknown wire version")
	// ErrBadFrame means a structurally invalid frame body.
	ErrBadFrame = errors.New("collectorsvc: malformed frame")
)

// Frame is one decoded frame. Which fields are meaningful depends on
// Type: ClientID for hellos, Seq for reports/ticks/acks, Hop and Event
// for reports.
type Frame struct {
	Type     uint8
	ClientID uint64
	Seq      uint64
	Hop      int
	Event    dataplane.LoopEvent
}

// appendPrefix reserves the length prefix and writes version and type,
// returning the buffer and the prefix offset for patchLen.
func appendPrefix(dst []byte, typ uint8) ([]byte, int) {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, WireVersion, typ)
	return dst, off
}

// patchLen fills in the length prefix at off once the body is written.
func patchLen(dst []byte, off int) []byte {
	binary.BigEndian.PutUint32(dst[off:], uint32(len(dst)-off-lenPrefixSize))
	return dst
}

// AppendHello appends a hello frame for the given client identity.
func AppendHello(dst []byte, clientID uint64) []byte {
	dst, off := appendPrefix(dst, FrameHello)
	dst = binary.BigEndian.AppendUint64(dst, clientID)
	return patchLen(dst, off)
}

// AppendReport appends a report frame. hop is the reporting packet's
// journey hop count when the report fired (the dedup context); seq is
// the client's sequence number for exactly-once ingest.
func AppendReport(dst []byte, seq uint64, ev dataplane.LoopEvent, hop int) ([]byte, error) {
	if len(ev.Members) > MaxMembers {
		return dst, fmt.Errorf("%w: %d members exceeds cap %d", ErrBadFrame, len(ev.Members), MaxMembers)
	}
	if hop < 0 || ev.Hops < 0 || ev.Node < 0 {
		return dst, fmt.Errorf("%w: negative hop/node (hop=%d report-hops=%d node=%d)", ErrBadFrame, hop, ev.Hops, ev.Node)
	}
	dst, off := appendPrefix(dst, FrameReport)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, ev.Flow)
	dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Reporter))
	dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Hops))
	dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Node))
	dst = binary.BigEndian.AppendUint32(dst, uint32(hop))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ev.Members)))
	for _, id := range ev.Members {
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
	}
	return patchLen(dst, off), nil
}

// AppendTick appends an epoch-tick frame.
func AppendTick(dst []byte, seq uint64) []byte {
	dst, off := appendPrefix(dst, FrameTick)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return patchLen(dst, off)
}

// AppendAck appends an acknowledgement of the highest accounted seq.
func AppendAck(dst []byte, seq uint64) []byte {
	dst, off := appendPrefix(dst, FrameAck)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return patchLen(dst, off)
}

// AppendHeartbeat appends a keep-alive frame carrying the client's
// highest sent sequence (informational only).
func AppendHeartbeat(dst []byte, seq uint64) []byte {
	dst, off := appendPrefix(dst, FrameHeartbeat)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return patchLen(dst, off)
}

// DecodeFrame parses one frame from the front of buf, returning the
// frame and the bytes consumed. It never allocates proportionally to
// the length prefix — only to the member count, which is validated
// against both MaxMembers and the actual body size first.
func DecodeFrame(buf []byte) (Frame, int, error) {
	var f Frame
	if len(buf) < lenPrefixSize {
		return f, 0, fmt.Errorf("%w: %d bytes, need %d for the length prefix", ErrShortFrame, len(buf), lenPrefixSize)
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n > MaxFrameBody {
		return f, 0, fmt.Errorf("%w: length prefix %d exceeds cap %d", ErrOversizeFrame, n, MaxFrameBody)
	}
	if n < frameOverhead {
		return f, 0, fmt.Errorf("%w: length prefix %d below the %d-byte version+type", ErrBadFrame, n, frameOverhead)
	}
	if len(buf) < lenPrefixSize+n {
		return f, 0, fmt.Errorf("%w: %d of %d frame bytes", ErrShortFrame, len(buf)-lenPrefixSize, n)
	}
	if err := decodeBody(&f, buf[lenPrefixSize:lenPrefixSize+n]); err != nil {
		return f, 0, err
	}
	return f, lenPrefixSize + n, nil
}

// decodeBody parses version, type, and the type-specific body.
func decodeBody(f *Frame, b []byte) error {
	if b[0] != WireVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	f.Type = b[1]
	body := b[frameOverhead:]
	switch f.Type {
	case FrameHello:
		if len(body) != helloBodyLen {
			return fmt.Errorf("%w: hello body of %d bytes, want %d", ErrBadFrame, len(body), helloBodyLen)
		}
		f.ClientID = binary.BigEndian.Uint64(body)
	case FrameTick, FrameAck, FrameHeartbeat:
		if len(body) != seqBodyLen {
			return fmt.Errorf("%w: type-%d body of %d bytes, want %d", ErrBadFrame, f.Type, len(body), seqBodyLen)
		}
		f.Seq = binary.BigEndian.Uint64(body)
	case FrameReport:
		if len(body) < reportFixedLen {
			return fmt.Errorf("%w: report body of %d bytes, want at least %d", ErrBadFrame, len(body), reportFixedLen)
		}
		f.Seq = binary.BigEndian.Uint64(body)
		f.Event.Flow = binary.BigEndian.Uint32(body[8:])
		f.Event.Reporter = detect.SwitchID(binary.BigEndian.Uint32(body[12:]))
		f.Event.Hops = int(binary.BigEndian.Uint32(body[16:]))
		f.Event.Node = int(binary.BigEndian.Uint32(body[20:]))
		f.Hop = int(binary.BigEndian.Uint32(body[24:]))
		count := int(binary.BigEndian.Uint16(body[28:]))
		if count > MaxMembers {
			return fmt.Errorf("%w: %d members exceeds cap %d", ErrBadFrame, count, MaxMembers)
		}
		if len(body) != reportFixedLen+4*count {
			return fmt.Errorf("%w: report body of %d bytes for %d members, want %d", ErrBadFrame, len(body), count, reportFixedLen+4*count)
		}
		if count > 0 {
			members := make([]detect.SwitchID, count)
			for i := range members {
				members[i] = detect.SwitchID(binary.BigEndian.Uint32(body[reportFixedLen+4*i:]))
			}
			f.Event.Members = members
		} else {
			f.Event.Members = nil
		}
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, f.Type)
	}
	return nil
}

// ReadFrameBuffered reads one frame from br without copying the body
// out of br's internal buffer: the frame is peeked in place, decoded,
// and discarded. br's buffer must be at least lenPrefixSize +
// MaxFrameBody + frameOverhead bytes (the server's 32 KiB reader is),
// so any valid frame fits and Peek never fails on size. io.EOF is
// returned verbatim at a clean frame boundary; a stream truncated
// mid-frame surfaces as io.ErrUnexpectedEOF.
func ReadFrameBuffered(br *bufio.Reader) (Frame, error) {
	var f Frame
	prefix, err := br.Peek(lenPrefixSize)
	if err != nil {
		if errors.Is(err, io.EOF) && len(prefix) > 0 {
			return f, fmt.Errorf("%w: truncated length prefix", ErrShortFrame)
		}
		return f, err
	}
	n := int(binary.BigEndian.Uint32(prefix))
	if n > MaxFrameBody {
		return f, fmt.Errorf("%w: length prefix %d exceeds cap %d", ErrOversizeFrame, n, MaxFrameBody)
	}
	if n < frameOverhead {
		return f, fmt.Errorf("%w: length prefix %d below the %d-byte version+type", ErrBadFrame, n, frameOverhead)
	}
	whole, err := br.Peek(lenPrefixSize + n)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return f, io.ErrUnexpectedEOF
		}
		return f, err
	}
	if err := decodeBody(&f, whole[lenPrefixSize:]); err != nil {
		return f, err
	}
	br.Discard(lenPrefixSize + n)
	return f, nil
}

// frameBuffered reports whether a complete frame is already sitting in
// br's buffer, so the next ReadFrameBuffered cannot block on the
// socket. A buffered-but-invalid length prefix also reports true: the
// reader will surface the wire error without blocking.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < lenPrefixSize {
		return false
	}
	prefix, _ := br.Peek(lenPrefixSize)
	n := int(binary.BigEndian.Uint32(prefix))
	if n > MaxFrameBody || n < frameOverhead {
		return true
	}
	return br.Buffered() >= lenPrefixSize+n
}

// ReadFrame reads one frame from br, using scratch as the body buffer
// (grown as needed, returned for reuse). The length prefix is validated
// against MaxFrameBody before any body allocation. io.EOF is returned
// verbatim at a clean frame boundary; a stream truncated mid-frame
// surfaces as io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader, scratch []byte) (Frame, []byte, error) {
	var f Frame
	var prefix [lenPrefixSize]byte
	if _, err := io.ReadFull(br, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return f, scratch, fmt.Errorf("%w: truncated length prefix", ErrShortFrame)
		}
		return f, scratch, err
	}
	n := int(binary.BigEndian.Uint32(prefix[:]))
	if n > MaxFrameBody {
		return f, scratch, fmt.Errorf("%w: length prefix %d exceeds cap %d", ErrOversizeFrame, n, MaxFrameBody)
	}
	if n < frameOverhead {
		return f, scratch, fmt.Errorf("%w: length prefix %d below the %d-byte version+type", ErrBadFrame, n, frameOverhead)
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(br, scratch); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return f, scratch, io.ErrUnexpectedEOF
		}
		return f, scratch, err
	}
	if err := decodeBody(&f, scratch); err != nil {
		return f, scratch, err
	}
	return f, scratch, nil
}
