package collectorsvc

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// adminFixture runs one report through a small server so the admin
// snapshot has non-zero counters, returning the server pre-Shutdown.
func adminFixture(t *testing.T) *Server {
	t.Helper()
	srv := NewServer(ServerConfig{Shards: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 77})
	if err != nil {
		t.Fatal(err)
	}
	c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 9, Hops: 4}, Flow: 31}, 4)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestAdminStatsText: /statsz renders one stanza per counter group.
func TestAdminStatsText(t *testing.T) {
	srv := adminFixture(t)
	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"server: conns=1", "ingested=1", "aggregate:", "shard 0:", "shard 1:"} {
		if !strings.Contains(body, want) {
			t.Errorf("text stats missing %q:\n%s", want, body)
		}
	}
}

// TestAdminStatsJSON: /statsz?format=json emits the schema pinned by
// internal/dataplane's golden test.
func TestAdminStatsJSON(t *testing.T) {
	srv := adminFixture(t)
	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap struct {
		Server    map[string]any   `json:"server"`
		Aggregate map[string]any   `json:"aggregate"`
		Shards    []map[string]any `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}
	if got := snap.Server["ingested"]; got != float64(1) {
		t.Errorf("server.ingested = %v, want 1", got)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("%d shards in snapshot, want 2", len(snap.Shards))
	}
	// The aggregate uses the dataplane schema's lowercase keys.
	for _, key := range []string{"delivered", "accepted", "deduped", "quarantined", "tick"} {
		if _, ok := snap.Aggregate[key]; !ok {
			t.Errorf("aggregate missing %q: %v", key, snap.Aggregate)
		}
	}
}

// TestAdminStatsJournaledServer pins the journal and queue extensions of
// the admin schema: a journaled server exposes per-shard queue gauges
// and the journal gauges in both renderings, and an unjournaled one
// omits the journal object entirely (the pre-journal JSON shape).
func TestAdminStatsJournaledServer(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	srv, _, err := NewRecoveredServer(ServerConfig{Shards: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 77})
	if err != nil {
		t.Fatal(err)
	}
	c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 9, Hops: 4}, Flow: 31}, 4)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz?format=json", nil))
	var snap struct {
		Queues  []map[string]any `json:"queues"`
		Journal map[string]any   `json:"journal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}
	if len(snap.Queues) != 2 {
		t.Fatalf("%d queue gauges, want one per shard (2): %s", len(snap.Queues), rec.Body.String())
	}
	for _, key := range []string{"depth", "dropped", "shedded_ticks"} {
		if _, ok := snap.Queues[0][key]; !ok {
			t.Errorf("queue gauge missing %q: %v", key, snap.Queues[0])
		}
	}
	if snap.Journal == nil {
		t.Fatalf("journaled server omitted the journal object:\n%s", rec.Body.String())
	}
	for _, key := range []string{"segments", "bytes", "last_fsync_ms", "appends", "append_errors", "rotations"} {
		if _, ok := snap.Journal[key]; !ok {
			t.Errorf("journal gauges missing %q: %v", key, snap.Journal)
		}
	}
	if got := snap.Journal["appends"].(float64); got < 1 {
		t.Errorf("journal.appends = %v after an ingested report", got)
	}

	rec = httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	for _, want := range []string{"queue 0: depth=", "queue 1: depth=", "journal: segments="} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("text stats missing %q:\n%s", want, rec.Body.String())
		}
	}

	// An unjournaled server must keep the original shape: no journal key.
	plain := adminFixture(t)
	rec = httptest.NewRecorder()
	plain.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz?format=json", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["journal"]; ok {
		t.Errorf("unjournaled server emitted a journal object:\n%s", rec.Body.String())
	}
}

// TestAdminHealthz: /healthz renders the three-state body — 200 "ready"
// while the journal is intact, 503 "degraded" once durability is gone
// (or the server is shut down), 503 "recovering" while a staged
// recovery has yet to commit, and an installed overlay can escalate.
func TestAdminHealthz(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	st, err := NewStagedRecoveredServer(ServerConfig{Shards: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	st.Server().AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "recovering") {
		t.Fatalf("staged server: status %d body %q, want 503 recovering", rec.Code, rec.Body.String())
	}
	srv, _, err := st.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	rec = httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ready") {
		t.Fatalf("healthy server: status %d body %q", rec.Code, rec.Body.String())
	}
	srv.SetHealthOverlay(func(h Health) Health { return HealthDegraded })
	rec = httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("overlay-degraded server: status %d body %q", rec.Code, rec.Body.String())
	}
	srv.SetHealthOverlay(nil)
	j.mu.Lock()
	j.failed = true
	j.mu.Unlock()
	rec = httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("failed journal: status %d body %q, want 503 degraded", rec.Code, rec.Body.String())
	}
}

// TestServeAdmin: the admin listener serves over a real socket and
// shuts down cleanly (listener close is not an error).
func TestServeAdmin(t *testing.T) {
	srv := adminFixture(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeAdmin(ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "server:") {
		t.Errorf("status %d body %q", resp.StatusCode, body)
	}
	ln.Close()
	if err := <-served; err != nil {
		t.Errorf("ServeAdmin after listener close: %v", err)
	}
}
