package collectorsvc

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// adminFixture runs one report through a small server so the admin
// snapshot has non-zero counters, returning the server pre-Shutdown.
func adminFixture(t *testing.T) *Server {
	t.Helper()
	srv := NewServer(ServerConfig{Shards: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 77})
	if err != nil {
		t.Fatal(err)
	}
	c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 9, Hops: 4}, Flow: 31}, 4)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestAdminStatsText: /statsz renders one stanza per counter group.
func TestAdminStatsText(t *testing.T) {
	srv := adminFixture(t)
	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"server: conns=1", "ingested=1", "aggregate:", "shard 0:", "shard 1:"} {
		if !strings.Contains(body, want) {
			t.Errorf("text stats missing %q:\n%s", want, body)
		}
	}
}

// TestAdminStatsJSON: /statsz?format=json emits the schema pinned by
// internal/dataplane's golden test.
func TestAdminStatsJSON(t *testing.T) {
	srv := adminFixture(t)
	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap struct {
		Server    map[string]any   `json:"server"`
		Aggregate map[string]any   `json:"aggregate"`
		Shards    []map[string]any `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}
	if got := snap.Server["ingested"]; got != float64(1) {
		t.Errorf("server.ingested = %v, want 1", got)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("%d shards in snapshot, want 2", len(snap.Shards))
	}
	// The aggregate uses the dataplane schema's lowercase keys.
	for _, key := range []string{"delivered", "accepted", "deduped", "quarantined", "tick"} {
		if _, ok := snap.Aggregate[key]; !ok {
			t.Errorf("aggregate missing %q: %v", key, snap.Aggregate)
		}
	}
}

// TestServeAdmin: the admin listener serves over a real socket and
// shuts down cleanly (listener close is not an error).
func TestServeAdmin(t *testing.T) {
	srv := adminFixture(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServeAdmin(ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "server:") {
		t.Errorf("status %d body %q", resp.StatusCode, body)
	}
	ln.Close()
	if err := <-served; err != nil {
		t.Errorf("ServeAdmin after listener close: %v", err)
	}
}
