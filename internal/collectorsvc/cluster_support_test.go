package collectorsvc

import (
	"testing"
	"time"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// The tests in this file pin the collectorsvc primitives the cluster
// layer is built on: live Redirect with drain-then-cutover, span-based
// sequence accounting, and the staged recovery commit with a
// cross-node discard predicate.

func supportEvent(flow uint32) dataplane.LoopEvent {
	return dataplane.LoopEvent{Report: detect.Report{Reporter: 3, Hops: 2}, Flow: flow}
}

func waitAcked(t *testing.T, c *Client, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Acked < want {
		if time.Now().After(deadline) {
			t.Fatalf("acked %d of %d before deadline", c.Stats().Acked, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A live Redirect must drain the in-flight window to the old server
// before adopting the new address: every frame is acknowledged by
// exactly one server and nothing is re-sent to the new one, so the
// cutover cannot double-ingest.
func TestClientRedirectDrainsThenCutsOver(t *testing.T) {
	a := NewServer(ServerConfig{Shards: 1})
	addrA, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	b := NewServer(ServerConfig{Shards: 1})
	addrB, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()

	c, err := NewClient(ClientConfig{Addr: addrA.String(), ID: 11, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const half = 200
	for i := 0; i < half; i++ {
		c.Send(supportEvent(uint32(i)), 2)
	}
	c.Redirect(addrB.String())
	for i := half; i < 2*half; i++ {
		c.Send(supportEvent(uint32(i)), 2)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Enqueued != st.Acked+st.Dropped || st.Dropped != 0 {
		t.Fatalf("identity broken across redirect: %+v", st)
	}
	if st.Redirects != 1 {
		t.Fatalf("Redirects = %d, want 1", st.Redirects)
	}
	a.Shutdown()
	b.Shutdown()
	ingA, ingB := a.Stats().Ingested, b.Stats().Ingested
	if ingB == 0 {
		t.Fatal("nothing reached the redirect target")
	}
	if ingA+ingB != 2*half {
		t.Fatalf("ingested %d+%d across cutover, want %d total with no double-ingest", ingA, ingB, 2*half)
	}
	if d := a.Stats().Dupes + b.Stats().Dupes; d != 0 {
		t.Fatalf("cutover produced %d transport dupes", d)
	}
}

// Redirecting back to the original address while a cutover is pending
// must cancel it, and redirecting to the current address must be a
// no-op — neither may count a retarget.
func TestClientRedirectNoopAndCancel(t *testing.T) {
	a := NewServer(ServerConfig{Shards: 1})
	addrA, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	c, err := NewClient(ClientConfig{Addr: addrA.String(), ID: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Redirect(addrA.String()) // no-op: already the target
	if got := c.Stats().Redirects; got != 0 {
		t.Fatalf("no-op redirect counted: %d", got)
	}
	c.Redirect("127.0.0.1:1")  // pending cutover
	c.Redirect(addrA.String()) // cancelled before adoption
	c.Send(supportEvent(1), 2)
	waitAcked(t, c, 1)
	if got := c.Stats().Redirects; got != 1 {
		t.Fatalf("Redirects = %d, want 1 (the cancelled retarget)", got)
	}
}

// Span accounting must absorb out-of-order arrivals (concurrent CAS
// winners reach noteSpan in any order) and round-trip through
// snapshot/restore.
func TestRecoverySpanTracking(t *testing.T) {
	cs := &clientSeq{}
	for _, seq := range []uint64{5, 1, 2, 9, 4, 3, 9} {
		cs.noteSpan(seq)
	}
	spans := cs.snapshotSpans()
	want := []SeqSpan{{First: 1, Last: 5}, {First: 9, Last: 9}}
	if len(spans) != len(want) || spans[0] != want[0] || spans[1] != want[1] {
		t.Fatalf("spans = %v, want %v", spans, want)
	}
	var back clientSeq
	back.restoreSpans(spans)
	back.noteSpan(6)
	got := back.snapshotSpans()
	if len(got) != 2 || got[0] != (SeqSpan{First: 1, Last: 6}) || got[1] != want[1] {
		t.Fatalf("restored spans = %v, want [{1 6} {9 9}]", got)
	}
}

// Staged recovery with a discard predicate is the cluster handoff in
// miniature: the discarded prefix is counted in CrossDupes, never
// ingested, and never claimed by this server's own ClientRanges —
// while the committed suffix is accounted exactly once.
func TestRecoveryStagedCommitDiscard(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Shards: 2, Journal: j})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 77, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		c.Send(supportEvent(uint32(i)), 2)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone := c.Stats()
	if waitDone.Acked != total {
		t.Fatalf("feed acked %d of %d", waitDone.Acked, total)
	}
	srv.Shutdown()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	staged, err := NewStagedRecoveredServer(ServerConfig{Shards: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if staged.Staged() != total {
		t.Fatalf("staged %d records, want %d", staged.Staged(), total)
	}
	if h := staged.Server().Health(); h != HealthRecovering {
		t.Fatalf("health mid-stage = %v, want recovering", h)
	}
	// A peer claims the first half of the sequence space.
	srv2, rec, err := staged.Commit(func(clientID, seq uint64) bool {
		return seq <= total/2
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	if rec.CrossDupes != total/2 {
		t.Fatalf("recovery cross_dupes = %d, want %d", rec.CrossDupes, total/2)
	}
	st := srv2.Stats()
	if st.Ingested != total/2 || st.CrossDupes != total/2 {
		t.Fatalf("ingested=%d cross_dupes=%d, want %d/%d", st.Ingested, st.CrossDupes, total/2, total/2)
	}
	ranges := srv2.ClientRanges()
	if len(ranges) != 1 || ranges[0].ID != 77 {
		t.Fatalf("client ranges = %+v, want one entry for client 77", ranges)
	}
	spans := ranges[0].Spans
	if len(spans) != 1 || spans[0].First != total/2+1 || spans[0].Last != total {
		t.Fatalf("spans = %v: a discarded prefix must never be claimed", spans)
	}
	if h := srv2.Health(); h != HealthReady {
		t.Fatalf("health after commit = %v, want ready", h)
	}
}
