package collectorsvc

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/unroller/unroller/internal/chaosnet"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// tcpDial is the raw dialer the chaos wrapper decorates in these tests.
func tcpDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// chaosWorkload deterministically generates n loop events with enough
// flow/reporter/hop variety to exercise the dedup window, feeding each
// through sink (the system under test) and, in the same per-flow order,
// through a single-threaded reference controller. It returns the
// reference admission totals: with quarantine off, admission depends
// only on per-flow history, so a correct collector must reproduce them
// exactly no matter how chaotically the wire behaved.
func chaosWorkload(n, numFlows int, sink func(ev dataplane.LoopEvent, hop int)) dataplane.ControllerStats {
	ref := dataplane.NewControllerWithConfig(microloopController)
	wins := make(map[uint32]*dataplane.DedupWindow, numFlows)
	for i := 0; i < n; i++ {
		flow := uint32(i % numFlows)
		ev := dataplane.LoopEvent{
			Report: detect.Report{Reporter: detect.SwitchID(i%7 + 1), Hops: 3 + i%5},
			Flow:   flow,
			Node:   i % 9,
		}
		if i%16 == 0 {
			ev.Members = []detect.SwitchID{detect.SwitchID(i % 11), detect.SwitchID(i % 13)}
		}
		hop := (i * 3) % 24
		w := wins[flow]
		if w == nil {
			w = &dataplane.DedupWindow{}
			wins[flow] = w
		}
		ref.DeliverFlow(ev, w, hop)
		sink(ev, hop)
	}
	return ref.Stats()
}

// TestCollectorChaosExactAccounting is the seeded chaos gate: with
// injected latency, fragmented writes, and mid-frame resets on every
// client connection, the end-to-end accounting must still be exact —
// the same admission totals as the in-process controller, every frame
// accounted for, nothing lost and nothing double-counted. (Corruption
// is excluded here: the wire format has no payload CRC, so a corrupted
// frame can alter accounting; see the liveness test below.)
func TestCollectorChaosExactAccounting(t *testing.T) {
	srv := NewServer(ServerConfig{
		Shards:     4,
		QueueDepth: 1 << 15,
		Controller: microloopController,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	chaos := chaosnet.New(chaosnet.Config{
		Seed:         1234,
		LatencyProb:  1 << 12, // ~6% of ops
		LatencyMin:   50 * time.Microsecond,
		LatencyMax:   500 * time.Microsecond,
		ChunkProb:    1 << 13, // ~12%
		ResetProb:    1 << 11, // ~3% — each reset forces a reconnect+retransmit
		FaultFreeOps: 2,       // let the hello land before chaos begins
	})

	const numClients = 8
	clients := make([]*Client, numClients)
	for i := range clients {
		clients[i], err = NewClient(ClientConfig{
			Addr:         addr.String(),
			ID:           uint64(i) + 1,
			Seed:         uint64(i),
			Buffer:       1 << 16,
			Batch:        16, // small batches → many wire ops → many fault rolls
			MinBackoff:   time.Millisecond,
			MaxBackoff:   10 * time.Millisecond,
			FlushTimeout: 60 * time.Second,
			Dial:         chaos.Dialer(tcpDial),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	want := chaosWorkload(4000, 64, func(ev dataplane.LoopEvent, hop int) {
		clients[int(ev.Flow)%numClients].Send(ev, hop)
	})

	var enqueued, acked, dropped uint64
	for i, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Enqueued != st.Acked+st.Dropped {
			t.Errorf("client %d: Enqueued %d != Acked %d + Dropped %d", i, st.Enqueued, st.Acked, st.Dropped)
		}
		enqueued += st.Enqueued
		acked += st.Acked
		dropped += st.Dropped
	}
	srv.Shutdown()

	if dropped != 0 {
		t.Fatalf("clients dropped %d with the server up and a 60s drain budget", dropped)
	}
	st := srv.Stats()
	if st.Ingested != acked {
		t.Errorf("server ingested %d, clients got %d acks", st.Ingested, acked)
	}
	if enqueued != st.Ingested+dropped+st.QueueDropped {
		t.Errorf("loss accounting: enqueued %d != ingested %d + client-dropped %d + queue-dropped %d",
			enqueued, st.Ingested, dropped, st.QueueDropped)
	}
	// Resets must actually have fired for this gate to mean anything,
	// and each one forces a retransmit overlap the server must dedup.
	if cs := chaos.Stats(); cs.Resets == 0 || cs.Chunks == 0 {
		t.Fatalf("chaos schedule injected nothing (stats %+v) — seed or probabilities wrong", cs)
	}
	got := srv.ControllerStats()
	if got.Accepted != want.Accepted || got.Deduped != want.Deduped || got.Quarantined != want.Quarantined {
		t.Errorf("admission totals diverged under chaos:\nstreamed  accepted=%d deduped=%d quarantined=%d\nin-process accepted=%d deduped=%d quarantined=%d",
			got.Accepted, got.Deduped, got.Quarantined, want.Accepted, want.Deduped, want.Quarantined)
	}
	if got.Delivered != got.Accepted+got.Deduped+got.Quarantined {
		t.Errorf("delivery identity broke under chaos: %+v", got)
	}
}

// TestCollectorChaosCorruptionLiveness: byte corruption can forge
// frames (the wire format has no payload CRC), so exact accounting is
// out of reach — but the system must stay alive: no panic, no wedged
// goroutine, every client still closes promptly with its local identity
// intact, and the server keeps serving.
func TestCollectorChaosCorruptionLiveness(t *testing.T) {
	srv := NewServer(ServerConfig{Shards: 2, ReadTimeout: 2 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	chaos := chaosnet.New(chaosnet.Config{
		Seed:         77,
		CorruptProb:  1 << 12,
		ResetProb:    1 << 11,
		ChunkProb:    1 << 13,
		FaultFreeOps: 2,
	})
	const numClients = 4
	clients := make([]*Client, numClients)
	for i := range clients {
		clients[i], err = NewClient(ClientConfig{
			Addr:         addr.String(),
			ID:           uint64(i) + 1,
			Seed:         uint64(i) + 100,
			MinBackoff:   time.Millisecond,
			MaxBackoff:   10 * time.Millisecond,
			FlushTimeout: 2 * time.Second,
			StaleTimeout: time.Second,
			Dial:         chaos.Dialer(tcpDial),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		for ci, c := range clients {
			c.Send(dataplane.LoopEvent{
				Report: detect.Report{Reporter: detect.SwitchID(ci + 1), Hops: 3},
				Flow:   uint32(i*numClients + ci),
			}, 3)
		}
	}
	for i, c := range clients {
		start := time.Now()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("client %d wedged in Close for %v under corruption", i, elapsed)
		}
		st := c.Stats()
		if st.Enqueued != st.Acked+st.Dropped {
			t.Errorf("client %d identity: %+v", i, st)
		}
	}
	if !srv.Healthy() {
		t.Error("server unhealthy after a corruption run")
	}
	// A fresh, un-chaosed client must still get clean service.
	clean, err := NewClient(ClientConfig{Addr: addr.String(), ID: 99, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	clean.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 42, Hops: 2}, Flow: 424242}, 2)
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}
	if st := clean.Stats(); st.Acked != 1 {
		t.Errorf("clean client after chaos: %+v", st)
	}
}

// TestCollectorChaosBlackholeEscape: half-open connections (peer keeps
// the socket but stops participating) must never wedge the pipeline —
// the deadline/heartbeat machinery detects them on both sides and the
// client finishes its delivery through fresh connections.
func TestCollectorChaosBlackholeEscape(t *testing.T) {
	srv := NewServer(ServerConfig{
		Shards:       2,
		ReadTimeout:  500 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	chaos := chaosnet.New(chaosnet.Config{
		Seed:          31,
		BlackholeProb: 1 << 11, // ~3% of ops flip the conn half-open
		FaultFreeOps:  2,
	})
	c, err := NewClient(ClientConfig{
		Addr:           addr.String(),
		ID:             1,
		Seed:           5,
		Batch:          8, // more writes per run → more chances to hit the fault
		MinBackoff:     time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
		StaleTimeout:   400 * time.Millisecond,
		WriteTimeout:   300 * time.Millisecond,
		FlushTimeout:   60 * time.Second,
		Dial:           chaos.Dialer(tcpDial),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		c.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 1, Hops: 3}, Flow: uint32(i)}, 3)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	st := c.Stats()
	if st.Dropped != 0 || st.Acked != n {
		t.Fatalf("blackholes cost events: %+v", st)
	}
	if got := srv.Stats().Ingested; got != n {
		t.Fatalf("server ingested %d, want %d", got, n)
	}
}

// copyDir copies every regular file in src to a fresh dst — the
// "disk image at the instant of the kill" for crash simulations.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCollectorKillRecover is the in-package half of the kill-recover
// property (the exec-based test in cmd/unroller-collectord SIGKILLs a
// real process): a journaled server ingests a chaos-streamed scenario,
// the journal directory is imaged at a moment when everything acked has
// been committed (exactly what a SIGKILL leaves behind, since commits
// flush to the OS before acks), and a recovered server on that image
// must reproduce the exactly-once state: identical ingest accounting,
// identical admission totals, and zero duplicate acceptance when a
// client replays already-accounted sequences.
func TestCollectorKillRecover(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SegmentBytes: 8192, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv, rec, err := NewRecoveredServer(ServerConfig{
		Shards:     4,
		QueueDepth: 1 << 15,
		Controller: microloopController,
		Journal:    j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || rec.Snapshots != 1 {
		t.Fatalf("fresh journal replayed %+v, want just the genesis snapshot", rec)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	chaos := chaosnet.New(chaosnet.Config{
		Seed:         4242,
		ResetProb:    1 << 10,
		ChunkProb:    1 << 13,
		FaultFreeOps: 2,
	})
	const numClients = 4
	clients := make([]*Client, numClients)
	for i := range clients {
		clients[i], err = NewClient(ClientConfig{
			Addr:         addr.String(),
			ID:           uint64(i) + 1,
			Seed:         uint64(i),
			Buffer:       1 << 16,
			MinBackoff:   time.Millisecond,
			MaxBackoff:   10 * time.Millisecond,
			FlushTimeout: 60 * time.Second,
			Dial:         chaos.Dialer(tcpDial),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	chaosWorkload(4000, 64, func(ev dataplane.LoopEvent, hop int) {
		clients[int(ev.Flow)%numClients].Send(ev, hop)
	})
	var acked uint64
	for i, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Dropped != 0 {
			t.Fatalf("client %d dropped %d; the kill-recover comparison needs a lossless run", i, st.Dropped)
		}
		acked += st.Acked
	}

	// Every acked frame has been journal-committed, so the directory
	// right now is exactly what a SIGKILL would leave. Image it before
	// the graceful shutdown below (which only exists to read the final
	// drained stats for comparison).
	killImage := copyDir(t, dir)
	srv.Shutdown()
	pre := srv.Stats()
	preAgg := srv.ControllerStats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if pre.Ingested != acked {
		t.Fatalf("pre-kill server ingested %d, clients acked %d", pre.Ingested, acked)
	}
	if pre.QueueDropped != 0 {
		t.Fatalf("pre-kill queue drops (%d) would make the comparison inexact", pre.QueueDropped)
	}
	if j.Stats().Rotations == 0 {
		t.Fatal("8 KiB segments never rotated — the snapshot path went unexercised")
	}

	// "Restart" on the kill image.
	j2, err := OpenJournal(JournalConfig{Dir: killImage, SegmentBytes: 8192, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	srv2, rec2, err := NewRecoveredServer(ServerConfig{
		Shards:     4,
		QueueDepth: 1 << 15,
		Controller: microloopController,
		Journal:    j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	if rec2.Ingested != pre.Ingested {
		t.Fatalf("recovery restored ingested=%d, pre-kill was %d", rec2.Ingested, pre.Ingested)
	}
	st2 := srv2.Stats()
	if st2.Ingested != pre.Ingested || st2.Ticks != pre.Ticks {
		t.Errorf("recovered counters ingested=%d ticks=%d, pre-kill ingested=%d ticks=%d",
			st2.Ingested, st2.Ticks, pre.Ingested, pre.Ticks)
	}
	agg2 := srv2.ControllerStats()
	// Dedup state is snapshotted exactly, so the admission totals are
	// bit-identical. (Buffered/Evicted/Aged legitimately differ: the
	// crash discards the in-memory rings, and recovery accounts their
	// contents as evicted — the identity below still must hold.)
	if agg2.Delivered != preAgg.Delivered || agg2.Accepted != preAgg.Accepted ||
		agg2.Deduped != preAgg.Deduped || agg2.Quarantined != preAgg.Quarantined || agg2.Tick != preAgg.Tick {
		t.Errorf("recovered admission totals diverged:\nrecovered delivered=%d accepted=%d deduped=%d quarantined=%d tick=%d\npre-kill  delivered=%d accepted=%d deduped=%d quarantined=%d tick=%d",
			agg2.Delivered, agg2.Accepted, agg2.Deduped, agg2.Quarantined, agg2.Tick,
			preAgg.Delivered, preAgg.Accepted, preAgg.Deduped, preAgg.Quarantined, preAgg.Tick)
	}
	if agg2.Accepted != uint64(agg2.Buffered)+agg2.Evicted+agg2.Aged {
		t.Errorf("recovered admission identity broke: %+v", agg2)
	}

	// Zero duplicate acceptance: a client resuming an already-accounted
	// identity replays sequences at or below the recovered high-water
	// mark; all of them must be deduped, none re-ingested.
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dupBase := st2.Dupes
	replayer, err := NewClient(ClientConfig{Addr: addr2.String(), ID: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const replayN = 5
	for i := 0; i < replayN; i++ {
		replayer.Send(dataplane.LoopEvent{Report: detect.Report{Reporter: 1, Hops: 3}, Flow: uint32(i)}, 3)
	}
	if err := replayer.Close(); err != nil {
		t.Fatal(err)
	}
	after := srv2.Stats()
	if after.Ingested != st2.Ingested {
		t.Errorf("replayed duplicates were re-ingested: %d -> %d", st2.Ingested, after.Ingested)
	}
	if after.Dupes != dupBase+replayN {
		t.Errorf("dupes %d -> %d, want +%d", dupBase, after.Dupes, replayN)
	}
}

// TestRecoveryWorkerCountInvariant: the same kill image recovered under
// different shard counts must produce identical aggregate accounting —
// recovery is single-threaded and keyed by flow, so the worker topology
// cannot change what was recovered.
func TestRecoveryWorkerCountInvariant(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SegmentBytes: 4096, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := NewRecoveredServer(ServerConfig{
		Shards: 4, QueueDepth: 1 << 14, Controller: microloopController, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{Addr: addr.String(), ID: 1, Seed: 1, FlushTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		c.Send(dataplane.LoopEvent{
			Report: detect.Report{Reporter: detect.SwitchID(i%5 + 1), Hops: 3},
			Flow:   uint32(i % 37),
		}, i%11)
	}
	c.Tick()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	image := copyDir(t, dir)
	srv.Shutdown()
	j.Close()

	type cut struct {
		ingested, ticks uint64
		agg             dataplane.ControllerStats
	}
	recoverWith := func(shards int) cut {
		jr, err := OpenJournal(JournalConfig{Dir: copyDir(t, image), Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer jr.Close()
		s, _, err := NewRecoveredServer(ServerConfig{
			Shards: shards, QueueDepth: 1 << 14, Controller: microloopController, Journal: jr,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		st := s.Stats()
		return cut{ingested: st.Ingested, ticks: st.Ticks, agg: s.ControllerStats()}
	}
	a, b := recoverWith(1), recoverWith(7)
	if a.ingested != b.ingested || a.ticks != b.ticks {
		t.Errorf("shard-count changed recovered counters: 1 shard %+v, 7 shards %+v", a, b)
	}
	if a.agg.Delivered != b.agg.Delivered || a.agg.Accepted != b.agg.Accepted ||
		a.agg.Deduped != b.agg.Deduped || a.agg.Tick != b.agg.Tick {
		t.Errorf("shard-count changed recovered admission totals:\n1 shard  %+v\n7 shards %+v", a.agg, b.agg)
	}
}

// TestShardShedsTicksBeforeReports: under queue overflow, queued ticks
// are evicted before any loop report is — losing a clock edge is
// recoverable, losing the report the pipeline exists to deliver is not.
func TestShardShedsTicksBeforeReports(t *testing.T) {
	sh := newShard(dataplane.ControllerConfig{}, 4, DefaultMaxFlows)
	// No worker: the queue can only shed. Fill with tick, reports...
	sh.push(shardItem{tick: true})
	for i := 0; i < 3; i++ {
		sh.push(shardItem{ev: dataplane.LoopEvent{Flow: uint32(i + 1)}})
	}
	// Overflow with a report: the tick must go, not the oldest report.
	sh.push(shardItem{ev: dataplane.LoopEvent{Flow: 99}})
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sheddedTicks != 1 || sh.dropped != 1 {
		t.Fatalf("shedded=%d dropped=%d, want 1/1", sh.sheddedTicks, sh.dropped)
	}
	want := []uint32{1, 2, 3, 99}
	for i := 0; i < sh.n; i++ {
		it := sh.ring[(sh.head+i)%len(sh.ring)]
		if it.tick || it.ev.Flow != want[i] {
			t.Fatalf("slot %d holds tick=%v flow=%d, want flow %d", i, it.tick, it.ev.Flow, want[i])
		}
	}
}
