package collectorsvc

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/detect"
)

// FuzzReportFrame throws arbitrary bytes at the frame decoder. The
// invariants under fuzz:
//
//   - no panic, whatever the input (truncated payloads, oversized length
//     prefixes, unknown versions, garbage member counts);
//   - no allocation proportional to a hostile length prefix — the
//     stream reader's scratch buffer never grows past MaxFrameBody;
//   - DecodeFrame and ReadFrame agree: same frame or same error class;
//   - anything that decodes successfully re-encodes to bytes that decode
//     to the identical frame (the codec is self-consistent).
func FuzzReportFrame(f *testing.F) {
	ev := dataplane.LoopEvent{
		Report:  detect.Report{Reporter: 0xDEADBEEF, Hops: 6},
		Node:    3,
		Flow:    77,
		Members: []detect.SwitchID{0xA, 0xB},
	}
	report, err := AppendReport(nil, 12, ev, 6)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(report)
	f.Add(AppendHello(nil, 1))
	f.Add(AppendTick(nil, 2))
	f.Add(AppendAck(nil, 3))
	f.Add(report[:len(report)-3])           // truncated mid-body
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})   // absurd length prefix
	f.Add([]byte{0, 0, 0, 2, 9, FrameTick}) // unknown version

	f.Fuzz(func(t *testing.T, data []byte) {
		df, dn, derr := DecodeFrame(data)

		sf, scratch, serr := ReadFrame(bufio.NewReader(bytes.NewReader(data)), nil)
		if cap(scratch) > MaxFrameBody {
			t.Fatalf("scratch grew to %d (> MaxFrameBody %d) on %d input bytes", cap(scratch), MaxFrameBody, len(data))
		}
		if (derr == nil) != (serr == nil) {
			t.Fatalf("decoders disagree: DecodeFrame err=%v, ReadFrame err=%v", derr, serr)
		}
		if derr != nil {
			return
		}
		if dn <= 0 || dn > len(data) {
			t.Fatalf("consumed %d of %d bytes", dn, len(data))
		}
		if !reflect.DeepEqual(df, sf) {
			t.Fatalf("decoders disagree on frame: %+v vs %+v", df, sf)
		}

		// Re-encode and decode again: the codec must be a fixed point.
		var out []byte
		var err error
		switch df.Type {
		case FrameHello:
			out = AppendHello(nil, df.ClientID)
		case FrameReport:
			out, err = AppendReport(nil, df.Seq, df.Event, df.Hop)
		case FrameTick:
			out = AppendTick(nil, df.Seq)
		case FrameAck:
			out = AppendAck(nil, df.Seq)
		case FrameHeartbeat:
			out = AppendHeartbeat(nil, df.Seq)
		default:
			t.Fatalf("decoder produced unknown type %d", df.Type)
		}
		if err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		back, bn, err := DecodeFrame(out)
		if err != nil {
			t.Fatalf("decoding a re-encoded frame: %v", err)
		}
		if bn != len(out) || !reflect.DeepEqual(back, df) {
			t.Fatalf("round trip drifted: %+v vs %+v", back, df)
		}
	})
}
