package collectorsvc

import (
	"net"
	"testing"
	"time"
)

// TestServerReapsSilentPeer is the regression test for the unarmed-
// deadline bug: a peer that says hello and then goes silent used to
// park its reader goroutine (and buffers) forever. With ReadTimeout
// armed, the server reaps it.
func TestServerReapsSilentPeer(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 1, ReadTimeout: 100 * time.Millisecond})
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(AppendHello(nil, 42)); err != nil {
		t.Fatal(err)
	}
	// ...and now say nothing. The server must close the connection on
	// its own; without deadlines this read would block forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server hung up (possibly after a final ack)
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("server took %v to reap a silent peer (ReadTimeout=100ms)", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ActiveConns != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent peer still counted as an active connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerReapsHelloLessPeer: a connection that never even says hello
// is reaped on the same deadline.
func TestServerReapsHelloLessPeer(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 1, ReadTimeout: 100 * time.Millisecond})
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server wrote to a hello-less peer")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("server took %v to reap a hello-less peer", elapsed)
	}
}

// TestServerCapsConnections: MaxConns excess connections are closed at
// accept and counted, and existing sessions are unaffected.
func TestServerCapsConnections(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 1, MaxConns: 2})
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, conn)
		if _, err := conn.Write(AppendHello(nil, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ActiveConns != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("never reached 2 active conns: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The third connection must be rejected promptly.
	extra, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	extra.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := extra.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection received data")
	}
	deadline = time.Now().Add(2 * time.Second)
	for s.Stats().ConnsRejected == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rejection not counted: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientClosePromptDuringBackoff is the regression test for Close
// waiting out a sleeping backoff timer: with an unreachable collector,
// a huge backoff, and nothing pending, Close must return immediately.
func TestClientClosePromptDuringBackoff(t *testing.T) {
	dialTried := make(chan struct{}, 16)
	c, err := NewClient(ClientConfig{
		Addr:       "127.0.0.1:1",
		ID:         1,
		MinBackoff: 30 * time.Second,
		MaxBackoff: 30 * time.Second,
		Seed:       1,
		Dial: func(addr string) (net.Conn, error) {
			select {
			case dialTried <- struct{}{}:
			default:
			}
			return nil, net.ErrClosed
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first dial failure so the run loop is inside its
	// 30-second backoff sleep when Close lands.
	select {
	case <-dialTried:
	case <-time.After(5 * time.Second):
		t.Fatal("dialer never invoked")
	}
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	c.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v during a 30s backoff with nothing pending", elapsed)
	}
}

// TestClientClosePendingRespectsFlushTimeout: with pending events and a
// dead collector, Close gives up at FlushTimeout (not at the backoff
// timer) and the accounting identity still holds.
func TestClientClosePendingRespectsFlushTimeout(t *testing.T) {
	c, err := NewClient(ClientConfig{
		Addr:         "127.0.0.1:1",
		ID:           1,
		MinBackoff:   30 * time.Second,
		MaxBackoff:   30 * time.Second,
		FlushTimeout: 200 * time.Millisecond,
		Seed:         1,
		Dial:         func(addr string) (net.Conn, error) { return nil, net.ErrClosed },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	start := time.Now()
	c.Close()
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("Close took %v, want ~FlushTimeout (200ms)", elapsed)
	}
	st := c.Stats()
	if st.Enqueued != st.Acked+st.Dropped {
		t.Fatalf("identity broken after abandoned drain: %+v", st)
	}
	if st.Dropped != 5 {
		t.Fatalf("%d dropped, want all 5", st.Dropped)
	}
}

// TestClientStalenessReconnects: a server that accepts and reads but
// never acks is a half-open peer from the client's point of view; the
// heartbeat-driven read deadline must declare the session stale and
// reconnect instead of trusting it forever.
func TestClientStalenessReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow frames, never ack
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
	c, err := NewClient(ClientConfig{
		Addr:           ln.Addr().String(),
		ID:             1,
		HeartbeatEvery: 40 * time.Millisecond,
		StaleTimeout:   150 * time.Millisecond,
		MinBackoff:     10 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		FlushTimeout:   100 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Tick()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Connects < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("client never declared the ack-less session stale: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHeartbeatKeepsIdleSessionAlive: an idle but healthy session must
// survive both the server's idle reaper and the client's staleness
// detector — heartbeats and their acks are the keep-alive traffic.
func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 1, ReadTimeout: 150 * time.Millisecond})
	defer s.Shutdown()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Addr:           addr.String(),
		ID:             1,
		HeartbeatEvery: 40 * time.Millisecond,
		StaleTimeout:   150 * time.Millisecond,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Connects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never connected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Idle for several multiples of both timeout windows.
	time.Sleep(600 * time.Millisecond)
	if st := c.Stats(); st.Connects != 1 {
		t.Fatalf("idle session reconnected %d times; heartbeats failed to keep it alive", st.Connects)
	}
	if st := s.Stats(); st.ActiveConns != 1 {
		t.Fatalf("server reaped a heartbeating session: %+v", st)
	}
}
