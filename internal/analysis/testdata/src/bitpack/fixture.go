// Package bitpack is a wirewidth-analyzer fixture: the directory name
// puts every file in scope, mirroring the real internal/bitpack.
package bitpack

// Narrow drops the top 56 bits with nothing in the source saying so.
func Narrow(v uint64) byte {
	return byte(v) // want "narrowing conversion uint64"
}

// NarrowSigned narrows a signed value into an unsigned field.
func NarrowSigned(x int) uint16 {
	return uint16(x) // want "narrowing conversion int"
}

// Masked is the positive case: the width is explicit at the call site.
func Masked(v uint64) byte {
	return byte(v & 0xff)
}

// Widen never loses bits and is exempt.
func Widen(b byte) uint64 { return uint64(b) }

// ConstNarrow is compiler-checked and exempt.
func ConstNarrow() byte { return byte(0x12) }

// ShiftLoss can silently push b's high bits off the top.
func ShiftLoss(b byte, s uint) byte {
	return b << s // want "left shift on uint8"
}

// ShiftMasked bounds the shifted value explicitly.
func ShiftMasked(b byte, s uint) byte {
	return (b & 0x0f) << s
}

// ShiftWide works at the full 64-bit working width and is exempt.
func ShiftWide(v uint64) uint64 { return v << 3 }

// ShiftAllowed shows the escape hatch for shifts whose bound is proven
// by construction rather than by a mask.
//
//unroller:allow wirewidth -- fixture: b always arrives with ≤ 4 bits
func ShiftAllowed(b byte) byte { return b << 4 }
