// Package commitorder is the commitorder analyzer's fixture: commit()
// and ack() stand in for (*Journal).Commit and writeAck, and each
// function below is one CFG shape of the commit-before-ack rule.
package commitorder

var journaled bool

// commit is the durability step.
//
//unroller:commitpoint
func commit() {}

// ack is the client-visible acknowledgement.
//
//unroller:ackpoint
func ack() {}

// ackWithoutCommit is the base violation.
func ackWithoutCommit() {
	ack() // want "ack write is not dominated by a journal commit"
}

// commitThenAck is the contract.
func commitThenAck() {
	commit()
	ack()
}

// guardedCommitArm is the `if s.journal != nil { s.journal.Commit() }`
// idiom: the guard decides whether there is anything to commit, so the
// fall-through path counts as committed too.
func guardedCommitArm() {
	if journaled {
		commit()
	}
	ack()
}

// explicitElseMustCommit: with an explicit else that does other work,
// the arm is no longer a guard — the else path reaches the ack
// uncommitted.
func explicitElseMustCommit(n int) {
	if journaled {
		commit()
	} else {
		n++
	}
	ack() // want "ack write is not dominated by a journal commit"
}

// earlyReturnPath: the uncommitted path returns before the ack.
func earlyReturnPath(ok bool) {
	if !ok {
		return
	}
	commit()
	ack()
}

// ackConsumesCommit: one commit does not license a second ack.
func ackConsumesCommit() {
	commit()
	ack()
	ack() // want "ack write is not dominated by a journal commit"
}

// perIterationCommit is the server's batch loop shape.
func perIterationCommit() {
	for i := 0; i < 3; i++ {
		commit()
		ack()
	}
}

// loopAckNoCommit re-acks every iteration without re-committing.
func loopAckNoCommit() {
	for i := 0; i < 3; i++ {
		ack() // want "ack write is not dominated by a journal commit"
	}
}

// closureStartsUncommitted: a literal is its own scope — the analyzer
// cannot order the creator's commit against the closure's eventual run.
func closureStartsUncommitted() func() {
	commit()
	return func() {
		ack() // want "ack write is not dominated by a journal commit"
	}
}

// flushAckShape mirrors the server's flushAck closure end to end.
func flushAckShape() func() bool {
	return func() bool {
		if journaled {
			commit()
		}
		ack()
		return true
	}
}

// switchAllArmsCommit: every case commits before the shared ack.
func switchAllArmsCommit(k int) {
	switch k {
	case 0:
		commit()
	default:
		commit()
	}
	ack()
}

// switchOneArmMisses: the zero case reaches the ack uncommitted.
func switchOneArmMisses(k int) {
	switch k {
	case 0:
	default:
		commit()
	}
	ack() // want "ack write is not dominated by a journal commit"
}
