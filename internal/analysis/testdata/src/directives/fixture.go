// Package directives is a directive-analyzer fixture: the grammar of
// //unroller: comments is itself linted, and allows that suppress
// nothing are reported stale.
package directives

import "errors"

// Tagged is a correctly tagged function: the positive case.
//
//unroller:hotpath
func Tagged() int { return 1 }

// want "unknown //unroller: verb"
//unroller:frobnicate

// want "names unknown check"
//unroller:allow frobnication -- no such analyzer

// want "names no check"
//unroller:allow

// want "empty //unroller: directive"
//unroller:

// want "space between"
// unroller:allow hotpath

// want "must be in a function's doc comment"
//unroller:hotpath

// want "stale //unroller:allow"
//unroller:allow determinism -- nothing here for it to suppress

// MisTagged carries hotpath with stray arguments.
//
// want "takes no arguments"
//
//unroller:hotpath with arguments
func MisTagged() int { return 2 }

// Shadowed has a function-wide allow made redundant by the line-scoped
// one inside: only the most specific covering directive is credited for
// a suppression, so the broad duplicate is reported stale instead of
// hiding behind the narrow one forever.
//
// want "stale //unroller:allow"
//
//unroller:allow errctx -- redundant: the line-scoped allow below already covers it
func Shadowed() error {
	//unroller:allow errctx -- fixture: demonstrates line-scoped suppression winning the credit
	return errors.New("oops")
}
