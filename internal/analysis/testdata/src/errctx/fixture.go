// Package errctx is an errctx-analyzer fixture.
package errctx

import (
	"errors"
	"fmt"
)

// ErrGood carries its package prefix: the positive case.
var ErrGood = errors.New("errctx: something broke")

// ErrNaked would be unattributable in a large run's logs.
var ErrNaked = errors.New("something broke") // want "errors.New message"

// Wrap is the canonical form the rule is modelled on.
func Wrap(err error) error {
	return fmt.Errorf("errctx: operation failed: %w", err)
}

// Delegate starts with %w: the prefix comes from the wrapped error.
func Delegate(err error) error {
	return fmt.Errorf("%w: while finishing up", err)
}

// Naked lacks both prefix and delegation.
func Naked(n int) error {
	return fmt.Errorf("value %d out of range", n) // want "fmt.Errorf message"
}

// Sub shows the function-scoped escape hatch for validation sub-errors
// joined under a prefixed wrapper by the caller.
//
//unroller:allow errctx -- fixture: caller wraps as "errctx: invalid: %w"
func Sub(n int) error {
	return fmt.Errorf("field %d must be positive", n)
}

// Dynamic formats are out of scope: the rule checks literals only.
func Dynamic(format string, n int) error {
	return fmt.Errorf(format, n)
}
