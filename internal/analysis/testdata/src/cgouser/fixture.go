// Package cgouser imports "C": the loader must refuse to resolve it
// (the module is pure Go), surfacing a type error instead of silently
// producing a half-checked package.
package cgouser

import "C"

// Length uses the cgo pseudo-package so the import is not unused.
var Length = C.int(0)
