// Package cluster is the deadline analyzer's second fixture: the
// membership layer's package basename is under the same deadline-armed
// I/O contract as collectorsvc, so a gossip RPC that reads or writes a
// peer socket unarmed must be flagged here too.
package cluster

import (
	"net"
	"time"
)

// rpcUnarmed is a one-shot gossip exchange with no deadline: a stalled
// peer parks the probe goroutine forever and the failure detector
// stops detecting failures.
func rpcUnarmed(c net.Conn, req, resp []byte) {
	c.Write(req) // want "conn write not dominated by SetWriteDeadline"
	c.Read(resp) // want "conn read not dominated by SetReadDeadline"
}

// rpcArmed is the contract the real wire.go follows: one SetDeadline
// bounds the whole exchange.
func rpcArmed(c net.Conn, req, resp []byte) {
	c.SetDeadline(time.Now().Add(time.Second))
	c.Write(req)
	c.Read(resp)
}
