// Package deps is a nodeps-analyzer fixture. The external import below
// cannot resolve, so the fixture type-checks with errors by design; the
// harness tolerates them for this analyzer, which is purely syntactic.
package deps

import (
	_ "math/rand" // want "math/rand import outside internal/xrand"
	_ "unsafe"    // want "unsafe import"

	_ "github.com/fake/dep" // want "external dependency"

	"sort"

	"github.com/unroller/unroller/internal/xrand"
)

// Shuffle uses the sanctioned module-internal and stdlib imports: the
// positive cases.
func Shuffle(xs []int, seed uint64) {
	r := xrand.New(seed)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sort.Ints(xs)
}
