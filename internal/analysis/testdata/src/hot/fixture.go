// Package hot is a hotpath-analyzer fixture: only the function tagged
// //unroller:hotpath is checked; its untagged twin is the positive case.
package hot

import "fmt"

type state struct {
	n   int
	tag string
	buf [8]uint64
}

// Hot collects one specimen of every construct the analyzer forbids.
//
//unroller:hotpath
func (s *state) Hot(id uint32) uint64 {
	v := make([]uint64, 4)    // want "make in hot path"
	v = append(v, uint64(id)) // want "append in hot path"
	p := &state{}             // want "composite literal in hot path"
	m := map[int]int{1: 2}    // want "map literal in hot path"
	sl := []int{1}            // want "slice literal in hot path"
	f := func() {}            // want "closure in hot path"
	defer f()                 // want "defer in hot path"
	go f()                    // want "goroutine launch in hot path"
	fmt.Println(id)           // want "fmt.Println in hot path"
	label := s.tag + "!"      // want "string concatenation in hot path"
	var boxed interface{} = s.n
	_, _ = boxed.(int)    // want "type assertion in hot path"
	_ = fmt.Stringer(nil) // want "conversion to interface type in hot path"
	return v[0] + s.buf[0] + uint64(p.n) + uint64(m[1]) + uint64(sl[0]) + uint64(len(label))
}

// HotAllowed shows the cold-branch escape hatch inside a hot function.
//
//unroller:hotpath
func (s *state) HotAllowed(fail bool) error {
	s.n++
	if fail {
		//unroller:allow hotpath -- fixture: error path is cold
		return fmt.Errorf("hot: state %d failed", s.n)
	}
	return nil
}

// Cold is untagged: the same constructs draw no findings.
func (s *state) Cold(id uint32) uint64 {
	v := make([]uint64, 4)
	v = append(v, uint64(id))
	defer fmt.Println(id)
	return v[0]
}
