// Package sim is a determinism-analyzer fixture: its directory name puts
// it in the deterministic scope, mirroring the real internal/sim.
package sim

import (
	"math/rand" // want "use internal/xrand"
	"sort"
	"time"
)

// Seeded is the positive case: pure arithmetic on a seed, no findings.
func Seeded(seed uint64) uint64 { return seed * 0x9e3779b97f4a7c15 }

// Clocky reads the wall clock where a reproducible value is expected.
func Clocky() int64 {
	t := time.Now() // want "call to time.Now"
	return t.UnixNano()
}

// Elapsed measures wall-clock durations.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "call to time.Since"
}

// Allowed shows the sanctioned escape hatch for timing-only call sites.
//
//unroller:allow determinism -- fixture: timing-only call site
func Allowed() time.Time { return time.Now() }

// Emit iterates a map, whose order Go randomises per run.
func Emit(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "range over map"
		sum += v
	}
	return sum
}

// EmitSorted is the deterministic way to walk a map — collect keys, sort
// them, index by them — with the collection loop allowed because the
// sort erases the iteration order before anything can observe it.
func EmitSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	//unroller:allow determinism -- key order is erased by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Draw keeps rand referenced so the flagged import type-checks.
func Draw() int { return rand.Int() }
