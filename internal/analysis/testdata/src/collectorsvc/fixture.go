// Package collectorsvc is the deadline analyzer's fixture. The package
// basename puts it under the deadline-armed I/O contract, the same
// scoping trick the determinism fixture uses.
package collectorsvc

import (
	"bufio"
	"net"
	"time"
)

// readUnarmed parks forever on a silent peer.
func readUnarmed(c net.Conn, buf []byte) {
	c.Read(buf) // want "conn read not dominated by SetReadDeadline"
}

// readArmed is the contract: arm, then read.
func readArmed(c net.Conn, buf []byte) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	c.Read(buf)
}

// writeUnarmed parks forever on a peer that stopped reading.
func writeUnarmed(c net.Conn, buf []byte) {
	c.Write(buf) // want "conn write not dominated by SetWriteDeadline"
}

// setDeadlineArmsBoth covers read and write with one arm.
func setDeadlineArmsBoth(c net.Conn, buf []byte) {
	c.SetDeadline(time.Now().Add(time.Second))
	c.Read(buf)
	c.Write(buf)
}

// bufReaderUnarmed: the socket hides behind the bufio wrapper.
func bufReaderUnarmed(c net.Conn) {
	br := bufio.NewReader(c)
	br.ReadByte() // want "read from conn-backed bufio.Reader br not dominated by SetReadDeadline"
}

// bufWriterFlushUnarmed: Flush is the write that touches the socket.
func bufWriterFlushUnarmed(c net.Conn, buf []byte) {
	bw := bufio.NewWriterSize(c, 1<<10)
	c.SetWriteDeadline(time.Now().Add(time.Second))
	bw.Write(buf)
	bw.Flush()
}

// helperGetsReader: handing the wrapper to a helper is the helper doing
// our I/O.
func helperGetsReader(c net.Conn) {
	br := bufio.NewReader(c)
	decodeFrom(br) // want "call passes conn-backed bufio.Reader br without SetReadDeadline"
}

func decodeFrom(br *bufio.Reader) { br.Peek(1) }

// armInOneBranchOnly: the else path reaches the read unarmed, so the
// must-merge reports it.
func armInOneBranchOnly(c net.Conn, buf []byte, fast bool) {
	if fast {
		c.SetReadDeadline(time.Now().Add(time.Second))
	} else {
		bufferSize(buf)
	}
	c.Read(buf) // want "conn read not dominated by SetReadDeadline"
}

func bufferSize(buf []byte) int { return len(buf) }

// armInBothBranches survives the merge.
func armInBothBranches(c net.Conn, buf []byte, fast bool) {
	if fast {
		c.SetReadDeadline(time.Now().Add(time.Millisecond))
	} else {
		c.SetReadDeadline(time.Now().Add(time.Second))
	}
	c.Read(buf)
}

// reArmPerIteration is the server's frame loop shape: the arm is inside
// the loop, before the read of the same iteration.
func reArmPerIteration(c net.Conn, buf []byte) {
	for {
		c.SetReadDeadline(time.Now().Add(time.Second))
		if n, err := c.Read(buf); n == 0 && err != nil {
			return
		}
	}
}

// closureStartsUnarmed: deadlines are absolute times, so a closure
// cannot inherit its creator's arm — it may run much later.
func closureStartsUnarmed(c net.Conn, buf []byte) func() {
	c.SetReadDeadline(time.Now().Add(time.Second))
	return func() {
		c.Read(buf) // want "conn read not dominated by SetReadDeadline"
	}
}

// closureArmsItself is the readFrame-closure shape from the server.
func closureArmsItself(c net.Conn, buf []byte) func() {
	return func() {
		c.SetReadDeadline(time.Now().Add(time.Second))
		c.Read(buf)
	}
}
