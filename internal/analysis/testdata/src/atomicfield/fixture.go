// Package atomicfield is the atomicfield analyzer's fixture: one struct
// whose fields are touched atomically — by address and as typed
// atomics — and every way of then touching them plainly.
package atomicfield

import "sync/atomic"

type counters struct {
	hits   uint64        // atomic via atomic.AddUint64(&c.hits, ...)
	misses atomic.Uint64 // typed atomic
	plain  uint64        // never atomic: free to access directly
}

// bump is the sanctioned access pattern for every field.
func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	c.misses.Add(1)
	c.plain++
}

// read mixes a plain load of hits in with legal accesses.
func read(c *counters) uint64 {
	h := c.hits // want "mixing plain and atomic access is a data race"
	return h + atomic.LoadUint64(&c.hits) + c.misses.Load() + c.plain
}

// reset writes both atomic fields plainly.
func reset(c *counters) {
	c.hits = 0 // want "plain access to"
	var fresh atomic.Uint64
	c.misses = fresh // want "plain access to"
	atomic.StoreUint64(&c.hits, 0)
	c.misses.Store(0)
}

// leak hands out the raw address — every use through the alias is
// invisible to the analyzer, so the escape itself is the finding.
func leak(c *counters) *uint64 {
	return &c.hits // want "plain access to"
}
