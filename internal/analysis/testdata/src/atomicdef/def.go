// Package atomicdef declares structs whose fields are atomic — by
// declared type and by address-taken sync/atomic use — for the
// cross-package atomicfield test: package atomicuse imports this and
// touches the fields plainly, which only the facts mechanism can catch.
package atomicdef

import "sync/atomic"

// Gauge mixes an address-style atomic counter with a typed one.
type Gauge struct {
	Raw   uint64        // atomic via atomic.AddUint64 below
	Typed atomic.Uint64 // typed atomic by declaration
	Name  string        // plain field, freely accessible
}

// Bump is the sanctioned home-package access.
func Bump(g *Gauge) {
	atomic.AddUint64(&g.Raw, 1)
	g.Typed.Add(1)
}
