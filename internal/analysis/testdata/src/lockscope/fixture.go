// Package lockscope is the lockscope analyzer's fixture: every rule —
// blocking under a held mutex, unbalanced Lock/Unlock paths — has a
// violating and a conforming shape side by side.
package lockscope

import (
	"net"
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// sleepUnderLock is the classic: the mutex serializes a sleep.
func sleepUnderLock(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep in sleepUnderLock while g.mu is held"
	g.mu.Unlock()
}

// sleepAfterUnlock is the fix: release first.
func sleepAfterUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// deferStillHolds: defer satisfies pairing, but the mutex is held until
// return — the sync still happens under it.
func deferStillHolds(g *guarded, f *os.File) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.Sync() // want "Sync in deferStillHolds while g.mu is held"
}

// channelSendUnderLock parks the goroutine on a full channel with the
// read lock held.
func channelSendUnderLock(g *guarded, ch chan int) {
	g.rw.RLock()
	ch <- g.n // want "channel send in channelSendUnderLock while g.rw is held"
	g.rw.RUnlock()
}

// channelRecvUnderLock blocks on a receive.
func channelRecvUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	g.n = <-ch // want "channel receive in channelRecvUnderLock while g.mu is held"
	g.mu.Unlock()
}

// selectUnderLock: a select without default blocks like any receive.
func selectUnderLock(g *guarded, a, b chan int) {
	g.mu.Lock()
	// want "select without default in selectUnderLock while g.mu is held"
	select {
	case g.n = <-a:
	case g.n = <-b:
	}
	g.mu.Unlock()
}

// nonBlockingSelectUnderLock is sanctioned: default makes it a poll.
func nonBlockingSelectUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	select {
	case g.n = <-ch:
	default:
	}
	g.mu.Unlock()
}

// connReadUnderLock holds the mutex across socket I/O.
func connReadUnderLock(g *guarded, c net.Conn, buf []byte) {
	g.mu.Lock()
	c.Read(buf) // want "in connReadUnderLock while g.mu is held"
	g.mu.Unlock()
}

// returnWhileHeld leaks the lock on the error path.
func returnWhileHeld(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		return 0 // want "return in returnWhileHeld with g.mu still held"
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// fallthroughLeak never unlocks at all.
func fallthroughLeak(g *guarded) {
	g.mu.Lock() // want "in fallthroughLeak is not released on every path"
	g.n++
}

// branchBalanced unlocks on every path — early exit and fallthrough.
func branchBalanced(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// closureIsItsOwnScope: the literal's discipline is judged alone.
func closureIsItsOwnScope(g *guarded) func() {
	return func() {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// deferredClosureUnlock: pairing through a deferred literal.
func deferredClosureUnlock(g *guarded) {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	g.n++
}

// allowedSleep shows a justified suppression (and keeps it from going
// stale).
func allowedSleep(g *guarded) {
	g.mu.Lock()
	//unroller:allow lockscope -- fixture: demonstrates a justified suppression
	time.Sleep(time.Microsecond)
	g.mu.Unlock()
}

// lockedLoopBody locks and unlocks within each iteration.
func lockedLoopBody(g *guarded, ch chan int) {
	for i := 0; i < 3; i++ {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
		ch <- g.n
	}
}
