// Package atomicuse accesses atomicdef's atomic fields plainly. Every
// finding here depends on facts imported from the defining package —
// nothing in this file alone marks the fields atomic — so this fixture
// only reports under a facts-aware run (the driver's whole-module phase
// or the unitchecker's vetx imports), which is exactly what
// TestAtomicfieldCrossPackage asserts.
package atomicuse

import "github.com/unroller/unroller/internal/analysis/testdata/src/atomicdef"

// Snapshot reads both atomic fields without atomics.
func Snapshot(g *atomicdef.Gauge) (uint64, string) {
	raw := g.Raw // plain access, reported cross-package
	return raw, g.Name
}

// Reset clears the typed atomic by value-assignment.
func Reset(g *atomicdef.Gauge) {
	g.Typed.Store(0) // sanctioned: typed atomic method
	g.Raw = 0        // plain access, reported cross-package
}
