// Package tagged exists to prove the loader honors build constraints:
// the sibling files redeclare Width behind constraints that can never
// hold together with this file's platform, so loading them would be a
// duplicate-declaration type error. A clean load means they were
// excluded.
package tagged

// Width is redeclared (with different values) by every excluded file.
const Width = 1

// Excluded reports which constrained files leaked into the build; the
// loader test asserts it stays empty.
var Excluded []string
