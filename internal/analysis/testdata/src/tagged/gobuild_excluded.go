//go:build plan9 && mips64

// This file's constraint can never hold on a platform the tests run
// on; if the loader ignored //go:build lines, Width would collide with
// fixture.go's declaration.
package tagged

const Width = 2

func init() { Excluded = append(Excluded, "gobuild") }
