// Excluded by the _plan9 filename suffix rule: no //go:build line is
// needed for the loader to drop this file on any other GOOS.
package tagged

const Width = 3

func init() { Excluded = append(Excluded, "suffix") }
