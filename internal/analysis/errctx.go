package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrctxAnalyzer enforces the repo's error-message convention, modelled
// on internal/core/unroller.go's
//
//	fmt.Errorf("core: invalid config: %w", err)
//
// Every error constructed in a library package must be attributable
// without a stack trace: a 10k-switch emulation surfaces errors far from
// their origin, so the message itself carries the package name. The rule
// for string literals passed to fmt.Errorf and errors.New:
//
//   - start with "<pkg>: ", or
//   - start with "%w" (the prefix then comes from the wrapped error,
//     whose own construction site this rule already covered).
//
// Sub-errors that are joined under a prefixed wrapper by construction
// (e.g. Config.Validate's list, wrapped by New as "core: invalid
// config: %w") opt out with a function-scoped //unroller:allow errctx.
// Package main is exempt: a CLI's errors print next to its own name.
var ErrctxAnalyzer = &Analyzer{
	Name: "errctx",
	Doc:  "require package-prefixed messages in fmt.Errorf and errors.New",
	Run:  runErrctx,
}

func runErrctx(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil
	}
	prefix := pkgBase(pass.PkgPath) + ": "
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var what string
			if name, ok := pkgFuncCall(pass, call, "fmt"); ok && name == "Errorf" {
				what = "fmt.Errorf"
			} else if name, ok := pkgFuncCall(pass, call, "errors"); ok && name == "New" {
				what = "errors.New"
			} else {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // dynamic format: out of scope
			}
			text, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if strings.HasPrefix(text, prefix) || strings.HasPrefix(text, "%w") {
				return true
			}
			pass.Reportf(lit.Pos(), "%s message %q lacks the package prefix %q (or a leading %%w delegating to a prefixed error)", what, truncateMsg(text), prefix)
			return true
		})
	}
	return nil
}

// truncateMsg keeps diagnostics single-line and short.
func truncateMsg(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
