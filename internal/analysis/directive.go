package analysis

import (
	"go/ast"
	"strings"
)

// DirectiveAnalyzer validates the //unroller: directive grammar, so a
// typo in an allowlist entry fails the build instead of silently
// suppressing nothing (stale-allow detection in RunAnalyzers catches the
// complementary failure: a well-formed allow whose finding has since
// been fixed). It flags:
//
//   - unknown verbs (only "hotpath", "commitpoint", "ackpoint", and
//     "allow" exist)
//   - allow directives naming no check, or an unknown check
//   - //unroller:hotpath, :commitpoint, :ackpoint outside a function's
//     doc comment
//   - "// unroller:" with interior space — a directive that the Go
//     convention (and this suite) treats as an ordinary comment
var DirectiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "validate //unroller: directive grammar and placement",
	Run:  runDirective,
}

func runDirective(pass *Pass) error {
	known := allowableChecks
	for _, f := range pass.Files {
		// Comments that are function doc comments, where hotpath is
		// legal.
		inFuncDoc := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				for _, c := range fn.Doc.List {
					inFuncDoc[c] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if rest, ok := strings.CutPrefix(text, "// "); ok && strings.HasPrefix(strings.TrimLeft(rest, " "), "unroller:") {
					pass.Reportf(c.Pos(), "malformed directive: space between // and unroller: makes this an ordinary comment")
					continue
				}
				verb, args := splitDirective(text)
				if verb == "" && !strings.HasPrefix(text, "//unroller:") {
					continue
				}
				switch verb {
				case "hotpath", "commitpoint", "ackpoint":
					if !inFuncDoc[c] {
						pass.Reportf(c.Pos(), "//unroller:%s must be in a function's doc comment", verb)
					}
					if args != "" {
						pass.Reportf(c.Pos(), "//unroller:%s takes no arguments, got %q", verb, args)
					}
				case "allow":
					checks := splitAllowChecks(args)
					if len(checks) == 0 {
						pass.Reportf(c.Pos(), "//unroller:allow names no check; grammar: //unroller:allow <check>[,<check>...] [-- reason]")
					}
					for _, name := range checks {
						if !known[name] {
							pass.Reportf(c.Pos(), "//unroller:allow names unknown check %q (known: atomicfield, commitorder, deadline, determinism, errctx, hotpath, lockscope, nodeps, wirewidth)", name)
						}
					}
				case "":
					pass.Reportf(c.Pos(), "empty //unroller: directive; known verbs: hotpath, commitpoint, ackpoint, allow")
				default:
					pass.Reportf(c.Pos(), "unknown //unroller: verb %q; known verbs: hotpath, commitpoint, ackpoint, allow", verb)
				}
			}
		}
	}
	return nil
}
