package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// WirewidthAnalyzer guards the wire format. The Unroller header packs
// identifier fields at bit granularity (z-bit slots, an 8-bit hop
// counter, a log2(Th)-bit threshold counter), so the encode/decode code
// in internal/bitpack and internal/core/header.go is full of narrowing
// conversions and shifts. Each one silently discards high bits; if a
// width constant drifts, identifiers truncate and detection quietly
// degrades. The analyzer therefore requires every hazardous operation to
// carry an explicit width mask (an & with the operand) so the intended
// width is visible in the source and survives refactors:
//
//   - a conversion to a narrower unsigned integer type must mask its
//     operand: byte((v >> s) & 0xff), not byte(v >> s)
//   - a left shift of a sub-64-bit unsigned value must be masked or
//     carry an //unroller:allow wirewidth directive proving the bound
//
// Scope: every file of internal/bitpack, plus core's header.go (the only
// core file that touches the wire).
var WirewidthAnalyzer = &Analyzer{
	Name: "wirewidth",
	Doc:  "require explicit width masks on narrowing conversions and shifts in wire-format code",
	Run:  runWirewidth,
}

func runWirewidth(pass *Pass) error {
	base := pkgBase(pass.PkgPath)
	for _, f := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !(base == "bitpack" || (base == "core" && filename == "header.go")) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNarrowingConversion(pass, n)
			case *ast.BinaryExpr:
				checkUnmaskedShift(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkNarrowingConversion flags T(x) where T is an unsigned integer
// type strictly narrower than x's static type and x carries no explicit
// mask.
func checkNarrowingConversion(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dstW := uintWidth(tv.Type)
	if dstW == 0 {
		return // not an unsigned integer target
	}
	arg := call.Args[0]
	argTV, ok := pass.Info.Types[arg]
	if !ok || argTV.Value != nil {
		return // constants are range-checked by the compiler
	}
	srcW := intWidth(argTV.Type)
	if srcW == 0 || dstW >= srcW {
		return
	}
	if containsMask(arg) {
		return
	}
	pass.Reportf(call.Pos(), "narrowing conversion %s→uint%d drops high bits without an explicit width mask", argTV.Type, dstW)
}

// checkUnmaskedShift flags x << s on sub-64-bit unsigned types: the
// shifted-out high bits vanish silently. 64-bit shifts are exempt — they
// are the working width, and rotations/packing at uint64 are pervasive
// and safe under the masks the conversions rule already demands.
func checkUnmaskedShift(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.SHL {
		return
	}
	tv, ok := pass.Info.Types[bin]
	if !ok || tv.Value != nil {
		return // constant shifts are compiler-checked
	}
	w := uintWidth(tv.Type)
	if w == 0 || w >= 64 {
		return
	}
	if containsMask(bin.X) {
		return // the shifted value carries an explicit width bound
	}
	pass.Reportf(bin.Pos(), "left shift on uint%d may drop high bits; mask the shifted value or //unroller:allow wirewidth with the width argument", w)
}

// containsMask reports whether the expression tree contains an & or &^
// operation — the explicit width guard this analyzer demands.
func containsMask(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok {
			if bin.Op == token.AND || bin.Op == token.AND_NOT {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// uintWidth returns the bit width of an unsigned integer type, or 0 for
// anything else. uint and uintptr count as 64-bit (the gc targets this
// repo builds for).
func uintWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsUnsigned == 0 {
		return 0
	}
	switch b.Kind() {
	case types.Uint8:
		return 8
	case types.Uint16:
		return 16
	case types.Uint32:
		return 32
	case types.Uint64, types.Uint, types.Uintptr:
		return 64
	}
	return 0
}

// intWidth returns the bit width of any integer type, or 0 otherwise.
func intWidth(t types.Type) int {
	if w := uintWidth(t); w != 0 {
		return w
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0
	}
	switch b.Kind() {
	case types.Int8:
		return 8
	case types.Int16:
		return 16
	case types.Int32:
		return 32
	case types.Int64, types.Int:
		return 64
	}
	return 0
}
