package analysis

import (
	"runtime"
	"strings"
	"testing"
)

// TestLoaderBuildConstraints proves excluded files stay excluded: the
// tagged fixture's sibling files redeclare Width behind impossible
// constraints (a //go:build line and a _plan9 filename suffix), so a
// clean single-file load is the only passing outcome.
func TestLoaderBuildConstraints(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/analysis/testdata/src/tagged")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("constrained files leaked into the load: %v", pkg.TypeErrors[0])
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("want 1 file after constraint filtering, got %d", len(pkg.Files))
	}
}

// TestFileMatchesPlatform covers the _GOOS/_GOARCH suffix table.
func TestFileMatchesPlatform(t *testing.T) {
	cases := map[string]bool{
		"plain.go":                       true,
		"name_" + runtime.GOOS + ".go":   true,
		"name_" + runtime.GOARCH + ".go": true,
		"name_plan9.go":                  false,
		"name_plan9_mips64.go":           false,
		"name_mips64.go":                 false,
		// An unknown suffix is an ordinary name, not a constraint.
		"name_widget.go": true,
		// GOOS must be second-to-last when GOARCH is last.
		"name_plan9_" + runtime.GOARCH + ".go":                false,
		"name_" + runtime.GOOS + "_" + runtime.GOARCH + ".go": true,
	}
	for name, want := range cases {
		if got := fileMatchesPlatform(name); got != want {
			t.Errorf("fileMatchesPlatform(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestBuildTagSatisfied covers the tag predicate the //go:build
// evaluator uses: platform tags, the gc toolchain, and release tags.
func TestBuildTagSatisfied(t *testing.T) {
	for tag, want := range map[string]bool{
		runtime.GOOS:   true,
		runtime.GOARCH: true,
		"gc":           true,
		"go1.1":        true,
		"go1.21":       true,
		"go1.99":       false,
		"plan9":        false,
		"purego":       false,
	} {
		if got := buildTagSatisfied(tag); got != want {
			t.Errorf("buildTagSatisfied(%q) = %v, want %v", tag, got, want)
		}
	}
}

// TestLoaderRefusesCgo pins the pure-Go posture at the loader layer:
// an import of "C" is a type error, never a silent skip.
func TestLoaderRefusesCgo(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/analysis/testdata/src/cgouser")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("cgo import type-checked; the loader must refuse it")
	}
	if !strings.Contains(pkg.TypeErrors[0].Error(), "cgo") {
		t.Errorf("refusal does not mention cgo: %v", pkg.TypeErrors[0])
	}
}

// TestLoadErrorPropagates pins the failure mode the driver turns into
// exit status 2: a pattern naming no directory is an error from Load,
// not an empty result.
func TestLoadErrorPropagates(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.Load("./no/such/dir"); err == nil {
		t.Fatal("Load of a nonexistent pattern succeeded")
	}
}

// TestCachedIncludesDependencies pins the contract the driver's fact
// phase relies on: loading a package pulls its module-internal
// dependencies into the cache, and Cached returns all of them sorted.
func TestCachedIncludesDependencies(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.Load("./internal/analysis/testdata/src/atomicuse"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	cached := loader.Cached()
	var sawDef, sawUse bool
	for i, p := range cached {
		if i > 0 && cached[i-1].Path >= p.Path {
			t.Errorf("Cached not sorted: %q before %q", cached[i-1].Path, p.Path)
		}
		switch pkgBase(p.Path) {
		case "atomicdef":
			sawDef = true
		case "atomicuse":
			sawUse = true
		}
	}
	if !sawDef || !sawUse {
		t.Errorf("Cached missing packages (def=%v use=%v): %d cached", sawDef, sawUse, len(cached))
	}
}
