package analysis

import (
	"testing"
)

// Each analyzer runs over its fixture package, which contains at least
// one construct it must flag (checked by want annotations) and at least
// one it must pass (any unexpected diagnostic fails the harness).

func TestDeterminismAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{DeterminismAnalyzer}, "sim", false)
}

func TestHotpathAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{HotpathAnalyzer}, "hot", false)
}

func TestWirewidthAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{WirewidthAnalyzer}, "bitpack", false)
}

func TestErrctxAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{ErrctxAnalyzer}, "errctx", false)
}

func TestNodepsAnalyzer(t *testing.T) {
	// The fixture deliberately imports an unresolvable external path, so
	// type errors are expected; the analyzer is purely syntactic.
	runFixture(t, []*Analyzer{NodepsAnalyzer}, "deps", true)
}

func TestDirectiveAnalyzer(t *testing.T) {
	runFixture(t, All(), "directives", false)
}

// TestDeterministicScopeSkipsOtherPackages pins that the determinism
// analyzer ignores packages outside its scope: the errctx fixture calls
// nothing deterministic but lives outside the scoped package list.
func TestDeterministicScopeSkipsOtherPackages(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/analysis/testdata/src/errctx")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunAnalyzers(pkgs[0], []*Analyzer{DeterminismAnalyzer})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("determinism flagged out-of-scope package: %v", diags)
	}
}

// TestSuiteCleanOnOwnModule is the self-test the CI gate depends on: the
// full suite over the full module must be silent. Any new finding must
// be fixed or explicitly allowed, never ignored.
func TestSuiteCleanOnOwnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("Load(./...) found only %d packages; walker is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s does not type-check under the analysis loader: %v", pkg.Path, pkg.TypeErrors[0])
		}
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestDirectiveParsing covers the grammar helpers directly.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		verb string
		args string
	}{
		{"//unroller:hotpath", "hotpath", ""},
		{"//unroller:allow errctx -- reason text", "allow", "errctx -- reason text"},
		{"//unroller:allow a,b", "allow", "a,b"},
		{"// ordinary comment", "", ""},
		{"//go:noinline", "", ""},
	}
	for _, c := range cases {
		verb, args := splitDirective(c.text)
		if verb != c.verb || args != c.args {
			t.Errorf("splitDirective(%q) = %q, %q; want %q, %q", c.text, verb, args, c.verb, c.args)
		}
	}
	checks := splitAllowChecks("errctx, hotpath -- cold branch")
	if len(checks) != 2 || checks[0] != "errctx" || checks[1] != "hotpath" {
		t.Errorf("splitAllowChecks = %v; want [errctx hotpath]", checks)
	}
	if got := splitAllowChecks("-- only a reason"); len(got) != 0 {
		t.Errorf("splitAllowChecks with no names = %v; want empty", got)
	}
}

// TestLoaderStdlibDetection pins the stdlib/external split the importer
// and nodeps share.
func TestLoaderStdlibDetection(t *testing.T) {
	for path, want := range map[string]bool{
		"fmt":                true,
		"math/rand":          true,
		"go/types":           true,
		"github.com/x/y":     false,
		"golang.org/x/tools": false,
		"example.com/single": false,
	} {
		if got := isStdlib(path); got != want {
			t.Errorf("isStdlib(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestDiagnosticString pins the output format the golden file and CI
// grepability rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "errctx", Message: "boom"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: errctx: boom"; got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}
