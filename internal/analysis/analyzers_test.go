package analysis

import (
	"strings"
	"testing"
)

// Each analyzer runs over its fixture package, which contains at least
// one construct it must flag (checked by want annotations) and at least
// one it must pass (any unexpected diagnostic fails the harness).

func TestDeterminismAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{DeterminismAnalyzer}, "sim", false)
}

func TestHotpathAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{HotpathAnalyzer}, "hot", false)
}

func TestWirewidthAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{WirewidthAnalyzer}, "bitpack", false)
}

func TestErrctxAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{ErrctxAnalyzer}, "errctx", false)
}

func TestNodepsAnalyzer(t *testing.T) {
	// The fixture deliberately imports an unresolvable external path, so
	// type errors are expected; the analyzer is purely syntactic.
	runFixture(t, []*Analyzer{NodepsAnalyzer}, "deps", true)
}

func TestDirectiveAnalyzer(t *testing.T) {
	runFixture(t, All(), "directives", false)
}

func TestLockscopeAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{LockscopeAnalyzer}, "lockscope", false)
}

func TestDeadlineAnalyzer(t *testing.T) {
	// The fixture's package basename is collectorsvc, which puts it under
	// the deadline contract (the same scoping trick as the "sim" fixture).
	runFixture(t, []*Analyzer{DeadlineAnalyzer}, "collectorsvc", false)
}

func TestDeadlineAnalyzerClusterScope(t *testing.T) {
	// The cluster membership layer is under the same contract: its
	// fixture pins that the package scope list includes it.
	runFixture(t, []*Analyzer{DeadlineAnalyzer}, "cluster", false)
}

func TestCommitorderAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{CommitorderAnalyzer}, "commitorder", false)
}

func TestAtomicfieldAnalyzer(t *testing.T) {
	runFixture(t, []*Analyzer{AtomicfieldAnalyzer}, "atomicfield", false)
}

// TestAtomicfieldCrossPackage exercises the facts transport: atomicuse
// touches fields plainly that only atomicdef (its dependency) marks
// atomic. Without the dependency's facts the plain accesses are
// invisible; with them, both are reported.
func TestAtomicfieldCrossPackage(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(
		"./internal/analysis/testdata/src/atomicdef",
		"./internal/analysis/testdata/src/atomicuse",
	)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var def, use *Package
	for _, p := range pkgs {
		switch pkgBase(p.Path) {
		case "atomicdef":
			def = p
		case "atomicuse":
			use = p
		}
	}
	if def == nil || use == nil {
		t.Fatalf("fixture packages missing: %v", pkgs)
	}

	// Own-package facts only: the defining package's atomics are unknown,
	// so the plain accesses pass — this is the blind spot facts exist for.
	diags, err := RunAnalyzers(use, []*Analyzer{AtomicfieldAnalyzer})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("atomicuse reported without dependency facts: %v", diags)
	}

	// Whole-module fact phase, then the same run: both plain accesses
	// (g.Raw read in Snapshot, g.Raw write in Reset) are caught; g.Name
	// and g.Typed.Store stay clean.
	facts := NewFacts()
	for _, p := range []*Package{def, use} {
		if err := GenerateFacts(p, []*Analyzer{AtomicfieldAnalyzer}, facts); err != nil {
			t.Fatalf("GenerateFacts(%s): %v", p.Path, err)
		}
	}
	if facts.Len() < 2 {
		t.Fatalf("expected at least 2 facts from atomicdef, got %d", facts.Len())
	}
	diags, err = RunAnalyzersWithFacts(use, []*Analyzer{AtomicfieldAnalyzer}, facts)
	if err != nil {
		t.Fatalf("RunAnalyzersWithFacts: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 cross-package findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "atomicdef.Gauge.Raw") {
			t.Errorf("finding does not name the field: %s", d)
		}
	}
}

// TestFactsRoundTrip pins the vetx wire format: sorted, line-oriented,
// and stable through Encode/Decode.
func TestFactsRoundTrip(t *testing.T) {
	f := NewFacts()
	f.Set("atomicfield", "pkg.T.n", "atomic")
	f.Set("commitorder", "(*pkg.J).Commit", "commitpoint")
	f.Set("atomicfield", "pkg.T.m", "value with\ttab and\nnewline")
	enc := f.Encode()
	g := NewFacts()
	if err := DecodeFactsInto(g, enc); err != nil {
		t.Fatalf("DecodeFactsInto: %v", err)
	}
	if g.Len() != f.Len() {
		t.Fatalf("round-trip lost facts: %d != %d", g.Len(), f.Len())
	}
	if v, ok := g.Get("atomicfield", "pkg.T.m"); !ok || v != "value with\ttab and\nnewline" {
		t.Fatalf("escaped value corrupted: %q %v", v, ok)
	}
	if string(enc) != string(g.Encode()) {
		t.Fatalf("re-encoding is not byte-stable:\n%q\n%q", enc, g.Encode())
	}
	if bad := []byte("only\ttwo\n"); DecodeFactsInto(NewFacts(), bad) == nil {
		t.Fatal("malformed fact line not rejected")
	}
}

// TestDeterministicScopeSkipsOtherPackages pins that the determinism
// analyzer ignores packages outside its scope: the errctx fixture calls
// nothing deterministic but lives outside the scoped package list.
func TestDeterministicScopeSkipsOtherPackages(t *testing.T) {
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/analysis/testdata/src/errctx")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunAnalyzers(pkgs[0], []*Analyzer{DeterminismAnalyzer})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("determinism flagged out-of-scope package: %v", diags)
	}
}

// TestSuiteCleanOnOwnModule is the self-test the CI gate depends on: the
// full suite over the full module must be silent. Any new finding must
// be fixed or explicitly allowed, never ignored.
func TestSuiteCleanOnOwnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("Load(./...) found only %d packages; walker is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s does not type-check under the analysis loader: %v", pkg.Path, pkg.TypeErrors[0])
		}
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestDirectiveParsing covers the grammar helpers directly.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		verb string
		args string
	}{
		{"//unroller:hotpath", "hotpath", ""},
		{"//unroller:allow errctx -- reason text", "allow", "errctx -- reason text"},
		{"//unroller:allow a,b", "allow", "a,b"},
		{"// ordinary comment", "", ""},
		{"//go:noinline", "", ""},
	}
	for _, c := range cases {
		verb, args := splitDirective(c.text)
		if verb != c.verb || args != c.args {
			t.Errorf("splitDirective(%q) = %q, %q; want %q, %q", c.text, verb, args, c.verb, c.args)
		}
	}
	checks := splitAllowChecks("errctx, hotpath -- cold branch")
	if len(checks) != 2 || checks[0] != "errctx" || checks[1] != "hotpath" {
		t.Errorf("splitAllowChecks = %v; want [errctx hotpath]", checks)
	}
	if got := splitAllowChecks("-- only a reason"); len(got) != 0 {
		t.Errorf("splitAllowChecks with no names = %v; want empty", got)
	}
}

// TestLoaderStdlibDetection pins the stdlib/external split the importer
// and nodeps share.
func TestLoaderStdlibDetection(t *testing.T) {
	for path, want := range map[string]bool{
		"fmt":                true,
		"math/rand":          true,
		"go/types":           true,
		"github.com/x/y":     false,
		"golang.org/x/tools": false,
		"example.com/single": false,
	} {
		if got := isStdlib(path); got != want {
			t.Errorf("isStdlib(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestDiagnosticString pins the output format the golden file and CI
// grepability rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "errctx", Message: "boom"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: errctx: boom"; got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}
