package analysis

import (
	"go/ast"
	"go/types"
)

// CommitorderAnalyzer enforces the commit-before-ack durability rule
// (DESIGN §9): an acknowledgement is the client's licence to forget, so
// no path may reach an ack write without the journal commit that makes
// the acknowledged frames crash-safe. The roles are declared, not
// guessed: //unroller:commitpoint tags the durability step
// ((*Journal).Commit) and //unroller:ackpoint tags the ack write, and
// both tags are exported as package facts so a caller in any package is
// checked against them.
//
// The check is an intra-function must-dataflow over the CFG: "a commit
// dominates this point" starts false, branches merge with AND, a loop
// body is checked within one iteration, and reaching an ackpoint call
// consumes the commit (the next ack needs its own commit — one Commit
// cannot license a whole batch of later acks after more appends).
// One shape gets special treatment: an if-without-else whose body
// commits and does not ack is a *guarded commit arm* — the
// `if s.journal != nil { s.journal.Commit() }` idiom, where the
// fall-through path has no journal and therefore nothing to commit —
// and counts as committing on both paths.
// commitorderName is the analyzer's name as a constant, usable from its
// own Run/FactGen without an initialization cycle through the var.
const commitorderName = "commitorder"

var CommitorderAnalyzer = &Analyzer{
	Name:    commitorderName,
	Doc:     "require a //unroller:commitpoint call to dominate every //unroller:ackpoint call",
	FactGen: genCommitorderFacts,
	Run:     runCommitorder,
}

// genCommitorderFacts publishes the commitpoint/ackpoint role of every
// tagged function under its *types.Func full name.
func genCommitorderFacts(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var role string
			switch {
			case pass.Dirs.isCommitpoint(fn):
				role = "commitpoint"
			case pass.Dirs.isAckpoint(fn):
				role = "ackpoint"
			default:
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				pass.Facts.Set(commitorderName, obj.FullName(), role)
			}
		}
	}
	return nil
}

func runCommitorder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// A tagged function is a role, not a caller under check: the
			// ackpoint's own body is the ack write.
			if pass.Dirs.isCommitpoint(fn) || pass.Dirs.isAckpoint(fn) {
				continue
			}
			w := &commitWalker{pass: pass}
			committed := false
			w.walkStmts(fn.Body.List, &committed)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w := &commitWalker{pass: pass}
				committed := false
				w.walkStmts(lit.Body.List, &committed)
			}
			return true
		})
	}
	return nil
}

type commitWalker struct {
	pass *Pass
}

// callRole resolves a call's target against the commitorder facts.
func (w *commitWalker) callRole(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = w.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	role, _ := w.pass.Facts.Get(commitorderName, fn.FullName())
	return role
}

// scanStmtCalls processes the calls of one statement in source order:
// commits set the flag, acks check and consume it. Function literals are
// separate scopes and are skipped.
func (w *commitWalker) scanStmtCalls(n ast.Node, committed *bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch w.callRole(call) {
		case "commitpoint":
			*committed = true
		case "ackpoint":
			if !*committed {
				w.pass.Reportf(call.Pos(), "ack write is not dominated by a journal commit on every path (commit-before-ack, DESIGN §9): call the //unroller:commitpoint function first")
			}
			// The ack consumed the commit; a later ack needs a fresh one.
			*committed = false
		}
		return true
	})
}

// containsAckCall reports whether the subtree calls an ackpoint
// (function literals excluded).
func (w *commitWalker) containsAckCall(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && w.callRole(call) == "ackpoint" {
				found = true
			}
			return !found
		})
	}
	return found
}

func (w *commitWalker) walkStmts(stmts []ast.Stmt, committed *bool) bool {
	for _, s := range stmts {
		if w.walkStmt(s, committed) {
			return true
		}
	}
	return false
}

func (w *commitWalker) walkStmt(stmt ast.Stmt, committed *bool) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanStmtCalls(e, committed)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, committed)
		}
		w.scanStmtCalls(s.Cond, committed)
		entry := *committed
		thenC := entry
		thenTerm := w.walkStmts(s.Body.List, &thenC)
		if s.Else == nil {
			// Guarded commit arm: the branch commits, acks nothing, and
			// falls through — the condition guards whether there is
			// anything to commit at all, so both paths count as committed.
			if !thenTerm && thenC && !entry && !w.containsAckCall(s.Body.List) {
				*committed = true
				return false
			}
			if thenTerm {
				*committed = entry
			} else {
				*committed = entry && thenC
			}
			return false
		}
		elseC := entry
		elseTerm := w.walkStmt(s.Else, &elseC)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*committed = elseC
		case elseTerm:
			*committed = thenC
		default:
			*committed = thenC && elseC
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, committed)
		}
		w.scanStmtCalls(s.Cond, committed)
		bodyC := *committed
		w.walkStmts(s.Body.List, &bodyC)
		// Zero-iteration possibility: the body's commits do not count
		// downstream.
	case *ast.RangeStmt:
		w.scanStmtCalls(s.X, committed)
		bodyC := *committed
		w.walkStmts(s.Body.List, &bodyC)
	case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
		w.walkCases(stmt, committed)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, committed)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, committed)
	case *ast.GoStmt, *ast.DeferStmt:
		// Separate scopes / post-return execution: a deferred ack cannot
		// be ordered against this body's commits, so it is checked as its
		// own (initially uncommitted) scope via the FuncLit walk.
	default:
		w.scanStmtCalls(stmt, committed)
	}
	return false
}

// walkCases forks the flag per case clause and re-merges with AND over
// the non-terminating clauses.
func (w *commitWalker) walkCases(stmt ast.Stmt, committed *bool) {
	var clauses []ast.Stmt
	switch s := stmt.(type) {
	case *ast.SelectStmt:
		clauses = s.Body.List
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, committed)
		}
		w.scanStmtCalls(s.Tag, committed)
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, committed)
		}
		clauses = s.Body.List
	}
	entry := *committed
	merged := entry
	first := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		default:
			continue
		}
		caseC := entry
		if !w.walkStmts(body, &caseC) {
			if first {
				merged, first = caseC, false
			} else {
				merged = merged && caseC
			}
		}
	}
	if !first {
		*committed = merged
	}
}
