package analysis

import (
	"go/ast"
	"go/types"
)

// HotpathAnalyzer keeps per-hop code honest. Functions tagged
// //unroller:hotpath are the software analogue of the paper's P4 control
// block: they run once per packet per switch, so a single heap
// allocation or fmt call turns the "as fast as the hardware allows"
// north star into a garbage-collection benchmark. The analyzer flags,
// inside tagged function bodies only (callees are checked where they are
// tagged themselves):
//
//   - defer and go statements (scheduling overhead, allocation)
//   - closures (func literals allocate their environment)
//   - make/new/append and &composite-literal allocations
//   - slice and map composite literals
//   - any call into package fmt (allocates, takes locks)
//   - explicit conversions to interface types and type assertions
//     (interface conversions box their operand)
//   - string concatenation (allocates the result)
//
// Cold branches inside a hot function — error returns, the
// once-per-detection report — carry //unroller:allow hotpath directives
// with a justification.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocations, fmt calls, defers, and interface conversions in //unroller:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Dirs.isHotpath(fn) {
				continue
			}
			checkHotBody(pass, fn)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path %s", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path %s", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path %s allocates its environment", name)
		case *ast.TypeAssertExpr:
			pass.Reportf(n.Pos(), "type assertion in hot path %s", name)
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&composite literal in hot path %s heap-allocates", name)
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal in hot path %s allocates", kindName(t), name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := pass.Info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates", name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, name)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, fname string) {
	// Conversions: T(x) where T is an interface type boxes x.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			pass.Reportf(call.Pos(), "conversion to interface type in hot path %s boxes its operand", fname)
		}
		return
	}
	// Builtins that allocate.
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := pass.Info.Uses[ident].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot path %s allocates", b.Name(), fname)
			case "append":
				pass.Reportf(call.Pos(), "append in hot path %s may grow its backing array", fname)
			}
			return
		}
	}
	// Any call into package fmt.
	if name, ok := pkgFuncCall(pass, call, "fmt"); ok {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates and formats reflectively", name, fname)
	}
}

// kindName names a composite-literal kind for diagnostics.
func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "composite"
	}
}
