package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// deterministicPkgs are the package basenames whose results must be
// bit-for-bit reproducible across runs: everything between an experiment
// seed and a table or figure. internal/xrand is the only sanctioned
// randomness source for these (it is seedable and version-pinned, unlike
// math/rand whose sequences may change between Go releases).
var deterministicPkgs = map[string]bool{
	"core":        true,
	"sim":         true,
	"netsim":      true,
	"experiments": true,
	"topology":    true,
	"stats":       true,
	// verify is the cross-plane oracle: its confusion matrices land in
	// scenario golden files, so its iteration order must never depend on
	// map order or the clock.
	"verify": true,
}

// forbiddenTimeFuncs read the wall clock; any of their outputs reaching a
// table would make runs non-reproducible. Timing-only call sites carry an
// //unroller:allow determinism directive with a justification.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// DeterminismAnalyzer enforces reproducibility in the deterministic
// packages: no math/rand, no wall-clock reads, no iteration over maps
// (whose order Go randomises per run).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, wall-clock reads, and map iteration in packages feeding reproducible output",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pkgBase(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: use internal/xrand (seedable, version-pinned)", path, pkgBase(pass.PkgPath))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := pkgFuncCall(pass, n, "time"); ok && forbiddenTimeFuncs[name] {
					pass.Reportf(n.Pos(), "call to time.%s in deterministic package %s: wall-clock values must not feed reproducible output (//unroller:allow determinism for timing-only uses)", name, pkgBase(pass.PkgPath))
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map has nondeterministic order in deterministic package %s: sort the keys first (//unroller:allow determinism if order provably cannot leak)", pkgBase(pass.PkgPath))
					}
				}
			}
			return true
		})
	}
	return nil
}

// pkgFuncCall reports whether call is pkgName.Func(...) on the named
// standard-library package, returning the function name.
func pkgFuncCall(pass *Pass, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj, ok := pass.Info.Uses[ident]
	if !ok {
		return "", false
	}
	pn, ok := obj.(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
