package analysis

import (
	"go/ast"
	"go/types"
)

// DeadlineAnalyzer enforces the deadline-armed I/O rule in
// internal/collectorsvc (PR 5's hardening contract): every read or write
// that can touch a socket must be dominated by a SetReadDeadline /
// SetWriteDeadline arm in the same scope, so a silent or stalled peer is
// reaped by the kernel timer instead of parking a goroutine and its
// buffers forever. The kill-recover and chaosnet e2e suites observe the
// symptom (a wedged connection) when fault timing cooperates; this check
// proves the arm is on every path.
//
// Socket I/O is recognized in two forms: a method call on any value
// whose type satisfies net.Conn (Read/Write), and — because the
// collector always wraps its conns — operations on bufio readers and
// writers constructed from a conn, including passing such a
// reader/writer to a helper (ReadFrame(br, ...) is a conn read). Arming
// is tracked as a per-scope must-dominate dataflow: branches merge with
// AND, loop bodies must arm before the I/O within the same iteration,
// and each function literal starts un-armed (a closure cannot rely on
// its creator having armed the conn at some earlier time — deadlines
// are absolute points in time and must be re-armed near the I/O they
// bound).
var DeadlineAnalyzer = &Analyzer{
	Name: "deadline",
	Doc:  "require SetRead/SetWriteDeadline to dominate every conn read/write in collectorsvc",
	Run:  runDeadline,
}

// deadlinePkgs are the packages under the deadline-armed I/O contract.
// The collector service and the cluster membership layer both speak
// TCP with peers that may stall at any point; the chaosnet fault
// injector deliberately manipulates raw conns and the emulator has no
// sockets at all. (The lockscope contract needs no such list — it runs
// on every package.)
var deadlinePkgs = map[string]bool{
	"collectorsvc": true,
	"cluster":      true,
}

func runDeadline(pass *Pass) error {
	if !deadlinePkgs[pkgBase(pass.PkgPath)] {
		return nil
	}
	connIface := netConnInterface(pass)
	if connIface == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Taint is resolved per top-level function: bufio wrappers are
			// identified by their construction site, and the objects are
			// shared with every closure in the body (Info.Uses resolves a
			// captured identifier to the same object).
			taint := connBufWrappers(pass, fn.Body, connIface)
			w := &deadlineWalker{pass: pass, conn: connIface, taint: taint}
			w.walkStmts(fn.Body.List, &armState{})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.walkStmts(lit.Body.List, &armState{})
				}
				return true
			})
		}
	}
	return nil
}

// connBufWrappers finds `r := bufio.NewReader(conn)`-style constructions
// over net.Conn values and returns the wrapped objects with their role.
func connBufWrappers(pass *Pass, body *ast.BlockStmt, connIface *types.Interface) map[types.Object]string {
	taint := make(map[types.Object]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			name, ok := pkgFuncCall(pass, call, "bufio")
			if !ok {
				continue
			}
			var role string
			switch name {
			case "NewReader", "NewReaderSize":
				role = "reader"
			case "NewWriter", "NewWriterSize":
				role = "writer"
			default:
				continue
			}
			if t := pass.Info.TypeOf(call.Args[0]); t == nil || !types.Implements(t, connIface) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := identObject(pass, id); obj != nil {
					taint[obj] = role
				}
			}
		}
		return true
	})
	return taint
}

func identObject(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// armState is the must-armed dataflow value at one program point.
type armState struct {
	read, write bool
}

func (a *armState) clone() *armState { c := *a; return &c }

// and merges an alternative branch: armed only if armed on both.
func (a *armState) and(b *armState) {
	a.read = a.read && b.read
	a.write = a.write && b.write
}

type deadlineWalker struct {
	pass  *Pass
	conn  *types.Interface
	taint map[types.Object]string
}

func (w *deadlineWalker) walkStmts(stmts []ast.Stmt, st *armState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *deadlineWalker) walkStmt(stmt ast.Stmt, st *armState) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.and(elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		// The loop may run zero times: whatever the body armed does not
		// count downstream.
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
	case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
		w.walkBranchBodies(stmt, st)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.GoStmt, *ast.DeferStmt:
		// Function literals inside are walked as their own scopes by the
		// caller; a bare `defer conn.Close()` has no deadline obligation.
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				w.scanCall(e, st)
			}
			return true
		})
	}
	return false
}

// walkBranchBodies forks st per case clause and re-merges with AND.
func (w *deadlineWalker) walkBranchBodies(stmt ast.Stmt, st *armState) {
	var clauses []ast.Stmt
	switch s := stmt.(type) {
	case *ast.SelectStmt:
		clauses = s.Body.List
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	}
	merged := st.clone()
	first := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		default:
			continue
		}
		caseSt := st.clone()
		if !w.walkStmts(body, caseSt) {
			if first {
				merged = caseSt
				first = false
			} else {
				merged.and(caseSt)
			}
		}
	}
	if !first {
		*st = *merged
	}
}

// scanExpr inspects one expression subtree for conn I/O and arming,
// skipping nested function literals.
func (w *deadlineWalker) scanExpr(expr ast.Expr, st *armState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			w.scanCall(e, st)
		}
		return true
	})
}

// scanCall classifies one expression node: arming flips the state, I/O
// checks it.
func (w *deadlineWalker) scanCall(e ast.Expr, st *armState) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recvT := w.pass.Info.TypeOf(sel.X); recvT != nil && types.Implements(recvT, w.conn) {
			switch sel.Sel.Name {
			case "SetDeadline":
				st.read, st.write = true, true
				return
			case "SetReadDeadline":
				st.read = true
				return
			case "SetWriteDeadline":
				st.write = true
				return
			case "Read":
				if !st.read {
					w.pass.Reportf(call.Pos(), "conn read not dominated by SetReadDeadline in this scope: a silent peer parks this goroutine forever")
				}
				return
			case "Write":
				if !st.write {
					w.pass.Reportf(call.Pos(), "conn write not dominated by SetWriteDeadline in this scope: a stalled peer parks this goroutine forever")
				}
				return
			}
		}
		// bufio wrapper method on a conn-backed reader/writer.
		if id, ok := sel.X.(*ast.Ident); ok {
			if role, tainted := w.taint[identObject(w.pass, id)]; tainted {
				switch role {
				case "reader":
					switch sel.Sel.Name {
					case "Read", "ReadByte", "ReadRune", "ReadString", "ReadBytes", "ReadSlice", "Peek", "Discard":
						if !st.read {
							w.pass.Reportf(call.Pos(), "read from conn-backed bufio.Reader %s not dominated by SetReadDeadline in this scope", id.Name)
						}
						return
					}
				case "writer":
					switch sel.Sel.Name {
					case "Write", "WriteByte", "WriteRune", "WriteString", "Flush", "ReadFrom":
						if !st.write {
							w.pass.Reportf(call.Pos(), "write to conn-backed bufio.Writer %s not dominated by SetWriteDeadline in this scope", id.Name)
						}
						return
					}
				}
			}
		}
	}
	// A conn-backed reader/writer handed to a helper is that helper doing
	// the I/O on our behalf (ReadFrame(br, ...), writeAck(bw, ...)).
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		switch w.taint[identObject(w.pass, id)] {
		case "reader":
			if !st.read {
				w.pass.Reportf(call.Pos(), "call passes conn-backed bufio.Reader %s without SetReadDeadline dominating it in this scope", id.Name)
			}
		case "writer":
			if !st.write {
				w.pass.Reportf(call.Pos(), "call passes conn-backed bufio.Writer %s without SetWriteDeadline dominating it in this scope", id.Name)
			}
		}
	}
}
