package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Package facts let an analyzer publish what it learned about one
// package's declarations so checks in *other* packages can consult it —
// the mechanism behind atomicfield (a field atomically accessed in its
// home package must not be touched plainly anywhere) and commitorder
// (commitpoint/ackpoint tags on exported functions are visible to every
// caller). Facts are deliberately primitive: string key → string value,
// where the key is a stable, position-independent object path
// ("pkg/path.Type.Field" or a *types.Func FullName). Two transports
// share the format:
//
//   - the driver runs a whole-module fact phase in one process and
//     hands every Run pass the merged table;
//   - the unitchecker (go vet -vettool) serializes facts to the .vetx
//     file the go command threads between package units (see
//     cmd/unroller-vet).
//
// The wire encoding is line-oriented and sorted, so vetx files are
// byte-stable for identical inputs and diff cleanly:
//
//	analyzer\tobject\tvalue\n

// Facts is a merged analyzer→object→value table. The zero value is not
// usable; call NewFacts.
type Facts struct {
	m map[factKey]string
}

type factKey struct {
	analyzer string
	object   string
}

// NewFacts returns an empty fact table.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]string)} }

// Set records one fact. Re-setting the same key overwrites — analyzers
// publish idempotent observations, not counters.
func (f *Facts) Set(analyzer, object, value string) {
	f.m[factKey{analyzer, object}] = value
}

// Get looks one fact up.
func (f *Facts) Get(analyzer, object string) (string, bool) {
	v, ok := f.m[factKey{analyzer, object}]
	return v, ok
}

// Len reports the number of facts (diagnostic aid for tests and -debug
// output).
func (f *Facts) Len() int { return len(f.m) }

// Encode renders the table in the sorted line format. Tabs and newlines
// cannot appear in keys (object paths are Go identifiers and import
// paths); values are escaped defensively.
func (f *Facts) Encode() []byte {
	lines := make([]string, 0, len(f.m))
	for k, v := range f.m {
		lines = append(lines, k.analyzer+"\t"+k.object+"\t"+escapeFactValue(v)+"\n")
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, ""))
}

// DecodeFactsInto parses data (the Encode format) and merges every fact
// into f.
func DecodeFactsInto(f *Facts, data []byte) error {
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return fmt.Errorf("analysis: malformed fact line %q", line)
		}
		f.Set(parts[0], parts[1], unescapeFactValue(parts[2]))
	}
	return nil
}

func escapeFactValue(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func unescapeFactValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
