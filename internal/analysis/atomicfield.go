package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicfieldAnalyzer enforces the all-or-nothing rule of atomics: a
// struct field accessed through sync/atomic — either by address
// (atomic.AddUint64(&s.n, 1)) or as a typed atomic (atomic.Uint64 field)
// — must never also be accessed plainly. A single plain load next to
// atomic stores is a data race the race detector only sees when the
// schedule cooperates; the analyzer sees it on every build. Fields are
// identified as "pkg/path.Struct.Field" and published as package facts
// by FactGen, so a field made atomic in its home package is protected
// against plain access from every other package in the module — the
// cross-file, cross-package case that per-file review misses.
//
// Sanctioned accesses: &s.f as an argument to a sync/atomic function,
// and s.f.Load()-style method calls whose method belongs to
// sync/atomic. Everything else — plain reads, assignments, copying the
// struct field, passing &s.f to a non-atomic helper — is reported.
// atomicfieldName is the analyzer's name as a constant, usable from its
// own Run/FactGen without an initialization cycle through the var.
const atomicfieldName = "atomicfield"

var AtomicfieldAnalyzer = &Analyzer{
	Name:    atomicfieldName,
	Doc:     "forbid plain access to struct fields that are accessed via sync/atomic anywhere",
	FactGen: genAtomicFieldFacts,
	Run:     runAtomicField,
}

// genAtomicFieldFacts records which fields are atomic, from two sources:
// address-taken use in a sync/atomic call, and field declarations whose
// type is a sync/atomic typed atomic.
func genAtomicFieldFacts(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isAtomicPkgCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op.String() != "&" {
						continue
					}
					if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
						if key, ok := atomicFieldKey(pass, sel); ok {
							pass.Facts.Set(atomicfieldName, key, "atomic")
						}
					}
				}
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					t := pass.Info.TypeOf(fld.Type)
					if t == nil || !isTypedAtomic(t) {
						continue
					}
					for _, name := range fld.Names {
						key := pass.PkgPath + "." + n.Name.Name + "." + name.Name
						pass.Facts.Set(atomicfieldName, key, "typed")
					}
				}
			}
			return true
		})
	}
	return nil
}

func runAtomicField(pass *Pass) error {
	for _, f := range pass.Files {
		// Pass 1: collect the sanctioned selector nodes — the &s.f inside
		// sync/atomic calls, and the s.f receiver of a typed atomic's
		// method call.
		sanctioned := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isAtomicPkgCall(pass, call) {
				for _, arg := range call.Args {
					if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
						if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
							sanctioned[sel] = true
						}
					}
				}
			}
			if msel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[msel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					if sel, ok := ast.Unparen(msel.X).(*ast.SelectorExpr); ok {
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
		// Pass 2: every other selector resolving to an atomic field is a
		// plain access.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key, ok := atomicFieldKey(pass, sel)
			if !ok {
				return true
			}
			kind, isAtomic := pass.Facts.Get(atomicfieldName, key)
			if !isAtomic {
				return true
			}
			how := "with sync/atomic calls"
			if kind == "typed" {
				how = "through its atomic.<T> methods"
			}
			pass.Reportf(sel.Pos(), "plain access to %s, which is accessed atomically elsewhere (%s): mixing plain and atomic access is a data race", key, how)
			return true
		})
	}
	return nil
}

// isAtomicPkgCall reports whether call targets a sync/atomic
// package-level function (AddUint64, LoadInt64, CompareAndSwap...).
func isAtomicPkgCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Package-level function, not a typed atomic's method.
	return fn.Type().(*types.Signature).Recv() == nil
}

// isTypedAtomic reports whether t is one of sync/atomic's typed atomics
// (atomic.Uint64, atomic.Int32, atomic.Bool, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicFieldKey renders the "pkg/path.Struct.Field" identity of a field
// selection, the same form FactGen publishes.
func atomicFieldKey(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	// The owning struct is the receiver type with pointers stripped; only
	// named structs participate (an anonymous struct has no stable path).
	recv := s.Recv()
	for {
		ptr, ok := recv.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		// Embedded promotion can leave an alias/pointer chain; handle
		// *T spelled as a named pointer elem.
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			named, ok = ptr.Elem().(*types.Named)
		}
		if !ok {
			return "", false
		}
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	// Fields promoted from an embedded struct resolve through the
	// outermost receiver; use the field's declaring struct when it can be
	// identified so inner and outer spellings agree on one key.
	fld := s.Obj()
	key := obj.Pkg().Path() + "." + obj.Name() + "." + fld.Name()
	if len(s.Index()) > 1 {
		// Promoted: fall back to a path-qualified field name so both
		// spellings (s.Inner.n and s.n) map to the same declaring struct
		// when the embedded type is named.
		if inner := declaringStruct(named, s.Index()); inner != "" {
			key = fld.Pkg().Path() + "." + inner + "." + fld.Name()
		}
	}
	return key, true
}

// declaringStruct resolves the named type that declares the field at the
// end of a promotion index chain.
func declaringStruct(outer *types.Named, index []int) string {
	t := types.Type(outer)
	for _, idx := range index[:len(index)-1] {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		ft := st.Field(idx).Type()
		for {
			if ptr, ok := ft.Underlying().(*types.Pointer); ok {
				ft = ptr.Elem()
				continue
			}
			break
		}
		t = ft
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Name()
	}
	return ""
}
