package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (module path + directory for module
	// packages; a testdata-relative pseudo-path for fixtures).
	Path string
	// Dir is the absolute directory the files came from.
	Dir        string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects non-fatal type-checker complaints. The driver
	// treats any as a load failure; the test harness tolerates them for
	// fixtures that deliberately import unresolvable paths.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module without any
// dependency on golang.org/x/tools: module-internal imports are resolved
// by walking the module tree, standard-library imports via go/importer's
// source importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std     types.Importer
	cache   map[string]*Package // keyed by absolute directory
	loading map[string]bool     // import-cycle guard
}

// NewLoader returns a loader rooted at moduleDir, which must contain
// go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving module dir: %w", err)
	}
	modPath, err := modulePathOf(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePathOf extracts the module path from dir/go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %s is not a module root: %w", dir, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			if path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// Load resolves patterns to package directories and loads each. Accepted
// patterns: "./..." (the whole module), "./dir/..." (a subtree), and
// plain directories relative to the module root (a leading "./" is
// fine). Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkTree(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleDir, strings.TrimSuffix(pat, "/..."))
			dirs, err := l.walkTree(root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.ModuleDir, pat)
			}
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("analysis: no Go files in %s", dir)
			}
			dirSet[dir] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkTree finds every package directory under root, skipping testdata,
// vendor, and hidden or underscore-prefixed directories — the same
// pruning the go tool applies to "./..." patterns.
func (l *Loader) walkTree(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir (memoised).
// Analysis covers non-test files only: the invariants guard production
// code, and tests legitimately use wall clocks and allocations.
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %s: %w", dir, err)
	}
	if pkg, ok := l.cache[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", abs, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			fileMatchesPlatform(name) && fileBuildTagsSatisfied(filepath.Join(abs, name)) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path:       l.importPathFor(abs),
		Dir:        abs,
		ModulePath: l.ModulePath,
		Fset:       l.Fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a usable error when conf.Error is set; the
	// collected TypeErrors carry the detail.
	pkg.Types, _ = conf.Check(pkg.Path, l.Fset, files, pkg.Info)
	l.cache[abs] = pkg
	return pkg, nil
}

// Cached returns every package the loader has type-checked so far —
// the requested ones plus their transitive module-internal dependencies
// — sorted by import path. The driver's whole-module fact phase runs
// over this set so facts from dependency packages exist before any
// requested package's Run pass consults them.
func (l *Loader) Cached() []*Package {
	pkgs := make([]*Package, 0, len(l.cache))
	for _, p := range l.cache {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// knownGOOS / knownGOARCH back the filename-suffix build constraints
// (foo_linux.go, foo_amd64.go). The lists mirror go/build's unexported
// ones; an unknown suffix is treated as an ordinary name, matching the
// go tool.
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileMatchesPlatform applies the _GOOS/_GOARCH filename rules:
// name_linux.go only builds on linux, name_amd64.go only on amd64,
// name_linux_amd64.go needs both.
func fileMatchesPlatform(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownGOARCH[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownGOOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownGOOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// fileBuildTagsSatisfied evaluates a leading //go:build line (or legacy
// // +build lines) against the current platform, so a file excluded from
// the real build is excluded from analysis too — analyzing a plan9-only
// file on linux would report findings the compiler never sees.
func fileBuildTagsSatisfied(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true // let the parser produce the real error
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if constraint.IsGoBuild(trimmed) || constraint.IsPlusBuild(trimmed) {
				expr, err := constraint.Parse(trimmed)
				if err != nil {
					continue
				}
				if !expr.Eval(buildTagSatisfied) {
					return false
				}
			}
			continue
		}
		break // package clause or code: the constraint block is over
	}
	return true
}

// buildTagSatisfied reports whether one build tag holds for this
// analysis run: the host platform, the gc toolchain, and every release
// tag up to the running Go version.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		// All go1.N tags up to the toolchain's own minor version hold.
		have := strings.TrimPrefix(runtime.Version(), "go1.")
		if i := strings.IndexByte(have, '.'); i >= 0 {
			have = have[:i]
		}
		var want, cur int
		if _, err := fmt.Sscanf(rest, "%d", &want); err != nil {
			return false
		}
		if _, err := fmt.Sscanf(have, "%d", &cur); err != nil {
			return false
		}
		return want <= cur
	}
	return false
}

// importPathFor maps an absolute directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filepath.Base(dir))
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loaderImporter adapts Loader to types.Importer: module-internal paths
// load recursively from source, the standard library goes through the
// source importer, and anything else is refused (the nodeps analyzer
// reports the import site; this error surfaces as a type error).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "C" {
		return nil, fmt.Errorf("analysis: cgo is not supported")
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	if isStdlib(path) {
		return l.std.Import(path)
	}
	return nil, fmt.Errorf("analysis: external dependency %q (module is stdlib-only)", path)
}

// isStdlib reports whether path names a standard-library package: by
// convention the first path element of any external module contains a
// dot, while no stdlib path element does.
func isStdlib(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
