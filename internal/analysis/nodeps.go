package analysis

import (
	"strconv"
	"strings"
)

// NodepsAnalyzer guards the module's dependency posture, which is itself
// a reproducibility feature: with a stdlib-only build there is no
// version resolution, no supply chain, and no vendored randomness to
// drift between environments. It flags, in every package:
//
//   - imports outside the standard library and the module itself
//   - cgo ("C") and unsafe, which break the pure-Go portability the
//     emulator relies on
//   - math/rand anywhere but internal/xrand: the deterministic packages
//     are covered by the determinism analyzer, but even outside them a
//     math/rand call site invites accidental reuse in seeded code, so
//     the designated generator package is the only allowed home.
var NodepsAnalyzer = &Analyzer{
	Name: "nodeps",
	Doc:  "forbid external dependencies, cgo, unsafe, and math/rand outside internal/xrand",
	Run:  runNodeps,
}

func runNodeps(pass *Pass) error {
	base := pkgBase(pass.PkgPath)
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "C":
				pass.Reportf(imp.Pos(), "cgo import: the module builds pure Go only")
			case path == "unsafe":
				pass.Reportf(imp.Pos(), "unsafe import: wire formats are encoded with internal/bitpack, not pointer casts")
			case (path == "math/rand" || path == "math/rand/v2") && base != "xrand":
				pass.Reportf(imp.Pos(), "math/rand import outside internal/xrand: all randomness flows through the seedable xrand generators")
			case path == pass.ModulePath || strings.HasPrefix(path, pass.ModulePath+"/"):
				// module-internal: fine
			case isStdlib(path):
				// stdlib: fine
			default:
				pass.Reportf(imp.Pos(), "external dependency %q: the module is stdlib-only (stub or gate it)", path)
			}
		}
	}
	return nil
}
