package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockscopeAnalyzer enforces the collector stack's two mutex rules:
//
//  1. No mutex is held across a blocking operation — channel send or
//     receive, blocking select, net.Conn I/O, (*os.File).Sync, or
//     time.Sleep. A goroutine parked on a socket while holding the
//     journal mutex stalls every ingest shard; the chaos e2e suite only
//     catches that when the fault injector happens to wedge the right
//     connection, this analyzer catches it on every build.
//  2. Every Lock/RLock is paired with an Unlock/RUnlock or a defer on
//     all paths out of the function — a return with the mutex held is
//     reported at the return, a fallthrough leak at the Lock.
//
// The check is intra-procedural and branch-aware: held sets fork at
// if/switch/select and re-merge conservatively (a mutex held on either
// arm counts as held after the merge). Each function literal is its own
// scope — a closure's Lock/Unlock discipline is judged where the closure
// is written, since the analyzer cannot see when it runs. Two
// conventions keep the check precise: a `defer mu.Unlock()` satisfies
// pairing but the mutex still counts as held for rule 1 (that is exactly
// the (*Journal).Close sync-under-lock case), and methods following the
// repo's "Locked" suffix convention take no visible Lock and are
// therefore invisible here — their callers are the ones checked.
var LockscopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "forbid blocking operations under a held mutex and unbalanced Lock/Unlock paths",
	Run:  runLockscope,
}

func runLockscope(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkLockScope(pass, fn.Name.Name, fn.Body)
			}
		}
		// Every function literal — in defers, go statements, assignments —
		// is an independent scope.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLockScope(pass, "func literal", lit.Body)
			}
			return true
		})
	}
	return nil
}

// heldLock is one mutex the walk believes is currently held.
type heldLock struct {
	pos      token.Pos // the Lock() call
	deferred bool      // a defer Unlock covers every exit path
}

// lockState is the held-mutex set at one program point, keyed by the
// rendered receiver expression ("j.mu", "c.wr.mu").
type lockState map[string]*heldLock

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		hl := *v
		c[k] = &hl
	}
	return c
}

// merge folds an alternative branch outcome into s: a mutex held on
// either arm is held after the join (conservative for rule 1), and a
// defer only counts if both arms had it (conservative for rule 2).
func (s lockState) merge(other lockState) {
	for k, o := range other {
		if mine, ok := s[k]; ok {
			mine.deferred = mine.deferred && o.deferred
		} else {
			hl := *o
			s[k] = &hl
		}
	}
}

func checkLockScope(pass *Pass, name string, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, fname: name}
	st := make(lockState)
	terminated := w.walkStmts(body.List, st)
	if terminated {
		return
	}
	for key, hl := range st {
		if !hl.deferred {
			pass.Reportf(hl.pos, "%s.Lock() in %s is not released on every path (no Unlock or defer Unlock before fallthrough return)", key, w.fname)
		}
	}
}

type lockWalker struct {
	pass  *Pass
	fname string
}

// walkStmts runs the list linearly, mutating st, and reports whether the
// path terminates (return, panic, or branch out of the linear flow).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, st lockState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, st lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := syncMutexOp(w.pass, call); ok {
				switch method {
				case "Lock", "RLock":
					st[key] = &heldLock{pos: call.Pos()}
				case "Unlock", "RUnlock":
					delete(st, key)
				}
				return false
			}
		}
		w.checkBlocking(s.X, st)
	case *ast.SendStmt:
		w.reportBlocking(s.Arrow, "channel send", st)
		w.checkBlocking(s.Chan, st)
		w.checkBlocking(s.Value, st)
	case *ast.DeferStmt:
		if key, method, ok := syncMutexOp(w.pass, s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			if hl, held := st[key]; held {
				hl.deferred = true
			}
			return false
		}
		// defer func() { ...; mu.Unlock(); ... }() — the closure body is
		// analyzed as its own scope; here it only satisfies pairing.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if key, method, ok := syncMutexOp(w.pass, call); ok && (method == "Unlock" || method == "RUnlock") {
					if hl, held := st[key]; held {
						hl.deferred = true
					}
				}
				return true
			})
		}
	case *ast.GoStmt:
		// Launching is not blocking; the goroutine body is its own scope.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkBlocking(e, st)
		}
		for _, e := range s.Lhs {
			w.checkBlocking(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkBlocking(e, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkBlocking(e, st)
		}
		for key, hl := range st {
			if !hl.deferred {
				w.pass.Reportf(s.Pos(), "return in %s with %s still held (Lock at line %d has no Unlock or defer Unlock on this path)",
					w.fname, key, w.pass.Fset.Position(hl.pos).Line)
			}
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; the loop walk treats
		// the surrounding state conservatively.
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.checkBlocking(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			st.merge(elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.checkBlocking(s.Cond, st)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		// One-pass loop model: reports inside the body use loop-entry
		// state; after the loop the entry state stands (a body that locks
		// must also unlock within the body, which the body walk's own
		// fallthrough/return checks do not enforce across iterations —
		// the merge below keeps any unbalanced body lock visible).
		st.merge(bodySt)
	case *ast.RangeStmt:
		w.checkBlocking(s.X, st)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		st.merge(bodySt)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.reportBlocking(s.Pos(), "select without default", st)
		}
		w.walkClauses(s.Body.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.checkBlocking(s.Tag, st)
		}
		w.walkClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkClauses(s.Body.List, st)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IncDecStmt:
		w.checkBlocking(s.X, st)
	}
	return false
}

// walkClauses forks st per case clause and merges the survivors.
func (w *lockWalker) walkClauses(clauses []ast.Stmt, st lockState) {
	merged := st.clone()
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			// The comm op itself is covered by the select-level blocking
			// report; only the case body is walked.
			body = cc.Body
		default:
			continue
		}
		caseSt := st.clone()
		if !w.walkStmts(body, caseSt) {
			merged.merge(caseSt)
		}
	}
	replace(st, merged)
}

// replace overwrites dst's contents with src's.
func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// checkBlocking scans one expression for blocking operations, skipping
// nested function literals (independent scopes).
func (w *lockWalker) checkBlocking(expr ast.Expr, st lockState) {
	if expr == nil || len(st) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocking(n.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(w.pass, n); ok {
				w.reportBlocking(n.Pos(), desc, st)
			}
		}
		return true
	})
}

func (w *lockWalker) reportBlocking(pos token.Pos, desc string, st lockState) {
	for key, hl := range st {
		w.pass.Reportf(pos, "%s in %s while %s is held (Lock at line %d): blocking under a mutex stalls every waiter",
			desc, w.fname, key, w.pass.Fset.Position(hl.pos).Line)
	}
}

// syncMutexOp recognizes mu.Lock/Unlock/RLock/RUnlock calls on
// sync.Mutex/RWMutex (including embedded, promoted ones), returning the
// rendered receiver expression as the mutex key.
func syncMutexOp(pass *Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// blockingCall classifies calls that can park the goroutine.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if name, ok := pkgFuncCall(pass, call, "time"); ok && name == "Sleep" {
		return "time.Sleep", true
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "os":
		if fn.Name() == "Sync" {
			return "(*os.File).Sync", true
		}
	case "net":
		switch fn.Name() {
		case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
			return "net." + fn.Name(), true
		}
	}
	// Conn I/O through a wrapper type (chaosnet.Conn, a fixture fake):
	// a Read/Write method on any type satisfying net.Conn blocks.
	switch sel.Sel.Name {
	case "Read", "Write":
		if iface := netConnInterface(pass); iface != nil {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil &&
				types.Implements(recv.Type(), iface) {
				return "net.Conn " + sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// netConnInterface returns the net.Conn interface type if this package
// (directly) imports net, else nil.
func netConnInterface(pass *Pass) *types.Interface {
	if pass.Pkg == nil {
		return nil
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "net" {
			if obj := imp.Scope().Lookup("Conn"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
	}
	return nil
}
