package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file is a miniature analysistest: fixtures under testdata/src/<n>
// annotate expected findings with want comments and the harness checks
// the analyzer produces exactly those, no more and no fewer. Two forms:
//
//	expr() // want "substring" "another substring"
//
// expects diagnostics on that line whose messages contain each quoted
// substring, and
//
//	// want "substring"
//	//unroller:directive-under-test
//
// (a standalone want line) expects them on the following line — needed
// because a full-line comment cannot carry a second comment.

// key identifies one fixture source line.
type key struct {
	file string // basename
	line int
}

// want is one expectation, consumed as diagnostics match it.
type want struct {
	substr  string
	matched bool
}

func moduleRootDir(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

// runFixture loads testdata/src/<name> and checks the analyzer suite
// against the fixture's want annotations. tolerateTypeErrors is for
// fixtures that deliberately import unresolvable paths (the nodeps
// negative cases).
func runFixture(t *testing.T, suite []*Analyzer, name string, tolerateTypeErrors bool) {
	t.Helper()
	root := moduleRootDir(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	rel := "./internal/analysis/testdata/src/" + name
	pkgs, err := loader.Load(rel)
	if err != nil {
		t.Fatalf("Load(%s): %v", rel, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s) returned %d packages, want 1", rel, len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 && !tolerateTypeErrors {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	diags, err := RunAnalyzers(pkg, suite)
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	wants := parseWants(t, pkg.Dir)

	for _, d := range diags {
		k := key{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		if !consumeWant(wants[k], d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s:%d: want message containing %q", k.file, k.line, w.substr)
			}
		}
	}
}

// consumeWant marks the first unmatched want whose substring occurs in
// msg, reporting whether one was found.
func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && strings.Contains(msg, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture file for want annotations.
func parseWants(t *testing.T, dir string) map[key][]*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	wants := make(map[key][]*want)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			targetLine := i + 1 // 1-based line of this annotation
			if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
				// Standalone form annotates the next line, skipping the
				// empty "//" separators gofmt inserts before directives.
				targetLine++
				for targetLine-1 < len(lines) && strings.TrimSpace(lines[targetLine-1]) == "//" {
					targetLine++
				}
			}
			k := key{file: e.Name(), line: targetLine}
			for _, substr := range parseQuoted(t, line[idx+len("// want "):]) {
				wants[k] = append(wants[k], &want{substr: substr})
			}
		}
	}
	return wants
}

// parseQuoted extracts the quoted substrings of a want annotation.
func parseQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			break
		}
		end := strings.IndexByte(s[start+1:], '"')
		if end < 0 {
			t.Fatalf("unterminated want annotation: %s", s)
		}
		out = append(out, s[start+1:start+1+end])
		s = s[start+end+2:]
	}
	if len(out) == 0 {
		t.Fatalf("want annotation with no quoted substrings: %s", s)
	}
	return out
}
