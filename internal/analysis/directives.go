package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the //unroller: directive grammar:
//
//	//unroller:hotpath
//	    In a function's doc comment: marks it as per-hop code the
//	    hotpath analyzer must keep allocation-free.
//
//	//unroller:allow <check>[,<check>...] [-- reason]
//	    Suppresses the named checks. Placement decides scope: in a
//	    function's doc comment it covers the whole function body; on or
//	    immediately above a statement it covers that line and the next.
//	    The reason after "--" is free text and is strongly encouraged.
//
//	//unroller:commitpoint
//	//unroller:ackpoint
//	    In a function's doc comment: marks the function as the durability
//	    commit step / the client-visible acknowledgement step of the
//	    commit-before-ack protocol (DESIGN §9). The commitorder analyzer
//	    checks that every path to an ackpoint call passes a commitpoint
//	    call first. Both tags are exported as package facts, so a
//	    commitpoint in internal/collectorsvc is visible to callers in any
//	    package.
//
// Directives follow the Go toolchain convention (//go:noinline): no space
// between "//" and "unroller:". A stale allow — one that suppresses no
// diagnostic across a full suite run — is itself reported.

// allowDirective is one parsed //unroller:allow entry for a single check.
type allowDirective struct {
	check     string
	pos       token.Pos
	file      string
	fromLine  int // inclusive line range the suppression covers
	toLine    int
	suppressd bool // did it suppress at least one diagnostic?
}

// Directives is the parsed directive set of one package.
type Directives struct {
	fset   *token.FileSet
	allows []*allowDirective
	// hotpath maps *ast.FuncDecl nodes tagged //unroller:hotpath.
	hotpath map[*ast.FuncDecl]bool
	// commitpoint / ackpoint map *ast.FuncDecl nodes tagged with the
	// commit-before-ack protocol roles.
	commitpoint map[*ast.FuncDecl]bool
	ackpoint    map[*ast.FuncDecl]bool
}

// staleAllow identifies an allow directive that never fired.
type staleAllow struct {
	check string
	pos   token.Position
}

// parseDirectives walks every comment in the package and builds the
// directive table. Grammar errors are left in place for the directive
// analyzer to report; this parser only collects well-formed entries.
func parseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:        fset,
		hotpath:     make(map[*ast.FuncDecl]bool),
		commitpoint: make(map[*ast.FuncDecl]bool),
		ackpoint:    make(map[*ast.FuncDecl]bool),
	}
	for _, f := range files {
		// Function-scoped directives: doc comments on declarations.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Doc != nil {
				for _, c := range fn.Doc.List {
					verb, args := splitDirective(c.Text)
					switch verb {
					case "hotpath":
						d.hotpath[fn] = true
					case "commitpoint":
						d.commitpoint[fn] = true
					case "ackpoint":
						d.ackpoint[fn] = true
					case "allow":
						from := fset.Position(fn.Pos()).Line
						to := fset.Position(fn.End()).Line
						d.addAllows(c, args, from, to)
					}
				}
			}
		}
		// Line-scoped directives: everything else. A doc-comment allow is
		// re-seen here but its function-wide entry subsumes the narrow
		// one, so skip comments inside func docs via position containment.
		funcDocs := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				for _, c := range fn.Doc.List {
					funcDocs[c] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if funcDocs[c] {
					continue
				}
				verb, args := splitDirective(c.Text)
				if verb != "allow" {
					continue
				}
				line := fset.Position(c.Pos()).Line
				// Covers its own line (end-of-line form) and the next
				// (standalone-comment-above form).
				d.addAllows(c, args, line, line+1)
			}
		}
	}
	return d
}

// addAllows registers one allow comment, fanning out per check name.
func (d *Directives) addAllows(c *ast.Comment, args string, from, to int) {
	pos := d.fset.Position(c.Pos())
	for _, check := range splitAllowChecks(args) {
		d.allows = append(d.allows, &allowDirective{
			check:    check,
			pos:      c.Pos(),
			file:     pos.Filename,
			fromLine: from,
			toLine:   to,
		})
	}
}

// allowed reports whether a diagnostic from check at position is
// suppressed, marking the covering directive as used. When several
// directives cover the same line, only the most specific one — the
// narrowest line span, closest to the finding — gets the credit:
// crediting every cover would let a redundant function-wide allow hide
// behind a line-scoped one forever without ever being reported stale.
func (d *Directives) allowed(check string, position token.Position) bool {
	var best *allowDirective
	for _, a := range d.allows {
		if a.check == check && a.file == position.Filename &&
			a.fromLine <= position.Line && position.Line <= a.toLine {
			if best == nil || narrowerAllow(a, best) {
				best = a
			}
		}
	}
	if best == nil {
		return false
	}
	best.suppressd = true
	return true
}

// narrowerAllow reports whether a is a more specific cover than b:
// smaller line span, ties broken toward the later (closer) start line.
func narrowerAllow(a, b *allowDirective) bool {
	spanA, spanB := a.toLine-a.fromLine, b.toLine-b.fromLine
	if spanA != spanB {
		return spanA < spanB
	}
	return a.fromLine > b.fromLine
}

// stale returns every allow directive that suppressed nothing.
func (d *Directives) stale() []staleAllow {
	var out []staleAllow
	for _, a := range d.allows {
		if !a.suppressd {
			out = append(out, staleAllow{check: a.check, pos: d.fset.Position(a.pos)})
		}
	}
	return out
}

// isHotpath reports whether fn carries the //unroller:hotpath tag.
func (d *Directives) isHotpath(fn *ast.FuncDecl) bool { return d.hotpath[fn] }

// isCommitpoint reports whether fn carries //unroller:commitpoint.
func (d *Directives) isCommitpoint(fn *ast.FuncDecl) bool { return d.commitpoint[fn] }

// isAckpoint reports whether fn carries //unroller:ackpoint.
func (d *Directives) isAckpoint(fn *ast.FuncDecl) bool { return d.ackpoint[fn] }

// splitDirective parses a comment's text into directive verb and argument
// string. Non-directive comments return verb "".
func splitDirective(text string) (verb, args string) {
	const prefix = "//unroller:"
	if !strings.HasPrefix(text, prefix) {
		return "", ""
	}
	rest := text[len(prefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return rest, ""
}

// splitAllowChecks parses an allow directive's arguments into check
// names, stripping the optional "-- reason" suffix.
func splitAllowChecks(args string) []string {
	if i := strings.Index(args, "--"); i >= 0 {
		args = args[:i]
	}
	var out []string
	for _, name := range strings.Split(args, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}
