// Package analysis is the repo's custom static-analysis suite
// ("unroller-vet"). It machine-checks invariants that the paper's
// reproduction depends on but that the compiler cannot see:
//
//   - determinism: the Monte Carlo engine and everything feeding table
//     output must be bit-for-bit reproducible, so math/rand, wall-clock
//     reads, and unordered map iteration are forbidden in the
//     deterministic packages (internal/xrand is the only sanctioned
//     randomness source).
//   - hotpath: per-hop functions (State.Visit, Switch.Process, ...)
//     tagged //unroller:hotpath must stay allocation- and fmt-free.
//   - wirewidth: bit-granular wire encode/decode (internal/bitpack,
//     internal/core/header.go) must make every truncation explicit with
//     a width mask, so identifier fields cannot silently lose bits when
//     widths drift.
//   - errctx: errors must carry their package prefix ("core: ...") so a
//     report from a 10k-switch emulation is attributable.
//   - nodeps: the module stays stdlib-only, cgo-free, and math/rand-free.
//   - directive: the //unroller: directive grammar itself is validated.
//
// The suite is pure go/ast + go/types — no golang.org/x/tools dependency —
// so the module remains zero-dep. The cmd/unroller-vet driver wires it
// into CI (see ci.sh).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker, deliberately shaped like
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to
// the official driver if the module ever takes on the dependency.
type Analyzer struct {
	// Name is the check's identifier, used in output and in
	// //unroller:allow directives.
	Name string
	// Doc is a one-line description shown by `unroller-vet -list`.
	Doc string
	// FactGen, when set, runs before any Run pass and publishes package
	// facts (see facts.go) other packages' Run passes may consult. It
	// must not report diagnostics.
	FactGen func(pass *Pass) error
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	PkgPath    string
	ModulePath string
	Info       *types.Info
	Dirs       *Directives
	// Facts is the merged fact table: this package's own FactGen output
	// plus whatever the driver (whole-module phase) or unitchecker
	// (.vetx files) imported from dependencies.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an //unroller:allow directive
// covering that line suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Dirs != nil && p.Dirs.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full suite in the order the driver runs it. The v1
// analyzers froze the determinism and wire-format invariants; the v2
// generation (lockscope, deadline, commitorder, atomicfield) freezes
// the concurrency and durability contracts of the collector stack.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		HotpathAnalyzer,
		WirewidthAnalyzer,
		ErrctxAnalyzer,
		NodepsAnalyzer,
		LockscopeAnalyzer,
		DeadlineAnalyzer,
		CommitorderAnalyzer,
		AtomicfieldAnalyzer,
		DirectiveAnalyzer,
	}
}

// allowableChecks are the analyzer names that may appear in an
// //unroller:allow directive. The directive analyzer itself cannot be
// suppressed: a broken directive hiding its own diagnosis would be
// unfindable. (A literal list, not derived from All(), to avoid an
// initialization cycle through DirectiveAnalyzer.)
var allowableChecks = map[string]bool{
	"determinism": true,
	"hotpath":     true,
	"wirewidth":   true,
	"errctx":      true,
	"nodeps":      true,
	"lockscope":   true,
	"deadline":    true,
	"commitorder": true,
	"atomicfield": true,
}

// GenerateFacts runs every analyzer's FactGen over pkg, merging what it
// publishes into facts. The driver calls this for every loaded package
// (dependencies included) before any Run pass, so cross-package checks
// like atomicfield see the whole module; the unitchecker calls it for
// the one package unit it was handed and persists the result to a .vetx
// file.
func GenerateFacts(pkg *Package, suite []*Analyzer, facts *Facts) error {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	for _, a := range suite {
		if a.FactGen == nil {
			continue
		}
		pass := newPass(a, pkg, dirs, facts, nil)
		if err := a.FactGen(pass); err != nil {
			return fmt.Errorf("analysis: %s facts on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return nil
}

func newPass(a *Analyzer, pkg *Package, dirs *Directives, facts *Facts, diags *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		PkgPath:    pkg.Path,
		ModulePath: pkg.ModulePath,
		Info:       pkg.Info,
		Dirs:       dirs,
		Facts:      facts,
		diags:      diags,
	}
}

// RunAnalyzers applies every analyzer in suite to the package and returns
// the surviving diagnostics sorted by position. Facts visibility is the
// package's own FactGen output only — callers that need cross-package
// facts run GenerateFacts over every package first and use
// RunAnalyzersWithFacts. Stale //unroller:allow directives — ones that
// suppressed nothing across the whole suite — are reported under the
// directive analyzer's name, so allowlist entries cannot outlive the
// finding they were written for.
func RunAnalyzers(pkg *Package, suite []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	if err := GenerateFacts(pkg, suite, facts); err != nil {
		return nil, err
	}
	return RunAnalyzersWithFacts(pkg, suite, facts)
}

// RunAnalyzersWithFacts is RunAnalyzers with an externally prepared fact
// table (typically the whole-module merge, or .vetx imports).
func RunAnalyzersWithFacts(pkg *Package, suite []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range suite {
		pass := newPass(a, pkg, dirs, facts, &diags)
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	// Stale detection is only meaningful for checks that actually ran:
	// an allow for an analyzer outside this suite may well have fired in
	// a full run.
	ran := make(map[string]bool, len(suite))
	for _, a := range suite {
		ran[a.Name] = true
	}
	for _, stale := range dirs.stale() {
		if !ran[stale.check] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      stale.pos,
			Analyzer: DirectiveAnalyzer.Name,
			Message:  fmt.Sprintf("stale //unroller:allow %s: no diagnostic suppressed", stale.check),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// pkgBase returns the last element of an import path: the conventional
// package name used for scope decisions and error prefixes.
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
