// Package frames provides a production-shaped wire encoding for
// Unroller state: Ethernet II framing and a fully checksummed IPv4
// header carrying the Unroller fields as an experimental IP option
// (RFC 3692 experiment type, copy bit set so routers propagate it on
// fragmentation). The emulator's internal frame (internal/dataplane) is
// deliberately minimal; this package is what an on-the-wire deployment
// over IPv4 would parse, and its tests pin the checksum math against
// known vectors.
package frames

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Byte sizes and constants of the encodings.
const (
	// EthernetHeaderLen is the Ethernet II header size (no 802.1Q).
	EthernetHeaderLen = 14
	// EtherTypeIPv4 marks an IPv4 payload.
	EtherTypeIPv4 = 0x0800
	// IPv4MinHeaderLen is the option-less IPv4 header size.
	IPv4MinHeaderLen = 20
	// IPv4MaxHeaderLen caps the header (IHL is 4 bits of 32-bit words).
	IPv4MaxHeaderLen = 60
	// OptionUnroller is the option type carrying Unroller state:
	// copy=1, class=0 (control), number=30 (RFC 3692 experiment).
	OptionUnroller = 0x9E
	// optEOL and optNOP are the standard terminator and padding.
	optEOL = 0x00
	optNOP = 0x01
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("frames: truncated")
	ErrBadVersion  = errors.New("frames: not IPv4")
	ErrBadChecksum = errors.New("frames: header checksum mismatch")
	ErrBadOption   = errors.New("frames: malformed options")
	ErrNoOption    = errors.New("frames: no unroller option present")
)

// MAC is an Ethernet address.
type MAC [6]byte

// String formats the address conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// Marshal appends the header to dst.
func (e *Ethernet) Marshal(dst []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	return binary.BigEndian.AppendUint16(dst, e.EtherType)
}

// Unmarshal parses the header and returns the payload.
func (e *Ethernet) Unmarshal(buf []byte) ([]byte, error) {
	if len(buf) < EthernetHeaderLen {
		return nil, fmt.Errorf("%w: ethernet header needs 14 bytes, have %d", ErrTruncated, len(buf))
	}
	copy(e.Dst[:], buf[0:6])
	copy(e.Src[:], buf[6:12])
	e.EtherType = binary.BigEndian.Uint16(buf[12:14])
	return buf[EthernetHeaderLen:], nil
}

// IPv4 is an IPv4 header with options.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved/DF/MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst [4]byte
	// Options holds the raw option bytes (padded to 32-bit words on
	// marshal).
	Options []byte
	// PayloadLen is the L4 payload length used to compute TotalLength;
	// set by the caller on marshal, recovered on unmarshal.
	PayloadLen int
}

// HeaderLen returns the encoded header size including padded options.
func (h *IPv4) HeaderLen() int {
	opts := (len(h.Options) + 3) / 4 * 4
	return IPv4MinHeaderLen + opts
}

// Marshal appends the checksummed header to dst.
func (h *IPv4) Marshal(dst []byte) ([]byte, error) {
	hlen := h.HeaderLen()
	if hlen > IPv4MaxHeaderLen {
		return nil, fmt.Errorf("%w: options of %d bytes exceed the 40-byte limit", ErrBadOption, len(h.Options))
	}
	total := hlen + h.PayloadLen
	if total > 0xFFFF {
		return nil, fmt.Errorf("frames: total length %d exceeds 16 bits", total)
	}
	start := len(dst)
	dst = append(dst, byte(0x40|hlen/4), h.TOS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = binary.BigEndian.AppendUint16(dst, h.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Flags)<<13|h.FragOff&0x1FFF)
	dst = append(dst, h.TTL, h.Protocol, 0, 0) // checksum placeholder
	dst = append(dst, h.Src[:]...)
	dst = append(dst, h.Dst[:]...)
	dst = append(dst, h.Options...)
	for len(dst)-start < hlen {
		dst = append(dst, optEOL)
	}
	ck := Checksum(dst[start : start+hlen])
	binary.BigEndian.PutUint16(dst[start+10:], ck)
	return dst, nil
}

// Unmarshal parses and checksum-verifies the header, returning the
// payload slice (aliasing buf).
func (h *IPv4) Unmarshal(buf []byte) ([]byte, error) {
	if len(buf) < IPv4MinHeaderLen {
		return nil, fmt.Errorf("%w: ipv4 header needs 20 bytes, have %d", ErrTruncated, len(buf))
	}
	if buf[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, buf[0]>>4)
	}
	hlen := int(buf[0]&0x0F) * 4
	if hlen < IPv4MinHeaderLen || hlen > len(buf) {
		return nil, fmt.Errorf("%w: IHL %d bytes against %d available", ErrTruncated, hlen, len(buf))
	}
	if Checksum(buf[:hlen]) != 0 {
		return nil, ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(buf[2:]))
	if total < hlen || total > len(buf) {
		return nil, fmt.Errorf("%w: total length %d", ErrTruncated, total)
	}
	h.TOS = buf[1]
	h.ID = binary.BigEndian.Uint16(buf[4:])
	ff := binary.BigEndian.Uint16(buf[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1FFF
	h.TTL = buf[8]
	h.Protocol = buf[9]
	copy(h.Src[:], buf[12:16])
	copy(h.Dst[:], buf[16:20])
	h.Options = buf[IPv4MinHeaderLen:hlen]
	h.PayloadLen = total - hlen
	return buf[hlen:total], nil
}

// Checksum computes the internet checksum (RFC 1071) of b. A buffer
// containing a correct embedded checksum sums to zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// BuildUnrollerOption wraps the Unroller header bytes in an IPv4 option:
// [type, length, data…], length covering type and length bytes.
func BuildUnrollerOption(unrollerHeader []byte) ([]byte, error) {
	if len(unrollerHeader) > 38 { // 40-byte option space minus type+len
		return nil, fmt.Errorf("%w: unroller header of %d bytes does not fit IPv4 options", ErrBadOption, len(unrollerHeader))
	}
	opt := make([]byte, 0, len(unrollerHeader)+2)
	opt = append(opt, OptionUnroller, byte(len(unrollerHeader)+2))
	return append(opt, unrollerHeader...), nil
}

// FindUnrollerOption walks the option list and returns the Unroller
// header bytes, or ErrNoOption.
func FindUnrollerOption(options []byte) ([]byte, error) {
	i := 0
	for i < len(options) {
		switch options[i] {
		case optEOL:
			return nil, ErrNoOption
		case optNOP:
			i++
		default:
			if i+1 >= len(options) {
				return nil, ErrBadOption
			}
			l := int(options[i+1])
			if l < 2 || i+l > len(options) {
				return nil, ErrBadOption
			}
			if options[i] == OptionUnroller {
				return options[i+2 : i+l], nil
			}
			i += l
		}
	}
	return nil, ErrNoOption
}
