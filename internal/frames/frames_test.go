package frames

import (
	"bytes"
	"errors"
	"testing"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/detect"
	"github.com/unroller/unroller/internal/xrand"
)

// TestChecksumKnownVector pins the RFC 1071 math against the classic
// worked example (172.16.10.99 → 172.16.10.12, checksum 0xB1E6).
func TestChecksumKnownVector(t *testing.T) {
	hdr := []byte{
		0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00,
		0x40, 0x06, 0x00, 0x00, // checksum zeroed
		0xac, 0x10, 0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
	}
	if got := Checksum(hdr); got != 0xB1E6 {
		t.Fatalf("checksum %04x, want b1e6", got)
	}
	// With the checksum in place the header sums to zero.
	hdr[10], hdr[11] = 0xB1, 0xE6
	if got := Checksum(hdr); got != 0 {
		t.Fatalf("verification sum %04x, want 0", got)
	}
	// Odd-length buffers take the padded path.
	if Checksum([]byte{0x01}) != ^uint16(0x0100) {
		t.Fatal("odd-length checksum wrong")
	}
}

// TestEthernetRoundTrip.
func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:       MAC{0x02, 0x42, 0xac, 0x11, 0x00, 0x02},
		EtherType: EtherTypeIPv4,
	}
	buf := e.Marshal(nil)
	buf = append(buf, 0xDE, 0xAD)
	var got Ethernet
	payload, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e || len(payload) != 2 {
		t.Fatalf("round trip: %+v, payload %d", got, len(payload))
	}
	if got.Src.String() != "02:42:ac:11:00:02" {
		t.Fatalf("MAC string %q", got.Src.String())
	}
	if _, err := got.Unmarshal(buf[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatal("short ethernet accepted")
	}
}

// TestIPv4RoundTrip: options padded, checksum verified, payload sliced.
func TestIPv4RoundTrip(t *testing.T) {
	opt, err := BuildUnrollerOption([]byte{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	h := IPv4{
		TOS: 0x10, ID: 0xBEEF, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: 17,
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
		Options: opt, PayloadLen: 3,
	}
	buf, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xAA, 0xBB, 0xCC)
	if len(buf) != h.HeaderLen()+3 {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	if h.HeaderLen()%4 != 0 {
		t.Fatal("header not 32-bit aligned")
	}
	var got IPv4
	payload, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 || got.ID != 0xBEEF || got.Src != h.Src || got.PayloadLen != 3 {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(payload, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("payload %x", payload)
	}
	// The option must be recoverable through the padded option list.
	data, err := FindUnrollerOption(got.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("option data %x", data)
	}
}

// TestIPv4ChecksumRejection: a single flipped bit is caught.
func TestIPv4ChecksumRejection(t *testing.T) {
	h := IPv4{TTL: 9, Protocol: 6, PayloadLen: 0}
	buf, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf[8] ^= 0x01 // corrupt the TTL
	var got IPv4
	if _, err := got.Unmarshal(buf); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corruption yielded %v", err)
	}
}

// TestIPv4Malformed: version, truncation, total length, oversized
// options.
func TestIPv4Malformed(t *testing.T) {
	var h IPv4
	if _, err := h.Unmarshal(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatal("short header accepted")
	}
	v6 := make([]byte, 20)
	v6[0] = 0x65
	if _, err := h.Unmarshal(v6); !errors.Is(err, ErrBadVersion) {
		t.Fatal("v6 accepted")
	}
	big := IPv4{Options: make([]byte, 44)}
	if _, err := big.Marshal(nil); !errors.Is(err, ErrBadOption) {
		t.Fatal("oversized options accepted")
	}
}

// TestFindUnrollerOption: NOP padding, foreign options, EOL, and
// malformed lists.
func TestFindUnrollerOption(t *testing.T) {
	ur, _ := BuildUnrollerOption([]byte{9, 8, 7})
	opts := append([]byte{optNOP, 0x07, 4, 0xDE, 0xAD}, ur...) // NOP + foreign option first
	got, err := FindUnrollerOption(opts)
	if err != nil || !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("find: %x, %v", got, err)
	}
	if _, err := FindUnrollerOption([]byte{optEOL, OptionUnroller}); !errors.Is(err, ErrNoOption) {
		t.Fatal("EOL must terminate the scan")
	}
	if _, err := FindUnrollerOption([]byte{0x07}); !errors.Is(err, ErrBadOption) {
		t.Fatal("truncated option accepted")
	}
	if _, err := FindUnrollerOption([]byte{0x07, 1}); !errors.Is(err, ErrBadOption) {
		t.Fatal("length < 2 accepted")
	}
	if _, err := FindUnrollerOption(nil); !errors.Is(err, ErrNoOption) {
		t.Fatal("empty options should report no option")
	}
	if _, err := BuildUnrollerOption(make([]byte, 40)); !errors.Is(err, ErrBadOption) {
		t.Fatal("oversized unroller header accepted")
	}
}

// TestEndToEndUnrollerOverIPv4: carry live Unroller state across a full
// Ethernet/IPv4 encode-decode per hop and verify detection lands at the
// same hop as the in-memory run — the wire embedding loses nothing.
func TestEndToEndUnrollerOverIPv4(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ZBits, cfg.HashIDs = 16, true // keep the option small
	u := core.MustNew(cfg)
	rng := xrand.New(77)

	ids := make([]detect.SwitchID, 12)
	seen := map[detect.SwitchID]bool{}
	for i := range ids {
		for {
			id := detect.SwitchID(rng.Uint32())
			if id != 0xFFFFFFFF && !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	walkAt := func(h int) detect.SwitchID {
		if h-1 < 4 {
			return ids[h-1]
		}
		return ids[4+(h-5)%8]
	}

	// Reference: pure in-memory run.
	ref := u.NewPacketState()
	refHop := 0
	for h := 1; h <= 200; h++ {
		if ref.Visit(walkAt(h)) == detect.Loop {
			refHop = h
			break
		}
	}
	if refHop == 0 {
		t.Fatal("reference run did not detect")
	}

	// Wire run: every hop decodes Ethernet → IPv4 (checksum verified)
	// → option → Unroller state, visits, and re-encodes everything.
	st := u.NewPacketState()
	wire := encodeFrame(t, u, st)
	for h := 1; h <= 200; h++ {
		var eth Ethernet
		ipv4buf, err := eth.Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var ip IPv4
		if _, err := ip.Unmarshal(ipv4buf); err != nil {
			t.Fatalf("hop %d: %v", h, err)
		}
		hdr, err := FindUnrollerOption(ip.Options)
		if err != nil {
			t.Fatal(err)
		}
		stHop, err := u.DecodeHeader(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if stHop.Visit(walkAt(h)) == detect.Loop {
			if h != refHop {
				t.Fatalf("wire run detected at %d, in-memory at %d", h, refHop)
			}
			return
		}
		wire = encodeFrame(t, u, stHop)
	}
	t.Fatal("wire run did not detect")
}

// encodeFrame wraps state into Ethernet/IPv4 bytes.
func encodeFrame(t *testing.T, u *core.Unroller, st *core.State) []byte {
	t.Helper()
	hdr, err := st.AppendHeader(nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := BuildUnrollerOption(hdr)
	if err != nil {
		t.Fatal(err)
	}
	ip := IPv4{TTL: 200, Protocol: 17, Options: opt,
		Src: [4]byte{192, 0, 2, 1}, Dst: [4]byte{192, 0, 2, 2}}
	eth := Ethernet{EtherType: EtherTypeIPv4}
	buf := eth.Marshal(nil)
	buf, err = ip.Marshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// FuzzIPv4Unmarshal: arbitrary bytes never panic, and anything that
// decodes re-encodes to a checksum-valid header.
func FuzzIPv4Unmarshal(f *testing.F) {
	good := IPv4{TTL: 64, Protocol: 6, PayloadLen: 0}
	buf, _ := good.Marshal(nil)
	f.Add(buf)
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h IPv4
		if _, err := h.Unmarshal(data); err != nil {
			return
		}
		out, err := h.Marshal(nil)
		if err != nil {
			return // e.g. unaligned trailing options can exceed limits
		}
		var h2 IPv4
		if _, err := h2.Unmarshal(out); err != nil {
			t.Fatalf("re-encoded header rejected: %v", err)
		}
	})
}
