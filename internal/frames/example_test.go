package frames_test

import (
	"fmt"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/frames"
)

// Example embeds live Unroller state in a checksummed IPv4 header as an
// experimental IP option and recovers it on the far side.
func Example() {
	cfg := core.DefaultConfig()
	cfg.ZBits, cfg.HashIDs = 16, true
	u := core.MustNew(cfg)
	st := u.NewPacketState()
	st.Visit(101)
	st.Visit(102)

	hdr, _ := st.AppendHeader(nil)
	opt, _ := frames.BuildUnrollerOption(hdr)
	ip := frames.IPv4{TTL: 64, Protocol: 17, Options: opt,
		Src: [4]byte{192, 0, 2, 1}, Dst: [4]byte{192, 0, 2, 2}}
	wire, _ := ip.Marshal(nil)

	var got frames.IPv4
	if _, err := got.Unmarshal(wire); err != nil {
		fmt.Println("checksum failed:", err)
		return
	}
	data, _ := frames.FindUnrollerOption(got.Options)
	dec, _ := u.DecodeHeader(data)
	fmt.Printf("ipv4 header %dB, option carries Xcnt=%d\n", got.HeaderLen(), dec.Hops())
	// Output:
	// ipv4 header 28B, option carries Xcnt=2
}
