package experiments

import (
	"strings"
	"testing"
)

// TestCollateralTable: the blind row must show multiplied latency and
// nonzero loss; the detected row must show in-band kills.
func TestCollateralTable(t *testing.T) {
	tab, err := Collateral()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	blind, det := tab.Rows[0], tab.Rows[1]
	blindLat := cell(t, blind[1])
	detLat := cell(t, det[1])
	if blindLat < detLat*2 {
		t.Errorf("blind latency %v should dwarf detected %v", blindLat, detLat)
	}
	if !strings.Contains(det[4], "killed in-band") {
		t.Errorf("detected victim fate: %q", det[4])
	}
	if strings.Contains(blind[4], "killed") {
		t.Errorf("blind victim fate: %q", blind[4])
	}
	// Determinism: the discrete-event simulation is seeded, so a second
	// run reproduces the table exactly.
	tab2, err := Collateral()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if tab.Rows[i][j] != tab2.Rows[i][j] {
				t.Fatalf("non-deterministic cell [%d][%d]: %q vs %q", i, j, tab.Rows[i][j], tab2.Rows[i][j])
			}
		}
	}
}
