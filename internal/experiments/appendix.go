package experiments

import (
	"fmt"

	"github.com/unroller/unroller/internal/core"
)

// AppendixA reproduces the lower-bound story of Theorem 5 and Appendix
// A empirically: for each phase base, replay the lemmas' adversarial
// constructions and report the worst detection ratio achieved, next to
// the analytic ceiling (Theorem 1) and the universal floor (Theorem 5).
// The fractional lookup-table base appears as the final row — the §3
// "optimize the ratio further" remark made measurable.
func AppendixA(maxScale int) *Table {
	if maxScale < 4 {
		maxScale = 120
	}
	t := &Table{
		ID: "appendixA",
		Caption: fmt.Sprintf(
			"Empirical worst-case detection (adversarial constructions up to scale %d) vs theory", maxScale),
		Headers: []string{"base b", "worst measured (×X)", "Theorem 1 ceiling", "Theorem 5 floor"},
	}
	floor := core.LowerBoundFactor()
	for _, b := range []int{2, 3, 4, 5, 6} {
		cfg := core.DefaultConfig()
		cfg.Base = b
		worst, _ := core.EmpiricalWorstCase(cfg, maxScale)
		t.AddRow(
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.3f", worst),
			fmt.Sprintf("%.3f", core.WorstCaseFactor(b)),
			fmt.Sprintf("%.3f", floor),
		)
	}
	frac := core.DefaultConfig()
	frac.Schedule = core.ScheduleLookup
	frac.PhaseTable = core.FractionalPhaseTable(core.OptimalWorstCaseBase(), 40)
	worst, _ := core.EmpiricalWorstCase(frac, maxScale)
	t.AddRow(
		fmt.Sprintf("%.3f (lookup)", core.OptimalWorstCaseBase()),
		fmt.Sprintf("%.3f", worst),
		fmt.Sprintf("%.3f", core.OptimalWorstCaseBase()),
		fmt.Sprintf("%.3f", floor),
	)
	return t
}

// Ablations runs the design-choice comparisons DESIGN.md calls out on a
// fixed workload (B=5, L=20): phase schedule, integer vs fractional
// base, and the TTL-derived hop counter's header saving.
func Ablations(o Options) (*Table, error) {
	o = o.normalise()
	t := &Table{
		ID:      "ablations",
		Caption: fmt.Sprintf("Design ablations on the B=5, L=20 workload (%d runs each)", o.Runs),
		Headers: []string{"variant", "header bits", "avg time (×X)"},
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"analysis schedule, b=4", core.DefaultConfig()},
		{"hardware schedule, b=4", func() core.Config {
			c := core.DefaultConfig()
			c.Schedule = core.ScheduleHardware
			return c
		}()},
		{"analysis schedule, b=3", func() core.Config {
			c := core.DefaultConfig()
			c.Base = 3
			return c
		}()},
		{"lookup schedule, b≈4.56", func() core.Config {
			c := core.DefaultConfig()
			c.Schedule = core.ScheduleLookup
			c.PhaseTable = core.FractionalPhaseTable(core.OptimalWorstCaseBase(), 40)
			return c
		}()},
		{"TTL-derived hop counter", func() core.Config {
			c := core.DefaultConfig()
			c.TTLHopCount = true
			return c
		}()},
	}
	for _, v := range variants {
		if err := v.cfg.Validate(); err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmt.Sprintf("%d", v.cfg.HeaderBits()), avgTime(v.cfg, 5, 20, o))
	}
	return t, nil
}
