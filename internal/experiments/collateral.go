package experiments

import (
	"fmt"

	"github.com/unroller/unroller/internal/core"
	"github.com/unroller/unroller/internal/dataplane"
	"github.com/unroller/unroller/internal/netsim"
	"github.com/unroller/unroller/internal/topology"
	"github.com/unroller/unroller/internal/xrand"
)

// Collateral quantifies the paper's introductory claims with the
// event-driven simulator: an innocent background flow shares one link
// with a loop; the table reports its latency, jitter, and loss with the
// loop undetected versus killed in-band, plus the looping packets' fate.
// The simulation is discrete-event and seeded, so the numbers are exact
// and machine-independent.
func Collateral() (*Table, error) {
	t := &Table{
		ID:      "collateral",
		Caption: "Background-flow damage from a shared-link loop, with and without in-band detection (0.5 s, 100 Mb/s links)",
		Headers: []string{"scenario", "bg latency (ms)", "bg jitter (ms)", "bg loss", "victim fate"},
	}
	for _, mode := range []struct {
		name      string
		telemetry bool
	}{
		{"loop, no detection", false},
		{"loop + unroller", true},
	} {
		sim, err := collateralSim()
		if err != nil {
			return nil, err
		}
		const horizon = 0.5
		if err := sim.AddFlow(netsim.Flow{
			ID: 1, Src: 0, Dst: 3, PacketBytes: 984, Interval: 1e-3, Telemetry: mode.telemetry,
		}, horizon); err != nil {
			return nil, err
		}
		if err := sim.AddFlow(netsim.Flow{
			ID: 2, Src: 0, Dst: 5, PacketBytes: 984, Interval: 2e-3, Telemetry: mode.telemetry,
		}, horizon); err != nil {
			return nil, err
		}
		sim.Run(horizon)
		bg, _ := sim.FlowStats(1)
		victim, _ := sim.FlowStats(2)
		fate := fmt.Sprintf("%d queue/%d ttl drops", victim.QueueDrops, victim.TTLDrops)
		if victim.LoopDrops > 0 {
			fate = fmt.Sprintf("%d killed in-band", victim.LoopDrops)
		}
		t.AddRow(
			mode.name,
			fmt.Sprintf("%.3f", bg.Latency.Mean()*1e3),
			fmt.Sprintf("%.3f", bg.Jitter*1e3),
			fmt.Sprintf("%.1f%%", bg.Loss()*100),
			fate,
		)
	}
	return t, nil
}

// collateralSim builds the shared-link scenario:
//
//	0 — 1 — 2 — 3 — 5, triangle 1-4-2; loop {1, 2, 4} for dst 5.
func collateralSim() (*netsim.Sim, error) {
	g := topology.NewGraph("collateral", 6)
	for i := 0; i < 6; i++ {
		g.AddNode("")
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 4}, {2, 4}, {3, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	net, err := dataplane.NewNetwork(g, topology.NewAssignment(g, xrand.New(7)), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for _, dst := range []int{3, 5} {
		if err := net.InstallShortestPaths(dst); err != nil {
			return nil, err
		}
	}
	net.SetLoopPolicy(dataplane.ActionDrop)
	if err := net.InjectLoop(5, topology.Cycle{1, 2, 4}); err != nil {
		return nil, err
	}
	params := netsim.DefaultLinkParams()
	params.BandwidthBps = 100e6
	params.QueuePackets = 32
	return netsim.New(net, params)
}
