package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAppendixATable: every base's measured worst case sits between the
// Theorem 5 floor (within finite-scale slack) and its Theorem 1 ceiling,
// and the fractional row beats the b=4 ceiling.
func TestAppendixATable(t *testing.T) {
	tab := AppendixA(80)
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var b4Ceiling, fracWorst float64
	for _, row := range tab.Rows {
		worst := cell(t, row[1])
		ceiling := cell(t, row[2])
		floor := cell(t, row[3])
		if worst > ceiling+0.05 {
			t.Errorf("base %s: measured %.3f above ceiling %.3f", row[0], worst, ceiling)
		}
		if worst < floor*0.80 {
			t.Errorf("base %s: measured %.3f implausibly below the %.3f floor", row[0], worst, floor)
		}
		if row[0] == "4" {
			b4Ceiling = ceiling
		}
		if strings.Contains(row[0], "lookup") {
			fracWorst = worst
		}
	}
	if fracWorst >= b4Ceiling {
		t.Errorf("fractional base worst %.3f should beat the b=4 ceiling %.3f", fracWorst, b4Ceiling)
	}
	// Scale clamping.
	if tab := AppendixA(0); len(tab.Rows) != 6 {
		t.Error("clamped scale broke the table")
	}
}

// TestAblationsTable: all variants run, the TTL variant saves exactly 8
// bits, and every detection time is plausible.
func TestAblationsTable(t *testing.T) {
	tab, err := Ablations(Options{Runs: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	bitsOf := map[string]int{}
	for _, row := range tab.Rows {
		bits, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		bitsOf[row[0]] = bits
		if at := cell(t, row[2]); at < 1 || at > 4 {
			t.Errorf("%s: avg time %v implausible", row[0], at)
		}
	}
	if bitsOf["TTL-derived hop counter"] != bitsOf["analysis schedule, b=4"]-8 {
		t.Errorf("TTL variant bits: %v", bitsOf)
	}
}
